#include "hw/energy_model.h"

#include <cmath>
#include <stdexcept>

#include "common/config.h"

namespace nocbt::hw {

void EnergyModelConfig::validate() const {
  // Negated tests so NaN fails them too.
  if (!(energy_per_transition_pj > 0.0) ||
      !std::isfinite(energy_per_transition_pj))
    throw std::invalid_argument(
        "EnergyModelConfig: energy_per_transition_pj must be positive and "
        "finite");
  if (!(frequency_mhz > 0.0) || !std::isfinite(frequency_mhz))
    throw std::invalid_argument(
        "EnergyModelConfig: frequency_mhz must be positive and finite");
}

double parse_energy_point(const std::string& s) {
  if (s == "innovus" || s == "paper") return kInnovusEnergyPj;
  if (s == "banerjee") return kBanerjeeEnergyPj;
  double v = 0.0;
  try {
    v = parse_double_strict(s);
  } catch (const std::exception&) {
    throw std::invalid_argument(
        "parse_energy_point: expected 'innovus', 'banerjee' or a pJ value, "
        "got '" + s + "'");
  }
  if (!(v > 0.0) || !std::isfinite(v))
    throw std::invalid_argument(
        "parse_energy_point: pJ/transition must be positive, got '" + s + "'");
  return v;
}

EnergyModel::EnergyModel(const EnergyModelConfig& config) : config_(config) {
  config_.validate();
}

double EnergyModel::energy_pj(std::uint64_t transitions) const noexcept {
  return static_cast<double>(transitions) * config_.energy_per_transition_pj;
}

double EnergyModel::energy_joules(std::uint64_t transitions) const noexcept {
  return energy_pj(transitions) * 1e-12;
}

double EnergyModel::power_mw(std::uint64_t transitions,
                             std::uint64_t cycles) const noexcept {
  if (cycles == 0) return 0.0;
  // E = n * pJ * 1e-12 J over t = cycles / (f_MHz * 1e6) s, so
  // P = n * pJ * f_MHz / cycles * 1e-6 W = n * pJ * f_MHz / cycles / 1e3 mW.
  return energy_pj(transitions) * config_.frequency_mhz /
         static_cast<double>(cycles) / 1e3;
}

LinkPowerConfig EnergyModel::static_estimate(const noc::NocConfig& noc,
                                             double toggle_fraction) const {
  noc.validate();
  LinkPowerConfig cfg;
  cfg.energy_per_transition_pj = config_.energy_per_transition_pj;
  cfg.frequency_mhz = config_.frequency_mhz;
  cfg.link_width_bits = noc.flit_payload_bits;
  cfg.num_links = mesh_bidirectional_links(static_cast<unsigned>(noc.rows),
                                           static_cast<unsigned>(noc.cols));
  cfg.toggle_fraction = toggle_fraction;
  return cfg;
}

std::vector<LinkEnergyRow> EnergyModel::annotate(
    const std::vector<noc::LinkObservation>& links) const {
  std::vector<LinkEnergyRow> out;
  out.reserve(links.size());
  for (const noc::LinkObservation& link : links)
    out.push_back(LinkEnergyRow{link.link_id, link.info, link.flits,
                                link.transitions, energy_pj(link.transitions)});
  return out;
}

EnergyReport EnergyModel::measure(const noc::BtRecorder& recorder,
                                  std::uint64_t cycles) const {
  EnergyReport report;
  report.cycles = cycles;
  report.transitions = recorder.total();
  report.energy_pj = energy_pj(report.transitions);
  report.power_mw = power_mw(report.transitions, cycles);
  for (const noc::LinkKind kind :
       {noc::LinkKind::kInjection, noc::LinkKind::kInterRouter,
        noc::LinkKind::kEjection}) {
    const std::uint64_t bt = recorder.by_kind(kind);
    report.by_kind.push_back(KindEnergyRow{kind, recorder.flits_by_kind(kind),
                                           bt, energy_pj(bt),
                                           power_mw(bt, cycles)});
  }
  report.links = annotate(recorder.snapshot());
  return report;
}

}  // namespace nocbt::hw
