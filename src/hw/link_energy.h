#pragma once
// Link power model of §V-C: P = E_transition * toggling_bits * links * f.
//
// The paper synthesizes physical links with Innovus and reports
// 0.173 pJ per bit transition; Banerjee et al. report 0.532 pJ. Assuming
// half of a 128-bit link's wires toggle per cycle across the 112
// inter-router links of an 8x8 mesh at 125 MHz:
//   0.173 pJ * 64 * 112 * 125 MHz = 155.008 mW   (our link model)
//   0.532 pJ * 64 * 112 * 125 MHz = 476.672 mW   (Banerjee's model)
// and the 40.85% BT reduction scales these to 91.688 / 281.951 mW.

#include <cstdint>

namespace nocbt::hw {

/// Parameters of the link power estimate.
struct LinkPowerConfig {
  double energy_per_transition_pj = 0.173;
  unsigned link_width_bits = 128;
  unsigned num_links = 112;        ///< inter-router links (8x8 mesh: 112)
  double frequency_mhz = 125.0;
  double toggle_fraction = 0.5;    ///< fraction of wires toggling per cycle
};

/// The paper's alternative published energy point.
inline constexpr double kBanerjeeEnergyPj = 0.532;

/// Total link power in mW under the model.
[[nodiscard]] double link_power_mw(const LinkPowerConfig& config);

/// Link power after applying a BT reduction rate (0..1).
[[nodiscard]] double link_power_with_reduction_mw(const LinkPowerConfig& config,
                                                  double reduction_rate);

/// Inter-router link count of an R x C mesh (both directions):
/// 2 * (R*(C-1) + C*(R-1)). For 8x8 this is 224 unidirectional; the paper
/// counts 112 *bidirectional* links, i.e. links = R*(C-1) + C*(R-1).
/// Throws std::invalid_argument when either dimension is 0.
[[nodiscard]] unsigned mesh_bidirectional_links(unsigned rows, unsigned cols);

/// Energy (in Joules) for a measured BT count at the configured pJ/bit.
[[nodiscard]] double transitions_to_joules(std::uint64_t transitions,
                                           double energy_per_transition_pj);

}  // namespace nocbt::hw
