#include "hw/gate_model.h"

#include <cmath>

namespace nocbt::hw {
namespace {

// Structural gate-equivalent unit costs (typical standard-cell figures):
constexpr double kGePerFullAdder = 4.5;
constexpr double kGePerFlipFlop = 5.5;
constexpr double kGePerMux2 = 2.5;
constexpr double kGePerComparatorBit = 3.0;

// Calibration: scale factor chosen so the default 16-lane x 32-bit unit
// lands exactly on Table II's 12.91 kGE (see unit test
// HwGateModel.DefaultUnitMatchesTableII which pins this).
double raw_default_unit_ge();

constexpr double kTargetUnitGe = 12910.0;

// Power: calibrated uW per GE so the default unit consumes 2.213 mW at
// 125 MHz / 1.0 V; scales linearly with frequency and with V^2.
constexpr double kDefaultFreqMhz = 125.0;
constexpr double kDefaultVoltage = 1.0;

double structural_popcount_ge(const ordering::OrderingUnitConfig& u) {
  // A W-bit SWAR pop-count is a compressor tree of roughly W-1 full adders
  // per lane; every lane has its own pop-counter.
  return static_cast<double>(u.lanes) * (u.value_bits - 1) * kGePerFullAdder;
}

double structural_sorter_ge(const ordering::OrderingUnitConfig& u) {
  // Odd-even transposition network: lanes/2 compare-and-swap elements.
  // Each compares ceil(log2(W+1))-bit keys and swaps (key + value + value)
  // lanes via 2:1 muxes — affiliated ordering moves the paired input along
  // with the weight, so two value lanes swap per comparator.
  const double key_bits = std::ceil(std::log2(u.value_bits + 1.0));
  const double cmp = key_bits * kGePerComparatorBit;
  const double swap = (key_bits + 2.0 * u.value_bits) * kGePerMux2;
  return (u.lanes / 2.0) * (cmp + swap);
}

double structural_register_ge(const ordering::OrderingUnitConfig& u) {
  // Each lane registers its value and its pop-count key (double-buffered
  // input/output, hence the factor 2).
  const double key_bits = std::ceil(std::log2(u.value_bits + 1.0));
  return 2.0 * u.lanes * (u.value_bits + key_bits) * kGePerFlipFlop;
}

double raw_default_unit_ge() {
  const ordering::OrderingUnitConfig def{};  // 16 lanes, 32-bit values
  return structural_popcount_ge(def) + structural_sorter_ge(def) +
         structural_register_ge(def);
}

double calibration_factor() { return kTargetUnitGe / raw_default_unit_ge(); }

double calibrated_uw_per_ge() {
  // 2.213 mW over 12.91 kGE at the default operating point.
  return 2213.0 / kTargetUnitGe;
}

}  // namespace

OrderingUnitCostModel::OrderingUnitCostModel(ordering::OrderingUnitConfig unit,
                                             TechConfig tech)
    : unit_(unit), tech_(tech) {
  if (tech_.uw_per_ge <= 0.0) tech_.uw_per_ge = calibrated_uw_per_ge();
}

double OrderingUnitCostModel::popcount_ge() const {
  return structural_popcount_ge(unit_);
}
double OrderingUnitCostModel::sorter_ge() const {
  return structural_sorter_ge(unit_);
}
double OrderingUnitCostModel::register_ge() const {
  return structural_register_ge(unit_);
}

BlockCost OrderingUnitCostModel::unit_cost() const {
  const double raw = popcount_ge() + sorter_ge() + register_ge();
  const double ge = raw * calibration_factor();
  BlockCost cost;
  cost.kilo_ge = ge / 1000.0;
  const double freq_scale = tech_.frequency_mhz / kDefaultFreqMhz;
  const double volt_scale =
      (tech_.voltage * tech_.voltage) / (kDefaultVoltage * kDefaultVoltage);
  cost.power_mw = ge * tech_.uw_per_ge * freq_scale * volt_scale / 1000.0;
  return cost;
}

BlockCost OrderingUnitCostModel::units_cost(int n) const {
  BlockCost one = unit_cost();
  return BlockCost{one.kilo_ge * n, one.power_mw * n};
}

BlockCost router_reference_cost(int routers) {
  return BlockCost{table2::kRouterKiloGe * routers,
                   table2::kRouterPowerMw * routers};
}

}  // namespace nocbt::hw
