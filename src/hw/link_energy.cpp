#include "hw/link_energy.h"

#include <stdexcept>

namespace nocbt::hw {

double link_power_mw(const LinkPowerConfig& config) {
  const double toggling_bits = config.link_width_bits * config.toggle_fraction;
  // pJ * bits * links * MHz = pJ * 1e6/s = 1e-6 J/s = uW; /1000 -> mW.
  return config.energy_per_transition_pj * toggling_bits * config.num_links *
         config.frequency_mhz / 1e3;
}

double link_power_with_reduction_mw(const LinkPowerConfig& config,
                                    double reduction_rate) {
  return link_power_mw(config) * (1.0 - reduction_rate);
}

unsigned mesh_bidirectional_links(unsigned rows, unsigned cols) {
  // A 0-dimension mesh would underflow (cols - 1) and report a huge link
  // count; 1xN / Nx1 chains are legitimate and have N-1 links.
  if (rows == 0 || cols == 0)
    throw std::invalid_argument(
        "mesh_bidirectional_links: mesh dimensions must be >= 1");
  return rows * (cols - 1) + cols * (rows - 1);
}

double transitions_to_joules(std::uint64_t transitions,
                             double energy_per_transition_pj) {
  return static_cast<double>(transitions) * energy_per_transition_pj * 1e-12;
}

}  // namespace nocbt::hw
