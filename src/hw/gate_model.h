#pragma once
// Analytical gate-equivalent area & power model of the ordering unit and
// the reference router (paper Table II).
//
// Substitution note (DESIGN.md): the paper synthesizes with Synopsys DC on
// TSMC 90 nm; without EDA tools we model the unit structurally — SWAR
// pop-count adder trees, an odd-even transposition sort of (key, payload)
// lanes, and lane registers — in gate equivalents (GE, 2-input NAND), then
// calibrate one global factor so the paper's default configuration
// (16 lanes x 32-bit values, 125 MHz, 1.0 V) reproduces Table II exactly:
// 12.91 kGE / 2.213 mW per unit vs 125.54 kGE / 16.92 mW per router.

#include <cstdint>

#include "ordering/ordering_unit.h"

namespace nocbt::hw {

/// Technology/operating point; defaults are the paper's.
struct TechConfig {
  double frequency_mhz = 125.0;
  double voltage = 1.0;
  /// Dynamic power per GE at the default operating point, calibrated.
  double uw_per_ge = 0.0;  ///< 0 = use calibrated default
};

/// Area/power estimate for one block.
struct BlockCost {
  double kilo_ge = 0.0;   ///< thousand gate equivalents
  double power_mw = 0.0;  ///< at the configured frequency/voltage
};

/// Structural cost model of the ordering unit.
class OrderingUnitCostModel {
 public:
  explicit OrderingUnitCostModel(ordering::OrderingUnitConfig unit,
                                 TechConfig tech = {});

  /// Total unit cost (pop-count stage + sort network + lane registers).
  [[nodiscard]] BlockCost unit_cost() const;

  /// Cost of `n` units (one per memory controller).
  [[nodiscard]] BlockCost units_cost(int n) const;

  // Structural sub-totals (GE), before calibration scaling:
  [[nodiscard]] double popcount_ge() const;   ///< SWAR adder trees, all lanes
  [[nodiscard]] double sorter_ge() const;     ///< compare-and-swap lanes
  [[nodiscard]] double register_ge() const;   ///< (key + value) lane registers

 private:
  ordering::OrderingUnitConfig unit_;
  TechConfig tech_;
};

/// Reference router cost (paper Table II, Constellation-generated router,
/// TSMC 90 nm @ 125 MHz): 125.54 kGE, 16.92 mW.
[[nodiscard]] BlockCost router_reference_cost(int routers = 1);

/// The paper's Table II reference values, exposed for tests/benches.
namespace table2 {
inline constexpr double kUnitKiloGe = 12.91;
inline constexpr double kUnitPowerMw = 2.213;
inline constexpr double kFourUnitsKiloGe = 51.64;
inline constexpr double kFourUnitsPowerMw = 8.852;
inline constexpr double kRouterKiloGe = 125.54;
inline constexpr double kRouterPowerMw = 16.92;
inline constexpr double k64RoutersKiloGe = 8034.56;
inline constexpr double k64RoutersPowerMw = 1083.18;
}  // namespace table2

}  // namespace nocbt::hw
