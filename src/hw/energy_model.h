#pragma once
// Measured link-energy model (§V-C, closed-loop): converts the bit
// transitions the noc::BtRecorder actually accumulated into the paper's
// bottom-line units — pJ of link energy and mW of average link power.
//
// This complements the static toggle-fraction estimate in link_energy.h:
// that model *assumes* how many wires toggle per cycle; this one consumes
// the measured per-link counts, so campaign reports can print power for
// any mesh shape, link width, and traffic pattern. The two meet at the
// paper's anchor: one cycle of an 8x8 mesh with half of every 128-bit
// link toggling is 112 * 64 transitions, and at 0.173 pJ / 125 MHz both
// paths yield 155.008 mW (476.672 mW under Banerjee's 0.532 pJ point).

#include <cstdint>
#include <string>
#include <vector>

#include "hw/link_energy.h"
#include "noc/bt_recorder.h"
#include "noc/noc_config.h"

namespace nocbt::hw {

/// The paper's Innovus-extracted energy per bit transition (pJ).
inline constexpr double kInnovusEnergyPj = 0.173;

/// Knobs of the measured model. Both published pJ points are selectable
/// (kInnovusEnergyPj / kBanerjeeEnergyPj) alongside arbitrary values.
struct EnergyModelConfig {
  double energy_per_transition_pj = kInnovusEnergyPj;
  double frequency_mhz = 125.0;  ///< link clock (paper setup: 125 MHz)

  /// Throws std::invalid_argument unless both knobs are positive and finite.
  void validate() const;
};

/// Parse a pJ/transition selector: "innovus"/"paper" -> 0.173,
/// "banerjee" -> 0.532, otherwise a positive numeric literal (the full
/// string must parse). Throws std::invalid_argument on junk.
[[nodiscard]] double parse_energy_point(const std::string& s);

/// One monitored link's measurements with its energy attached.
struct LinkEnergyRow {
  std::int32_t link_id = -1;
  noc::LinkInfo info;
  std::uint64_t flits = 0;
  std::uint64_t transitions = 0;
  double energy_pj = 0.0;
};

[[nodiscard]] inline bool operator==(const LinkEnergyRow& a,
                                     const LinkEnergyRow& b) noexcept {
  return a.link_id == b.link_id && a.info == b.info && a.flits == b.flits &&
         a.transitions == b.transitions && a.energy_pj == b.energy_pj;
}

/// Aggregate over one link class.
struct KindEnergyRow {
  noc::LinkKind kind = noc::LinkKind::kInterRouter;
  std::uint64_t flits = 0;
  std::uint64_t transitions = 0;
  double energy_pj = 0.0;
  double power_mw = 0.0;
};

/// Everything measure() derives from one recorder: scoped totals (matching
/// BtRecorder::total(), i.e. the BT number campaign rows report), the
/// per-class breakdown, and one row per monitored link.
struct EnergyReport {
  std::uint64_t cycles = 0;       ///< run length the power figures assume
  std::uint64_t transitions = 0;  ///< in-scope BT (BtRecorder::total())
  double energy_pj = 0.0;         ///< in-scope energy
  double power_mw = 0.0;          ///< in-scope average power (0 if cycles 0)
  std::vector<KindEnergyRow> by_kind;  ///< all three link classes
  std::vector<LinkEnergyRow> links;    ///< every monitored link, id order
};

/// Converts transition counts to energy/power at a configured pJ point and
/// clock. Link counts and widths are never assumed: they are implicit in
/// the measured counts (measure/annotate) or derived from the live
/// NocConfig (static_estimate).
class EnergyModel {
 public:
  EnergyModel() : EnergyModel(EnergyModelConfig{}) {}
  explicit EnergyModel(const EnergyModelConfig& config);  // validates

  [[nodiscard]] const EnergyModelConfig& config() const noexcept {
    return config_;
  }

  /// Energy of a transition count, in pJ / Joules.
  [[nodiscard]] double energy_pj(std::uint64_t transitions) const noexcept;
  [[nodiscard]] double energy_joules(std::uint64_t transitions) const noexcept;

  /// Average power (mW) of `transitions` spread over `cycles` cycles at
  /// the configured clock; 0 when cycles is 0 (nothing ran).
  [[nodiscard]] double power_mw(std::uint64_t transitions,
                                std::uint64_t cycles) const noexcept;

  /// §V-C-style static estimate with the link count and width derived from
  /// a live NocConfig instead of the hardcoded 8x8/128-bit defaults.
  /// Feed the result to link_power_mw / link_power_with_reduction_mw.
  [[nodiscard]] LinkPowerConfig static_estimate(
      const noc::NocConfig& noc, double toggle_fraction = 0.5) const;

  /// Attach energy to frozen per-link counters (BtRecorder::snapshot()).
  [[nodiscard]] std::vector<LinkEnergyRow> annotate(
      const std::vector<noc::LinkObservation>& links) const;

  /// Full measured report for a recorder after a run of `cycles` cycles.
  [[nodiscard]] EnergyReport measure(const noc::BtRecorder& recorder,
                                     std::uint64_t cycles) const;

 private:
  EnergyModelConfig config_;
};

}  // namespace nocbt::hw
