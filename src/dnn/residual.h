#pragma once
// Residual block: y = body(x) + shortcut(x), where the body is an arbitrary
// Sequential and the shortcut is identity or an optional projection conv
// (1x1, possibly strided) when the body changes shape — the ResNet basic
// block. The elementwise sum is what creates skip-edge traffic on the NoC:
// the tile computing the body's last layer must also receive the shortcut
// activations.

#include <memory>
#include <string>

#include "dnn/conv2d.h"
#include "dnn/layer.h"
#include "dnn/sequential.h"

namespace nocbt::dnn {

class Residual final : public Layer {
 public:
  /// `projection` may be null (identity shortcut). When present its output
  /// shape must match the body's for every input fed through forward().
  explicit Residual(Sequential body,
                    std::unique_ptr<Conv2d> projection = nullptr);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kResidual;
  }
  [[nodiscard]] std::string name() const override;

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(Shape input) const override;

  [[nodiscard]] Sequential& body() noexcept { return body_; }
  [[nodiscard]] const Sequential& body() const noexcept { return body_; }
  /// Null for an identity shortcut.
  [[nodiscard]] Conv2d* projection() noexcept { return projection_.get(); }
  [[nodiscard]] const Conv2d* projection() const noexcept {
    return projection_.get();
  }

 private:
  Sequential body_;
  std::unique_ptr<Conv2d> projection_;
};

}  // namespace nocbt::dnn
