#include "dnn/synthetic_data.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nocbt::dnn {

SyntheticDataset::SyntheticDataset(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config.classes < 2) throw std::invalid_argument("SyntheticDataset: classes < 2");
  if (config.height < 8 || config.width < 8)
    throw std::invalid_argument("SyntheticDataset: image too small");
}

Tensor SyntheticDataset::exemplar(std::int32_t label, float offset) const {
  // Two parallel strokes through the image at the class's orientation.
  // Pixels farther than ~2 sigma from both stroke center lines stay
  // exactly zero, giving MNIST-like sparsity.
  const double angle = std::numbers::pi * label / config_.classes;
  const double nx = -std::sin(angle);  // unit normal of the stroke lines
  const double ny = std::cos(angle);
  const double cx = config_.width / 2.0;
  const double cy = config_.height / 2.0;
  const double sigma = config_.stroke_sigma;
  const double cutoff = 2.0 * sigma;

  Tensor img(Shape{1, config_.channels, config_.height, config_.width});
  for (std::int32_t c = 0; c < config_.channels; ++c) {
    // Channels shift the strokes slightly so RGB inputs are not identical.
    const double channel_shift = 0.8 * c;
    for (std::int32_t h = 0; h < config_.height; ++h) {
      for (std::int32_t w = 0; w < config_.width; ++w) {
        const double d0 = (w - cx) * nx + (h - cy) * ny + offset + channel_shift;
        const double d1 = d0 - config_.stroke_gap;
        double value = 0.0;
        if (std::fabs(d0) < cutoff)
          value = std::exp(-d0 * d0 / (2.0 * sigma * sigma));
        if (std::fabs(d1) < cutoff)
          value = std::max(value, std::exp(-d1 * d1 / (2.0 * sigma * sigma)));
        img.at(0, c, h, w) = static_cast<float>(value);
      }
    }
  }
  return img;
}

Batch SyntheticDataset::sample(std::int32_t n) {
  Batch batch;
  batch.images =
      Tensor(Shape{n, config_.channels, config_.height, config_.width});
  batch.labels.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    const auto label =
        static_cast<std::int32_t>(rng_.uniform_int(0, config_.classes - 1));
    batch.labels[static_cast<std::size_t>(i)] = label;
    const auto offset =
        static_cast<float>(rng_.uniform(-config_.stroke_gap, config_.stroke_gap * 0.5));
    const auto brightness = static_cast<float>(rng_.uniform(0.7, 1.0));
    const Tensor clean = exemplar(label, offset);
    for (std::int32_t c = 0; c < config_.channels; ++c) {
      for (std::int32_t h = 0; h < config_.height; ++h) {
        for (std::int32_t w = 0; w < config_.width; ++w) {
          float v = clean.at(0, c, h, w) * brightness;
          // Noise only on lit pixels: the background stays exactly zero,
          // like MNIST's black canvas.
          if (v > 0.0f)
            v = std::clamp(
                v + static_cast<float>(rng_.normal(0.0, config_.noise_stddev)),
                0.0f, 1.0f);
          batch.images.at(i, c, h, w) = v;
        }
      }
    }
  }
  return batch;
}

}  // namespace nocbt::dnn
