#pragma once
// Sequential container: an ordered stack of layers with whole-model
// forward/backward and parameter enumeration.

#include <memory>
#include <string>
#include <vector>

#include "dnn/layer.h"

namespace nocbt::dnn {

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference for fluent building.
  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Convenience: construct in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Run the full model.
  Tensor forward(const Tensor& input);

  /// Backpropagate from dL/d(output); parameter grads accumulate in place.
  Tensor backward(const Tensor& grad_output);

  /// All trainable parameters in layer order.
  [[nodiscard]] std::vector<ParamRef> params();

  /// Shape after running a given input shape through every layer.
  [[nodiscard]] Shape output_shape(Shape input) const;

  /// Total parameter element count.
  [[nodiscard]] std::int64_t param_count();

  /// Flattened copy of all weight *values* of conv/linear layers, in layer
  /// order — the weight stream used by the no-NoC experiments (Table I).
  [[nodiscard]] std::vector<float> weight_values();

  /// Serialize all parameter values (binary, with per-parameter name and
  /// size headers) — lets benches cache trained models across runs.
  void save_weights(const std::string& path);

  /// Restore parameters written by save_weights. Throws std::runtime_error
  /// on I/O failure or any name/size mismatch with the current model.
  void load_weights(const std::string& path);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nocbt::dnn
