#include "dnn/residual.h"

#include <stdexcept>

namespace nocbt::dnn {

Residual::Residual(Sequential body, std::unique_ptr<Conv2d> projection)
    : body_(std::move(body)), projection_(std::move(projection)) {
  if (body_.size() == 0)
    throw std::invalid_argument("Residual: body must contain layers");
}

std::string Residual::name() const {
  return "residual_" + std::to_string(body_.size()) +
         (projection_ ? "_proj" : "");
}

Shape Residual::output_shape(Shape input) const {
  const Shape out = body_.output_shape(input);
  const Shape shortcut =
      projection_ ? projection_->output_shape(input) : input;
  if (out != shortcut)
    throw std::invalid_argument(
        "Residual: body output " + out.to_string() +
        " does not match shortcut " + shortcut.to_string());
  return out;
}

Tensor Residual::forward(const Tensor& input) {
  Tensor out = body_.forward(input);
  if (projection_) {
    const Tensor shortcut = projection_->forward(input);
    if (shortcut.shape() != out.shape())
      throw std::invalid_argument("Residual::forward: shape mismatch");
    out.add_scaled(shortcut, 1.0f);
  } else {
    if (input.shape() != out.shape())
      throw std::invalid_argument("Residual::forward: shape mismatch");
    out.add_scaled(input, 1.0f);
  }
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor grad_input = body_.backward(grad_output);
  if (projection_) {
    const Tensor grad_shortcut = projection_->backward(grad_output);
    grad_input.add_scaled(grad_shortcut, 1.0f);
  } else {
    grad_input.add_scaled(grad_output, 1.0f);
  }
  return grad_input;
}

std::vector<ParamRef> Residual::params() {
  std::vector<ParamRef> all = body_.params();
  if (projection_)
    for (auto& p : projection_->params()) all.push_back(p);
  return all;
}

}  // namespace nocbt::dnn
