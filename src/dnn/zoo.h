#pragma once
// Model zoo: named builders covering the workload families the placement
// engine maps onto the mesh — the paper's LeNet/DarkNet plus a ResNet-style
// residual stack, a MobileNet-style depthwise-separable stack, and an
// attention/GEMM projection pipeline (the linear projections of one
// transformer block; the softmax mixing itself runs host-side, so the NoC
// traffic is the projection GEMMs).

#include <string>
#include <vector>

#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/sequential.h"

namespace nocbt::dnn {

/// Registered zoo model names, in registration order:
/// lenet, darknet, resnet, mobile, attention.
[[nodiscard]] std::vector<std::string> zoo_model_names();

/// Input geometry + class count for a zoo model. Throws
/// std::invalid_argument listing the valid names on an unknown name.
[[nodiscard]] ModelSpec zoo_model_spec(const std::string& name);

/// Build a zoo model with Kaiming-initialized weights drawn from `rng`.
/// Deterministic for a fixed name and rng state.
[[nodiscard]] Sequential build_zoo_model(const std::string& name, Rng& rng);

}  // namespace nocbt::dnn
