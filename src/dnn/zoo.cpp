#include "dnn/zoo.h"

#include <stdexcept>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/depthwise_conv2d.h"
#include "dnn/linear.h"
#include "dnn/pooling.h"
#include "dnn/residual.h"

namespace nocbt::dnn {
namespace {

// ResNet-style: stem conv, an identity-shortcut block, a strided
// projection-shortcut block doubling channels, global pooling head.
// 32x32x3 input (CIFAR geometry).
Sequential build_resnet_block(Rng& rng) {
  Sequential model;
  model.emplace<Conv2d>(3, 16, 3, 1, 1);  // 16 @ 32x32
  model.emplace<Relu>();

  Sequential body1;
  body1.emplace<Conv2d>(16, 16, 3, 1, 1);
  body1.emplace<Relu>();
  body1.emplace<Conv2d>(16, 16, 3, 1, 1);
  model.emplace<Residual>(std::move(body1));  // identity shortcut
  model.emplace<Relu>();

  Sequential body2;
  body2.emplace<Conv2d>(16, 32, 3, 2, 1);  // 32 @ 16x16
  body2.emplace<Relu>();
  body2.emplace<Conv2d>(32, 32, 3, 1, 1);
  model.emplace<Residual>(std::move(body2),
                          std::make_unique<Conv2d>(16, 32, 1, 2, 0));
  model.emplace<Relu>();

  model.emplace<GlobalAvgPool>();  // 32 logit inputs
  model.emplace<Flatten>();
  model.emplace<Linear>(32, 10);
  fill_weights_random(model, rng);
  return model;
}

// MobileNet-style: strided stem then three depthwise-separable blocks
// (depthwise 3x3 + pointwise 1x1), global pooling head. 32x32x3 input.
Sequential build_mobile_small(Rng& rng) {
  Sequential model;
  model.emplace<Conv2d>(3, 8, 3, 2, 1);  // 8 @ 16x16
  model.emplace<Relu>();

  model.emplace<DepthwiseConv2d>(8, 3, 1, 1);  // 8 @ 16x16
  model.emplace<Relu>();
  model.emplace<Conv2d>(8, 16, 1);  // pointwise, 16 @ 16x16
  model.emplace<Relu>();

  model.emplace<DepthwiseConv2d>(16, 3, 2, 1);  // 16 @ 8x8
  model.emplace<Relu>();
  model.emplace<Conv2d>(16, 32, 1);  // 32 @ 8x8
  model.emplace<Relu>();

  model.emplace<DepthwiseConv2d>(32, 3, 1, 1);  // 32 @ 8x8
  model.emplace<Relu>();
  model.emplace<Conv2d>(32, 32, 1);  // 32 @ 8x8
  model.emplace<Relu>();

  model.emplace<GlobalAvgPool>();
  model.emplace<Flatten>();
  model.emplace<Linear>(32, 10);
  fill_weights_random(model, rng);
  return model;
}

// Attention/GEMM workload: the linear projections of one transformer block
// at d_model = 64 — fused QKV (64->192), output projection (192->64), FFN
// up/down (64->256->64), classifier head. The softmax attention mixing is
// host-side arithmetic with no weights, so the NoC traffic is exactly
// these projection GEMMs. 8x8 single-channel input = one 64-dim token.
Sequential build_attention_block(Rng& rng) {
  Sequential model;
  model.emplace<Flatten>();           // 64
  model.emplace<Linear>(64, 192);     // fused QKV projection
  model.emplace<Relu>();
  model.emplace<Linear>(192, 64);     // attention output projection
  model.emplace<Relu>();
  model.emplace<Linear>(64, 256);     // FFN up
  model.emplace<Relu>();
  model.emplace<Linear>(256, 64);     // FFN down
  model.emplace<Relu>();
  model.emplace<Linear>(64, 10);
  fill_weights_random(model, rng);
  return model;
}

[[noreturn]] void throw_unknown_model(const std::string& name) {
  std::string valid;
  for (const auto& n : zoo_model_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("unknown zoo model '" + name +
                              "' (valid: " + valid + ")");
}

}  // namespace

std::vector<std::string> zoo_model_names() {
  return {"lenet", "darknet", "resnet", "mobile", "attention"};
}

ModelSpec zoo_model_spec(const std::string& name) {
  if (name == "lenet") return lenet_spec();
  if (name == "darknet") return darknet_small_spec();
  if (name == "resnet") return ModelSpec{Shape{1, 3, 32, 32}, 10};
  if (name == "mobile") return ModelSpec{Shape{1, 3, 32, 32}, 10};
  if (name == "attention") return ModelSpec{Shape{1, 1, 8, 8}, 10};
  throw_unknown_model(name);
}

Sequential build_zoo_model(const std::string& name, Rng& rng) {
  if (name == "lenet") return build_lenet(rng);
  if (name == "darknet") return build_darknet_small(rng);
  if (name == "resnet") return build_resnet_block(rng);
  if (name == "mobile") return build_mobile_small(rng);
  if (name == "attention") return build_attention_block(rng);
  throw_unknown_model(name);
}

}  // namespace nocbt::dnn
