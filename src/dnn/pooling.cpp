#include "dnn/pooling.h"

#include <limits>
#include <stdexcept>

namespace nocbt::dnn {
namespace {

void check_divides(Shape in, std::int32_t kernel, std::int32_t stride,
                   const char* who) {
  if ((in.h - kernel) % stride != 0 || (in.w - kernel) % stride != 0)
    throw std::invalid_argument(std::string(who) +
                                ": input not divisible by pooling window");
}

}  // namespace

MaxPool2d::MaxPool2d(std::int32_t kernel, std::int32_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  if (kernel < 1) throw std::invalid_argument("MaxPool2d: kernel must be >= 1");
}

Shape MaxPool2d::output_shape(Shape input) const {
  return Shape{input.n, input.c, (input.h - kernel_) / stride_ + 1,
               (input.w - kernel_) / stride_ + 1};
}

Tensor MaxPool2d::forward(const Tensor& input) {
  check_divides(input.shape(), kernel_, stride_, "MaxPool2d");
  cached_in_shape_ = input.shape();
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  argmax_.assign(static_cast<std::size_t>(out_shape.numel()), 0);

  std::size_t flat = 0;
  for (std::int32_t n = 0; n < out_shape.n; ++n) {
    for (std::int32_t c = 0; c < out_shape.c; ++c) {
      for (std::int32_t oh = 0; oh < out_shape.h; ++oh) {
        for (std::int32_t ow = 0; ow < out_shape.w; ++ow, ++flat) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::int32_t kh = 0; kh < kernel_; ++kh) {
            for (std::int32_t kw = 0; kw < kernel_; ++kw) {
              const std::int32_t ih = oh * stride_ + kh;
              const std::int32_t iw = ow * stride_ + kw;
              const float v = input.at(n, c, ih, iw);
              if (v > best) {
                best = v;
                best_idx = static_cast<std::size_t>(
                    ((static_cast<std::int64_t>(n) * cached_in_shape_.c + c) *
                         cached_in_shape_.h +
                     ih) *
                        cached_in_shape_.w +
                    iw);
              }
            }
          }
          out.at(n, c, oh, ow) = best;
          argmax_[flat] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_in_shape_);
  auto flat_grad_in = grad_input.data();
  std::size_t flat = 0;
  for (float g : grad_output.data()) flat_grad_in[argmax_[flat++]] += g;
  return grad_input;
}

AvgPool2d::AvgPool2d(std::int32_t kernel, std::int32_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  if (kernel < 1) throw std::invalid_argument("AvgPool2d: kernel must be >= 1");
}

Shape AvgPool2d::output_shape(Shape input) const {
  return Shape{input.n, input.c, (input.h - kernel_) / stride_ + 1,
               (input.w - kernel_) / stride_ + 1};
}

Tensor AvgPool2d::forward(const Tensor& input) {
  check_divides(input.shape(), kernel_, stride_, "AvgPool2d");
  cached_in_shape_ = input.shape();
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::int32_t n = 0; n < out_shape.n; ++n)
    for (std::int32_t c = 0; c < out_shape.c; ++c)
      for (std::int32_t oh = 0; oh < out_shape.h; ++oh)
        for (std::int32_t ow = 0; ow < out_shape.w; ++ow) {
          float acc = 0.0f;
          for (std::int32_t kh = 0; kh < kernel_; ++kh)
            for (std::int32_t kw = 0; kw < kernel_; ++kw)
              acc += input.at(n, c, oh * stride_ + kh, ow * stride_ + kw);
          out.at(n, c, oh, ow) = acc * inv;
        }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_in_shape_);
  const Shape out_shape = grad_output.shape();
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::int32_t n = 0; n < out_shape.n; ++n)
    for (std::int32_t c = 0; c < out_shape.c; ++c)
      for (std::int32_t oh = 0; oh < out_shape.h; ++oh)
        for (std::int32_t ow = 0; ow < out_shape.w; ++ow) {
          const float g = grad_output.at(n, c, oh, ow) * inv;
          for (std::int32_t kh = 0; kh < kernel_; ++kh)
            for (std::int32_t kw = 0; kw < kernel_; ++kw)
              grad_input.at(n, c, oh * stride_ + kh, ow * stride_ + kw) += g;
        }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  cached_in_shape_ = input.shape();
  const Shape in = input.shape();
  Tensor out(Shape{in.n, in.c, 1, 1});
  const float inv = 1.0f / static_cast<float>(in.h * in.w);
  for (std::int32_t n = 0; n < in.n; ++n)
    for (std::int32_t c = 0; c < in.c; ++c) {
      float acc = 0.0f;
      for (std::int32_t h = 0; h < in.h; ++h)
        for (std::int32_t w = 0; w < in.w; ++w) acc += input.at(n, c, h, w);
      out.at(n, c, 0, 0) = acc * inv;
    }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_in_shape_);
  const Shape in = cached_in_shape_;
  const float inv = 1.0f / static_cast<float>(in.h * in.w);
  for (std::int32_t n = 0; n < in.n; ++n)
    for (std::int32_t c = 0; c < in.c; ++c) {
      const float g = grad_output.at(n, c, 0, 0) * inv;
      for (std::int32_t h = 0; h < in.h; ++h)
        for (std::int32_t w = 0; w < in.w; ++w) grad_input.at(n, c, h, w) = g;
    }
  return grad_input;
}

}  // namespace nocbt::dnn
