#pragma once
// Softmax cross-entropy loss for classification training.

#include <cstdint>
#include <vector>

#include "dnn/tensor.h"

namespace nocbt::dnn {

/// Loss value plus gradient w.r.t. the logits.
struct LossResult {
  double loss = 0.0;   ///< mean cross-entropy over the batch
  Tensor grad;         ///< dL/d(logits), same shape as logits
  std::int32_t correct = 0;  ///< batch elements where argmax == target
};

/// Mean softmax cross-entropy over a batch. `logits` has shape
/// {n, classes, 1, 1}; `targets` holds n class indices.
[[nodiscard]] LossResult softmax_cross_entropy(
    const Tensor& logits, const std::vector<std::int32_t>& targets);

/// Argmax over the class dimension for each batch element.
[[nodiscard]] std::vector<std::int32_t> argmax_classes(const Tensor& logits);

}  // namespace nocbt::dnn
