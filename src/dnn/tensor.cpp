#include "dnn/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nocbt::dnn {

std::string Shape::to_string() const {
  return "(" + std::to_string(n) + ", " + std::to_string(c) + ", " +
         std::to_string(h) + ", " + std::to_string(w) + ")";
}

Tensor::Tensor(Shape shape) : shape_(shape) {
  if (shape.n < 0 || shape.c < 0 || shape.h < 0 || shape.w < 0)
    throw std::invalid_argument("Tensor: negative dimension");
  data_.assign(static_cast<std::size_t>(shape.numel()), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> data) {
  if (static_cast<std::int64_t>(data.size()) != shape.numel())
    throw std::invalid_argument("Tensor::from_vector: size mismatch");
  Tensor t;
  t.shape_ = shape;
  t.data_ = std::move(data);
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (!(shape_ == other.shape_))
    throw std::invalid_argument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += other.data_[i] * scale;
}

void Tensor::scale(float factor) {
  for (auto& v : data_) v *= factor;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = data_;
  return t;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace nocbt::dnn
