#pragma once
// Dense float tensor in NCHW layout — the numeric substrate for the DNN
// library. Kept deliberately small: the accelerator experiments need
// correct inference/training, not a full framework.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nocbt::dnn {

/// 4-D shape (batch, channels, height, width). Vectors and matrices are
/// represented with trailing singleton dims, e.g. {n, features, 1, 1}.
struct Shape {
  std::int32_t n = 1;
  std::int32_t c = 1;
  std::int32_t h = 1;
  std::int32_t w = 1;

  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(n) * c * h * w;
  }
  friend bool operator==(const Shape&, const Shape&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Owning NCHW float tensor with contiguous storage.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(shape); }
  [[nodiscard]] static Tensor full(Shape shape, float value);
  /// Wrap a flat buffer (size must equal shape.numel()).
  [[nodiscard]] static Tensor from_vector(Shape shape, std::vector<float> data);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept { return shape_.numel(); }

  [[nodiscard]] float& at(std::int32_t n, std::int32_t c, std::int32_t h,
                          std::int32_t w) noexcept {
    return data_[index(n, c, h, w)];
  }
  [[nodiscard]] float at(std::int32_t n, std::int32_t c, std::int32_t h,
                         std::int32_t w) const noexcept {
    return data_[index(n, c, h, w)];
  }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// this += other * scale (shapes must match).
  void add_scaled(const Tensor& other, float scale);
  /// this *= scale.
  void scale(float factor);

  /// Same storage, new shape (numel must match).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Largest |element|; 0 for an empty tensor.
  [[nodiscard]] float max_abs() const noexcept;

 private:
  [[nodiscard]] std::size_t index(std::int32_t n, std::int32_t c,
                                  std::int32_t h, std::int32_t w) const noexcept {
    return static_cast<std::size_t>(
        ((static_cast<std::int64_t>(n) * shape_.c + c) * shape_.h + h) *
            shape_.w +
        w);
  }

  Shape shape_{0, 0, 0, 0};
  std::vector<float> data_;
};

}  // namespace nocbt::dnn
