#pragma once
// Max and average pooling (square window), forward and backward.
// LeNet-5 uses average pooling ("subsampling"); the DarkNet-like model uses
// max pooling — both substrates are needed for the paper's two workloads.

#include <string>
#include <vector>

#include "dnn/layer.h"

namespace nocbt::dnn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int32_t kernel, std::int32_t stride = -1);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kMaxPool2d;
  }
  [[nodiscard]] std::string name() const override {
    return "maxpool" + std::to_string(kernel_);
  }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override;

 private:
  std::int32_t kernel_;
  std::int32_t stride_;
  Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int32_t kernel, std::int32_t stride = -1);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kAvgPool2d;
  }
  [[nodiscard]] std::string name() const override {
    return "avgpool" + std::to_string(kernel_);
  }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override;

 private:
  std::int32_t kernel_;
  std::int32_t stride_;
  Shape cached_in_shape_;
};

/// Global average pooling over H x W (DarkNet-style classification head).
class GlobalAvgPool final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kAvgPool2d;
  }
  [[nodiscard]] std::string name() const override { return "global_avgpool"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override {
    return Shape{input.n, input.c, 1, 1};
  }

 private:
  Shape cached_in_shape_;
};

}  // namespace nocbt::dnn
