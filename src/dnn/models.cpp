#include "dnn/models.h"

#include <cmath>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/depthwise_conv2d.h"
#include "dnn/linear.h"
#include "dnn/pooling.h"
#include "dnn/residual.h"

namespace nocbt::dnn {
namespace {

void init_layer(Layer& layer, Rng& rng) {
  if (layer.kind() == LayerKind::kConv2d) {
    static_cast<Conv2d&>(layer).init_kaiming(rng);
  } else if (layer.kind() == LayerKind::kLinear) {
    static_cast<Linear&>(layer).init_kaiming(rng);
  } else if (layer.kind() == LayerKind::kDepthwiseConv2d) {
    static_cast<DepthwiseConv2d&>(layer).init_kaiming(rng);
  } else if (layer.kind() == LayerKind::kResidual) {
    auto& res = static_cast<Residual&>(layer);
    for (std::size_t i = 0; i < res.body().size(); ++i)
      init_layer(res.body().layer(i), rng);
    if (res.projection() != nullptr) res.projection()->init_kaiming(rng);
  }
}

}  // namespace

ModelSpec lenet_spec() { return ModelSpec{Shape{1, 1, 32, 32}, 10}; }

Sequential build_lenet(Rng& rng) {
  // The modern LeNet-5 formulation (ReLU + max pooling, as in today's
  // framework reference implementations). ReLU matters beyond accuracy:
  // roughly half the activations become exact zeros, giving the sparse
  // activation traffic a DNN accelerator actually transports.
  Sequential model;
  model.emplace<Conv2d>(1, 6, 5);       // 6 @ 28x28
  model.emplace<Relu>();
  model.emplace<MaxPool2d>(2);          // 6 @ 14x14
  model.emplace<Conv2d>(6, 16, 5);      // 16 @ 10x10
  model.emplace<Relu>();
  model.emplace<MaxPool2d>(2);          // 16 @ 5x5
  model.emplace<Flatten>();             // 400
  model.emplace<Linear>(400, 120);
  model.emplace<Relu>();
  model.emplace<Linear>(120, 84);
  model.emplace<Relu>();
  model.emplace<Linear>(84, 10);
  for (std::size_t i = 0; i < model.size(); ++i) init_layer(model.layer(i), rng);
  return model;
}

ModelSpec darknet_small_spec() { return ModelSpec{Shape{1, 3, 64, 64}, 10}; }

Sequential build_darknet_small(Rng& rng) {
  Sequential model;
  model.emplace<Conv2d>(3, 8, 3, 1, 1);   // 8 @ 64x64
  model.emplace<LeakyRelu>();
  model.emplace<MaxPool2d>(2);            // 8 @ 32x32
  model.emplace<Conv2d>(8, 16, 3, 1, 1);  // 16 @ 32x32
  model.emplace<LeakyRelu>();
  model.emplace<MaxPool2d>(2);            // 16 @ 16x16
  model.emplace<Conv2d>(16, 32, 3, 1, 1); // 32 @ 16x16
  model.emplace<LeakyRelu>();
  model.emplace<MaxPool2d>(2);            // 32 @ 8x8
  model.emplace<Conv2d>(32, 64, 3, 1, 1); // 64 @ 8x8
  model.emplace<LeakyRelu>();
  model.emplace<MaxPool2d>(2);            // 64 @ 4x4
  model.emplace<Conv2d>(64, 10, 3, 1, 1); // 10 @ 4x4 classification head
  model.emplace<GlobalAvgPool>();         // 10 logits
  for (std::size_t i = 0; i < model.size(); ++i) init_layer(model.layer(i), rng);
  return model;
}

void fill_weights_trained_like(Sequential& model, Rng& rng, double b) {
  for (std::size_t i = 0; i < model.size(); ++i) {
    Layer& layer = model.layer(i);
    for (auto& p : layer.params()) {
      const bool is_bias = p.name.ends_with(".bias");
      for (auto& v : p.value->data()) {
        double w = rng.laplace(is_bias ? b * 0.5 : b);
        // ~1% outliers stretch the tensor's dynamic range the way real
        // trained nets do (max/sigma ~ 10), so per-tensor max-abs
        // quantization maps the bulk of the weights to small codes.
        if (!is_bias && rng.flip(0.01)) w *= rng.uniform(5.0, 10.0);
        v = static_cast<float>(w);
      }
    }
  }
}

void fill_weights_random(Sequential& model, Rng& rng) {
  for (std::size_t i = 0; i < model.size(); ++i) init_layer(model.layer(i), rng);
}

}  // namespace nocbt::dnn
