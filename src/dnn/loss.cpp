#include "dnn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nocbt::dnn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int32_t>& targets) {
  const Shape shape = logits.shape();
  if (shape.h != 1 || shape.w != 1)
    throw std::invalid_argument("softmax_cross_entropy: logits must be {n,c,1,1}");
  if (static_cast<std::size_t>(shape.n) != targets.size())
    throw std::invalid_argument("softmax_cross_entropy: batch size mismatch");

  LossResult result;
  result.grad = Tensor(shape);
  const float inv_batch = 1.0f / static_cast<float>(shape.n);

  for (std::int32_t n = 0; n < shape.n; ++n) {
    const std::int32_t target = targets[static_cast<std::size_t>(n)];
    if (target < 0 || target >= shape.c)
      throw std::invalid_argument("softmax_cross_entropy: target out of range");

    // Stable softmax.
    float max_logit = logits.at(n, 0, 0, 0);
    std::int32_t best = 0;
    for (std::int32_t c = 1; c < shape.c; ++c) {
      if (logits.at(n, c, 0, 0) > max_logit) {
        max_logit = logits.at(n, c, 0, 0);
        best = c;
      }
    }
    if (best == target) ++result.correct;

    double denom = 0.0;
    for (std::int32_t c = 0; c < shape.c; ++c)
      denom += std::exp(static_cast<double>(logits.at(n, c, 0, 0) - max_logit));

    const double log_denom = std::log(denom);
    result.loss +=
        -(static_cast<double>(logits.at(n, target, 0, 0) - max_logit) -
          log_denom);

    for (std::int32_t c = 0; c < shape.c; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(n, c, 0, 0) - max_logit)) /
          denom;
      result.grad.at(n, c, 0, 0) =
          (static_cast<float>(p) - (c == target ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.loss /= shape.n;
  return result;
}

std::vector<std::int32_t> argmax_classes(const Tensor& logits) {
  const Shape shape = logits.shape();
  std::vector<std::int32_t> out(static_cast<std::size_t>(shape.n), 0);
  for (std::int32_t n = 0; n < shape.n; ++n) {
    float best = logits.at(n, 0, 0, 0);
    for (std::int32_t c = 1; c < shape.c; ++c) {
      if (logits.at(n, c, 0, 0) > best) {
        best = logits.at(n, c, 0, 0);
        out[static_cast<std::size_t>(n)] = c;
      }
    }
  }
  return out;
}

}  // namespace nocbt::dnn
