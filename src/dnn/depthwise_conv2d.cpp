#include "dnn/depthwise_conv2d.h"

#include <cmath>
#include <stdexcept>

namespace nocbt::dnn {

DepthwiseConv2d::DepthwiseConv2d(std::int32_t channels, std::int32_t kernel,
                                 std::int32_t stride, std::int32_t pad)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{channels, 1, kernel, kernel}),
      bias_(Shape{channels, 1, 1, 1}),
      weight_grad_(Shape{channels, 1, kernel, kernel}),
      bias_grad_(Shape{channels, 1, 1, 1}) {
  if (channels < 1 || kernel < 1 || stride < 1 || pad < 0)
    throw std::invalid_argument("DepthwiseConv2d: invalid geometry");
}

std::string DepthwiseConv2d::name() const {
  return "dwconv" + std::to_string(kernel_) + "x" + std::to_string(kernel_) +
         "_" + std::to_string(channels_);
}

Shape DepthwiseConv2d::output_shape(Shape input) const {
  const std::int32_t oh = (input.h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int32_t ow = (input.w + 2 * pad_ - kernel_) / stride_ + 1;
  return Shape{input.n, channels_, oh, ow};
}

void DepthwiseConv2d::init_kaiming(Rng& rng) {
  const double fan_in = static_cast<double>(kernel_) * kernel_;
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& v : weight_.data())
    v = static_cast<float>(rng.uniform(-bound, bound));
  bias_.zero();
}

Tensor DepthwiseConv2d::forward(const Tensor& input) {
  if (input.shape().c != channels_)
    throw std::invalid_argument("DepthwiseConv2d::forward: channel mismatch");
  cached_input_ = input;
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const Shape in_shape = input.shape();

  for (std::int32_t n = 0; n < out_shape.n; ++n) {
    for (std::int32_t c = 0; c < channels_; ++c) {
      const float b = bias_.at(c, 0, 0, 0);
      for (std::int32_t oh = 0; oh < out_shape.h; ++oh) {
        for (std::int32_t ow = 0; ow < out_shape.w; ++ow) {
          float acc = b;
          for (std::int32_t kh = 0; kh < kernel_; ++kh) {
            const std::int32_t ih = oh * stride_ - pad_ + kh;
            if (ih < 0 || ih >= in_shape.h) continue;
            for (std::int32_t kw = 0; kw < kernel_; ++kw) {
              const std::int32_t iw = ow * stride_ - pad_ + kw;
              if (iw < 0 || iw >= in_shape.w) continue;
              acc += input.at(n, c, ih, iw) * weight_.at(c, 0, kh, kw);
            }
          }
          out.at(n, c, oh, ow) = acc;
        }
      }
    }
  }
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  const Shape in_shape = cached_input_.shape();
  const Shape out_shape = grad_output.shape();
  Tensor grad_input(in_shape);

  for (std::int32_t n = 0; n < out_shape.n; ++n) {
    for (std::int32_t c = 0; c < channels_; ++c) {
      for (std::int32_t oh = 0; oh < out_shape.h; ++oh) {
        for (std::int32_t ow = 0; ow < out_shape.w; ++ow) {
          const float g = grad_output.at(n, c, oh, ow);
          if (g == 0.0f) continue;
          bias_grad_.at(c, 0, 0, 0) += g;
          for (std::int32_t kh = 0; kh < kernel_; ++kh) {
            const std::int32_t ih = oh * stride_ - pad_ + kh;
            if (ih < 0 || ih >= in_shape.h) continue;
            for (std::int32_t kw = 0; kw < kernel_; ++kw) {
              const std::int32_t iw = ow * stride_ - pad_ + kw;
              if (iw < 0 || iw >= in_shape.w) continue;
              weight_grad_.at(c, 0, kh, kw) +=
                  cached_input_.at(n, c, ih, iw) * g;
              grad_input.at(n, c, ih, iw) += weight_.at(c, 0, kh, kw) * g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> DepthwiseConv2d::params() {
  return {{&weight_, &weight_grad_, name() + ".weight"},
          {&bias_, &bias_grad_, name() + ".bias"}};
}

}  // namespace nocbt::dnn
