#pragma once
// Minibatch SGD training loop over the synthetic dataset — produces the
// "trained LeNet weights" workload of the paper from scratch.

#include <cstdint>
#include <vector>

#include "dnn/loss.h"
#include "dnn/sequential.h"
#include "dnn/sgd.h"
#include "dnn/synthetic_data.h"

namespace nocbt::dnn {

/// Per-epoch training record.
struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
};

class Trainer {
 public:
  struct Config {
    std::int32_t epochs = 4;
    std::int32_t steps_per_epoch = 30;
    std::int32_t batch_size = 16;
    Sgd::Config sgd;
  };

  Trainer(Sequential& model, SyntheticDataset& data, Config config);

  /// Run the full schedule; returns one entry per epoch.
  std::vector<EpochStats> train();

  /// Accuracy over `n` freshly sampled examples.
  [[nodiscard]] double evaluate(std::int32_t n);

 private:
  Sequential& model_;
  SyntheticDataset& data_;
  Config config_;
  Sgd optimizer_;
};

}  // namespace nocbt::dnn
