#pragma once
// Layer interface: forward + backward with stored context, suitable both
// for inference and for the from-scratch SGD trainer that produces the
// "trained LeNet weights" workload of the paper.

#include <memory>
#include <string>
#include <vector>

#include "dnn/tensor.h"

namespace nocbt::dnn {

/// Concrete layer type — lets the accelerator walk a model and extract
/// per-neuron tasks from the weighted layers without RTTI.
enum class LayerKind {
  kConv2d,
  kLinear,
  kMaxPool2d,
  kAvgPool2d,
  kRelu,
  kLeakyRelu,
  kTanh,
  kFlatten,
  kDepthwiseConv2d,
  kResidual,
};

/// A named (value, gradient) parameter pair exposed to the optimizer.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// Base class of all layers. `forward` caches whatever `backward` needs;
/// calling `backward` before `forward` is undefined (trainer discipline).
class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual LayerKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Compute outputs from inputs, caching context for backward.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dL/d(output), accumulate parameter gradients and return
  /// dL/d(input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Shape inference without running data through the layer.
  [[nodiscard]] virtual Shape output_shape(Shape input) const = 0;
};

}  // namespace nocbt::dnn
