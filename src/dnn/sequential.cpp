#include "dnn/sequential.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace nocbt::dnn {

namespace {
constexpr char kWeightMagic[8] = {'N', 'O', 'C', 'B', 'T', 'W', '0', '1'};
}  // namespace

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> all;
  for (auto& layer : layers_)
    for (auto& p : layer->params()) all.push_back(p);
  return all;
}

Shape Sequential::output_shape(Shape input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

std::int64_t Sequential::param_count() {
  std::int64_t total = 0;
  for (const auto& p : params()) total += p.value->numel();
  return total;
}

void Sequential::save_weights(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kWeightMagic, sizeof kWeightMagic);
  const auto all = params();
  const auto count = static_cast<std::uint64_t>(all.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& p : all) {
    const auto name_len = static_cast<std::uint64_t>(p.name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof name_len);
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    const auto numel = static_cast<std::uint64_t>(p.value->numel());
    out.write(reinterpret_cast<const char*>(&numel), sizeof numel);
    out.write(reinterpret_cast<const char*>(p.value->data().data()),
              static_cast<std::streamsize>(numel * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_weights: write failed: " + path);
}

void Sequential::load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || !std::equal(magic, magic + 8, kWeightMagic))
    throw std::runtime_error("load_weights: bad magic in " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  const auto all = params();
  if (count != all.size())
    throw std::runtime_error("load_weights: parameter count mismatch");
  for (const auto& p : all) {
    std::uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof name_len);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p.name)
      throw std::runtime_error("load_weights: parameter name mismatch: " +
                               name + " vs " + p.name);
    std::uint64_t numel = 0;
    in.read(reinterpret_cast<char*>(&numel), sizeof numel);
    if (numel != static_cast<std::uint64_t>(p.value->numel()))
      throw std::runtime_error("load_weights: size mismatch for " + name);
    in.read(reinterpret_cast<char*>(p.value->data().data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in) throw std::runtime_error("load_weights: truncated file " + path);
  }
}

std::vector<float> Sequential::weight_values() {
  // Enumerate through params() rather than per-kind casts so composite
  // layers (Residual) and new weighted kinds contribute automatically; for
  // plain conv/linear stacks the order is identical to the historical
  // per-layer walk (each layer lists .weight before .bias).
  std::vector<float> values;
  for (const auto& p : params()) {
    if (!p.name.ends_with(".weight")) continue;
    values.insert(values.end(), p.value->data().begin(),
                  p.value->data().end());
  }
  return values;
}

}  // namespace nocbt::dnn
