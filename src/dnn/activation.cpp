#include "dnn/activation.h"

#include <cmath>

namespace nocbt::dnn {

Tensor Relu::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.data())
    if (v < 0.0f) v = 0.0f;
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto g = grad.data();
  auto x = cached_input_.data();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (x[i] <= 0.0f) g[i] = 0.0f;
  return grad;
}

Tensor LeakyRelu::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.data())
    if (v < 0.0f) v *= slope_;
  return out;
}

Tensor LeakyRelu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto g = grad.data();
  auto x = cached_input_.data();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (x[i] <= 0.0f) g[i] *= slope_;
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& v : out.data()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto g = grad.data();
  auto y = cached_output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_in_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_in_shape_);
}

}  // namespace nocbt::dnn
