#pragma once
// Depthwise 2-D convolution with bias: one k x k filter per channel, no
// cross-channel mixing (the spatial half of a MobileNet-style depthwise-
// separable block; the 1x1 pointwise half is a plain Conv2d).
//
// As a platform task source each output pixel of channel c consumes only
// channel c's k x k input window — the placement engine exploits this to
// slice inter-layer activation traffic per channel.

#include <string>

#include "common/rng.h"
#include "dnn/layer.h"

namespace nocbt::dnn {

class DepthwiseConv2d final : public Layer {
 public:
  /// Kernel is square (k x k); `pad` is symmetric zero padding. Channel
  /// count is both input and output width.
  DepthwiseConv2d(std::int32_t channels, std::int32_t kernel,
                  std::int32_t stride = 1, std::int32_t pad = 0);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kDepthwiseConv2d;
  }
  [[nodiscard]] std::string name() const override;

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(Shape input) const override;

  /// Kaiming-uniform initialization (fan-in = k*k), zero bias.
  void init_kaiming(Rng& rng);

  [[nodiscard]] std::int32_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::int32_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::int32_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::int32_t pad() const noexcept { return pad_; }

  /// Weights, shape {channels, 1, kernel, kernel}.
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] Tensor& weight() noexcept { return weight_; }
  /// Bias, shape {channels, 1, 1, 1}.
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] Tensor& bias() noexcept { return bias_; }

 private:
  std::int32_t channels_;
  std::int32_t kernel_;
  std::int32_t stride_;
  std::int32_t pad_;
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;
};

}  // namespace nocbt::dnn
