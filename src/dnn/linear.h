#pragma once
// Fully-connected layer (y = Wx + b), forward and backward.
//
// Like Conv2d, this is a task source for the platform: each output neuron
// becomes one packet carrying its input vector, weight row, and bias.

#include <string>

#include "common/rng.h"
#include "dnn/layer.h"

namespace nocbt::dnn {

class Linear final : public Layer {
 public:
  Linear(std::int32_t in_features, std::int32_t out_features);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kLinear;
  }
  [[nodiscard]] std::string name() const override {
    return "linear_" + std::to_string(in_features_) + "->" +
           std::to_string(out_features_);
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(Shape input) const override {
    return Shape{input.n, out_features_, 1, 1};
  }

  void init_kaiming(Rng& rng);

  [[nodiscard]] std::int32_t in_features() const noexcept { return in_features_; }
  [[nodiscard]] std::int32_t out_features() const noexcept { return out_features_; }
  /// Weights, shape {out_features, in_features, 1, 1}.
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] Tensor& weight() noexcept { return weight_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] Tensor& bias() noexcept { return bias_; }

 private:
  std::int32_t in_features_;
  std::int32_t out_features_;
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;
};

}  // namespace nocbt::dnn
