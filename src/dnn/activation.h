#pragma once
// Elementwise activations: ReLU, LeakyReLU (DarkNet's default) and Tanh
// (classic LeNet-5), with backward passes.

#include <string>

#include "dnn/layer.h"

namespace nocbt::dnn {

class Relu final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kRelu;
  }
  [[nodiscard]] std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override { return input; }

 private:
  Tensor cached_input_;
};

class LeakyRelu final : public Layer {
 public:
  explicit LeakyRelu(float slope = 0.1f) : slope_(slope) {}
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kLeakyRelu;
  }
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override { return input; }
  [[nodiscard]] float slope() const noexcept { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Tanh final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kTanh;
  }
  [[nodiscard]] std::string name() const override { return "tanh"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override { return input; }

 private:
  Tensor cached_output_;  // tanh' = 1 - y^2
};

/// Shape adapter from NCHW feature maps to {n, features, 1, 1} vectors.
class Flatten final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kFlatten;
  }
  [[nodiscard]] std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(Shape input) const override {
    return Shape{input.n, input.c * input.h * input.w, 1, 1};
  }

 private:
  Shape cached_in_shape_;
};

}  // namespace nocbt::dnn
