#include "dnn/trainer.h"

namespace nocbt::dnn {

Trainer::Trainer(Sequential& model, SyntheticDataset& data, Config config)
    : model_(model),
      data_(data),
      config_(config),
      optimizer_(model.params(), config.sgd) {}

std::vector<EpochStats> Trainer::train() {
  std::vector<EpochStats> history;
  optimizer_.zero_grad();
  for (std::int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (std::int32_t step = 0; step < config_.steps_per_epoch; ++step) {
      Batch batch = data_.sample(config_.batch_size);
      const Tensor logits = model_.forward(batch.images);
      const LossResult loss = softmax_cross_entropy(logits, batch.labels);
      model_.backward(loss.grad);
      optimizer_.step();
      loss_sum += loss.loss;
      correct += loss.correct;
      seen += batch.labels.size();
    }
    history.push_back(EpochStats{
        loss_sum / config_.steps_per_epoch,
        static_cast<double>(correct) / static_cast<double>(seen)});
  }
  return history;
}

double Trainer::evaluate(std::int32_t n) {
  Batch batch = data_.sample(n);
  const Tensor logits = model_.forward(batch.images);
  const auto predictions = argmax_classes(logits);
  std::int32_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == batch.labels[i]) ++correct;
  return static_cast<double>(correct) / n;
}

}  // namespace nocbt::dnn
