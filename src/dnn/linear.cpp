#include "dnn/linear.h"

#include <cmath>
#include <stdexcept>

namespace nocbt::dnn {

Linear::Linear(std::int32_t in_features, std::int32_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features, 1, 1}),
      bias_(Shape{out_features, 1, 1, 1}),
      weight_grad_(Shape{out_features, in_features, 1, 1}),
      bias_grad_(Shape{out_features, 1, 1, 1}) {
  if (in_features < 1 || out_features < 1)
    throw std::invalid_argument("Linear: invalid dimensions");
}

void Linear::init_kaiming(Rng& rng) {
  const double bound = std::sqrt(6.0 / in_features_);
  for (auto& v : weight_.data())
    v = static_cast<float>(rng.uniform(-bound, bound));
  bias_.zero();
}

Tensor Linear::forward(const Tensor& input) {
  const Shape in_shape = input.shape();
  if (in_shape.c * in_shape.h * in_shape.w != in_features_)
    throw std::invalid_argument("Linear::forward: feature count mismatch");
  cached_input_ =
      input.reshaped(Shape{in_shape.n, in_features_, 1, 1});
  Tensor out(Shape{in_shape.n, out_features_, 1, 1});
  for (std::int32_t n = 0; n < in_shape.n; ++n) {
    for (std::int32_t o = 0; o < out_features_; ++o) {
      float acc = bias_.at(o, 0, 0, 0);
      for (std::int32_t i = 0; i < in_features_; ++i)
        acc += cached_input_.at(n, i, 0, 0) * weight_.at(o, i, 0, 0);
      out.at(n, o, 0, 0) = acc;
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const std::int32_t batch = cached_input_.shape().n;
  Tensor grad_input(Shape{batch, in_features_, 1, 1});
  for (std::int32_t n = 0; n < batch; ++n) {
    for (std::int32_t o = 0; o < out_features_; ++o) {
      const float g = grad_output.at(n, o, 0, 0);
      if (g == 0.0f) continue;
      bias_grad_.at(o, 0, 0, 0) += g;
      for (std::int32_t i = 0; i < in_features_; ++i) {
        weight_grad_.at(o, i, 0, 0) += cached_input_.at(n, i, 0, 0) * g;
        grad_input.at(n, i, 0, 0) += weight_.at(o, i, 0, 0) * g;
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Linear::params() {
  return {{&weight_, &weight_grad_, name() + ".weight"},
          {&bias_, &bias_grad_, name() + ".bias"}};
}

}  // namespace nocbt::dnn
