#pragma once
// Model builders for the paper's two workloads.
//
// LeNet-5 (32x32x1 input): conv6@5x5 -> tanh -> avgpool2 -> conv16@5x5 ->
// tanh -> avgpool2 -> flatten -> fc120 -> tanh -> fc84 -> tanh -> fc10.
//
// DarkNetSmall (64x64x3 input, §V-B: "reduce the input size for DarkNet to
// 64x64x3 to speed up the simulation"; we additionally scale channel widths
// down — documented in DESIGN.md): four conv3x3/leaky-relu/maxpool stages
// (8-16-32-64 channels) followed by a conv3x3 head to 10 channels and
// global average pooling.

#include <cstdint>

#include "common/rng.h"
#include "dnn/sequential.h"

namespace nocbt::dnn {

/// Input geometry expected by a built model.
struct ModelSpec {
  Shape input;          ///< per-sample shape with n == 1
  std::int32_t classes;
};

/// Build LeNet-5 with Kaiming-initialized weights drawn from `rng`.
[[nodiscard]] Sequential build_lenet(Rng& rng);
[[nodiscard]] ModelSpec lenet_spec();

/// Build the DarkNet-like model with Kaiming-initialized weights.
[[nodiscard]] Sequential build_darknet_small(Rng& rng);
[[nodiscard]] ModelSpec darknet_small_spec();

/// Overwrite every conv/linear weight (and bias) of `model` with samples
/// from a Laplace(0, b) distribution — a "trained-like" weight synthesis
/// used where actually training would be too slow (DarkNet), per the
/// substitution table in DESIGN.md. `b` defaults to a magnitude typical of
/// trained convnets.
void fill_weights_trained_like(Sequential& model, Rng& rng, double b = 0.04);

/// Overwrite every conv/linear weight with Kaiming-uniform samples (the
/// paper's "randomly initialized weights" configuration).
void fill_weights_random(Sequential& model, Rng& rng);

}  // namespace nocbt::dnn
