#pragma once
// 2-D convolution with bias (direct algorithm), forward and backward.
//
// This layer is the main task source for the NOC-DNA platform: each output
// neuron (one output pixel of one output channel) becomes one task/packet
// carrying its kxkxC_in input window, the matching weights, and the bias
// (paper Fig. 2).

#include <string>

#include "common/rng.h"
#include "dnn/layer.h"

namespace nocbt::dnn {

class Conv2d final : public Layer {
 public:
  /// Kernel is square (k x k); `pad` is symmetric zero padding.
  Conv2d(std::int32_t in_channels, std::int32_t out_channels, std::int32_t kernel,
         std::int32_t stride = 1, std::int32_t pad = 0);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kConv2d;
  }
  [[nodiscard]] std::string name() const override;

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(Shape input) const override;

  /// Kaiming-uniform initialization (fan-in based), zero bias.
  void init_kaiming(Rng& rng);

  [[nodiscard]] std::int32_t in_channels() const noexcept { return in_channels_; }
  [[nodiscard]] std::int32_t out_channels() const noexcept { return out_channels_; }
  [[nodiscard]] std::int32_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::int32_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::int32_t pad() const noexcept { return pad_; }

  /// Weights, shape {out_channels, in_channels, kernel, kernel}.
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] Tensor& weight() noexcept { return weight_; }
  /// Bias, shape {out_channels, 1, 1, 1}.
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] Tensor& bias() noexcept { return bias_; }

 private:
  std::int32_t in_channels_;
  std::int32_t out_channels_;
  std::int32_t kernel_;
  std::int32_t stride_;
  std::int32_t pad_;
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;
};

}  // namespace nocbt::dnn
