#include "dnn/sgd.h"

namespace nocbt::dnn {

Sgd::Sgd(std::vector<ParamRef> params, Config config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i].value->data();
    auto grad = params_[i].grad->data();
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + config_.weight_decay * value[j];
      vel[j] = config_.momentum * vel[j] + g;
      value[j] -= config_.lr * vel[j];
      grad[j] = 0.0f;
    }
  }
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.grad->zero();
}

}  // namespace nocbt::dnn
