#pragma once
// Plain SGD with momentum and L2 weight decay.
//
// Weight decay matters here beyond accuracy: it concentrates trained
// weights near zero, which is precisely the distribution that makes the
// paper's fixed-8 popcount ordering so effective (Table I: 55.71%).

#include <vector>

#include "dnn/layer.h"

namespace nocbt::dnn {

class Sgd {
 public:
  struct Config {
    float lr = 0.05f;
    float momentum = 0.9f;
    float weight_decay = 1e-3f;
  };

  Sgd(std::vector<ParamRef> params, Config config);

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  /// Zero all parameter gradients without updating.
  void zero_grad();

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  void set_lr(float lr) noexcept { config_.lr = lr; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  Config config_;
};

}  // namespace nocbt::dnn
