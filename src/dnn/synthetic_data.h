#pragma once
// Deterministic synthetic classification dataset.
//
// Substitution for MNIST (see DESIGN.md): each of the 10 classes is a pair
// of oriented bright strokes on a black background; samples jitter the
// stroke offset, width, and brightness. Like MNIST digits, images are
// *sparse* (mostly exact zeros) — that sparsity matters to the paper's
// experiments, because zero-valued activations quantize to all-zero
// patterns whose grouping is a large part of the fixed-8 BT reduction.
// The task (orientation discrimination) is non-trivial yet learnable by
// LeNet-scale models in a few epochs, producing genuinely *trained*
// weights with the zero-concentrated distribution behind Table I.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dnn/tensor.h"

namespace nocbt::dnn {

/// A labeled batch: images {n, c, h, w} plus n class indices.
struct Batch {
  Tensor images;
  std::vector<std::int32_t> labels;
};

/// Generator for the stroke dataset.
class SyntheticDataset {
 public:
  struct Config {
    std::int32_t classes = 10;
    std::int32_t channels = 1;
    std::int32_t height = 32;
    std::int32_t width = 32;
    float stroke_sigma = 1.0f;   ///< Gaussian half-width of a stroke (px)
    float stroke_gap = 7.0f;     ///< distance between the two strokes (px)
    float noise_stddev = 0.05f;  ///< brightness noise on stroke pixels
  };

  SyntheticDataset(Config config, std::uint64_t seed);

  /// Sample a batch of `n` labeled images (labels uniform over classes).
  [[nodiscard]] Batch sample(std::int32_t n);

  /// Render one clean exemplar of `label` with the given stroke offset (in
  /// pixels, perpendicular to the strokes) — exposed for tests and for
  /// building deterministic inference inputs.
  [[nodiscard]] Tensor exemplar(std::int32_t label, float offset = 0.0f) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  Rng rng_;
};

}  // namespace nocbt::dnn
