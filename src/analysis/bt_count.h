#pragma once
// Flitization of value streams and bit-transition counting over flit
// sequences — the measurement core of the no-NoC experiments (Table I).

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.h"
#include "common/data_format.h"

namespace nocbt::analysis {

/// Pack a pattern stream into flits of `values_per_flit` slots of
/// `value_bits(format)` bits each (slot v at bit offset v * value_bits).
/// The last flit is zero-padded.
[[nodiscard]] std::vector<BitVec> flitize(std::span<const std::uint32_t> patterns,
                                          DataFormat format,
                                          unsigned values_per_flit);

/// BT tally over a flit sequence traversing one link back to back.
struct StreamBt {
  std::uint64_t total_bt = 0;   ///< sum over consecutive flit pairs
  std::uint64_t flit_pairs = 0; ///< number of consecutive pairs compared
  [[nodiscard]] double bt_per_flit() const noexcept {
    return flit_pairs ? static_cast<double>(total_bt) / flit_pairs : 0.0;
  }
};

/// Count transitions between consecutive flits (the paper's "BTs between
/// two consecutive flits"; the initial wire state is not charged). The
/// tally rides BitVec's word-packed XOR+popcount path.
[[nodiscard]] StreamBt stream_bt(std::span<const BitVec> flits);

/// Naive per-bit reference implementation of stream_bt, retained so
/// differential tests can pin the word-packed path (including
/// non-multiple-of-64 flit widths) and micro_ordering can benchmark the
/// two against each other. Requires all flits to share one width.
[[nodiscard]] StreamBt stream_bt_reference(std::span<const BitVec> flits);

/// Convenience: flitize then count.
[[nodiscard]] StreamBt pattern_stream_bt(std::span<const std::uint32_t> patterns,
                                         DataFormat format,
                                         unsigned values_per_flit);

}  // namespace nocbt::analysis
