#include "analysis/bit_stats.h"

#include <stdexcept>

namespace nocbt::analysis {

std::vector<double> one_probability_per_bit(
    std::span<const std::uint32_t> patterns, DataFormat format) {
  const unsigned bits = value_bits(format);
  std::vector<std::uint64_t> ones(bits, 0);
  for (const std::uint32_t p : patterns)
    for (unsigned b = 0; b < bits; ++b)
      if ((p >> b) & 1u) ++ones[b];

  std::vector<double> out(bits, 0.0);
  if (patterns.empty()) return out;
  for (unsigned b = 0; b < bits; ++b)
    out[bits - 1 - b] =  // MSB-first presentation
        static_cast<double>(ones[b]) / static_cast<double>(patterns.size());
  return out;
}

std::vector<double> transition_probability_per_bit(
    std::span<const std::uint32_t> patterns, DataFormat format,
    unsigned values_per_flit) {
  if (values_per_flit == 0)
    throw std::invalid_argument("transition_probability_per_bit: zero lane count");
  const unsigned bits = value_bits(format);
  std::vector<std::uint64_t> flips(bits, 0);
  std::uint64_t comparisons = 0;

  // Lane l of flit f holds patterns[f * values_per_flit + l]; compare each
  // lane across consecutive flits. Ragged tails (missing lanes in the last
  // flit) are treated as zero-padded, matching flitize().
  const std::size_t num_flits =
      (patterns.size() + values_per_flit - 1) / values_per_flit;
  for (std::size_t f = 1; f < num_flits; ++f) {
    for (unsigned l = 0; l < values_per_flit; ++l) {
      const std::size_t prev_idx = (f - 1) * values_per_flit + l;
      const std::size_t cur_idx = f * values_per_flit + l;
      const std::uint32_t prev =
          prev_idx < patterns.size() ? patterns[prev_idx] : 0u;
      const std::uint32_t cur =
          cur_idx < patterns.size() ? patterns[cur_idx] : 0u;
      const std::uint32_t diff = prev ^ cur;
      for (unsigned b = 0; b < bits; ++b)
        if ((diff >> b) & 1u) ++flips[b];
      ++comparisons;
    }
  }

  std::vector<double> out(bits, 0.0);
  if (comparisons == 0) return out;
  for (unsigned b = 0; b < bits; ++b)
    out[bits - 1 - b] =
        static_cast<double>(flips[b]) / static_cast<double>(comparisons);
  return out;
}

}  // namespace nocbt::analysis
