#pragma once
// Per-bit-position statistics behind Figs. 10-11: the probability of a '1'
// at each bit position of the transmitted values, and the probability of a
// transition at each position between corresponding value lanes of
// consecutive flits.
//
// Bit positions are reported MSB-first (index 0 = sign bit for float-32),
// matching the figures' x-axes.

#include <cstdint>
#include <span>
#include <vector>

#include "common/data_format.h"

namespace nocbt::analysis {

/// P('1' at position b), b = 0 is the MSB. Computed over all patterns.
[[nodiscard]] std::vector<double> one_probability_per_bit(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// P(transition at position b) between value lane slots of consecutive
/// flits: the pattern stream is grouped into flits of `values_per_flit`
/// slots; for each consecutive flit pair and each lane the per-bit XOR is
/// tallied. b = 0 is the MSB.
[[nodiscard]] std::vector<double> transition_probability_per_bit(
    std::span<const std::uint32_t> patterns, DataFormat format,
    unsigned values_per_flit);

}  // namespace nocbt::analysis
