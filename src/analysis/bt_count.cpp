#include "analysis/bt_count.h"

#include <stdexcept>

namespace nocbt::analysis {

std::vector<BitVec> flitize(std::span<const std::uint32_t> patterns,
                            DataFormat format, unsigned values_per_flit) {
  const unsigned bits = value_bits(format);
  const unsigned flit_width = bits * values_per_flit;
  std::vector<BitVec> flits;
  if (patterns.empty() || values_per_flit == 0) return flits;
  flits.reserve((patterns.size() + values_per_flit - 1) / values_per_flit);

  for (std::size_t start = 0; start < patterns.size();
       start += values_per_flit) {
    BitVec flit(flit_width);
    const std::size_t len =
        std::min<std::size_t>(values_per_flit, patterns.size() - start);
    for (std::size_t v = 0; v < len; ++v)
      flit.set_field(static_cast<unsigned>(v) * bits, bits,
                     patterns[start + v]);
    flits.push_back(std::move(flit));
  }
  return flits;
}

StreamBt stream_bt(std::span<const BitVec> flits) {
  StreamBt out;
  for (std::size_t i = 1; i < flits.size(); ++i) {
    out.total_bt +=
        static_cast<std::uint64_t>(flits[i - 1].transitions_to(flits[i]));
    ++out.flit_pairs;
  }
  return out;
}

StreamBt stream_bt_reference(std::span<const BitVec> flits) {
  StreamBt out;
  for (std::size_t i = 1; i < flits.size(); ++i) {
    const BitVec& prev = flits[i - 1];
    const BitVec& cur = flits[i];
    if (prev.width() != cur.width())
      throw std::invalid_argument("stream_bt_reference: mixed flit widths");
    std::uint64_t flips = 0;
    for (unsigned b = 0; b < cur.width(); ++b)
      flips += prev.get_bit(b) != cur.get_bit(b);
    out.total_bt += flips;
    ++out.flit_pairs;
  }
  return out;
}

StreamBt pattern_stream_bt(std::span<const std::uint32_t> patterns,
                           DataFormat format, unsigned values_per_flit) {
  const auto flits = flitize(patterns, format, values_per_flit);
  return stream_bt(flits);
}

}  // namespace nocbt::analysis
