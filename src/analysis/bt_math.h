#pragma once
// The paper's analytic BT model (§III-A, Eqs. 1-3) and the Fig. 1 surface.
//
// Model: two W-bit numbers with x and y '1'-bits, bit positions i.i.d.
// uniform. P(transition on one wire) = 1 - P(both 0) - P(both 1)
// = 1 - (W-x)(W-y)/W^2 - xy/W^2, and E[BT] = W * P = x + y - 2xy/W.
// For W = 32 this is Eq. 2's  x + y - xy/16.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace nocbt::analysis {

/// Per-wire transition probability (Eq. 1 generalized to width W).
[[nodiscard]] double transition_probability(int x, int y, int width);

/// Expected bit transitions between two W-bit numbers (Eq. 2).
[[nodiscard]] double expected_bt(int x, int y, int width);

/// Expected total BT between two flits of N numbers each (Eq. 3):
/// sum(x) + sum(y) - 2 * sum(x_i y_i) / W.
[[nodiscard]] double expected_flit_bt(std::span<const int> x,
                                      std::span<const int> y, int width);

/// The Fig. 1 surface: expected_bt for every (x, y) in [0, width]^2.
/// Element [x][y] of the returned grid.
[[nodiscard]] std::vector<std::vector<double>> expectation_surface(int width);

/// Monte-Carlo estimate of E[BT] under the model's assumptions: place x
/// (resp. y) ones uniformly at random among `width` positions and count
/// actual transitions; average over `trials`. Tests use this to validate
/// the closed form.
[[nodiscard]] double monte_carlo_expected_bt(int x, int y, int width,
                                             int trials, Rng& rng);

}  // namespace nocbt::analysis
