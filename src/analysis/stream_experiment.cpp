#include "analysis/stream_experiment.h"

#include <stdexcept>

#include "analysis/bt_count.h"
#include "common/float_bits.h"
#include "ordering/ordering.h"

namespace nocbt::analysis {

PatternStream make_patterns(std::span<const float> values, DataFormat format,
                            unsigned fixed_bits) {
  PatternStream out;
  out.patterns.reserve(values.size());
  if (format == DataFormat::kFloat32) {
    for (const float v : values) out.patterns.push_back(float_to_bits(v));
  } else {
    out.codec = FixedPointCodec::calibrate(fixed_bits, values);
    for (const float v : values)
      out.patterns.push_back(out.codec->quantize_to_pattern(v));
  }
  return out;
}

std::vector<std::uint32_t> tile_patterns(
    std::span<const std::uint32_t> patterns, std::size_t count) {
  if (patterns.empty())
    throw std::invalid_argument("tile_patterns: empty source stream");
  std::vector<std::uint32_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::size_t take = std::min(patterns.size(), count - out.size());
    out.insert(out.end(), patterns.begin(),
               patterns.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

StreamExperimentResult run_stream_experiment(
    std::span<const float> values, const StreamExperimentConfig& config) {
  if (config.values_per_flit == 0 || config.flits_per_packet == 0 ||
      config.num_packets == 0)
    throw std::invalid_argument("run_stream_experiment: degenerate config");

  const std::size_t window =
      static_cast<std::size_t>(config.values_per_flit) * config.flits_per_packet;
  const std::size_t total_values = window * config.num_packets;

  const PatternStream source = make_patterns(values, config.format,
                                             config.fixed_bits);
  const auto stream = tile_patterns(source.patterns, total_values);
  const auto ordered = ordering::order_stream_descending(
      stream, config.format, window);

  const StreamBt baseline =
      pattern_stream_bt(stream, config.format, config.values_per_flit);
  const StreamBt treated =
      pattern_stream_bt(ordered, config.format, config.values_per_flit);

  StreamExperimentResult result;
  result.baseline_bt_per_flit = baseline.bt_per_flit();
  result.ordered_bt_per_flit = treated.bt_per_flit();
  result.flits = baseline.flit_pairs + 1;
  result.flit_bits = value_bits(config.format) * config.values_per_flit;
  return result;
}

}  // namespace nocbt::analysis
