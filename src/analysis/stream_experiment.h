#pragma once
// The "BT reduction without NoC" experiment (§V-A, Table I): generate
// packets from a real weight stream, order each packet's values by
// descending popcount, and compare bit transitions between consecutive
// flits against the unordered baseline.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/data_format.h"
#include "common/fixed_point.h"

namespace nocbt::analysis {

/// Configuration of one Table I row. Defaults mirror the paper: 8 values
/// per flit and 10,000 packets.
struct StreamExperimentConfig {
  DataFormat format = DataFormat::kFloat32;
  unsigned values_per_flit = 8;
  unsigned flits_per_packet = 32;  ///< ordering window, in flits
  std::size_t num_packets = 10'000;
  unsigned fixed_bits = 8;  ///< quantizer width when format == kFixed8
};

/// Result of one experiment run.
struct StreamExperimentResult {
  double baseline_bt_per_flit = 0.0;
  double ordered_bt_per_flit = 0.0;
  std::uint64_t flits = 0;          ///< flits measured (per variant)
  unsigned flit_bits = 0;           ///< link width used
  [[nodiscard]] double reduction() const noexcept {
    return baseline_bt_per_flit > 0.0
               ? 1.0 - ordered_bt_per_flit / baseline_bt_per_flit
               : 0.0;
  }
};

/// Convert a float value stream to transmit patterns. For fixed-8 the codec
/// is calibrated symmetrically on the stream (max-abs); it is returned so
/// callers can reuse the same quantization.
struct PatternStream {
  std::vector<std::uint32_t> patterns;
  std::optional<FixedPointCodec> codec;  ///< set for fixed-point formats
};
[[nodiscard]] PatternStream make_patterns(std::span<const float> values,
                                          DataFormat format,
                                          unsigned fixed_bits = 8);

/// Tile `patterns` (repeating from the start) until it holds exactly
/// `count` entries.
[[nodiscard]] std::vector<std::uint32_t> tile_patterns(
    std::span<const std::uint32_t> patterns, std::size_t count);

/// Run the full Table I experiment on a weight stream.
[[nodiscard]] StreamExperimentResult run_stream_experiment(
    std::span<const float> values, const StreamExperimentConfig& config);

}  // namespace nocbt::analysis
