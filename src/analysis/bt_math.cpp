#include "analysis/bt_math.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nocbt::analysis {

double transition_probability(int x, int y, int width) {
  if (width <= 0 || x < 0 || y < 0 || x > width || y > width)
    throw std::invalid_argument("transition_probability: counts out of range");
  const double w = width;
  return 1.0 - ((w - x) * (w - y)) / (w * w) - (static_cast<double>(x) * y) / (w * w);
}

double expected_bt(int x, int y, int width) {
  return width * transition_probability(x, y, width);
}

double expected_flit_bt(std::span<const int> x, std::span<const int> y,
                        int width) {
  if (x.size() != y.size())
    throw std::invalid_argument("expected_flit_bt: length mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    total += expected_bt(x[i], y[i], width);
  return total;
}

std::vector<std::vector<double>> expectation_surface(int width) {
  std::vector<std::vector<double>> grid(
      static_cast<std::size_t>(width) + 1,
      std::vector<double>(static_cast<std::size_t>(width) + 1, 0.0));
  for (int x = 0; x <= width; ++x)
    for (int y = 0; y <= width; ++y)
      grid[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] =
          expected_bt(x, y, width);
  return grid;
}

double monte_carlo_expected_bt(int x, int y, int width, int trials, Rng& rng) {
  std::vector<int> positions(static_cast<std::size_t>(width));
  std::iota(positions.begin(), positions.end(), 0);

  std::int64_t total = 0;
  std::vector<bool> a(static_cast<std::size_t>(width));
  std::vector<bool> b(static_cast<std::size_t>(width));
  for (int t = 0; t < trials; ++t) {
    std::fill(a.begin(), a.end(), false);
    std::fill(b.begin(), b.end(), false);
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    for (int i = 0; i < x; ++i) a[static_cast<std::size_t>(positions[i])] = true;
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    for (int i = 0; i < y; ++i) b[static_cast<std::size_t>(positions[i])] = true;
    for (int i = 0; i < width; ++i)
      total += a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(total) / trials;
}

}  // namespace nocbt::analysis
