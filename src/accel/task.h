#pragma once
// Per-neuron task extraction (paper Fig. 2: "contents of one task" = one
// output neuron's kxk(xC) input window, matching weights, and bias).

#include <cstdint>
#include <vector>

#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/tensor.h"

namespace nocbt::accel {

/// One neuron computation shipped as one packet.
struct NeuronTask {
  std::int32_t layer_index = 0;
  std::int32_t output_index = 0;  ///< flat index in the layer output (n=1)
  std::vector<float> inputs;      ///< input window (conv padding as 0.0f)
  std::vector<float> weights;     ///< matching kernel/row values
  float bias = 0.0f;
};

/// All tasks of a convolution layer on a single-image input (n == 1):
/// one task per (out_channel, out_y, out_x), window flattened in
/// (in_channel, ky, kx) order, output_index = (oc * OH + oh) * OW + ow.
[[nodiscard]] std::vector<NeuronTask> extract_conv_tasks(
    const dnn::Conv2d& layer, const dnn::Tensor& input,
    std::int32_t layer_index);

/// All tasks of a fully-connected layer (one per output neuron).
[[nodiscard]] std::vector<NeuronTask> extract_linear_tasks(
    const dnn::Linear& layer, const dnn::Tensor& input,
    std::int32_t layer_index);

/// Reference result: bias + sum(inputs[i] * weights[i]) in double.
[[nodiscard]] double task_reference_result(const NeuronTask& task);

}  // namespace nocbt::accel
