#include "accel/mapping.h"

#include <algorithm>
#include <stdexcept>

namespace nocbt::accel {

std::vector<std::int32_t> memory_controller_nodes(const noc::MeshShape& shape,
                                                  std::int32_t num_mcs) {
  if (num_mcs < 1 || num_mcs >= shape.node_count())
    throw std::invalid_argument("memory_controller_nodes: bad MC count");

  const std::int32_t west = (num_mcs + 1) / 2;
  const std::int32_t east = num_mcs - west;
  std::vector<std::int32_t> mcs;
  mcs.reserve(static_cast<std::size_t>(num_mcs));

  auto spread_rows = [&](std::int32_t count, std::int32_t col) {
    for (std::int32_t i = 0; i < count; ++i) {
      const std::int32_t row =
          static_cast<std::int32_t>((i + 0.5) * shape.rows() / count);
      mcs.push_back(shape.node_at(noc::Coord{col, std::min(row, shape.rows() - 1)}));
    }
  };
  spread_rows(west, 0);
  if (east > 0) spread_rows(east, shape.cols() - 1);

  std::sort(mcs.begin(), mcs.end());
  mcs.erase(std::unique(mcs.begin(), mcs.end()), mcs.end());
  if (static_cast<std::int32_t>(mcs.size()) != num_mcs)
    throw std::invalid_argument(
        "memory_controller_nodes: mesh too small for requested MC count");
  return mcs;
}

std::vector<std::size_t> nearest_mc_index(const noc::MeshShape& shape,
                                          const NodeRoles& roles) {
  std::vector<std::size_t> nearest(static_cast<std::size_t>(shape.node_count()),
                                   0);
  for (std::int32_t node = 0; node < shape.node_count(); ++node) {
    std::int32_t best_dist = shape.rows() + shape.cols() + 1;
    for (std::size_t m = 0; m < roles.mcs.size(); ++m) {
      const std::int32_t dist = shape.manhattan(node, roles.mcs[m]);
      if (dist < best_dist) {
        best_dist = dist;
        nearest[static_cast<std::size_t>(node)] = m;
      }
    }
  }
  return nearest;
}

NodeRoles assign_roles(const noc::MeshShape& shape, std::int32_t num_mcs) {
  NodeRoles roles;
  roles.mcs = memory_controller_nodes(shape, num_mcs);
  roles.pes.reserve(
      static_cast<std::size_t>(shape.node_count() - num_mcs));
  for (std::int32_t node = 0; node < shape.node_count(); ++node) {
    if (!std::binary_search(roles.mcs.begin(), roles.mcs.end(), node))
      roles.pes.push_back(node);
  }
  return roles;
}

}  // namespace nocbt::accel
