#pragma once
// Node role assignment: which mesh nodes host memory controllers (with
// their ordering units, paper Fig. 6) and which host processing elements.
//
// MC placement follows Fig. 6: controllers sit on the west and east edges,
// rows spread evenly (4x4 with 2 MCs -> nodes 8 and 11, exactly the R8/R11
// placement drawn in the paper).

#include <cstdint>
#include <vector>

#include "noc/routing.h"

namespace nocbt::accel {

/// Partition of mesh nodes into memory controllers and processing elements.
struct NodeRoles {
  std::vector<std::int32_t> mcs;
  std::vector<std::int32_t> pes;
};

/// MC nodes for a mesh: ceil(n/2) on the west edge, the rest on the east
/// edge, rows chosen as floor((i + 0.5) * rows / per_side).
[[nodiscard]] std::vector<std::int32_t> memory_controller_nodes(
    const noc::MeshShape& shape, std::int32_t num_mcs);

/// Roles for every node (PEs = everything that is not an MC).
[[nodiscard]] NodeRoles assign_roles(const noc::MeshShape& shape,
                                     std::int32_t num_mcs);

/// For every mesh node, the index (into roles.mcs) of its nearest memory
/// controller (Manhattan distance). Ties break to the lower MC *index*,
/// i.e. the earlier entry of roles.mcs — with memory_controller_nodes'
/// west-before-east ordering an equidistant node is served by a west-edge
/// controller (and among same-edge candidates, the lower row). The rule is
/// load-bearing on non-square meshes: on a 1xN chain with MCs at both
/// ends, the exact middle node goes west; on a 2-row mesh a node
/// equidistant between the two rows' controllers goes to the lower row.
/// Memory traffic is served by the closest controller, so fewer MCs per
/// mesh means longer routes — the effect behind Fig. 12's "more routers
/// per MC increase the hops".
[[nodiscard]] std::vector<std::size_t> nearest_mc_index(
    const noc::MeshShape& shape, const NodeRoles& roles);

}  // namespace nocbt::accel
