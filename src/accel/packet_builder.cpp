#include "accel/packet_builder.h"

#include <stdexcept>

#include "common/bitops.h"
#include "ordering/strategy.h"

namespace nocbt::accel {

BuiltPacket build_task_packet(const NeuronTask& task,
                              const LayerCodecs& codecs,
                              ordering::OrderingMode mode,
                              const FlitLayout& layout,
                              bool embed_pairing_index) {
  if (task.inputs.size() != task.weights.size())
    throw std::invalid_argument("build_task_packet: unpaired task");
  const auto n = static_cast<std::uint32_t>(task.weights.size());
  const DataFormat format = codecs.weights.format();

  std::vector<std::uint32_t> input_patterns;
  std::vector<std::uint32_t> weight_patterns;
  input_patterns.reserve(n);
  weight_patterns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    input_patterns.push_back(codecs.inputs.encode(task.inputs[i]));
    weight_patterns.push_back(codecs.weights.encode(task.weights[i]));
  }
  const std::uint32_t bias_pattern = codecs.bias.encode(task.bias);

  BuiltPacket out;
  out.meta.layer_index = task.layer_index;
  out.meta.output_index = task.output_index;
  out.meta.n_pairs = n;
  out.meta.has_bias = true;
  out.meta.mode = mode;
  out.meta.index_embedded = false;

  if (!ordering::mode_is_baseline(mode)) {
    // The mode's registered strategy supplies the permutation; O1 and O2
    // resolve to the paper's popcount sort, the other modes to their own
    // strategies (chain, bucket, hybrid, ...).
    const ordering::OrderingStrategy& strategy = ordering::mode_strategy(mode);
    if (ordering::mode_is_separated(mode)) {
      const auto weight_perm = strategy.order(
          std::span<const std::uint32_t>(weight_patterns), format);
      const auto input_perm = strategy.order(
          std::span<const std::uint32_t>(input_patterns), format);
      out.meta.pair_index =
          ordering::separated_pairing_index(weight_perm, input_perm);
      weight_patterns = ordering::apply_permutation(
          std::span<const std::uint32_t>(weight_patterns), weight_perm);
      input_patterns = ordering::apply_permutation(
          std::span<const std::uint32_t>(input_patterns), input_perm);
    } else {
      // Affiliated pairing: pairs move together, keyed on the weights.
      const auto perm = strategy.order(
          std::span<const std::uint32_t>(weight_patterns), format);
      weight_patterns = ordering::apply_permutation(
          std::span<const std::uint32_t>(weight_patterns), perm);
      input_patterns = ordering::apply_permutation(
          std::span<const std::uint32_t>(input_patterns), perm);
    }
  }

  out.payloads =
      pack_half_half(input_patterns, weight_patterns, bias_pattern, layout);
  out.meta.data_flits = static_cast<std::uint32_t>(out.payloads.size());

  if (mode == ordering::OrderingMode::kSeparated && embed_pairing_index) {
    out.meta.index_embedded = true;
    const auto index_flits = pack_index_flits(
        out.meta.pair_index, index_bits(n), layout.flit_bits());
    out.meta.index_flits = static_cast<std::uint32_t>(index_flits.size());
    out.payloads.insert(out.payloads.end(), index_flits.begin(),
                        index_flits.end());
  }
  return out;
}

UnpackedTask decode_task_packet(std::span<const BitVec> payloads,
                                const TaskMeta& meta, const FlitLayout& layout,
                                std::vector<std::uint32_t>* pair_index_out) {
  if (payloads.size() != meta.data_flits + meta.index_flits)
    throw std::invalid_argument("decode_task_packet: flit count mismatch");
  UnpackedTask task = unpack_half_half(payloads.first(meta.data_flits),
                                       meta.n_pairs, meta.has_bias, layout);
  if (pair_index_out) {
    if (meta.index_embedded) {
      *pair_index_out =
          unpack_index_flits(payloads.subspan(meta.data_flits), meta.n_pairs,
                             index_bits(meta.n_pairs));
    } else {
      *pair_index_out = meta.pair_index;  // sideband delivery
    }
  }
  return task;
}

double compute_task_output(const UnpackedTask& task,
                           std::span<const std::uint32_t> pair_index,
                           const LayerCodecs& codecs,
                           ordering::OrderingMode mode) {
  const bool separated = mode == ordering::OrderingMode::kSeparated;
  if (separated && pair_index.size() != task.weights.size())
    throw std::invalid_argument("compute_task_output: bad pairing index");

  double result;
  if (codecs.weights.format() == DataFormat::kFloat32) {
    double acc = 0.0;
    for (std::size_t i = 0; i < task.weights.size(); ++i) {
      const std::size_t j = separated ? pair_index[i] : i;
      acc += static_cast<double>(codecs.weights.decode(task.weights[i])) *
             codecs.inputs.decode(task.inputs[j]);
    }
    result = acc + (task.bias ? codecs.bias.decode(*task.bias) : 0.0f);
  } else {
    // Exact integer MAC: order-invariant by construction.
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < task.weights.size(); ++i) {
      const std::size_t j = separated ? pair_index[i] : i;
      acc += static_cast<std::int64_t>(codecs.weights.code(task.weights[i])) *
             codecs.inputs.code(task.inputs[j]);
    }
    result = static_cast<double>(acc) * codecs.weights.scale() *
             codecs.inputs.scale();
    if (task.bias)
      result += codecs.bias.decode(*task.bias);
  }
  return result;
}

}  // namespace nocbt::accel
