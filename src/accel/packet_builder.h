#pragma once
// Task -> packet construction with transmission ordering applied (§IV).
//
// O0 keeps natural order; O1 (affiliated) sorts (weight, input) pairs by
// the weight's popcount; O2 (separated) sorts weights and inputs each by
// their own popcount and produces the pairing index needed at the PE. The
// pairing index travels as sideband metadata by default (the paper's
// "minimal-bit-width index"), or in-band as extra payload flits when
// `embed_pairing_index` is set (ablation A2).

#include <cstdint>
#include <vector>

#include "accel/flitization.h"
#include "accel/value_codec.h"
#include "accel/task.h"
#include "ordering/ordering.h"

namespace nocbt::accel {

/// Sideband metadata describing a data packet (registered per packet id).
struct TaskMeta {
  std::int32_t layer_index = 0;
  std::int32_t output_index = 0;
  std::int32_t src_mc = -1;
  std::int32_t dst_pe = -1;
  std::uint32_t n_pairs = 0;
  bool has_bias = true;
  ordering::OrderingMode mode = ordering::OrderingMode::kBaseline;
  bool index_embedded = false;
  std::uint32_t data_flits = 0;   ///< payload flits holding values
  std::uint32_t index_flits = 0;  ///< extra flits holding the pairing index
  /// O2 only: pairing index (sideband copy even when embedded, for checks).
  std::vector<std::uint32_t> pair_index;
};

/// A packet ready for injection.
struct BuiltPacket {
  std::vector<BitVec> payloads;
  TaskMeta meta;
};

/// Encode, order, and flitize one task.
[[nodiscard]] BuiltPacket build_task_packet(const NeuronTask& task,
                                            const LayerCodecs& codecs,
                                            ordering::OrderingMode mode,
                                            const FlitLayout& layout,
                                            bool embed_pairing_index = false);

/// PE-side decode: recover patterns (and the pairing index if embedded).
[[nodiscard]] UnpackedTask decode_task_packet(
    std::span<const BitVec> payloads, const TaskMeta& meta,
    const FlitLayout& layout, std::vector<std::uint32_t>* pair_index_out);

/// PE-side compute: exact integer MAC for fixed formats (order-invariant),
/// double accumulation for float-32. Handles O2 re-pairing via the index.
[[nodiscard]] double compute_task_output(const UnpackedTask& task,
                                         std::span<const std::uint32_t> pair_index,
                                         const LayerCodecs& codecs,
                                         ordering::OrderingMode mode);

}  // namespace nocbt::accel
