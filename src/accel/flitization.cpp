#include "accel/flitization.h"

#include <stdexcept>

namespace nocbt::accel {
namespace {

void check_layout(const FlitLayout& layout) {
  if (layout.values_per_flit == 0 || layout.values_per_flit % 2 != 0)
    throw std::invalid_argument("FlitLayout: values_per_flit must be even > 0");
  if (layout.value_bits == 0 || layout.value_bits > 32)
    throw std::invalid_argument("FlitLayout: value_bits must be in [1, 32]");
}

}  // namespace

BiasSlot bias_position(std::uint32_t n_pairs, const FlitLayout& layout) {
  const std::uint32_t half = layout.half();
  const std::uint32_t pair_flits = n_pairs == 0 ? 0 : (n_pairs + half - 1) / half;
  if (pair_flits == 0) return BiasSlot{0, 0};
  const std::uint32_t used_in_last = n_pairs - (pair_flits - 1) * half;
  if (used_in_last < half)
    return BiasSlot{pair_flits - 1, used_in_last};  // left half, after inputs
  // Left half of the last flit is full (pairs fill both halves): the bias
  // opens a fresh flit.
  return BiasSlot{pair_flits, 0};
}

std::uint32_t flits_needed(std::uint32_t n_pairs, bool has_bias,
                           const FlitLayout& layout) {
  const std::uint32_t half = layout.half();
  const std::uint32_t pair_flits = n_pairs == 0 ? 0 : (n_pairs + half - 1) / half;
  if (!has_bias) return pair_flits ? pair_flits : 1;
  return std::max(pair_flits, bias_position(n_pairs, layout).flit + 1);
}

std::vector<BitVec> pack_half_half(std::span<const std::uint32_t> inputs,
                                   std::span<const std::uint32_t> weights,
                                   std::optional<std::uint32_t> bias,
                                   const FlitLayout& layout) {
  check_layout(layout);
  if (inputs.size() != weights.size())
    throw std::invalid_argument("pack_half_half: inputs/weights size mismatch");
  if (inputs.empty() && !bias)
    throw std::invalid_argument("pack_half_half: nothing to pack");

  const auto n_pairs = static_cast<std::uint32_t>(inputs.size());
  const std::uint32_t half = layout.half();
  const std::uint32_t total_flits =
      flits_needed(n_pairs, bias.has_value(), layout);

  std::vector<BitVec> flits(total_flits, BitVec(layout.flit_bits()));
  for (std::uint32_t j = 0; j < n_pairs; ++j) {
    const std::uint32_t f = j / half;
    const std::uint32_t s = j % half;
    flits[f].set_field(layout.slot_offset(s), layout.value_bits, inputs[j]);
    flits[f].set_field(layout.slot_offset(half + s), layout.value_bits,
                       weights[j]);
  }
  if (bias) {
    const BiasSlot pos = bias_position(n_pairs, layout);
    flits[pos.flit].set_field(layout.slot_offset(pos.slot), layout.value_bits,
                              *bias);
  }
  return flits;
}

UnpackedTask unpack_half_half(std::span<const BitVec> payloads,
                              std::uint32_t n_pairs, bool has_bias,
                              const FlitLayout& layout) {
  check_layout(layout);
  if (payloads.size() < flits_needed(n_pairs, has_bias, layout))
    throw std::invalid_argument("unpack_half_half: too few payload flits");

  const std::uint32_t half = layout.half();
  UnpackedTask out;
  out.inputs.reserve(n_pairs);
  out.weights.reserve(n_pairs);
  for (std::uint32_t j = 0; j < n_pairs; ++j) {
    const std::uint32_t f = j / half;
    const std::uint32_t s = j % half;
    out.inputs.push_back(static_cast<std::uint32_t>(
        payloads[f].get_field(layout.slot_offset(s), layout.value_bits)));
    out.weights.push_back(static_cast<std::uint32_t>(payloads[f].get_field(
        layout.slot_offset(half + s), layout.value_bits)));
  }
  if (has_bias) {
    const BiasSlot pos = bias_position(n_pairs, layout);
    out.bias = static_cast<std::uint32_t>(payloads[pos.flit].get_field(
        layout.slot_offset(pos.slot), layout.value_bits));
  }
  return out;
}

std::vector<BitVec> pack_index_flits(std::span<const std::uint32_t> indices,
                                     unsigned bits_per_index,
                                     unsigned flit_bits) {
  if (bits_per_index == 0 || bits_per_index > 32)
    throw std::invalid_argument("pack_index_flits: bad index width");
  if (flit_bits < bits_per_index)
    throw std::invalid_argument("pack_index_flits: flit narrower than index");
  std::vector<BitVec> flits;
  const unsigned per_flit = flit_bits / bits_per_index;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i % per_flit == 0) flits.emplace_back(flit_bits);
    flits.back().set_field(static_cast<unsigned>(i % per_flit) * bits_per_index,
                           bits_per_index, indices[i]);
  }
  return flits;
}

std::vector<std::uint32_t> unpack_index_flits(std::span<const BitVec> payloads,
                                              std::size_t count,
                                              unsigned bits_per_index) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (payloads.empty()) {
    if (count) throw std::invalid_argument("unpack_index_flits: no payloads");
    return out;
  }
  const unsigned per_flit = payloads.front().width() / bits_per_index;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t f = i / per_flit;
    if (f >= payloads.size())
      throw std::invalid_argument("unpack_index_flits: too few payloads");
    out.push_back(static_cast<std::uint32_t>(payloads[f].get_field(
        static_cast<unsigned>(i % per_flit) * bits_per_index,
        bits_per_index)));
  }
  return out;
}

}  // namespace nocbt::accel
