#include "accel/task.h"

#include <stdexcept>

namespace nocbt::accel {

std::vector<NeuronTask> extract_conv_tasks(const dnn::Conv2d& layer,
                                           const dnn::Tensor& input,
                                           std::int32_t layer_index) {
  const dnn::Shape in = input.shape();
  if (in.n != 1)
    throw std::invalid_argument("extract_conv_tasks: batch must be 1");
  if (in.c != layer.in_channels())
    throw std::invalid_argument("extract_conv_tasks: channel mismatch");

  const dnn::Shape out = layer.output_shape(in);
  const std::int32_t k = layer.kernel();
  const std::int32_t stride = layer.stride();
  const std::int32_t pad = layer.pad();
  const std::size_t window =
      static_cast<std::size_t>(layer.in_channels()) * k * k;

  std::vector<NeuronTask> tasks;
  tasks.reserve(static_cast<std::size_t>(out.c) * out.h * out.w);

  // Position-major emission (output channel innermost): the controller
  // reads each input window once and pairs it with every kernel — the
  // output-stationary dataflow of NoC DNN accelerators. Consecutive
  // packets therefore carry *different* kernels, which is the weight
  // diversity the transmission ordering canonicalizes.
  for (std::int32_t oh = 0; oh < out.h; ++oh) {
    for (std::int32_t ow = 0; ow < out.w; ++ow) {
      for (std::int32_t oc = 0; oc < out.c; ++oc) {
        NeuronTask task;
        task.layer_index = layer_index;
        task.output_index = (oc * out.h + oh) * out.w + ow;
        task.bias = layer.bias().at(oc, 0, 0, 0);
        task.inputs.reserve(window);
        task.weights.reserve(window);
        for (std::int32_t ic = 0; ic < layer.in_channels(); ++ic) {
          for (std::int32_t kh = 0; kh < k; ++kh) {
            for (std::int32_t kw = 0; kw < k; ++kw) {
              const std::int32_t ih = oh * stride - pad + kh;
              const std::int32_t iw = ow * stride - pad + kw;
              const bool inside =
                  ih >= 0 && ih < in.h && iw >= 0 && iw < in.w;
              task.inputs.push_back(inside ? input.at(0, ic, ih, iw) : 0.0f);
              task.weights.push_back(layer.weight().at(oc, ic, kh, kw));
            }
          }
        }
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

std::vector<NeuronTask> extract_linear_tasks(const dnn::Linear& layer,
                                             const dnn::Tensor& input,
                                             std::int32_t layer_index) {
  const dnn::Shape in = input.shape();
  if (in.n != 1)
    throw std::invalid_argument("extract_linear_tasks: batch must be 1");
  const std::int32_t features = in.c * in.h * in.w;
  if (features != layer.in_features())
    throw std::invalid_argument("extract_linear_tasks: feature mismatch");

  const auto flat = input.data();
  std::vector<NeuronTask> tasks;
  tasks.reserve(static_cast<std::size_t>(layer.out_features()));
  for (std::int32_t o = 0; o < layer.out_features(); ++o) {
    NeuronTask task;
    task.layer_index = layer_index;
    task.output_index = o;
    task.bias = layer.bias().at(o, 0, 0, 0);
    task.inputs.assign(flat.begin(), flat.end());
    task.weights.reserve(static_cast<std::size_t>(features));
    for (std::int32_t i = 0; i < features; ++i)
      task.weights.push_back(layer.weight().at(o, i, 0, 0));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

double task_reference_result(const NeuronTask& task) {
  double acc = task.bias;
  for (std::size_t i = 0; i < task.inputs.size(); ++i)
    acc += static_cast<double>(task.inputs[i]) * task.weights[i];
  return acc;
}

}  // namespace nocbt::accel
