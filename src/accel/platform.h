#pragma once
// NocDnaPlatform: the full NOC-DNA of the paper's Fig. 7.
//
// Per weighted layer (conv/linear), every output neuron becomes a task; the
// task's memory controller encodes, orders (O0/O1/O2), and flitizes it into
// a packet injected toward the task's PE. The PE decodes the *transmitted
// bits*, re-pairs if separated-ordered, computes the MAC (exact int64 for
// fixed-8, double for float-32), and returns a single-flit result packet to
// the originating MC, which assembles the layer's pre-activation output.
// Non-weighted layers (activation/pooling/flatten) run host-side between
// NoC phases, modeling near-memory processing. Bit transitions accumulate
// in the network's recorder across the entire inference.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/accel_config.h"
#include "accel/mapping.h"
#include "dnn/sequential.h"
#include "noc/network.h"
#include "noc/noc_stats.h"
#include "noc/trace.h"

namespace nocbt::accel {

/// Per-NoC-phase (weighted layer) statistics.
struct LayerRunStats {
  std::int32_t layer_index = 0;
  std::string layer_name;
  std::uint64_t tasks = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t result_packets = 0;
  std::uint64_t data_flits = 0;
  std::uint64_t cycles = 0;      ///< cycles spent in this layer's NoC phase
  std::uint64_t bt = 0;          ///< in-scope BT accumulated in this phase
  double wall_ms = 0.0;          ///< host wall-clock of this phase (profiling)
};

/// Result of one full inference on the platform.
struct InferenceResult {
  dnn::Tensor output;                ///< final model output (logits)
  std::uint64_t total_cycles = 0;    ///< inference latency (cycles)
  std::uint64_t bt_total = 0;        ///< in-scope BT over the whole run
  std::uint64_t bt_all_links = 0;    ///< BT over every link class
  std::uint64_t data_packets = 0;
  std::uint64_t result_packets = 0;
  std::vector<LayerRunStats> layers;
  noc::NocStats noc_stats;
  noc::PacketTrace trace;            ///< per-packet delivery trace (Fig. 7)
  /// Frozen per-link flit/BT counters (hw::EnergyModel::annotate turns
  /// these into the campaign's per-link energy heatmap).
  std::vector<noc::LinkObservation> links;
};

class NocDnaPlatform {
 public:
  /// The model is held by reference; host-side layers run their forward
  /// passes during `run`, so the reference must stay valid and non-const.
  NocDnaPlatform(AccelConfig config, dnn::Sequential& model);

  /// Run one single-image inference (input batch must be 1).
  [[nodiscard]] InferenceResult run(const dnn::Tensor& input);

  [[nodiscard]] const AccelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NodeRoles& roles() const noexcept { return roles_; }

 private:
  AccelConfig config_;
  dnn::Sequential& model_;
  NodeRoles roles_;
};

}  // namespace nocbt::accel
