#include "accel/platform.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "accel/packet_builder.h"
#include "accel/task.h"
#include "common/float_bits.h"
#include "noc/sim_profiler.h"
#include "ordering/ordering_unit.h"

namespace nocbt::accel {
namespace {

/// Sideband registry entry for a result packet.
struct ResultMeta {
  std::int32_t output_index = 0;
  std::int32_t mc_node = -1;
};

/// Per-MC injection state for one layer phase.
struct McState {
  std::int32_t node = -1;
  std::deque<std::size_t> task_queue;  ///< indices into the layer task list
  struct Staged {
    BuiltPacket packet;
    std::uint64_t ready_at = 0;  ///< cycle the ordering unit finishes
  };
  std::deque<Staged> prefetch;   ///< ordered packets awaiting injection
  std::uint64_t unit_busy_until = 0;
  std::uint32_t in_flight = 0;   ///< data packets without a result yet
};

LayerCodecs make_codecs(DataFormat format, unsigned fixed_bits,
                        const dnn::Tensor& weights, const dnn::Tensor& bias,
                        const dnn::Tensor& activations) {
  if (format == DataFormat::kFloat32)
    return LayerCodecs{ValueCodec::float32(), ValueCodec::float32(),
                       ValueCodec::float32()};
  return LayerCodecs{
      ValueCodec::fixed_calibrated(fixed_bits, weights.data()),
      ValueCodec::fixed_calibrated(fixed_bits, activations.data()),
      ValueCodec::fixed_calibrated(fixed_bits, bias.data())};
}

}  // namespace

NocDnaPlatform::NocDnaPlatform(AccelConfig config, dnn::Sequential& model)
    : config_(std::move(config)), model_(model) {
  config_.validate();
  roles_ = assign_roles(noc::MeshShape(config_.noc.rows, config_.noc.cols),
                        config_.num_mcs);
  if (roles_.pes.empty())
    throw std::invalid_argument("NocDnaPlatform: no PE nodes left");
}

InferenceResult NocDnaPlatform::run(const dnn::Tensor& input) {
  if (input.shape().n != 1)
    throw std::invalid_argument("NocDnaPlatform::run: batch must be 1");

  const FlitLayout layout = config_.layout();
  noc::Network net(config_.noc);
  const ordering::OrderingUnitModel unit_model(
      ordering::OrderingUnitConfig{layout.values_per_flit, layout.value_bits, 1});

  InferenceResult result;

  // ---- sideband registries and per-layer shared state ----
  std::unordered_map<std::uint64_t, TaskMeta> task_meta;
  std::unordered_map<std::uint64_t, ResultMeta> result_meta;
  std::unordered_map<std::int32_t, std::size_t> mc_index_of_node;

  const LayerCodecs* active_codecs = nullptr;
  dnn::Tensor* active_output = nullptr;
  std::size_t results_done = 0;
  std::vector<McState> mc_states(roles_.mcs.size());
  for (std::size_t m = 0; m < roles_.mcs.size(); ++m) {
    mc_states[m].node = roles_.mcs[m];
    mc_index_of_node[roles_.mcs[m]] = m;
  }

  // ---- one sink per node; dispatch on the packet registries ----
  for (std::int32_t node = 0; node < net.shape().node_count(); ++node) {
    net.set_sink(node, [&, node](noc::Packet&& packet, std::uint64_t cycle) {
      noc::TraceEvent event;
      event.packet_id = packet.id;
      event.src = packet.src;
      event.dst = packet.dst;
      event.num_flits = static_cast<std::uint32_t>(packet.payloads.size());
      event.inject_cycle = packet.inject_cycle;
      event.eject_cycle = cycle;
      event.hops = packet.hops;
      result.trace.record(event);

      if (const auto it = task_meta.find(packet.id); it != task_meta.end()) {
        // Data packet arrived at a PE: decode the transmitted bits and
        // compute the neuron.
        const TaskMeta& meta = it->second;
        std::vector<std::uint32_t> pair_index;
        const UnpackedTask decoded =
            decode_task_packet(packet.payloads, meta, layout, &pair_index);
        const double value = compute_task_output(decoded, pair_index,
                                                 *active_codecs, meta.mode);
        // Single-flit result packet back to the originating MC: the low 32
        // payload bits carry the IEEE-754 result pattern.
        BitVec payload(layout.flit_bits());
        payload.set_field(0, 32, float_to_bits(static_cast<float>(value)));
        const std::uint64_t result_id =
            net.inject(node, meta.src_mc, {std::move(payload)});
        result_meta.emplace(result_id,
                            ResultMeta{meta.output_index, meta.src_mc});
        ++result.result_packets;
        task_meta.erase(it);
        return;
      }
      if (const auto it = result_meta.find(packet.id);
          it != result_meta.end()) {
        // Result packet arrived at its MC: commit the output value.
        const ResultMeta& meta = it->second;
        active_output->data()[static_cast<std::size_t>(meta.output_index)] =
            bits_to_float(
                static_cast<std::uint32_t>(packet.payloads[0].get_field(0, 32)));
        --mc_states[mc_index_of_node.at(node)].in_flight;
        ++results_done;
        result_meta.erase(it);
        return;
      }
      throw std::logic_error("NocDnaPlatform: unregistered packet delivered");
    });
  }

  // ---- walk the model ----
  dnn::Tensor current = input;
  for (std::size_t li = 0; li < model_.size(); ++li) {
    dnn::Layer& layer = model_.layer(li);
    const bool weighted = layer.kind() == dnn::LayerKind::kConv2d ||
                          layer.kind() == dnn::LayerKind::kLinear;
    if (!weighted) {
      current = layer.forward(current);  // host-side (near-memory) op
      continue;
    }

    // Extract this layer's tasks and codecs.
    std::vector<NeuronTask> tasks;
    dnn::Shape out_shape;
    LayerCodecs codecs{ValueCodec::float32(), ValueCodec::float32(),
                       ValueCodec::float32()};
    if (layer.kind() == dnn::LayerKind::kConv2d) {
      auto& conv = static_cast<dnn::Conv2d&>(layer);
      tasks = extract_conv_tasks(conv, current, static_cast<std::int32_t>(li));
      out_shape = conv.output_shape(current.shape());
      codecs = make_codecs(config_.format, config_.fixed_bits, conv.weight(),
                           conv.bias(), current);
    } else {
      auto& fc = static_cast<dnn::Linear&>(layer);
      tasks = extract_linear_tasks(fc, current, static_cast<std::int32_t>(li));
      out_shape = fc.output_shape(current.shape());
      codecs = make_codecs(config_.format, config_.fixed_bits, fc.weight(),
                           fc.bias(), current);
    }

    dnn::Tensor layer_output(out_shape);
    active_codecs = &codecs;
    active_output = &layer_output;
    results_done = 0;

    LayerRunStats layer_stats;
    layer_stats.layer_index = static_cast<std::int32_t>(li);
    layer_stats.layer_name = layer.name();
    layer_stats.tasks = tasks.size();
    const noc::WallTimer layer_timer;
    const std::uint64_t bt_at_start = net.bt().total();
    const std::uint64_t cycles_at_start = net.cycle();
    const std::uint64_t flits_at_start = net.stats().flits_injected;

    // PEs round-robin over the task index; each task is served by the MC
    // nearest its PE (memory traffic comes from the closest controller, so
    // fewer MCs per mesh means longer routes — the Fig. 12 effect).
    const auto nearest_mc =
        nearest_mc_index(net.shape(), roles_);
    for (auto& mc : mc_states) {
      mc.task_queue.clear();
      mc.prefetch.clear();
      mc.unit_busy_until = net.cycle();
      mc.in_flight = 0;
    }
    std::vector<std::int32_t> task_pe(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      task_pe[t] = roles_.pes[t % roles_.pes.size()];
      mc_states[nearest_mc[static_cast<std::size_t>(task_pe[t])]]
          .task_queue.push_back(t);
    }

    // Drive the NoC until every result has returned.
    std::uint64_t guard = 0;
    while (results_done < tasks.size()) {
      const std::uint64_t now = net.cycle();
      for (auto& mc : mc_states) {
        // Stage: the ordering unit prepares the next packet into the
        // prefetch FIFO (latency-hiding pipeline of §IV-C3).
        if (mc.prefetch.size() < config_.prefetch_depth &&
            !mc.task_queue.empty() &&
            (!config_.model_ordering_latency || now >= mc.unit_busy_until)) {
          const std::size_t t = mc.task_queue.front();
          mc.task_queue.pop_front();
          BuiltPacket packet =
              build_task_packet(tasks[t], codecs, config_.mode, layout,
                                config_.embed_pairing_index);
          packet.meta.src_mc = mc.node;
          packet.meta.dst_pe = task_pe[t];
          std::uint64_t ready = now;
          if (config_.model_ordering_latency) {
            // Pipelined unit: the packet is ready after the sort latency,
            // but the pipeline accepts the next packet after the (much
            // shorter) initiation interval.
            const auto n = static_cast<std::uint32_t>(tasks[t].weights.size());
            std::uint64_t latency = 0;
            std::uint64_t interval = 1;
            if (ordering::mode_is_separated(config_.mode)) {
              latency = unit_model.separated_cycles(n);
              interval = unit_model.separated_initiation_interval(n);
            } else if (!ordering::mode_is_baseline(config_.mode)) {
              // Every affiliated-pairing mode runs one pass through the
              // unit (the cycle model abstracts over the sort circuit).
              latency = unit_model.affiliated_cycles(n);
              interval = unit_model.initiation_interval(n);
            }
            const std::uint64_t start = std::max(now, mc.unit_busy_until);
            mc.unit_busy_until = start + interval;
            ready = start + latency;
          }
          mc.prefetch.push_back(McState::Staged{std::move(packet), ready});
        }
        // Inject: ordered packets leave once ready, throttled by the
        // outstanding-task window and the NI backlog.
        while (!mc.prefetch.empty() && now >= mc.prefetch.front().ready_at &&
               mc.in_flight < config_.max_outstanding_per_mc &&
               net.injection_backlog(mc.node) < 2) {
          BuiltPacket packet = std::move(mc.prefetch.front().packet);
          mc.prefetch.pop_front();
          const std::uint64_t id = net.inject(mc.node, packet.meta.dst_pe,
                                              std::move(packet.payloads));
          layer_stats.data_flits +=
              packet.meta.data_flits + packet.meta.index_flits;
          task_meta.emplace(id, std::move(packet.meta));
          ++mc.in_flight;
          ++result.data_packets;
          ++layer_stats.data_packets;
        }
      }
      net.step();
      if (++guard > config_.max_cycles_per_layer)
        throw std::runtime_error("NocDnaPlatform: layer " + layer.name() +
                                 " exceeded max_cycles_per_layer");
    }

    layer_stats.result_packets = tasks.size();
    layer_stats.cycles = net.cycle() - cycles_at_start;
    layer_stats.bt = net.bt().total() - bt_at_start;
    layer_stats.wall_ms = layer_timer.millis();
    (void)flits_at_start;
    result.layers.push_back(std::move(layer_stats));

    // The PE computed only the MAC; the pre-activation tensor becomes the
    // input of the next (host-side or NoC) layer.
    current = std::move(layer_output);
    active_output = nullptr;
    active_codecs = nullptr;
  }

  // Drain any remaining credits so the network ends quiescent. A network
  // that cannot drain within the budget means in-flight state would be
  // silently dropped from the results — fail loudly instead.
  if (!net.run_until_idle(config_.drain_max_cycles))
    throw std::runtime_error(
        "NocDnaPlatform: network failed to drain within " +
        std::to_string(config_.drain_max_cycles) +
        " cycles after the last layer (" +
        std::to_string(net.buffered_flits()) +
        " flits still buffered; raise AccelConfig::drain_max_cycles or "
        "investigate the stall)");

  result.output = std::move(current);
  result.total_cycles = net.cycle();
  result.bt_total = net.bt().total();
  result.bt_all_links = net.bt().total_all_links();
  result.links = net.bt().snapshot();
  result.noc_stats = net.stats();
  return result;
}

}  // namespace nocbt::accel
