#pragma once
// Half-half flitization (paper Fig. 2): each flit's left half carries
// inputs, its right half the matching weights; the bias rides in the left
// half right after the last input; remaining slots are zero.
//
// Example from the paper (k=5 task, 16 value slots per flit):
//   25 inputs + 25 weights + 1 bias  ->
//   flit0: 8i+8w | flit1: 8i+8w | flit2: 8i+8w | flit3: 1i+1w+1b+13 zeros

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitvec.h"

namespace nocbt::accel {

/// Geometry of a flit's value slots.
struct FlitLayout {
  unsigned values_per_flit = 16;  ///< total slots (must be even)
  unsigned value_bits = 32;       ///< bits per slot

  [[nodiscard]] unsigned half() const noexcept { return values_per_flit / 2; }
  [[nodiscard]] unsigned flit_bits() const noexcept {
    return values_per_flit * value_bits;
  }
  /// Bit offset of slot s.
  [[nodiscard]] unsigned slot_offset(unsigned s) const noexcept {
    return s * value_bits;
  }
};

/// Where the bias lands for a given pair count (flit index + slot index).
struct BiasSlot {
  std::uint32_t flit = 0;
  std::uint32_t slot = 0;
};
[[nodiscard]] BiasSlot bias_position(std::uint32_t n_pairs,
                                     const FlitLayout& layout);

/// Number of payload flits for n_pairs (+ optional bias).
[[nodiscard]] std::uint32_t flits_needed(std::uint32_t n_pairs, bool has_bias,
                                         const FlitLayout& layout);

/// Pack (input, weight) pairs + bias into half-half flits.
/// inputs.size() must equal weights.size() and be >= 1.
[[nodiscard]] std::vector<BitVec> pack_half_half(
    std::span<const std::uint32_t> inputs,
    std::span<const std::uint32_t> weights,
    std::optional<std::uint32_t> bias, const FlitLayout& layout);

/// Decoded payload contents.
struct UnpackedTask {
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> weights;
  std::optional<std::uint32_t> bias;
};

/// Inverse of pack_half_half given the pair count / bias flag metadata.
[[nodiscard]] UnpackedTask unpack_half_half(std::span<const BitVec> payloads,
                                            std::uint32_t n_pairs,
                                            bool has_bias,
                                            const FlitLayout& layout);

/// Pack `indices`, each `bits_per_index` wide, densely into flit payloads
/// (ablation A2: shipping the separated-ordering pairing index in-band).
[[nodiscard]] std::vector<BitVec> pack_index_flits(
    std::span<const std::uint32_t> indices, unsigned bits_per_index,
    unsigned flit_bits);

/// Inverse of pack_index_flits.
[[nodiscard]] std::vector<std::uint32_t> unpack_index_flits(
    std::span<const BitVec> payloads, std::size_t count,
    unsigned bits_per_index);

}  // namespace nocbt::accel
