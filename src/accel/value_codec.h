#pragma once
// Value <-> transmitted-bit-pattern codecs for the two data formats.
//
// Float-32 traffic carries raw IEEE-754 patterns; fixed-8 traffic carries
// 8-bit two's-complement codes under a per-tensor symmetric scale. The
// codec is what turns DNN values into the wire patterns whose popcounts
// drive the ordering.

#include <cstdint>
#include <optional>
#include <span>

#include "common/data_format.h"
#include "common/fixed_point.h"
#include "common/float_bits.h"

namespace nocbt::accel {

class ValueCodec {
 public:
  /// Identity codec for IEEE-754 float32 patterns.
  [[nodiscard]] static ValueCodec float32() { return ValueCodec{}; }

  /// Fixed-point codec with an explicit quantizer.
  [[nodiscard]] static ValueCodec fixed(FixedPointCodec codec) {
    return ValueCodec(std::move(codec));
  }

  /// Fixed-point codec calibrated symmetrically on `values`.
  [[nodiscard]] static ValueCodec fixed_calibrated(
      unsigned bits, std::span<const float> values) {
    return ValueCodec(FixedPointCodec::calibrate(bits, values));
  }

  [[nodiscard]] DataFormat format() const noexcept {
    return fixed_ ? DataFormat::kFixed8 : DataFormat::kFloat32;
  }
  [[nodiscard]] unsigned bits() const noexcept {
    return fixed_ ? fixed_->bits() : 32u;
  }

  /// Wire pattern for a value.
  [[nodiscard]] std::uint32_t encode(float value) const noexcept {
    return fixed_ ? fixed_->quantize_to_pattern(value) : float_to_bits(value);
  }

  /// Value represented by a wire pattern.
  [[nodiscard]] float decode(std::uint32_t pattern) const noexcept {
    return fixed_ ? static_cast<float>(
                        fixed_->dequantize(fixed_->from_pattern(pattern)))
                  : bits_to_float(pattern);
  }

  /// Signed integer code behind a fixed-point pattern (for exact int MACs
  /// at the PE); only meaningful for fixed formats.
  [[nodiscard]] std::int32_t code(std::uint32_t pattern) const noexcept {
    return fixed_ ? fixed_->from_pattern(pattern) : 0;
  }

  /// Real value of integer code 1 (fixed formats), 0 for float.
  [[nodiscard]] double scale() const noexcept {
    return fixed_ ? fixed_->scale() : 0.0;
  }

 private:
  ValueCodec() = default;
  explicit ValueCodec(FixedPointCodec codec) : fixed_(std::move(codec)) {}
  std::optional<FixedPointCodec> fixed_;
};

/// The three codecs a layer's traffic needs (weights, inputs, bias may have
/// very different dynamic ranges under fixed-point).
struct LayerCodecs {
  ValueCodec weights;
  ValueCodec inputs;
  ValueCodec bias;
};

}  // namespace nocbt::accel
