#pragma once
// Configuration of the NOC-DNA platform (paper §V-B defaults).

#include <stdexcept>

#include "accel/flitization.h"
#include "common/data_format.h"
#include "noc/noc_config.h"
#include "ordering/ordering.h"

namespace nocbt::accel {

struct AccelConfig {
  noc::NocConfig noc;             ///< mesh geometry, VCs, link width
  std::int32_t num_mcs = 2;       ///< memory controllers (= ordering units)
  DataFormat format = DataFormat::kFloat32;
  ordering::OrderingMode mode = ordering::OrderingMode::kBaseline;
  unsigned fixed_bits = 8;        ///< quantizer width for kFixed8

  /// Ablation A2: ship the separated-ordering pairing index in-band as
  /// extra payload flits (default: sideband metadata).
  bool embed_pairing_index = false;
  /// Ablation A5: model the ordering unit's sort latency at the MCs.
  bool model_ordering_latency = false;

  std::uint32_t max_outstanding_per_mc = 32;  ///< data packets in flight
  /// Ordered-packet FIFO per MC (the "prefetch buffer" of Fig. 6). Must
  /// cover the sort pipeline's latency/II ratio (~16 packets for separated
  /// ordering) or the pipeline cannot fill and throughput collapses.
  std::uint32_t prefetch_depth = 32;
  std::uint64_t max_cycles_per_layer = 20'000'000;  ///< stall guard
  /// Cycle budget for the final drain after the last layer (result credits
  /// still in flight). NocDnaPlatform::run throws if the network has not
  /// gone idle within this many cycles — a silent truncation would leave
  /// in-flight state uncounted.
  std::uint64_t drain_max_cycles = 100'000;

  /// Value-slot geometry implied by link width and data format.
  [[nodiscard]] FlitLayout layout() const {
    return FlitLayout{noc.flit_payload_bits / value_bits(format),
                      value_bits(format)};
  }

  void validate() const {
    noc.validate();
    const unsigned vbits = value_bits(format);
    if (noc.flit_payload_bits % vbits != 0)
      throw std::invalid_argument("AccelConfig: link width not a multiple of value width");
    const unsigned slots = noc.flit_payload_bits / vbits;
    if (slots < 2 || slots % 2 != 0)
      throw std::invalid_argument("AccelConfig: need an even number of >= 2 value slots");
    if (num_mcs < 1 || num_mcs >= noc.node_count())
      throw std::invalid_argument("AccelConfig: bad MC count");
    if (drain_max_cycles < 1)
      throw std::invalid_argument(
          "AccelConfig: drain_max_cycles must be >= 1");
  }

  /// Paper defaults: 16 value slots per flit (512-bit links for float-32,
  /// 128-bit for fixed-8), 4 VCs with 4-flit buffers, X-Y routing.
  [[nodiscard]] static AccelConfig defaults(DataFormat format,
                                            ordering::OrderingMode mode,
                                            std::int32_t rows, std::int32_t cols,
                                            std::int32_t num_mcs) {
    AccelConfig cfg;
    cfg.format = format;
    cfg.mode = mode;
    cfg.num_mcs = num_mcs;
    cfg.noc.rows = rows;
    cfg.noc.cols = cols;
    cfg.noc.flit_payload_bits = 16 * value_bits(format);
    cfg.validate();
    return cfg;
  }
};

}  // namespace nocbt::accel
