#pragma once
// The co-optimizer's joint search space: placement policy x ordering
// strategy x per-packet window x payload codec. One Candidate is one point
// of that space; a SearchSpace is the finite axis lists an optimizer may
// move along. Placements are policy *names* (resolved through the
// src/place registry), so a policy registered at runtime is searchable
// without touching this layer — the same open-endedness the ordering axis
// gets from OrderingMode covering every registered strategy.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/data_format.h"
#include "ordering/ordering.h"
#include "sim/campaign.h"

namespace nocbt::opt {

/// One point of the joint space. Plain value: cheap to copy, compare and
/// stringify (the evaluator memoizes on to_string(Candidate)).
struct Candidate {
  std::string placement = "rowmajor";
  ordering::OrderingMode mode = ordering::OrderingMode::kSeparated;
  std::uint32_t window = 64;
  DataFormat format = DataFormat::kFixed8;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// "placement/mode/wN/format", e.g. "snake/O2/w64/fx8" — unique per
/// candidate, and every token parses back through the respective
/// parse_* helper.
[[nodiscard]] std::string to_string(const Candidate& c);

/// The finite axis lists a search runs over. Axes are ordered (index 0 of
/// each axis is the *baseline* value the never-worse-than guard sweeps
/// modes against — see run_coopt).
struct SearchSpace {
  std::vector<std::string> placements;
  std::vector<ordering::OrderingMode> modes;
  std::vector<std::uint32_t> windows;
  std::vector<DataFormat> formats;

  /// Number of candidates (product of axis sizes).
  [[nodiscard]] std::size_t size() const;

  /// Throws std::invalid_argument on an empty axis, a duplicate axis
  /// value, or a placement name no registered policy answers to.
  void validate() const;

  /// The whole registered strategy/policy cross-product at the given
  /// window and codec lists: every place::registered_policy_names() entry
  /// x every ordering::all_ordering_modes() entry.
  [[nodiscard]] static SearchSpace full(std::vector<std::uint32_t> windows,
                                        std::vector<DataFormat> formats);

  /// Lift a campaign's grid axes (modes, windows, formats) into a search
  /// space with an explicit placement axis — how the CLI turns its
  /// campaign-shaped options into the space it searches.
  [[nodiscard]] static SearchSpace from_campaign(
      const sim::CampaignSpec& camp, std::vector<std::string> placements);
};

}  // namespace nocbt::opt
