#pragma once
// The co-optimizer's inner-loop scorer: one Candidate -> one measured
// ScenarioResult, through the same campaign engine the sweep front-ends
// use. Measurement, not a proxy model — every score is sim::
// run_single_scenario on a single-point campaign, so the number the search
// ranks by is byte-identical to the matching row of a full run_campaign
// sweep (the differential tests pin this).
//
// Scores are memoized per candidate: optimizers revisit points freely
// (annealing walks, greedy re-scans) and only the first visit simulates.

#include <cstddef>
#include <map>
#include <string>

#include "opt/search_space.h"
#include "sim/campaign.h"

namespace nocbt::opt {

class Evaluator {
 public:
  /// `base` is the campaign template every candidate is scored under: its
  /// non-grid knobs (mesh, model, tiles_per_layer, seeds, packets, energy
  /// point, engine choice, ...) are shared by all candidates, while the
  /// grid axes are overwritten per candidate. Throws std::invalid_argument
  /// unless the template is single-point-able: exactly one generator and
  /// one mesh, replicates == 1.
  explicit Evaluator(sim::CampaignSpec base);

  /// Measured result for `c` (memoized; the returned reference stays valid
  /// for the evaluator's lifetime). Throws std::runtime_error when the
  /// scenario fails — a search must not silently rank a broken
  /// measurement.
  const sim::ScenarioResult& evaluate(const Candidate& c);

  /// The single-point campaign that measures exactly `c`: the template
  /// with formats/modes/windows collapsed to the candidate's values and
  /// the candidate's placement in the base scenario. This is what
  /// evaluate() runs — and what the winning spec file is emitted from, so
  /// "what the search scored" and "what the spec re-runs" are one object.
  [[nodiscard]] sim::CampaignSpec campaign_for(const Candidate& c) const;

  /// Unique scenarios simulated so far (cache misses).
  [[nodiscard]] std::size_t runs() const { return memo_.size(); }
  /// Total evaluate() calls (hits + misses).
  [[nodiscard]] std::size_t lookups() const { return lookups_; }

  [[nodiscard]] const sim::CampaignSpec& base() const { return base_; }

 private:
  sim::CampaignSpec base_;
  std::map<std::string, sim::ScenarioResult> memo_;
  std::size_t lookups_ = 0;
};

}  // namespace nocbt::opt
