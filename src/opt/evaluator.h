#pragma once
// The co-optimizer's inner-loop scorer: one Candidate -> one measured
// ScenarioResult, through the same campaign engine the sweep front-ends
// use. Measurement, not a proxy model — every score is sim::
// run_single_scenario on a single-point campaign, so the number the search
// ranks by is byte-identical to the matching row of a full run_campaign
// sweep (the differential tests pin this).
//
// Scores are memoized per candidate: optimizers revisit points freely
// (annealing walks, greedy re-scans) and only the first visit simulates.
// Hand the evaluator a shared sim::ScenarioCache and even first visits can
// be served without simulating — searches resume across processes and
// share hits with campaign sweeps pointed at the same cache_dir.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "opt/search_space.h"
#include "sim/campaign.h"
#include "sim/scenario_cache.h"
#include "sim/scenario_runner.h"

namespace nocbt::opt {

class Evaluator {
 public:
  /// `base` is the campaign template every candidate is scored under: its
  /// non-grid knobs (mesh, model, tiles_per_layer, seeds, packets, energy
  /// point, engine choice, ...) are shared by all candidates, while the
  /// grid axes are overwritten per candidate. Throws std::invalid_argument
  /// unless the template is single-point-able: exactly one generator and
  /// one mesh, replicates == 1.
  explicit Evaluator(sim::CampaignSpec base);

  /// Same, scoring through a shared content-addressed cache (may be null):
  /// a first visit whose scenario is already cached — by an earlier
  /// search, a resumed one, or a campaign sweep over the same cache_dir —
  /// is served without simulating.
  Evaluator(sim::CampaignSpec base, std::shared_ptr<sim::ScenarioCache> cache);

  /// Measured result for `c` (memoized; the returned reference stays valid
  /// for the evaluator's lifetime). Throws std::runtime_error when the
  /// scenario fails — a search must not silently rank a broken
  /// measurement.
  const sim::ScenarioResult& evaluate(const Candidate& c);

  /// The single-point campaign that measures exactly `c`: the template
  /// with formats/modes/windows collapsed to the candidate's values and
  /// the candidate's placement in the base scenario. This is what
  /// evaluate() runs — and what the winning spec file is emitted from, so
  /// "what the search scored" and "what the spec re-runs" are one object.
  [[nodiscard]] sim::CampaignSpec campaign_for(const Candidate& c) const;

  /// Scenarios actually simulated so far. Without a shared cache this is
  /// exactly the local-memo miss count; with one it can be lower (misses
  /// served by the cache).
  [[nodiscard]] std::size_t runs() const { return simulated_; }
  /// Total evaluate() calls (hits + misses).
  [[nodiscard]] std::size_t lookups() const { return lookups_; }
  /// First visits served by the shared cache instead of simulating.
  [[nodiscard]] std::size_t shared_hits() const { return shared_hits_; }

  /// Invoked with the scenario content hash whenever a content-addressable
  /// candidate is actually *simulated* (never on a shared-cache hit —
  /// those rows are already persisted somewhere), so a front-end can
  /// checkpoint completed evaluations (the resume journal).
  std::function<void(const Candidate&, const std::string& content_hash,
                     const sim::ScenarioResult&)>
      on_measure;

  [[nodiscard]] const sim::CampaignSpec& base() const { return base_; }

 private:
  sim::CampaignSpec base_;
  std::shared_ptr<sim::ScenarioCache> cache_;
  /// Search-scoped schedule store: candidates differing only in ordering
  /// mode (and any knob absent from the schedule key) share one
  /// materialized schedule plus its derived batched-ordering inputs, so a
  /// mode sweep at a fixed grid point pays the traffic generation and
  /// arrival-BT kernel passes once. Unbounded retention is deliberate —
  /// optimizers revisit points in arbitrary order, and a search's distinct
  /// schedules are few and small.
  sim::ScheduleCache schedules_;
  std::map<std::string, sim::ScenarioResult> memo_;
  std::size_t lookups_ = 0;
  std::size_t simulated_ = 0;
  std::size_t shared_hits_ = 0;
};

}  // namespace nocbt::opt
