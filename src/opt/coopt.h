#pragma once
// The co-optimization driver: baseline sweep -> registered search ->
// never-worse-than-baseline guard -> reproducible winning spec.
//
// run_coopt first sweeps every ordering mode of the space at the baseline
// coordinates (axis index 0 of placements/windows/formats) — exactly the
// single-mode sweep a front-end like resnet_placed_sweep performs — and
// takes its best row as the incumbent. The selected optimizer then
// searches the joint space starting from that incumbent. Because scores
// are measured power (not a proxy) and the guard clamps the final answer
// back to the incumbent if the search somehow did worse, the co-optimizer
// is never worse than the best single-mode configuration, for every
// optimizer and every seed — a property the test suite asserts across the
// whole registry.

#include <cstddef>
#include <string>

#include "opt/evaluator.h"
#include "opt/optimizer.h"
#include "opt/search_space.h"
#include "sim/campaign.h"

namespace nocbt::opt {

struct CoOptResult {
  /// Best row of the baseline mode sweep (the incumbent the search starts
  /// from, and the guard's reference).
  Candidate baseline;
  double baseline_power_mw = 0.0;

  Candidate best;
  double best_power_mw = 0.0;
  /// Full measurements of `best` (the row the winning spec reproduces).
  sim::ScenarioResult best_result;
  /// The single-point campaign that re-measures `best` byte for byte —
  /// write_campaign_config(path, winning) emits the spec file
  /// `nocbt_campaign config=path` re-runs.
  sim::CampaignSpec winning;

  /// True when the guard had to discard the search result (the optimizer
  /// contract makes this unreachable for the built-ins; the flag is how
  /// the tests and reports would notice a violating plug-in).
  bool guard_applied = false;

  std::vector<StepRecord> steps;  ///< search-phase trajectory
  std::size_t evaluations = 0;    ///< unique scenarios simulated (all phases)
};

/// Run the full baseline -> search -> guard pipeline. `eval`'s memo is
/// shared across phases (and with the caller, who may pre-warm or reuse
/// it). Throws on an invalid space, an unknown optimizer name, or a
/// failing scenario.
[[nodiscard]] CoOptResult run_coopt(Evaluator& eval, const SearchSpace& space,
                                    const CoOptConfig& config);

/// Convenience overload owning a fresh Evaluator built from `base`.
[[nodiscard]] CoOptResult run_coopt(const sim::CampaignSpec& base,
                                    const SearchSpace& space,
                                    const CoOptConfig& config);

/// Human-readable, deterministic search report (baseline, trajectory,
/// winner) — no wall-clock, so re-running the same co-optimization yields
/// a byte-identical report.
[[nodiscard]] std::string coopt_report(const CoOptResult& result);

}  // namespace nocbt::opt
