#include "opt/evaluator.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/scenario_runner.h"

namespace nocbt::opt {

Evaluator::Evaluator(sim::CampaignSpec base)
    : Evaluator(std::move(base), nullptr) {}

Evaluator::Evaluator(sim::CampaignSpec base,
                     std::shared_ptr<sim::ScenarioCache> cache)
    : base_(std::move(base)),
      cache_(std::move(cache)),
      schedules_(std::numeric_limits<std::size_t>::max()) {
  if (base_.generators.size() != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must hold exactly one generator, "
        "got " +
        std::to_string(base_.generators.size()));
  if (base_.meshes.size() != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must hold exactly one mesh, got " +
        std::to_string(base_.meshes.size()));
  if (base_.replicates != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must use replicates=1, got " +
        std::to_string(base_.replicates));
}

sim::CampaignSpec Evaluator::campaign_for(const Candidate& c) const {
  sim::CampaignSpec camp = base_;
  camp.formats = {c.format};
  camp.modes = {c.mode};
  camp.windows = {c.window};
  camp.base.placement = c.placement;
  return camp;
}

const sim::ScenarioResult& Evaluator::evaluate(const Candidate& c) {
  ++lookups_;
  const std::string key = to_string(c);
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  sim::SingleRunOutcome outcome = sim::run_single_scenario_cached(
      campaign_for(c), cache_.get(), &schedules_);
  if (outcome.cache_hit)
    ++shared_hits_;
  else
    ++simulated_;
  if (!outcome.row.error.empty())
    throw std::runtime_error("Evaluator: candidate " + key + " failed: " +
                             outcome.row.error);
  if (on_measure && !outcome.cache_hit && !outcome.content_hash.empty())
    on_measure(c, outcome.content_hash, outcome.row);
  return memo_.emplace(key, std::move(outcome.row)).first->second;
}

}  // namespace nocbt::opt
