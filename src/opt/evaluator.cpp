#include "opt/evaluator.h"

#include <stdexcept>
#include <utility>

namespace nocbt::opt {

Evaluator::Evaluator(sim::CampaignSpec base) : base_(std::move(base)) {
  if (base_.generators.size() != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must hold exactly one generator, "
        "got " +
        std::to_string(base_.generators.size()));
  if (base_.meshes.size() != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must hold exactly one mesh, got " +
        std::to_string(base_.meshes.size()));
  if (base_.replicates != 1)
    throw std::invalid_argument(
        "Evaluator: the campaign template must use replicates=1, got " +
        std::to_string(base_.replicates));
}

sim::CampaignSpec Evaluator::campaign_for(const Candidate& c) const {
  sim::CampaignSpec camp = base_;
  camp.formats = {c.format};
  camp.modes = {c.mode};
  camp.windows = {c.window};
  camp.base.placement = c.placement;
  return camp;
}

const sim::ScenarioResult& Evaluator::evaluate(const Candidate& c) {
  ++lookups_;
  const std::string key = to_string(c);
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  sim::ScenarioResult result = sim::run_single_scenario(campaign_for(c));
  if (!result.error.empty())
    throw std::runtime_error("Evaluator: candidate " + key + " failed: " +
                             result.error);
  return memo_.emplace(key, std::move(result)).first->second;
}

}  // namespace nocbt::opt
