#pragma once
// Pluggable search algorithms over the joint placement x ordering space.
// Mirrors the OrderingStrategy / PlacementPolicy registries: an Optimizer
// is a registered, stateless, thread-safe search procedure, and new
// algorithms become selectable by name from the CLI and sweepable by the
// property tests without touching this layer.
//
// Built-ins:
//   random            uniform i.i.d. sampling of the space (the control
//                     every smarter search must beat or match)
//   greedy-coordinate coordinate descent: repeatedly scan one axis at a
//                     time, move to the axis-best value, stop on a full
//                     pass without improvement
//   anneal            simulated annealing: single-axis random moves,
//                     Metropolis acceptance exp(-d/T), geometric cooling
//
// Every search is deterministic in (space, config, incumbent): optimizers
// draw randomness only from an Rng seeded with config.seed, and score only
// through the memoizing Evaluator. The contract requires the returned best
// to be no worse than the incumbent — run_coopt additionally enforces it.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "opt/evaluator.h"
#include "opt/search_space.h"

namespace nocbt::opt {

/// Knobs shared by every optimizer (the SA fields are ignored by the
/// others; keeping them here keeps CoOptConfig a plain flat value the CLI
/// and tests can fill field by field).
struct CoOptConfig {
  std::string optimizer = "anneal";
  std::uint64_t seed = 1;        ///< search randomness (not the sim seed)
  std::uint32_t max_evals = 40;  ///< search-phase step budget
  /// Initial annealing temperature in mW; 0 = auto: 2% of the incumbent's
  /// power, so the early walk accepts same-ballpark regressions and the
  /// schedule is scale-free across models and meshes.
  double sa_temp = 0.0;
  double sa_cooling = 0.95;  ///< geometric factor per step, in (0, 1]
};

/// One search step: the candidate scored at that step and what the
/// algorithm did with it. The trajectory is deterministic and is what the
/// report files show.
struct StepRecord {
  std::uint32_t step = 0;  ///< 0-based step index within the search phase
  Candidate candidate;
  double power_mw = 0.0;
  bool accepted = false;  ///< became the current point (walk state)
  bool improved = false;  ///< strictly beat the best-so-far
};

struct SearchOutcome {
  Candidate best;
  double best_power_mw = 0.0;
  std::vector<StepRecord> steps;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Search `space` scoring through `eval`, starting from `incumbent`
  /// (already evaluated; its measured power is `incumbent_power_mw`).
  /// Deterministic in its arguments; spends at most config.max_evals
  /// steps; returns a best with best_power_mw <= incumbent_power_mw.
  [[nodiscard]] virtual SearchOutcome search(
      Evaluator& eval, const SearchSpace& space, const CoOptConfig& config,
      const Candidate& incumbent, double incumbent_power_mw) const = 0;
};

/// Registered optimizer by name, or nullptr. Thread-safe.
[[nodiscard]] const Optimizer* find_optimizer(std::string_view name);

/// Registered optimizer by name; throws std::invalid_argument (listing
/// the registered names) when absent.
[[nodiscard]] const Optimizer& get_optimizer(std::string_view name);

/// Snapshot of every registered optimizer, registration order. The
/// pointers stay valid for the process lifetime.
[[nodiscard]] std::vector<const Optimizer*> registered_optimizers();

/// Names of every registered optimizer, registration order — the
/// enumeration hook the property tests and CLIs build from.
[[nodiscard]] std::vector<std::string> registered_optimizer_names();

/// Add an optimizer to the registry. Throws std::invalid_argument on a
/// null optimizer or a duplicate/empty name.
void register_optimizer(std::unique_ptr<Optimizer> optimizer);

}  // namespace nocbt::opt
