#include "opt/search_space.h"

#include <algorithm>
#include <stdexcept>

#include "place/policy.h"

namespace nocbt::opt {

namespace {

template <typename T>
bool has_duplicates(std::vector<T> values) {
  std::sort(values.begin(), values.end());
  return std::adjacent_find(values.begin(), values.end()) != values.end();
}

}  // namespace

std::string to_string(const Candidate& c) {
  return c.placement + "/" + ordering::short_mode_name(c.mode) + "/w" +
         std::to_string(c.window) + "/" + to_string(c.format);
}

std::size_t SearchSpace::size() const {
  return placements.size() * modes.size() * windows.size() * formats.size();
}

void SearchSpace::validate() const {
  if (placements.empty() || modes.empty() || windows.empty() ||
      formats.empty())
    throw std::invalid_argument(
        "SearchSpace: every axis (placements, modes, windows, formats) "
        "needs at least one value");
  for (const std::string& p : placements)
    place::get_policy(p);  // throws listing registered names when unknown
  if (has_duplicates(placements))
    throw std::invalid_argument("SearchSpace: duplicate placement in axis");
  if (has_duplicates(modes))
    throw std::invalid_argument("SearchSpace: duplicate ordering mode in axis");
  if (has_duplicates(windows))
    throw std::invalid_argument("SearchSpace: duplicate window in axis");
  if (has_duplicates(formats))
    throw std::invalid_argument("SearchSpace: duplicate format in axis");
}

SearchSpace SearchSpace::full(std::vector<std::uint32_t> windows,
                              std::vector<DataFormat> formats) {
  SearchSpace space;
  space.placements = place::registered_policy_names();
  space.modes = ordering::all_ordering_modes();
  space.windows = std::move(windows);
  space.formats = std::move(formats);
  space.validate();
  return space;
}

SearchSpace SearchSpace::from_campaign(const sim::CampaignSpec& camp,
                                       std::vector<std::string> placements) {
  SearchSpace space;
  space.placements = std::move(placements);
  space.modes = camp.modes;
  space.windows = camp.windows;
  space.formats = camp.formats;
  space.validate();
  return space;
}

}  // namespace nocbt::opt
