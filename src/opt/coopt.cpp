#include "opt/coopt.h"

#include <cstdio>
#include <utility>

namespace nocbt::opt {

namespace {

std::string format_mw(double mw) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", mw);
  return buf;
}

}  // namespace

CoOptResult run_coopt(Evaluator& eval, const SearchSpace& space,
                      const CoOptConfig& config) {
  space.validate();
  const Optimizer& optimizer = get_optimizer(config.optimizer);

  // Phase 1 — baseline sweep: every ordering mode at the baseline
  // coordinates. Ties keep the earlier mode, so the incumbent is stable
  // under axis reordering of the later modes only.
  CoOptResult result;
  bool first = true;
  for (const ordering::OrderingMode mode : space.modes) {
    Candidate c;
    c.placement = space.placements.front();
    c.mode = mode;
    c.window = space.windows.front();
    c.format = space.formats.front();
    const double power = eval.evaluate(c).power_mw;
    if (first || power < result.baseline_power_mw) {
      result.baseline = c;
      result.baseline_power_mw = power;
      first = false;
    }
  }

  // Phase 2 — search from the incumbent.
  SearchOutcome outcome = optimizer.search(eval, space, config,
                                           result.baseline,
                                           result.baseline_power_mw);

  // Phase 3 — guard: never worse than the best single-mode baseline.
  if (outcome.best_power_mw > result.baseline_power_mw) {
    result.best = result.baseline;
    result.best_power_mw = result.baseline_power_mw;
    result.guard_applied = true;
  } else {
    result.best = std::move(outcome.best);
    result.best_power_mw = outcome.best_power_mw;
  }
  result.steps = std::move(outcome.steps);
  result.best_result = eval.evaluate(result.best);
  result.winning = eval.campaign_for(result.best);
  result.evaluations = eval.runs();
  return result;
}

CoOptResult run_coopt(const sim::CampaignSpec& base, const SearchSpace& space,
                      const CoOptConfig& config) {
  Evaluator eval(base);
  return run_coopt(eval, space, config);
}

std::string coopt_report(const CoOptResult& result) {
  std::string out;
  out += "co-optimization report\n";
  out += "  baseline  " + to_string(result.baseline) + "  power_mw=" +
         format_mw(result.baseline_power_mw) + "\n";
  out += "  best      " + to_string(result.best) + "  power_mw=" +
         format_mw(result.best_power_mw) + "\n";
  out += "  guard_applied=" +
         std::string(result.guard_applied ? "true" : "false") +
         " evaluations=" + std::to_string(result.evaluations) +
         " steps=" + std::to_string(result.steps.size()) + "\n";
  out += "  trajectory (step candidate power_mw accepted improved):\n";
  for (const StepRecord& s : result.steps) {
    out += "    " + std::to_string(s.step) + " " + to_string(s.candidate) +
           " " + format_mw(s.power_mw) + (s.accepted ? " accepted" : "") +
           (s.improved ? " improved" : "") + "\n";
  }
  return out;
}

}  // namespace nocbt::opt
