#include "opt/optimizer.h"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/rng.h"

namespace nocbt::opt {

namespace {

/// The four coordinates a search moves along, in the fixed order the
/// deterministic algorithms scan them.
enum class Axis : int { kPlacement = 0, kMode, kWindow, kFormat };
constexpr int kNumAxes = 4;

std::size_t axis_size(const SearchSpace& space, Axis axis) {
  switch (axis) {
    case Axis::kPlacement: return space.placements.size();
    case Axis::kMode: return space.modes.size();
    case Axis::kWindow: return space.windows.size();
    case Axis::kFormat: return space.formats.size();
  }
  return 0;
}

Candidate with_value(Candidate c, const SearchSpace& space, Axis axis,
                     std::size_t index) {
  switch (axis) {
    case Axis::kPlacement: c.placement = space.placements[index]; break;
    case Axis::kMode: c.mode = space.modes[index]; break;
    case Axis::kWindow: c.window = space.windows[index]; break;
    case Axis::kFormat: c.format = space.formats[index]; break;
  }
  return c;
}

bool holds_value(const Candidate& c, const SearchSpace& space, Axis axis,
                 std::size_t index) {
  switch (axis) {
    case Axis::kPlacement: return c.placement == space.placements[index];
    case Axis::kMode: return c.mode == space.modes[index];
    case Axis::kWindow: return c.window == space.windows[index];
    case Axis::kFormat: return c.format == space.formats[index];
  }
  return false;
}

/// Shared best-so-far bookkeeping: score `c`, append the step record, and
/// fold it into (best, best_power). Returns the measured power.
double score_step(Evaluator& eval, const Candidate& c, std::uint32_t step,
                  SearchOutcome& out, std::vector<StepRecord>& steps) {
  const double power = eval.evaluate(c).power_mw;
  StepRecord rec;
  rec.step = step;
  rec.candidate = c;
  rec.power_mw = power;
  rec.improved = power < out.best_power_mw;
  if (rec.improved) {
    out.best = c;
    out.best_power_mw = power;
  }
  steps.push_back(std::move(rec));
  return power;
}

class RandomOptimizer final : public Optimizer {
 public:
  std::string_view name() const noexcept override { return "random"; }
  std::string_view description() const noexcept override {
    return "uniform i.i.d. sampling of the joint space (control search)";
  }

  SearchOutcome search(Evaluator& eval, const SearchSpace& space,
                       const CoOptConfig& config, const Candidate& incumbent,
                       double incumbent_power_mw) const override {
    SearchOutcome out;
    out.best = incumbent;
    out.best_power_mw = incumbent_power_mw;
    Rng rng(config.seed);
    for (std::uint32_t step = 0; step < config.max_evals; ++step) {
      Candidate c = incumbent;
      for (int a = 0; a < kNumAxes; ++a) {
        const Axis axis = static_cast<Axis>(a);
        const std::size_t n = axis_size(space, axis);
        c = with_value(std::move(c), space, axis,
                       static_cast<std::size_t>(
                           rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
      score_step(eval, c, step, out, out.steps);
      out.steps.back().accepted = out.steps.back().improved;
    }
    return out;
  }
};

class GreedyCoordinateOptimizer final : public Optimizer {
 public:
  std::string_view name() const noexcept override {
    return "greedy-coordinate";
  }
  std::string_view description() const noexcept override {
    return "coordinate descent: move each axis to its best value until a "
           "full pass stalls";
  }

  SearchOutcome search(Evaluator& eval, const SearchSpace& space,
                       const CoOptConfig& config, const Candidate& incumbent,
                       double incumbent_power_mw) const override {
    SearchOutcome out;
    out.best = incumbent;
    out.best_power_mw = incumbent_power_mw;
    Candidate current = incumbent;
    double current_power = incumbent_power_mw;
    std::uint32_t step = 0;
    bool pass_improved = true;
    while (pass_improved && step < config.max_evals) {
      pass_improved = false;
      for (int a = 0; a < kNumAxes && step < config.max_evals; ++a) {
        const Axis axis = static_cast<Axis>(a);
        // Scan every alternative on this axis, then move to the axis-best
        // when it strictly beats the current point.
        std::size_t best_index = 0;
        double best_power = current_power;
        bool moved = false;
        std::size_t best_step_at = 0;
        for (std::size_t i = 0;
             i < axis_size(space, axis) && step < config.max_evals; ++i) {
          if (holds_value(current, space, axis, i)) continue;
          const Candidate c = with_value(current, space, axis, i);
          const double power = score_step(eval, c, step++, out, out.steps);
          if (power < best_power) {
            best_power = power;
            best_index = i;
            moved = true;
            best_step_at = out.steps.size() - 1;
          }
        }
        if (moved) {
          current = with_value(std::move(current), space, axis, best_index);
          current_power = best_power;
          out.steps[best_step_at].accepted = true;
          pass_improved = true;
        }
      }
    }
    return out;
  }
};

class AnnealOptimizer final : public Optimizer {
 public:
  std::string_view name() const noexcept override { return "anneal"; }
  std::string_view description() const noexcept override {
    return "simulated annealing: single-axis moves, Metropolis acceptance, "
           "geometric cooling";
  }

  SearchOutcome search(Evaluator& eval, const SearchSpace& space,
                       const CoOptConfig& config, const Candidate& incumbent,
                       double incumbent_power_mw) const override {
    if (!(config.sa_cooling > 0.0) || config.sa_cooling > 1.0)
      throw std::invalid_argument(
          "anneal: sa_cooling must be in (0, 1], got " +
          std::to_string(config.sa_cooling));
    SearchOutcome out;
    out.best = incumbent;
    out.best_power_mw = incumbent_power_mw;

    // Axes with a single value cannot move; with none movable the space is
    // one point and the incumbent is already it.
    std::vector<Axis> movable;
    for (int a = 0; a < kNumAxes; ++a)
      if (axis_size(space, static_cast<Axis>(a)) > 1)
        movable.push_back(static_cast<Axis>(a));
    if (movable.empty()) return out;

    Rng rng(config.seed);
    Candidate current = incumbent;
    double current_power = incumbent_power_mw;
    double temperature = config.sa_temp > 0.0
                             ? config.sa_temp
                             : std::max(incumbent_power_mw * 0.02, 1e-9);
    for (std::uint32_t step = 0; step < config.max_evals; ++step) {
      // Neighbor: one random movable axis to a random *different* value.
      const Axis axis = movable[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(movable.size()) - 1))];
      const std::size_t n = axis_size(space, axis);
      std::size_t index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      while (holds_value(current, space, axis, index))
        index = (index + 1) % n;
      const Candidate c = with_value(current, space, axis, index);

      const double power = score_step(eval, c, step, out, out.steps);
      const double delta = power - current_power;
      // Metropolis rule: downhill always, uphill with exp(-delta/T). The
      // uniform draw happens only on the uphill branch, so schedules stay
      // reproducible step for step.
      const bool accept =
          delta <= 0.0 || rng.uniform(0.0, 1.0) < std::exp(-delta / temperature);
      if (accept) {
        current = c;
        current_power = power;
        out.steps.back().accepted = true;
      }
      temperature *= config.sa_cooling;
    }
    return out;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Optimizer>> list;

  Registry() {
    list.push_back(std::make_unique<RandomOptimizer>());
    list.push_back(std::make_unique<GreedyCoordinateOptimizer>());
    list.push_back(std::make_unique<AnnealOptimizer>());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const Optimizer* find_optimizer(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& o : reg.list)
    if (o->name() == name) return o.get();
  return nullptr;
}

const Optimizer& get_optimizer(std::string_view name) {
  if (const Optimizer* o = find_optimizer(name)) return *o;
  std::string known;
  for (const Optimizer* o : registered_optimizers()) {
    if (!known.empty()) known += ", ";
    known += o->name();
  }
  throw std::invalid_argument("get_optimizer: unknown optimizer '" +
                              std::string(name) + "' (registered: " + known +
                              ")");
}

std::vector<const Optimizer*> registered_optimizers() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<const Optimizer*> out;
  out.reserve(reg.list.size());
  for (const auto& o : reg.list) out.push_back(o.get());
  return out;
}

std::vector<std::string> registered_optimizer_names() {
  std::vector<std::string> out;
  for (const Optimizer* o : registered_optimizers()) out.emplace_back(o->name());
  return out;
}

void register_optimizer(std::unique_ptr<Optimizer> optimizer) {
  if (!optimizer)
    throw std::invalid_argument("register_optimizer: null optimizer");
  if (optimizer->name().empty())
    throw std::invalid_argument("register_optimizer: empty optimizer name");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& o : reg.list)
    if (o->name() == optimizer->name())
      throw std::invalid_argument("register_optimizer: duplicate name '" +
                                  std::string(optimizer->name()) + "'");
  reg.list.push_back(std::move(optimizer));
}

}  // namespace nocbt::opt
