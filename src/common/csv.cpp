#include "common/csv.h"

#include <stdexcept>

namespace nocbt {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& headers)
    : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  write_row(cells);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

}  // namespace nocbt
