#include "common/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.h"

namespace nocbt {

namespace {

/// Width gate that must run before any `bits - 1` shift: the member-init
/// list evaluates before the constructor body, so validating there is too
/// late — bits = 0 would already have shifted by 4294967295 (UB).
unsigned checked_bits(unsigned bits) {
  if (bits < 2 || bits > 16)
    throw std::invalid_argument("FixedPointCodec: bits must be in [2, 16]");
  return bits;
}

}  // namespace

FixedPointCodec::FixedPointCodec(unsigned bits, double scale)
    : bits_(checked_bits(bits)),
      scale_(scale),
      max_code_((std::int32_t{1} << (bits - 1)) - 1),
      mask_(static_cast<std::uint32_t>(low_mask(bits))) {
  if (!(scale > 0.0))
    throw std::invalid_argument("FixedPointCodec: scale must be positive");
}

std::int32_t FixedPointCodec::quantize(double value) const noexcept {
  const double scaled = value / scale_;
  const double rounded = std::nearbyint(scaled);
  const double clamped = std::clamp(rounded, static_cast<double>(-max_code_),
                                    static_cast<double>(max_code_));
  return static_cast<std::int32_t>(clamped);
}

std::int32_t FixedPointCodec::from_pattern(std::uint32_t pattern) const noexcept {
  pattern &= mask_;
  const std::uint32_t sign_bit = std::uint32_t{1} << (bits_ - 1);
  if (pattern & sign_bit) {
    // Sign-extend.
    return static_cast<std::int32_t>(pattern | ~mask_);
  }
  return static_cast<std::int32_t>(pattern);
}

FixedPointCodec FixedPointCodec::calibrate(unsigned bits,
                                           std::span<const float> values) {
  // Construct first so the width is validated before the max_code() shift.
  FixedPointCodec codec(bits, 1.0);
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs > 0.0f)
    codec.scale_ = static_cast<double>(max_abs) / codec.max_code_;
  return codec;
}

std::vector<std::uint32_t> quantize_all(const FixedPointCodec& codec,
                                        std::span<const float> values) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (float v : values) out.push_back(codec.quantize_to_pattern(v));
  return out;
}

}  // namespace nocbt
