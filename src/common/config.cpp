#include "common/config.h"

#include <stdexcept>

namespace nocbt {

Options Options::parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("Options: expected key=value, got '" + arg + "'");
    opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return opts;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Options: '" + key + "' is not an integer: " +
                                it->second);
  }
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Options: '" + key + "' is not a number: " +
                                it->second);
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: '" + key + "' is not a bool: " + v);
}

}  // namespace nocbt
