#include "common/config.h"

#include <fstream>
#include <stdexcept>

namespace nocbt {

std::int64_t parse_int_strict(const std::string& s) {
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(s, &pos);
  if (pos != s.size())
    throw std::invalid_argument("parse_int_strict: trailing characters in '" +
                                s + "'");
  return v;
}

double parse_double_strict(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size())
    throw std::invalid_argument(
        "parse_double_strict: trailing characters in '" + s + "'");
  return v;
}

std::vector<std::string> split_csv_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

Options Options::parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("Options: expected key=value, got '" + arg + "'");
    opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return opts;
}

Options Options::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("Options::parse_file: cannot open " + path);

  const auto trim = [](std::string s) {
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos) return std::string();
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
  };

  Options opts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string entry = trim(line);
    if (entry.empty() || entry[0] == '#') continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("Options::parse_file: " + path + ":" +
                                  std::to_string(lineno) +
                                  ": expected key=value, got '" + entry + "'");
    opts.values_[trim(entry.substr(0, eq))] = trim(entry.substr(eq + 1));
  }
  return opts;
}

void Options::merge_defaults(const Options& defaults) {
  for (const auto& [key, value] : defaults.values_)
    values_.emplace(key, value);
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    // Strict parse: stoll alone accepts trailing garbage ("32abc" parses
    // as 32, silently running a typo'd sweep).
    return parse_int_strict(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Options: '" + key + "' is not an integer: " +
                                it->second);
  }
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return parse_double_strict(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Options: '" + key + "' is not a number: " +
                                it->second);
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: '" + key + "' is not a bool: " + v);
}

}  // namespace nocbt
