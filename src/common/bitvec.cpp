#include "common/bitvec.h"

namespace nocbt {

std::uint64_t BitVec::get_field(unsigned pos, unsigned bits) const noexcept {
  if (bits == 0) return 0;
  const unsigned word = pos >> 6;
  const unsigned shift = pos & 63;
  std::uint64_t value = words_[word] >> shift;
  if (shift + bits > 64 && word + 1 < words_.size())
    value |= words_[word + 1] << (64 - shift);
  return value & low_mask(bits);
}

void BitVec::set_field(unsigned pos, unsigned bits, std::uint64_t value) noexcept {
  if (bits == 0) return;
  value &= low_mask(bits);
  const unsigned word = pos >> 6;
  const unsigned shift = pos & 63;
  words_[word] = (words_[word] & ~(low_mask(bits) << shift)) | (value << shift);
  if (shift + bits > 64 && word + 1 < words_.size()) {
    const unsigned high_bits = shift + bits - 64;
    words_[word + 1] =
        (words_[word + 1] & ~low_mask(high_bits)) | (value >> (64 - shift));
  }
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(width_);
  for (unsigned i = width_; i-- > 0;) s.push_back(get_bit(i) ? '1' : '0');
  return s;
}

}  // namespace nocbt
