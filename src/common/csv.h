#pragma once
// Minimal CSV writer for traffic traces and per-bit-position statistics
// (the data behind Figs. 10-11 and the packet trace output of Fig. 7).

#include <fstream>
#include <string>
#include <vector>

namespace nocbt {

/// Streams rows of comma-separated values to a file. Cells containing a
/// comma, quote, or newline are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);

  /// Append one data row.
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace nocbt
