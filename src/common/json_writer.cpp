#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nocbt {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_)
    throw std::logic_error("JsonWriter: object member needs a key first");
  if (need_comma_ && !key_pending_) out_ += ',';
  key_pending_ = false;
}

void JsonWriter::open(Frame frame, char bracket) {
  before_value();
  out_ += bracket;
  stack_.push_back(frame);
  need_comma_ = false;
}

void JsonWriter::close(Frame frame, char bracket) {
  if (stack_.empty() || stack_.back() != frame)
    throw std::logic_error("JsonWriter: mismatched container close");
  if (key_pending_)
    throw std::logic_error("JsonWriter: key without a value");
  stack_.pop_back();
  out_ += bracket;
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  open(Frame::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(Frame::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(Frame::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(Frame::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Frame::kObject)
    throw std::logic_error("JsonWriter: key() outside an object");
  if (key_pending_) throw std::logic_error("JsonWriter: key after key");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::take() {
  if (!done_ || !stack_.empty())
    throw std::logic_error("JsonWriter: document incomplete");
  done_ = false;
  need_comma_ = false;
  return std::move(out_);
}

}  // namespace nocbt
