#pragma once
// Low-level bit manipulation helpers shared across the library.
//
// Everything here is constexpr/noexcept and header-only: these functions sit
// on the hot path of bit-transition counting (XOR + popcount per flit per
// link per cycle).

#include <bit>
#include <cstdint>
#include <span>

#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error \
    "nocbt requires C++20 <bit> (std::popcount / __cpp_lib_bitops >= 201907L); \
compile with -std=c++20 or newer (the CMake build sets this automatically)"
#endif

namespace nocbt {

/// Number of '1' bits in an 8-bit pattern.
[[nodiscard]] constexpr int popcount8(std::uint8_t v) noexcept {
  return std::popcount(static_cast<unsigned>(v));
}

/// Number of '1' bits in a 32-bit pattern.
[[nodiscard]] constexpr int popcount32(std::uint32_t v) noexcept {
  return std::popcount(v);
}

/// Number of '1' bits in a 64-bit pattern.
[[nodiscard]] constexpr int popcount64(std::uint64_t v) noexcept {
  return std::popcount(v);
}

/// Bit transitions between two equal-width words: the number of wire
/// positions whose value differs ('0'->'1' or '1'->'0'), i.e. popcount(XOR).
[[nodiscard]] constexpr int transitions(std::uint64_t a, std::uint64_t b) noexcept {
  return std::popcount(a ^ b);
}

/// Bit transitions between two equal-length word sequences.
[[nodiscard]] inline int transitions(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b) noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] ^ b[i]);
  return total;
}

/// Mask with the low `bits` bits set (bits in [0, 64]).
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Classic SWAR ("SIMD Within A Register") popcount for 32-bit words.
///
/// Functionally identical to std::popcount; kept as an explicit reference
/// model of the hardware pop-count stage of the ordering unit (paper Fig. 14
/// names SWAR as the implemented circuit), and used by tests and by the
/// gate-level cost model to derive adder counts.
[[nodiscard]] constexpr int swar_popcount32(std::uint32_t v) noexcept {
  v = v - ((v >> 1) & 0x55555555u);
  v = (v & 0x33333333u) + ((v >> 2) & 0x33333333u);
  v = (v + (v >> 4)) & 0x0F0F0F0Fu;
  return static_cast<int>((v * 0x01010101u) >> 24);
}

/// Number of bits needed to represent values in [0, n-1]; at least 1.
[[nodiscard]] constexpr unsigned index_bits(std::size_t n) noexcept {
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace nocbt
