#pragma once
// IEEE-754 binary32 bit-pattern access.
//
// The ordering technique keys on the raw bit pattern of each transmitted
// value; for float-32 traffic that is the IEEE-754 encoding. These helpers
// expose the pattern and its sign/exponent/mantissa fields (used by the
// Fig. 10 bit-distribution analysis).

#include <bit>
#include <cstdint>

namespace nocbt {

/// Raw IEEE-754 bit pattern of a float.
[[nodiscard]] constexpr std::uint32_t float_to_bits(float f) noexcept {
  return std::bit_cast<std::uint32_t>(f);
}

/// Float from a raw IEEE-754 bit pattern.
[[nodiscard]] constexpr float bits_to_float(std::uint32_t bits) noexcept {
  return std::bit_cast<float>(bits);
}

/// Sign bit (bit 31).
[[nodiscard]] constexpr bool float_sign(std::uint32_t bits) noexcept {
  return (bits >> 31) & 1u;
}

/// Biased 8-bit exponent (bits 30..23).
[[nodiscard]] constexpr std::uint32_t float_exponent(std::uint32_t bits) noexcept {
  return (bits >> 23) & 0xFFu;
}

/// 23-bit mantissa (bits 22..0).
[[nodiscard]] constexpr std::uint32_t float_mantissa(std::uint32_t bits) noexcept {
  return bits & 0x7FFFFFu;
}

/// Number of '1' bits in the IEEE-754 pattern of `f` — the ordering key for
/// float-32 data.
[[nodiscard]] constexpr int float_popcount(float f) noexcept {
  return std::popcount(float_to_bits(f));
}

}  // namespace nocbt
