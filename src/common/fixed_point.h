#pragma once
// Signed Q-format fixed-point codec (default: 8-bit, the paper's "fixed-8").
//
// The paper transmits 8-bit fixed-point values as two's-complement patterns;
// the ordering key is the popcount of that pattern. We use a symmetric
// per-tensor scale: real = code * scale, code in [-(2^(B-1)-1), 2^(B-1)-1]
// (the most negative code is unused so the range is symmetric, the common
// convention for DNN quantization).

#include <cstdint>
#include <span>
#include <vector>

namespace nocbt {

/// Quantizer for B-bit signed fixed point with a fixed scale.
class FixedPointCodec {
 public:
  /// `bits` in [2, 16]; `scale` is the real value of code 1 and must be > 0.
  FixedPointCodec(unsigned bits, double scale);

  [[nodiscard]] unsigned bits() const noexcept { return bits_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] std::int32_t max_code() const noexcept { return max_code_; }
  [[nodiscard]] std::int32_t min_code() const noexcept { return -max_code_; }

  /// Quantize a real value: round to nearest code, saturate at the range ends.
  [[nodiscard]] std::int32_t quantize(double value) const noexcept;

  /// Real value of a code.
  [[nodiscard]] double dequantize(std::int32_t code) const noexcept {
    return static_cast<double>(code) * scale_;
  }

  /// Two's-complement bit pattern (low `bits()` bits) of a code.
  [[nodiscard]] std::uint32_t to_pattern(std::int32_t code) const noexcept {
    return static_cast<std::uint32_t>(code) & mask_;
  }

  /// Code from a two's-complement pattern (sign-extends bit bits()-1).
  [[nodiscard]] std::int32_t from_pattern(std::uint32_t pattern) const noexcept;

  /// Quantize directly to a bit pattern.
  [[nodiscard]] std::uint32_t quantize_to_pattern(double value) const noexcept {
    return to_pattern(quantize(value));
  }

  /// Scale chosen so that max(|values|) maps to the largest code
  /// (symmetric per-tensor calibration). Returns a codec with that scale;
  /// for an all-zero span the scale falls back to 1.
  static FixedPointCodec calibrate(unsigned bits, std::span<const float> values);

 private:
  unsigned bits_;
  double scale_;
  std::int32_t max_code_;
  std::uint32_t mask_;
};

/// Quantize a whole buffer to patterns with one shared codec.
[[nodiscard]] std::vector<std::uint32_t> quantize_all(const FixedPointCodec& codec,
                                                      std::span<const float> values);

}  // namespace nocbt
