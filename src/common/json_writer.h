#pragma once
// Minimal streaming JSON writer for machine-readable reports (the campaign
// runner's scenario sweeps). Build-only — there is deliberately no parser;
// reports are consumed by external tooling, not read back by the simulator.
//
//   JsonWriter json;
//   json.begin_object()
//       .key("campaign").value("smoke")
//       .key("scenarios").begin_array() ... .end_array()
//       .end_object();
//   std::string text = json.take();
//
// Misuse (a value where a key is required, unbalanced end_*, taking an
// unfinished document) throws std::logic_error so report-shape bugs fail
// loudly in tests instead of producing silently invalid JSON.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nocbt {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member name inside an object; must be followed by exactly one value
  /// (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  /// Doubles render with enough digits to round-trip (%.17g); NaN and
  /// infinities have no JSON spelling and render as null.
  JsonWriter& value(double v);
  JsonWriter& null();

  /// Finished document. Throws std::logic_error if containers are still
  /// open or nothing was written.
  [[nodiscard]] std::string take();

  /// JSON string escaping (quotes, backslash, control characters); other
  /// bytes pass through untouched, so UTF-8 text stays UTF-8.
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void open(Frame frame, char bracket);
  void close(Frame frame, char bracket);

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;   // key() emitted, value not yet written
  bool need_comma_ = false;    // a sibling precedes the next element
  bool done_ = false;          // top-level value completed
};

}  // namespace nocbt
