#include "common/hash.h"

#include <cstring>

namespace nocbt {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv_step(std::uint64_t h, unsigned char byte) noexcept {
  return (h ^ byte) * kFnvPrime;
}

std::string to_hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

void StableHash::add_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    lo_ = fnv_step(lo_, bytes[i]);
    hi_ = fnv_step(hi_, static_cast<unsigned char>(bytes[i] ^ 0x5Au));
  }
}

void StableHash::add(std::string_view s) noexcept {
  add(static_cast<std::uint64_t>(s.size()));
  add_bytes(s.data(), s.size());
}

void StableHash::add(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v & 0xFF);
    v >>= 8;
  }
  add_bytes(bytes, sizeof(bytes));
}

void StableHash::add(double v) noexcept {
  if (v == 0.0) v = 0.0;  // -0.0 and 0.0 compare equal; hash them equal too
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add(bits);
}

std::string StableHash::hex() const { return to_hex16(hi_) + to_hex16(lo_); }

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) h = fnv_step(h, static_cast<unsigned char>(c));
  return h;
}

std::string fnv1a64_hex(std::string_view bytes) {
  return to_hex16(fnv1a64(bytes));
}

}  // namespace nocbt
