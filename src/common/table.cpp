#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace nocbt {

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_separator = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = render_separator();
  out += render_row(headers_);
  out += render_separator();
  for (const auto& row : rows_) out += render_row(row);
  out += render_separator();
  return out;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

}  // namespace nocbt
