#pragma once
// ASCII table rendering for the benchmark harness: every bench binary prints
// the rows of the paper table/figure it regenerates through this printer so
// output is uniform and easy to diff against EXPERIMENTS.md.

#include <string>
#include <vector>

namespace nocbt {

/// Column-aligned ASCII table with a header row.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append one row; the cell count should match the header count.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with box-drawing separators.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("%.2f" style) without iostream noise.
[[nodiscard]] std::string format_double(double value, int decimals);

/// Format a fraction as a percentage string, e.g. 0.2038 -> "20.38%".
[[nodiscard]] std::string format_percent(double fraction, int decimals = 2);

}  // namespace nocbt
