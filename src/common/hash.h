#pragma once
// Stable content hashing for persisted stores (the campaign engine's
// content-addressed scenario cache and checkpoint journals).
//
// StableHash is a 128-bit FNV-1a variant: two independent 64-bit FNV-1a
// lanes over the same byte stream, seeded with distinct offset bases. The
// digest depends only on the fed bytes — never on platform, pointer
// values, std::hash salting, or process lifetime — so a hash computed
// today identifies the same content in a file written last week by a
// different build. The exact digests are pinned by known-answer tests;
// changing the algorithm is a cache-format break and must bump the format
// version of every store built on it.
//
// Typed add() overloads delimit their input (strings are length-prefixed,
// integers are fed as fixed-width little-endian bytes), so adjacent fields
// cannot alias each other ("ab" + "c" != "a" + "bc") and a field sequence
// has one unambiguous encoding.

#include <cstdint>
#include <string>
#include <string_view>

namespace nocbt {

class StableHash {
 public:
  /// Feed raw bytes (no delimiting — prefer the typed overloads).
  void add_bytes(const void* data, std::size_t size) noexcept;

  /// Length-prefixed, so consecutive strings cannot alias.
  void add(std::string_view s) noexcept;
  void add(const std::string& s) noexcept { add(std::string_view(s)); }
  void add(const char* s) noexcept { add(std::string_view(s)); }

  void add(std::uint64_t v) noexcept;
  void add(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(std::uint32_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(std::int32_t v) noexcept {
    add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  void add(bool b) noexcept { add(static_cast<std::uint64_t>(b ? 1 : 0)); }
  /// Hashed by bit pattern (normalizing -0.0 to 0.0 so the two equal
  /// values share a digest; NaNs are not expected in hashed domains).
  void add(double v) noexcept;

  /// 32 lowercase hex characters (hi lane then lo lane).
  [[nodiscard]] std::string hex() const;

  [[nodiscard]] std::uint64_t lane_hi() const noexcept { return hi_; }
  [[nodiscard]] std::uint64_t lane_lo() const noexcept { return lo_; }

 private:
  // FNV-1a 64-bit offset basis / prime; the hi lane starts from a distinct
  // fixed offset so the lanes decorrelate.
  std::uint64_t lo_ = 0xcbf29ce484222325ull;
  std::uint64_t hi_ = 0x6c62272e07bb0142ull;
};

/// One-shot FNV-1a 64 over a byte string — the per-record checksum used by
/// the cache/journal line format (16 lowercase hex characters).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;
[[nodiscard]] std::string fnv1a64_hex(std::string_view bytes);

}  // namespace nocbt
