#pragma once
// The two transmitted data formats of the paper's evaluation: 32-bit IEEE
// float ("float-32") and 8-bit two's-complement fixed point ("fixed-8").
// A value's bit pattern is always carried in the low `value_bits()` bits of
// a uint32_t.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bitops.h"

namespace nocbt {

enum class DataFormat : std::uint8_t { kFloat32, kFixed8 };

/// Payload bits per transmitted value.
[[nodiscard]] constexpr unsigned value_bits(DataFormat format) noexcept {
  return format == DataFormat::kFloat32 ? 32u : 8u;
}

/// Popcount of a value pattern in the given format (the ordering key).
[[nodiscard]] constexpr int pattern_popcount(std::uint32_t pattern,
                                             DataFormat format) noexcept {
  return format == DataFormat::kFloat32
             ? popcount32(pattern)
             : popcount8(static_cast<std::uint8_t>(pattern));
}

[[nodiscard]] inline std::string to_string(DataFormat format) {
  return format == DataFormat::kFloat32 ? "float-32" : "fixed-8";
}

[[nodiscard]] inline DataFormat parse_data_format(const std::string& s) {
  if (s == "float32" || s == "float-32" || s == "fp32") return DataFormat::kFloat32;
  if (s == "fixed8" || s == "fixed-8" || s == "int8") return DataFormat::kFixed8;
  throw std::invalid_argument("parse_data_format: unknown format '" + s + "'");
}

}  // namespace nocbt
