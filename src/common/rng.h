#pragma once
// Seeded random number generation.
//
// Every stochastic component (weight init, synthetic dataset, traffic
// jitter) draws from an explicitly seeded Rng so that all experiments are
// bit-reproducible. There is intentionally no global generator.

#include <cstdint>
#include <random>

namespace nocbt {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to the given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Laplace(0, b): the classic heavy-at-zero distribution of trained DNN
  /// weights (used for "trained-like" weight synthesis).
  [[nodiscard]] double laplace(double b) {
    const double u = uniform(-0.5, 0.5);
    const double sign = u < 0 ? -1.0 : 1.0;
    return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
  }

  /// Bernoulli draw.
  [[nodiscard]] bool flip(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t bits64() { return engine_(); }

  /// Derive an independent child generator (stable split for sub-components).
  [[nodiscard]] Rng split() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ull); }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nocbt
