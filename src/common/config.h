#pragma once
// Tiny "key=value" option parser used by the example binaries so every
// example can be reconfigured from the command line without a CLI framework.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace nocbt {

/// Strict full-string numeric parses: the entire string must be consumed,
/// so trailing garbage ("32abc", "0.5x") throws std::invalid_argument
/// instead of silently truncating. The single home of the stoll/stod +
/// pos-check idiom — Options getters and other CLI parsers build on these.
[[nodiscard]] std::int64_t parse_int_strict(const std::string& s);
[[nodiscard]] double parse_double_strict(const std::string& s);

/// Split a comma-separated list into its non-empty elements ("a,,b" ->
/// {"a", "b"}, "" -> {}). The shared helper behind every list-valued CLI
/// knob (generators=, meshes=, modes=, ...).
[[nodiscard]] std::vector<std::string> split_csv_list(const std::string& csv);

/// Parses arguments of the form `key=value`; anything else throws.
/// Typed getters fall back to a default when the key is absent and throw
/// std::invalid_argument on malformed values.
class Options {
 public:
  Options() = default;

  /// Parse from argv[1..argc-1].
  static Options parse(int argc, char** argv);

  /// Parse a config file with one `key=value` per line. Blank lines and
  /// lines starting with '#' are skipped; CRLF endings and surrounding
  /// whitespace are tolerated. Throws std::runtime_error on a missing file
  /// and std::invalid_argument on a malformed line.
  static Options parse_file(const std::string& path);

  /// Adopt every key of `defaults` that this Options does not set yet —
  /// the CLI merge rule: explicit arguments override the config file.
  void merge_defaults(const Options& defaults);

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// All parsed key/value pairs (for echoing the configuration).
  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace nocbt
