#pragma once
// Streaming statistics and histograms used by the evaluation harness.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nocbt {

/// Numerically stable running mean / variance / min / max (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one.
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin integer histogram over [0, num_bins); out-of-range samples are
/// clamped into the edge bins.
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins) : bins_(num_bins, 0) {}

  void add(std::int64_t value) noexcept;

  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const noexcept { return bins_[i]; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept;
  /// Smallest bin index b such that at least `q` (0..1) of the mass is at or
  /// below b; 0 for an empty histogram.
  [[nodiscard]] std::size_t quantile(double q) const noexcept;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace nocbt
