#pragma once
// BitVec: a fixed-width bit vector backed by 64-bit words.
//
// BitVec is the payload type of a flit: a 512-bit link carries a 512-bit
// BitVec per flit, a 128-bit link a 128-bit one. The class supports the two
// operations the simulator needs on its hot path — XOR-transition counting
// against another vector (BT recording, paper Fig. 8) and bit-field
// read/write (placing value patterns into flit slots).

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.h"

namespace nocbt {

/// Fixed-width bit vector. Bit 0 is the least-significant bit of word 0.
/// Unused high bits of the last word are always kept zero, so whole-word
/// operations (XOR/popcount/compare) need no masking.
class BitVec {
 public:
  BitVec() = default;

  /// Construct an all-zero vector of `width_bits` bits.
  explicit BitVec(unsigned width_bits)
      : width_(width_bits), words_((width_bits + 63) / 64, 0) {}

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  /// Read a single bit (pos < width()).
  [[nodiscard]] bool get_bit(unsigned pos) const noexcept {
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Write a single bit (pos < width()).
  void set_bit(unsigned pos, bool value) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (pos & 63);
    if (value)
      words_[pos >> 6] |= mask;
    else
      words_[pos >> 6] &= ~mask;
  }

  /// Read `bits` (<= 64) bits starting at bit offset `pos`.
  [[nodiscard]] std::uint64_t get_field(unsigned pos, unsigned bits) const noexcept;

  /// Write the low `bits` (<= 64) bits of `value` at bit offset `pos`.
  /// Bits of `value` above `bits` are ignored.
  void set_field(unsigned pos, unsigned bits, std::uint64_t value) noexcept;

  /// Number of '1' bits in the whole vector.
  [[nodiscard]] int popcount() const noexcept {
    int total = 0;
    for (std::uint64_t w : words_) total += popcount64(w);
    return total;
  }

  /// Bit transitions against another vector of the same width:
  /// popcount(this XOR other). This is the quantity accumulated per link by
  /// the BT recorder.
  [[nodiscard]] int transitions_to(const BitVec& other) const noexcept {
    int total = 0;
    const std::size_t n = words_.size() < other.words_.size() ? words_.size()
                                                              : other.words_.size();
    for (std::size_t i = 0; i < n; ++i)
      total += popcount64(words_[i] ^ other.words_[i]);
    return total;
  }

  /// Set every bit to zero, keeping the width.
  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.width_ == b.width_ && a.words_ == b.words_;
  }

  /// Binary string, most-significant bit first (for debugging and Fig. 9
  /// style dumps).
  [[nodiscard]] std::string to_string() const;

 private:
  unsigned width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nocbt
