#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace nocbt {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void Histogram::add(std::int64_t value) noexcept {
  if (bins_.empty()) return;
  const auto last = static_cast<std::int64_t>(bins_.size()) - 1;
  const std::int64_t idx = std::clamp<std::int64_t>(value, 0, last);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i)
    weighted += static_cast<double>(i) * static_cast<double>(bins_[i]);
  return weighted / static_cast<double>(total_);
}

std::size_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cumulative += static_cast<double>(bins_[i]);
    if (cumulative >= target) return i;
  }
  return bins_.size() - 1;
}

}  // namespace nocbt
