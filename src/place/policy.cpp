#include "place/policy.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace nocbt::place {

namespace {

/// Shared wrap-around indexing over a policy-specific PE order.
std::vector<std::int32_t> take_modular(const std::vector<std::int32_t>& order,
                                       std::int32_t n_tiles,
                                       std::int64_t tile_offset) {
  if (order.empty())
    throw std::invalid_argument("PlacementPolicy: mesh has no PE nodes");
  if (n_tiles < 1)
    throw std::invalid_argument("PlacementPolicy: n_tiles must be >= 1");
  std::vector<std::int32_t> pes;
  pes.reserve(static_cast<std::size_t>(n_tiles));
  for (std::int32_t i = 0; i < n_tiles; ++i)
    pes.push_back(order[static_cast<std::size_t>(
        (tile_offset + i) % static_cast<std::int64_t>(order.size()))]);
  return pes;
}

class RowMajorPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const noexcept override { return "rowmajor"; }
  std::string_view description() const noexcept override {
    return "PEs in node-id order (row-major across the mesh)";
  }
  std::vector<std::int32_t> assign(const noc::MeshShape&,
                                   const accel::NodeRoles& roles,
                                   std::int32_t n_tiles,
                                   std::int64_t tile_offset) const override {
    return take_modular(roles.pes, n_tiles, tile_offset);
  }
};

class SnakePolicy final : public PlacementPolicy {
 public:
  std::string_view name() const noexcept override { return "snake"; }
  std::string_view description() const noexcept override {
    return "serpentine rows: even rows west->east, odd rows east->west";
  }
  std::vector<std::int32_t> assign(const noc::MeshShape& shape,
                                   const accel::NodeRoles& roles,
                                   std::int32_t n_tiles,
                                   std::int64_t tile_offset) const override {
    std::vector<std::int32_t> order;
    order.reserve(roles.pes.size());
    for (std::int32_t y = 0; y < shape.rows(); ++y) {
      for (std::int32_t i = 0; i < shape.cols(); ++i) {
        const std::int32_t x = (y % 2 == 0) ? i : shape.cols() - 1 - i;
        const std::int32_t node = shape.node_at(noc::Coord{x, y});
        if (std::binary_search(roles.mcs.begin(), roles.mcs.end(), node))
          continue;
        order.push_back(node);
      }
    }
    return take_modular(order, n_tiles, tile_offset);
  }
};

class NearMcPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const noexcept override { return "nearmc"; }
  std::string_view description() const noexcept override {
    return "PEs sorted by distance to their nearest MC (ties to node id)";
  }
  std::vector<std::int32_t> assign(const noc::MeshShape& shape,
                                   const accel::NodeRoles& roles,
                                   std::int32_t n_tiles,
                                   std::int64_t tile_offset) const override {
    std::vector<std::int32_t> order = roles.pes;
    const std::vector<std::size_t> nearest =
        accel::nearest_mc_index(shape, roles);
    auto dist_to_mc = [&](std::int32_t pe) {
      return shape.manhattan(pe, roles.mcs[nearest[static_cast<std::size_t>(pe)]]);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return dist_to_mc(a) < dist_to_mc(b);
                     });
    return take_modular(order, n_tiles, tile_offset);
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<PlacementPolicy>> list;

  Registry() {
    list.push_back(std::make_unique<RowMajorPolicy>());
    list.push_back(std::make_unique<SnakePolicy>());
    list.push_back(std::make_unique<NearMcPolicy>());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const PlacementPolicy* find_policy(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& p : reg.list)
    if (p->name() == name) return p.get();
  return nullptr;
}

const PlacementPolicy& get_policy(std::string_view name) {
  if (const PlacementPolicy* p = find_policy(name)) return *p;
  std::string known;
  for (const PlacementPolicy* p : registered_policies()) {
    if (!known.empty()) known += ", ";
    known += p->name();
  }
  throw std::invalid_argument("get_policy: unknown placement policy '" +
                              std::string(name) + "' (registered: " + known +
                              ")");
}

std::vector<const PlacementPolicy*> registered_policies() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<const PlacementPolicy*> out;
  out.reserve(reg.list.size());
  for (const auto& p : reg.list) out.push_back(p.get());
  return out;
}

std::vector<std::string> registered_policy_names() {
  std::vector<std::string> out;
  for (const PlacementPolicy* p : registered_policies())
    out.emplace_back(p->name());
  return out;
}

void register_policy(std::unique_ptr<PlacementPolicy> policy) {
  if (!policy) throw std::invalid_argument("register_policy: null policy");
  if (policy->name().empty())
    throw std::invalid_argument("register_policy: empty policy name");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& p : reg.list)
    if (p->name() == policy->name())
      throw std::invalid_argument("register_policy: duplicate name '" +
                                  std::string(policy->name()) + "'");
  reg.list.push_back(std::move(policy));
}

}  // namespace nocbt::place
