#pragma once
// Pluggable placement policies: in which order the mesh's PE tiles are
// handed out to layer tiles. Mirrors the OrderingStrategy registry — a
// policy is a registered, stateless, thread-safe pure function, and new
// policies become sweepable from the campaign runner by name.
//
// Built-ins:
//   rowmajor  PEs in node-id order (row-major across the mesh)
//   snake     serpentine rows (even rows west->east, odd rows east->west),
//             keeping consecutive tiles physically adjacent
//   nearmc    PEs sorted by distance to their nearest memory controller,
//             so early tiles sit next to the MCs that feed them
//
// All built-ins wrap around: tile i lands on the policy's PE order at
// index (tile_offset + i) mod |PEs|, so a deep model reuses tiles while
// consecutive layers stay on disjoint PEs when the mesh is large enough.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "accel/mapping.h"
#include "noc/routing.h"

namespace nocbt::place {

/// One placement policy. Implementations must be stateless and
/// thread-safe: assign() is called concurrently from campaign worker
/// threads and must be a deterministic pure function of its arguments.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// PE nodes for `n_tiles` consecutive tiles of one op, given that
  /// `tile_offset` tiles of the same model were placed before them.
  /// Every returned node is one of roles.pes.
  [[nodiscard]] virtual std::vector<std::int32_t> assign(
      const noc::MeshShape& shape, const accel::NodeRoles& roles,
      std::int32_t n_tiles, std::int64_t tile_offset) const = 0;
};

/// Registered policy by name, or nullptr. Thread-safe.
[[nodiscard]] const PlacementPolicy* find_policy(std::string_view name);

/// Registered policy by name; throws std::invalid_argument (listing the
/// registered names) when absent.
[[nodiscard]] const PlacementPolicy& get_policy(std::string_view name);

/// Snapshot of every registered policy, registration order. The pointers
/// stay valid for the process lifetime (policies are never removed).
[[nodiscard]] std::vector<const PlacementPolicy*> registered_policies();

/// Names of every registered policy, registration order — the enumeration
/// hook the co-optimizer and sweep front-ends build their placement axis
/// from (get_policy accepts each returned name).
[[nodiscard]] std::vector<std::string> registered_policy_names();

/// Add a policy to the registry. Throws std::invalid_argument on a null
/// policy or a duplicate/empty name.
void register_policy(std::unique_ptr<PlacementPolicy> policy);

}  // namespace nocbt::place
