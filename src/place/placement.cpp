#include "place/placement.h"

#include <algorithm>
#include <stdexcept>

#include "dnn/conv2d.h"
#include "dnn/depthwise_conv2d.h"
#include "dnn/linear.h"
#include "dnn/residual.h"

namespace nocbt::place {

namespace {

/// Unit-major weight stream of a layer: weights_per_unit-1 weight values
/// followed by the unit's bias, for every output unit. The weight tensors
/// are NCHW with the output dimension outermost, so each unit's slice is
/// contiguous.
std::vector<float> unit_major_weights(const dnn::Tensor& weight,
                                      const dnn::Tensor& bias,
                                      std::int32_t units,
                                      std::int64_t values_per_unit) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(units) *
              static_cast<std::size_t>(values_per_unit + 1));
  const std::span<const float> w = weight.data();
  for (std::int32_t u = 0; u < units; ++u) {
    const auto begin = static_cast<std::size_t>(u) *
                       static_cast<std::size_t>(values_per_unit);
    out.insert(out.end(), w.begin() + static_cast<std::ptrdiff_t>(begin),
               w.begin() + static_cast<std::ptrdiff_t>(begin) +
                   static_cast<std::ptrdiff_t>(values_per_unit));
    out.push_back(bias.at(u, 0, 0, 0));
  }
  return out;
}

class Walker {
 public:
  Walker(const noc::MeshShape& mesh, const accel::NodeRoles& roles,
         const PlacementPolicy& policy, std::int32_t tiles_per_layer)
      : policy_(policy),
        tiles_per_layer_(tiles_per_layer),
        nearest_(accel::nearest_mc_index(mesh, roles)) {
    placement_.mesh = mesh;
    placement_.roles = roles;
  }

  Placement run(const dnn::Sequential& model, dnn::Shape input) {
    cur_ = input;
    for (std::size_t i = 0; i < model.size(); ++i) visit(model.layer(i));
    if (placement_.ops.empty())
      throw std::invalid_argument("place_model: model has no weighted layers");
    return std::move(placement_);
  }

 private:
  void visit(const dnn::Layer& layer) {
    switch (layer.kind()) {
      case dnn::LayerKind::kConv2d:
        visit_conv(static_cast<const dnn::Conv2d&>(layer));
        break;
      case dnn::LayerKind::kDepthwiseConv2d:
        visit_depthwise(static_cast<const dnn::DepthwiseConv2d&>(layer));
        break;
      case dnn::LayerKind::kLinear:
        visit_linear(static_cast<const dnn::Linear&>(layer));
        break;
      case dnn::LayerKind::kResidual:
        visit_residual(static_cast<const dnn::Residual&>(layer));
        break;
      default:
        // Activations, pooling, flatten: fused into the producer — they
        // reshape the downstream consumption but create no traffic.
        cur_ = layer.output_shape(cur_);
        break;
    }
  }

  void visit_conv(const dnn::Conv2d& conv) {
    if (cur_.c != conv.in_channels())
      throw std::invalid_argument("place_model: " + conv.name() +
                                  " expects " +
                                  std::to_string(conv.in_channels()) +
                                  " channels, got " + cur_.to_string());
    PlacedOp op;
    op.name = conv.name();
    op.kind = dnn::LayerKind::kConv2d;
    op.units = conv.out_channels();
    op.weights_per_unit =
        static_cast<std::int64_t>(conv.in_channels()) * conv.kernel() *
            conv.kernel() +
        1;
    op.in_shape = cur_;
    op.out_shape = conv.output_shape(cur_);
    op.inputs = {{producer_, false}};
    op.weights = unit_major_weights(conv.weight(), conv.bias(), op.units,
                                    op.weights_per_unit - 1);
    producer_ = emit(std::move(op));
    cur_ = placement_.ops.back().out_shape;
  }

  void visit_depthwise(const dnn::DepthwiseConv2d& conv) {
    if (cur_.c != conv.channels())
      throw std::invalid_argument("place_model: " + conv.name() +
                                  " expects " +
                                  std::to_string(conv.channels()) +
                                  " channels, got " + cur_.to_string());
    PlacedOp op;
    op.name = conv.name();
    op.kind = dnn::LayerKind::kDepthwiseConv2d;
    op.units = conv.channels();
    op.weights_per_unit =
        static_cast<std::int64_t>(conv.kernel()) * conv.kernel() + 1;
    op.in_shape = cur_;
    op.out_shape = conv.output_shape(cur_);
    op.inputs = {{producer_, false}};
    op.weights = unit_major_weights(conv.weight(), conv.bias(), op.units,
                                    op.weights_per_unit - 1);
    producer_ = emit(std::move(op));
    cur_ = placement_.ops.back().out_shape;
  }

  void visit_linear(const dnn::Linear& linear) {
    if (cur_.numel() != linear.in_features())
      throw std::invalid_argument(
          "place_model: " + linear.name() + " expects " +
          std::to_string(linear.in_features()) + " features, got " +
          cur_.to_string());
    PlacedOp op;
    op.name = linear.name();
    op.kind = dnn::LayerKind::kLinear;
    op.units = linear.out_features();
    op.weights_per_unit = static_cast<std::int64_t>(linear.in_features()) + 1;
    op.in_shape = cur_;
    op.out_shape = linear.output_shape(cur_);
    op.inputs = {{producer_, false}};
    op.weights = unit_major_weights(linear.weight(), linear.bias(), op.units,
                                    op.weights_per_unit - 1);
    producer_ = emit(std::move(op));
    cur_ = placement_.ops.back().out_shape;
  }

  void visit_residual(const dnn::Residual& res) {
    const dnn::Shape entry_shape = cur_;
    const std::int32_t entry_producer = producer_;

    // The projection (when present) consumes the block's entry activation,
    // in parallel with the body — emit it first so body ops can reference
    // it as an earlier op.
    std::int32_t skip_producer = entry_producer;
    if (res.projection() != nullptr) {
      visit_conv(*res.projection());
      skip_producer = producer_;
      cur_ = entry_shape;
      producer_ = entry_producer;
    }

    const std::size_t ops_before_body = placement_.ops.size();
    for (std::size_t i = 0; i < res.body().size(); ++i)
      visit(res.body().layer(i));
    if (placement_.ops.size() == ops_before_body)
      throw std::invalid_argument("place_model: residual body of " +
                                  res.name() + " has no weighted layers");

    // The body's last op computes the elementwise sum: it must also
    // receive the shortcut activations for its output channels.
    PlacedOp& last = placement_.ops[static_cast<std::size_t>(producer_)];
    const std::int32_t skip_units =
        skip_producer >= 0
            ? placement_.ops[static_cast<std::size_t>(skip_producer)].units
            : entry_shape.c;
    if (skip_units != last.units)
      throw std::invalid_argument(
          "place_model: residual shortcut of " + res.name() + " carries " +
          std::to_string(skip_units) + " channels but the body ends with " +
          std::to_string(last.units));
    last.inputs.push_back({skip_producer, true});

    cur_ = res.output_shape(entry_shape);  // also validates the shapes
  }

  /// Tile the op's units, pick PEs via the policy, bind each tile to its
  /// nearest MC, and append the op. Returns its index.
  std::int32_t emit(PlacedOp op) {
    const std::int32_t n_tiles = std::min(tiles_per_layer_, op.units);
    const std::vector<std::int32_t> pes = policy_.assign(
        placement_.mesh, placement_.roles, n_tiles, placement_.total_tiles);
    op.tiles.reserve(static_cast<std::size_t>(n_tiles));
    for (std::int32_t t = 0; t < n_tiles; ++t) {
      TileAssignment tile;
      tile.unit_begin = static_cast<std::int32_t>(
          static_cast<std::int64_t>(t) * op.units / n_tiles);
      tile.unit_end = static_cast<std::int32_t>(
          static_cast<std::int64_t>(t + 1) * op.units / n_tiles);
      tile.pe = pes[static_cast<std::size_t>(t)];
      tile.mc = nearest_[static_cast<std::size_t>(tile.pe)];
      op.tiles.push_back(tile);
    }
    placement_.total_tiles += n_tiles;
    placement_.ops.push_back(std::move(op));
    return static_cast<std::int32_t>(placement_.ops.size()) - 1;
  }

  const PlacementPolicy& policy_;
  std::int32_t tiles_per_layer_;
  std::vector<std::size_t> nearest_;
  Placement placement_;
  dnn::Shape cur_;
  std::int32_t producer_ = -1;
};

}  // namespace

Placement place_model(const dnn::Sequential& model, dnn::Shape input,
                      const noc::MeshShape& mesh,
                      const accel::NodeRoles& roles,
                      const PlacementPolicy& policy,
                      std::int32_t tiles_per_layer) {
  if (input.n != 1)
    throw std::invalid_argument("place_model: input must be per-sample (n=1)");
  if (tiles_per_layer < 1)
    throw std::invalid_argument("place_model: tiles_per_layer must be >= 1");
  if (roles.pes.empty())
    throw std::invalid_argument("place_model: mesh has no PE nodes");
  return Walker(mesh, roles, policy, tiles_per_layer).run(model, input);
}

}  // namespace nocbt::place
