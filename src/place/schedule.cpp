#include "place/schedule.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace nocbt::place {

namespace {

/// Output-volume share of producer units [begin, end) inside a consumed
/// volume of `total` values (exact at unit boundaries: pooling/flatten
/// fusion keeps the consumed volume a multiple of the producer's units).
std::int64_t unit_share(std::int64_t total, std::int32_t units,
                        std::int32_t begin, std::int32_t end) {
  return end * total / units - begin * total / units;
}

std::int32_t overlap(const TileAssignment& a, const TileAssignment& b) {
  return std::max(
      0, std::min(a.unit_end, b.unit_end) - std::max(a.unit_begin, b.unit_begin));
}

class ScheduleBuilder {
 public:
  ScheduleBuilder(const Placement& placement, const TrafficConfig& config)
      : placement_(placement), config_(config) {
    if (!config.draw_activation)
      throw std::invalid_argument(
          "build_schedule: config.draw_activation is required");
    if (config.layout.half() < 1)
      throw std::invalid_argument(
          "build_schedule: layout cannot hold a (weight, input) pair");
    if (config.pairs_per_packet < 1)
      throw std::invalid_argument(
          "build_schedule: pairs_per_packet must be >= 1");
  }

  PlacedSchedule run() {
    for (std::size_t o = 0; o < placement_.ops.size(); ++o) {
      begin_phase();
      const PlacedOp& op = placement_.ops[o];
      for (const TileAssignment& tile : op.tiles) emit_tile_inputs(op, tile);
      end_phase();
    }
    // Result phase: the last op's tiles drain their outputs to their MCs.
    begin_phase();
    const PlacedOp& last = placement_.ops.back();
    const std::int64_t out_spatial =
        static_cast<std::int64_t>(last.out_shape.h) * last.out_shape.w;
    for (const TileAssignment& tile : last.tiles) {
      const std::int64_t count = tile.units() * out_spatial;
      schedule_.pe_to_mc_values += static_cast<std::uint64_t>(count);
      emit_transfer(tile.pe, placement_.roles.mcs[tile.mc], {}, count);
    }
    end_phase();

    std::stable_sort(schedule_.packets.begin(), schedule_.packets.end(),
                     [](const FlowPacket& a, const FlowPacket& b) {
                       return a.cycle < b.cycle;
                     });
    return std::move(schedule_);
  }

 private:
  void emit_tile_inputs(const PlacedOp& op, const TileAssignment& tile) {
    // Weight slice for the tile's units, encoded from the real model
    // weights, plus any model-input activations — all from the tile's MC.
    std::vector<std::uint32_t> weights;
    weights.reserve(static_cast<std::size_t>(tile.units()) *
                    static_cast<std::size_t>(op.weights_per_unit));
    const auto begin = static_cast<std::size_t>(tile.unit_begin) *
                       static_cast<std::size_t>(op.weights_per_unit);
    const auto end = static_cast<std::size_t>(tile.unit_end) *
                     static_cast<std::size_t>(op.weights_per_unit);
    for (std::size_t i = begin; i < end; ++i)
      weights.push_back(config_.weight_codec.encode(op.weights[i]));

    std::int64_t external_acts = 0;
    for (const OpInput& edge : op.inputs)
      if (edge.producer < 0) external_acts += edge_count_external(op, tile, edge);

    schedule_.mc_to_pe_values +=
        weights.size() + static_cast<std::uint64_t>(external_acts);
    emit_transfer(placement_.roles.mcs[tile.mc], tile.pe, std::move(weights),
                  external_acts);

    // Producer activations arrive as PE-to-PE flows, one per producer tile.
    for (const OpInput& edge : op.inputs) {
      if (edge.producer < 0) continue;
      const PlacedOp& prod =
          placement_.ops[static_cast<std::size_t>(edge.producer)];
      for (const TileAssignment& pt : prod.tiles) {
        const std::int64_t count = edge_count(op, tile, edge, prod, pt);
        if (count == 0) continue;
        if (pt.pe == tile.pe) {
          schedule_.local_values += static_cast<std::uint64_t>(count);
          continue;
        }
        schedule_.pe_to_pe_values += static_cast<std::uint64_t>(count);
        emit_transfer(pt.pe, tile.pe, {}, count);
      }
    }
  }

  /// Values a model-input (producer -1) edge delivers to `tile`.
  [[nodiscard]] std::int64_t edge_count_external(const PlacedOp& op,
                                                 const TileAssignment& tile,
                                                 const OpInput& edge) const {
    if (edge.elementwise)
      return tile.units() * static_cast<std::int64_t>(op.out_shape.h) *
             op.out_shape.w;
    if (op.channelwise())
      return tile.units() * static_cast<std::int64_t>(op.in_shape.h) *
             op.in_shape.w;
    return op.in_shape.numel();  // dense: the full ifmap
  }

  /// Values producer tile `pt` delivers to consumer `tile` over `edge`.
  [[nodiscard]] std::int64_t edge_count(const PlacedOp& op,
                                        const TileAssignment& tile,
                                        const OpInput& edge,
                                        const PlacedOp& prod,
                                        const TileAssignment& pt) const {
    if (edge.elementwise)
      // Skip edge: channels of the shortcut matching the tile's output
      // units (validated equal counts by place_model).
      return overlap(tile, pt) * static_cast<std::int64_t>(op.out_shape.h) *
             op.out_shape.w;
    if (op.channelwise()) {
      if (prod.units != op.in_shape.c)
        throw std::invalid_argument(
            "build_schedule: depthwise consumer " + op.name +
            " needs channel-preserving producer, got " + prod.name);
      return overlap(tile, pt) * static_cast<std::int64_t>(op.in_shape.h) *
             op.in_shape.w;
    }
    // Dense: every consumer tile reads the producer tile's full share of
    // the consumed activation volume.
    return unit_share(op.in_shape.numel(), prod.units, pt.unit_begin,
                      pt.unit_end);
  }

  /// Pair a transfer's streams into half-half windows and append its
  /// packets, serializing on the source NI's cursor.
  void emit_transfer(std::int32_t src, std::int32_t dst,
                     std::vector<std::uint32_t> weights,
                     std::int64_t activation_count) {
    std::vector<std::uint32_t> w;
    std::vector<std::uint32_t> in;
    if (!weights.empty() && activation_count > 0) {
      // Two streams: zip pairwise, cycling the shorter one (weights are
      // retransmitted across ifmap windows and vice versa).
      std::vector<std::uint32_t> acts(
          static_cast<std::size_t>(activation_count));
      for (auto& a : acts) a = config_.draw_activation();
      const std::size_t n = std::max(weights.size(), acts.size());
      w.reserve(n);
      in.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        w.push_back(weights[i % weights.size()]);
        in.push_back(acts[i % acts.size()]);
      }
    } else if (!weights.empty() || activation_count > 0) {
      // One stream: split alternately across the two flit halves.
      std::vector<std::uint32_t> stream = std::move(weights);
      if (stream.empty()) {
        stream.resize(static_cast<std::size_t>(activation_count));
        for (auto& a : stream) a = config_.draw_activation();
      }
      const std::size_t n = (stream.size() + 1) / 2;
      w.reserve(n);
      in.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        w.push_back(stream[2 * i]);
        in.push_back(2 * i + 1 < stream.size() ? stream[2 * i + 1]
                                               : stream.back());
      }
    } else {
      return;
    }

    for (std::size_t at = 0; at < w.size(); at += config_.pairs_per_packet) {
      const std::size_t take = std::min<std::size_t>(
          config_.pairs_per_packet, w.size() - at);
      FlowPacket pkt;
      pkt.src = src;
      pkt.dst = dst;
      pkt.weights.assign(w.begin() + static_cast<std::ptrdiff_t>(at),
                         w.begin() + static_cast<std::ptrdiff_t>(at + take));
      pkt.inputs.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                        in.begin() + static_cast<std::ptrdiff_t>(at + take));
      std::uint64_t& cursor = cursors_.try_emplace(src, phase_start_).first->second;
      pkt.cycle = cursor;
      cursor += accel::flits_needed(static_cast<std::uint32_t>(take),
                                    /*has_bias=*/false, config_.layout);
      schedule_.packets.push_back(std::move(pkt));
    }
  }

  void begin_phase() { cursors_.clear(); }

  void end_phase() {
    std::uint64_t phase_end = phase_start_;
    for (const auto& [src, cursor] : cursors_)
      phase_end = std::max(phase_end, cursor);
    phase_start_ = phase_end + config_.phase_gap;
    ++schedule_.phases;
  }

  const Placement& placement_;
  const TrafficConfig& config_;
  PlacedSchedule schedule_;
  std::uint64_t phase_start_ = 0;
  std::unordered_map<std::int32_t, std::uint64_t> cursors_;
};

}  // namespace

PlacedSchedule build_schedule(const Placement& placement,
                              const TrafficConfig& config) {
  return ScheduleBuilder(placement, config).run();
}

noc::PacketTrace to_trace(const PlacedSchedule& schedule,
                          const accel::FlitLayout& layout,
                          const noc::MeshShape& mesh) {
  noc::PacketTrace trace;
  std::uint64_t id = 0;
  for (const FlowPacket& pkt : schedule.packets) {
    noc::TraceEvent e;
    e.packet_id = id++;
    e.src = pkt.src;
    e.dst = pkt.dst;
    e.num_flits = accel::flits_needed(
        static_cast<std::uint32_t>(pkt.weights.size()), /*has_bias=*/false,
        layout);
    e.inject_cycle = pkt.cycle;
    e.hops = static_cast<std::uint16_t>(mesh.manhattan(pkt.src, pkt.dst));
    e.eject_cycle = pkt.cycle + e.hops + e.num_flits;
    e.weights = pkt.weights;
    e.inputs = pkt.inputs;
    trace.record(e);
  }
  return trace;
}

}  // namespace nocbt::place
