#pragma once
// Traffic derivation: turn a Placement into a timed packet schedule.
//
// Per op o (phase o), every tile receives (a) its weight slice — real
// model weights, codec-encoded — plus any model-input activations from
// its memory controller, and (b) the producer activations it consumes as
// PE-to-PE flows: full producer-tile shares for dense edges, channel
// overlaps for depthwise consumers and elementwise (residual skip) edges.
// A final phase drains the last op's outputs back to the MCs. Flows whose
// source and destination tile coincide stay on-PE and are only counted.
//
// Timing: phases are serialized (phase o+1 starts after every phase-o
// packet has left its source); within a phase each source NI serializes
// its own packets back to back (cycle advances by the packet's flit
// count), which keeps single-source link schedules provably
// congestion-free for the analytical engine on small placements.
//
// Payload pairing into half-half flits: transfers carrying both weights
// and activations zip them pairwise with the shorter stream cycling
// (weight retransmission across ifmap windows); single-stream transfers
// split alternately across the two flit halves.

#include <cstdint>
#include <functional>
#include <vector>

#include "accel/flitization.h"
#include "accel/value_codec.h"
#include "noc/trace.h"
#include "place/placement.h"

namespace nocbt::place {

/// How a placement's flows become flits and wire patterns.
struct TrafficConfig {
  /// (weight, input) pairs per packet — the ordering window, in pairs.
  std::uint32_t pairs_per_packet = 64;
  accel::FlitLayout layout{};
  /// Encoder for the model's real weight values.
  accel::ValueCodec weight_codec = accel::ValueCodec::float32();
  /// Wire-pattern source for activation values (drawn in schedule order;
  /// must be deterministic for reproducible schedules).
  std::function<std::uint32_t()> draw_activation;
  /// Extra idle cycles between phases.
  std::uint64_t phase_gap = 0;
};

/// One schedulable packet: inject at `cycle` carrying pre-ordering
/// (weight, input) pattern pairs — the same contract as the campaign
/// runner's InjectionRequest.
struct FlowPacket {
  std::uint64_t cycle = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::vector<std::uint32_t> weights;
  std::vector<std::uint32_t> inputs;
};

/// A derived schedule plus traffic accounting.
struct PlacedSchedule {
  std::vector<FlowPacket> packets;  ///< non-decreasing cycles
  std::uint64_t phases = 0;
  std::uint64_t mc_to_pe_values = 0;  ///< weight + ifmap values from MCs
  std::uint64_t pe_to_pe_values = 0;  ///< inter-layer activation values
  std::uint64_t pe_to_mc_values = 0;  ///< result values drained to MCs
  std::uint64_t local_values = 0;     ///< values that never left their PE
};

/// Derive the packet schedule for `placement`. Throws
/// std::invalid_argument when config.draw_activation is empty or the
/// layout cannot hold a pair.
[[nodiscard]] PlacedSchedule build_schedule(const Placement& placement,
                                            const TrafficConfig& config);

/// Render a schedule as a payload-carrying PacketTrace (zero-load timing:
/// eject = inject + hops + flits). Dump + replay of this trace reproduces
/// the schedule's per-link bit transitions exactly.
[[nodiscard]] noc::PacketTrace to_trace(const PlacedSchedule& schedule,
                                        const accel::FlitLayout& layout,
                                        const noc::MeshShape& mesh);

}  // namespace nocbt::place
