#pragma once
// Layer placement: shard each weighted layer of a model across PE tiles of
// the accel::NodeRoles mesh and record, per tile, which output units it
// computes, which PE hosts it, and which memory controller feeds it.
//
// Tiling scheme (channel/row tiling): a weighted op's output units are its
// output channels (conv/depthwise) or output features (linear). Units are
// split into up to `tiles_per_layer` contiguous, near-even ranges; the
// placement policy picks the PE for each range, and the tile's MC is the
// controller nearest its PE (accel::nearest_mc_index). Weight slices per
// unit are contiguous in the NCHW parameter tensors, so each tile's weight
// stream is a real slice of the model's trained weights.
//
// Dataflow edges: non-weighted layers (activations, pooling, flatten) are
// fused into the producing op — they reshape what the consumer receives
// but create no traffic of their own. Residual blocks flatten to their
// body's ops plus an optional projection op, with the skip connection
// recorded as an extra *elementwise* input edge into the body's last op:
// the tile computing the sum must receive the matching output channels of
// the shortcut producer (partial-sum flow derivation; see DESIGN.md).

#include <cstdint>
#include <string>
#include <vector>

#include "accel/mapping.h"
#include "dnn/sequential.h"
#include "noc/routing.h"
#include "place/policy.h"

namespace nocbt::place {

/// One dataflow edge into a placed op.
struct OpInput {
  /// Index of the producing op, or -1 for the model input (served by MCs).
  std::int32_t producer = -1;
  /// True for skip-connection edges consumed per *output* channel of the
  /// receiving op (the elementwise residual sum); false for dense edges
  /// consumed through the op's input shape.
  bool elementwise = false;
};

/// One tile of one op: output units [unit_begin, unit_end) on PE `pe`,
/// fed by roles.mcs[mc].
struct TileAssignment {
  std::int32_t unit_begin = 0;
  std::int32_t unit_end = 0;
  std::int32_t pe = -1;
  std::size_t mc = 0;

  [[nodiscard]] std::int32_t units() const noexcept {
    return unit_end - unit_begin;
  }
};

/// One weighted op of the flattened model.
struct PlacedOp {
  std::string name;
  dnn::LayerKind kind = dnn::LayerKind::kConv2d;
  std::int32_t units = 0;            ///< output channels / features
  std::int64_t weights_per_unit = 0; ///< weight values + 1 bias per unit
  dnn::Shape in_shape;               ///< activation shape the op consumes
  dnn::Shape out_shape;              ///< activation shape the op produces
  std::vector<OpInput> inputs;
  /// Real model weights, unit-major: weights_per_unit values per unit with
  /// the bias last — the slice [u*wpu, (u+1)*wpu) is unit u's task.
  std::vector<float> weights;
  std::vector<TileAssignment> tiles;

  /// Depthwise ops consume input channel c only for output unit c, so
  /// inter-layer activation flows slice by channel overlap.
  [[nodiscard]] bool channelwise() const noexcept {
    return kind == dnn::LayerKind::kDepthwiseConv2d;
  }
};

/// A fully placed model on a mesh.
struct Placement {
  noc::MeshShape mesh{1, 1};
  accel::NodeRoles roles;
  std::vector<PlacedOp> ops;
  std::int64_t total_tiles = 0;
};

/// Flatten `model` (fed with per-sample shape `input`, n == 1) into placed
/// ops on `mesh`/`roles` under `policy`, with at most `tiles_per_layer`
/// tiles per op (capped by the op's unit count). Throws
/// std::invalid_argument on an unplaceable model (no weighted layers, a
/// residual body without weights, shape mismatches).
[[nodiscard]] Placement place_model(const dnn::Sequential& model,
                                    dnn::Shape input,
                                    const noc::MeshShape& mesh,
                                    const accel::NodeRoles& roles,
                                    const PlacementPolicy& policy,
                                    std::int32_t tiles_per_layer);

}  // namespace nocbt::place
