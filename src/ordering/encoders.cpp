#include "ordering/encoders.h"

#include <stdexcept>

namespace nocbt::ordering {
namespace {

void xor_segment(BitVec& v, unsigned start, unsigned len) {
  // Flip bits [start, start+len).
  for (unsigned pos = start; pos < start + len;) {
    const unsigned chunk = std::min(64u, start + len - pos);
    v.set_field(pos, chunk, ~v.get_field(pos, chunk));
    pos += chunk;
  }
}

int segment_transitions(const BitVec& a, const BitVec& b, unsigned start,
                        unsigned len) {
  int total = 0;
  for (unsigned pos = start; pos < start + len;) {
    const unsigned chunk = std::min(64u, start + len - pos);
    total += popcount64(a.get_field(pos, chunk) ^ b.get_field(pos, chunk));
    pos += chunk;
  }
  return total;
}

}  // namespace

EncodedStream bus_invert_encode(const std::vector<BitVec>& flits,
                                unsigned segments) {
  EncodedStream out;
  out.extra_wires_per_link = segments;
  if (flits.empty()) return out;
  const unsigned width = flits.front().width();
  if (segments == 0 || width % segments != 0)
    throw std::invalid_argument("bus_invert_encode: segments must divide width");
  const unsigned seg_len = width / segments;

  BitVec wire_state(width);            // previous transmitted payload
  std::vector<bool> invert_state(segments, false);

  for (const BitVec& flit : flits) {
    BitVec tx = flit;
    for (unsigned s = 0; s < segments; ++s) {
      const unsigned start = s * seg_len;
      const int plain = segment_transitions(wire_state, tx, start, seg_len);
      // Inverting the segment flips every differing/matching bit role:
      // transitions become seg_len - plain.
      const int inverted = static_cast<int>(seg_len) - plain;
      const bool invert = inverted < plain;
      if (invert) xor_segment(tx, start, seg_len);
      if (invert != invert_state[s]) ++out.extra_wire_transitions;
      invert_state[s] = invert;
    }
    wire_state = tx;
    out.payloads.push_back(std::move(tx));
  }
  return out;
}

EncodedStream xor_delta_encode(const std::vector<BitVec>& flits) {
  EncodedStream out;
  out.extra_wires_per_link = 0;
  if (flits.empty()) return out;
  out.payloads.reserve(flits.size());
  out.payloads.push_back(flits.front());
  for (std::size_t i = 1; i < flits.size(); ++i) {
    BitVec delta(flits[i].width());
    for (unsigned pos = 0; pos < flits[i].width();) {
      const unsigned chunk = std::min(64u, flits[i].width() - pos);
      delta.set_field(pos, chunk,
                      flits[i].get_field(pos, chunk) ^
                          flits[i - 1].get_field(pos, chunk));
      pos += chunk;
    }
    out.payloads.push_back(std::move(delta));
  }
  return out;
}

std::vector<BitVec> xor_delta_decode(const std::vector<BitVec>& encoded) {
  std::vector<BitVec> out;
  if (encoded.empty()) return out;
  out.reserve(encoded.size());
  out.push_back(encoded.front());
  for (std::size_t i = 1; i < encoded.size(); ++i) {
    BitVec v(encoded[i].width());
    for (unsigned pos = 0; pos < encoded[i].width();) {
      const unsigned chunk = std::min(64u, encoded[i].width() - pos);
      v.set_field(pos, chunk,
                  encoded[i].get_field(pos, chunk) ^
                      out[i - 1].get_field(pos, chunk));
      pos += chunk;
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace nocbt::ordering
