#pragma once
// Greedy min-XOR chain ordering — an ablation upper-ish bound (A4).
//
// Instead of sorting by popcount (a proxy for pattern similarity), greedily
// chain values so each successor minimizes the true Hamming distance to its
// predecessor. This directly minimizes per-step transitions at O(N^2) cost
// per window, far beyond what the paper's 12.91 kGE bubble-sort unit could
// afford — which is exactly the trade-off the ablation quantifies.

#include <cstdint>
#include <span>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// Reorder `patterns` into a greedy minimum-Hamming-distance chain,
/// starting from the value with the highest popcount (ties: lowest index).
/// Returns the permutation (same contract as popcount_descending_order).
[[nodiscard]] std::vector<std::uint32_t> greedy_min_xor_chain(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// Window-by-window greedy chaining over a stream (counterpart of
/// order_stream_descending for the A4 ablation).
[[nodiscard]] std::vector<std::uint32_t> chain_stream_greedy(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values);

}  // namespace nocbt::ordering
