#pragma once
// Vectorized bit-transition kernel tier with runtime dispatch.
//
// The ordering hot path — sequence-BT scoring and pairwise-HD matrices
// over word-packed windows — dominates campaign rows and optimizer
// evaluations now that the analytical NoC backend and the scenario cache
// removed most simulation cost. This header turns "which machine kernel
// counts the transitions" into a registered interface mirroring the
// OrderingStrategy / PlacementPolicy / Optimizer registries:
//
//   scalar   the PR-3 word-packed uint64 kernels, one window per call
//   batch64  portable batched tier: zero-alloc packed-stream reuse plus a
//            4-way-unrolled multi-word XOR+popcount over whole windows
//   avx2     vpshufb-LUT popcount over 256-bit lanes (AVX-512 vpopcntq
//            inner loops where the CPU has them), registered only when the
//            TU could be compiled and available only when CPUID agrees
//
// Every tier computes the exact same integer sums — the differential
// suites pin each registered backend byte-identical to the naive per-bit
// reference — so campaign reports are invariant under the selected tier.
//
// Dispatch: active_kernel_backend() picks the highest-priority available
// backend at first use, unless the NOCBT_KERNEL_TIER environment variable
// names a specific tier (unknown or unavailable names fail loudly) or a
// ScopedKernelTier is alive. Tests and benches use ScopedKernelTier to
// exercise every tier on any host.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <memory>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// One machine-kernel tier. Implementations must be stateless and
/// thread-safe: the methods are called concurrently from campaign worker
/// threads and must be deterministic pure functions of their arguments.
/// All tiers return bit-identical results; only throughput differs.
class BtKernelBackend {
 public:
  virtual ~BtKernelBackend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// True when the host CPU can execute this tier. Unavailable backends
  /// stay registered (and enumerable) but are skipped by auto-dispatch and
  /// rejected by the NOCBT_KERNEL_TIER override with a descriptive error.
  [[nodiscard]] virtual bool available() const noexcept { return true; }

  /// Auto-dispatch rank: the highest-priority available backend wins.
  [[nodiscard]] virtual int priority() const noexcept = 0;

  /// Total transitions between consecutive values of one window (the
  /// kernel under ordering::sequence_bt).
  [[nodiscard]] virtual std::uint64_t sequence_bt(
      std::span<const std::uint32_t> window, DataFormat format) const = 0;

  /// Batched entry point: score every consecutive window_values-sized
  /// window of `patterns` (the last window may be ragged) in one pass.
  /// `out.size()` must equal ceil(patterns.size() / window_values).
  /// The base implementation loops sequence_bt per window; batched tiers
  /// override it to amortize packing and traverse the whole span once.
  virtual void sequence_bt_batch(std::span<const std::uint32_t> patterns,
                                 DataFormat format, std::size_t window_values,
                                 std::span<std::uint64_t> out) const;

  /// Row-major n*n pairwise-Hamming-distance matrix into `out` (size
  /// n*n). Only the upper triangle is computed; the lower half is
  /// mirrored, and the diagonal is zero. The base implementation works
  /// block-by-block in cache-resident tiles over pre-masked values.
  virtual void pairwise_hd_matrix(std::span<const std::uint32_t> patterns,
                                  DataFormat format,
                                  std::span<std::uint8_t> out) const;

 protected:
  /// Shared argument validation for the batched entry points (throws
  /// std::invalid_argument naming the offending size).
  static void check_batch_args(std::size_t pattern_count,
                               std::size_t window_values,
                               std::size_t out_size);
};

/// Registered backend by name, or nullptr. Thread-safe.
[[nodiscard]] const BtKernelBackend* find_kernel_backend(
    std::string_view name);

/// Registered backend by name; throws std::invalid_argument (listing the
/// registered names) when absent.
[[nodiscard]] const BtKernelBackend& get_kernel_backend(std::string_view name);

/// Snapshot of every registered backend, registration order. Pointers stay
/// valid for the process lifetime (backends are never removed).
[[nodiscard]] std::vector<const BtKernelBackend*> registered_kernel_backends();

/// Names of every registered backend, registration order.
[[nodiscard]] std::vector<std::string> registered_kernel_backend_names();

/// Add a backend to the registry. Throws std::invalid_argument on a null
/// backend or a duplicate/empty name.
void register_kernel_backend(std::unique_ptr<BtKernelBackend> backend);

/// The tier the free kernel functions dispatch to. Resolution order:
///   1. the innermost live ScopedKernelTier, if any;
///   2. the NOCBT_KERNEL_TIER environment variable (resolved once at first
///      use; unknown or unavailable tiers throw std::runtime_error);
///   3. the highest-priority backend whose available() is true.
[[nodiscard]] const BtKernelBackend& active_kernel_backend();

/// RAII tier override for tests and benches: forces every kernel call in
/// the process to the named tier (which must be available) for the scope's
/// lifetime, then restores the previous selection. Takes effect globally —
/// campaign worker threads spawned inside the scope see it — but scopes
/// must not be created concurrently from multiple threads.
class ScopedKernelTier {
 public:
  explicit ScopedKernelTier(std::string_view name);
  ~ScopedKernelTier();
  ScopedKernelTier(const ScopedKernelTier&) = delete;
  ScopedKernelTier& operator=(const ScopedKernelTier&) = delete;

 private:
  const BtKernelBackend* previous_;
};

}  // namespace nocbt::ordering
