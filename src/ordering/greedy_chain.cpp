#include "ordering/greedy_chain.h"

#include <algorithm>
#include <stdexcept>

namespace nocbt::ordering {

std::vector<std::uint32_t> greedy_min_xor_chain(
    std::span<const std::uint32_t> patterns, DataFormat format) {
  const std::size_t n = patterns.size();
  // Distances, like the seed's popcount key, only see the format's
  // transmitted bits — stray bits above value_bits(format) never ride the
  // link and must not steer the chain.
  const auto mask = static_cast<std::uint32_t>(low_mask(value_bits(format)));
  std::vector<std::uint32_t> perm;
  if (n == 0) return perm;
  perm.reserve(n);
  std::vector<bool> used(n, false);

  // Seed: highest popcount (matches the descending ordering's start).
  std::size_t current = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (pattern_popcount(patterns[i], format) >
        pattern_popcount(patterns[current], format))
      current = i;
  used[current] = true;
  perm.push_back(static_cast<std::uint32_t>(current));

  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    int best_dist = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (used[j]) continue;
      const int dist =
          popcount32((patterns[current] & mask) ^ (patterns[j] & mask));
      if (best == n || dist < best_dist) {
        best = j;
        best_dist = dist;
      }
    }
    used[best] = true;
    perm.push_back(static_cast<std::uint32_t>(best));
    current = best;
  }
  return perm;
}

std::vector<std::uint32_t> chain_stream_greedy(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values) {
  if (window_values == 0)
    throw std::invalid_argument("chain_stream_greedy: window_values == 0");
  std::vector<std::uint32_t> out;
  out.reserve(patterns.size());
  for (std::size_t start = 0; start < patterns.size();
       start += window_values) {
    const std::size_t len = std::min(window_values, patterns.size() - start);
    const auto window = patterns.subspan(start, len);
    const auto perm = greedy_min_xor_chain(window, format);
    for (const std::uint32_t idx : perm) out.push_back(window[idx]);
  }
  return out;
}

}  // namespace nocbt::ordering
