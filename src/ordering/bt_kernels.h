#pragma once
// Word-packed bit-transition / Hamming-distance kernels for the ordering
// hot path.
//
// The per-window quality metric every strategy optimizes is the *sequence
// BT*: the total number of wire flips when the window's values traverse a
// link back to back, one value per flit slot (the SV-A stream model with a
// single lane). The fast kernels below pack a whole window into a
// contiguous uint64_t bitstream so one XOR + std::popcount covers up to 64
// bits (8 fixed-8 values) at a time; the naive per-bit implementations are
// retained as reference models for differential tests and as the benchmark
// baseline in bench/micro_ordering.

#include <cstdint>
#include <span>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// A value stream packed LSB-first into a contiguous bitstream: value i
/// occupies bits [i * bits_per_value, (i + 1) * bits_per_value). Unused
/// high bits of the last word are zero.
struct PackedStream {
  std::vector<std::uint64_t> words;
  std::size_t value_count = 0;
  unsigned bits_per_value = 0;

  [[nodiscard]] std::size_t bit_length() const noexcept {
    return value_count * bits_per_value;
  }
};

/// Pack the low value_bits(format) bits of each pattern; stray higher bits
/// are masked off (matching pattern_popcount's view of a value).
[[nodiscard]] PackedStream pack_patterns(std::span<const std::uint32_t> patterns,
                                         DataFormat format);

/// Fast kernel: total transitions between consecutive values of the
/// stream, computed as popcount(stream XOR (stream >> bits_per_value))
/// over the first (value_count - 1) * bits_per_value bits.
[[nodiscard]] std::uint64_t sequence_bt(const PackedStream& stream) noexcept;

/// Convenience: pack then count (what the hot paths call per window).
[[nodiscard]] std::uint64_t sequence_bt(std::span<const std::uint32_t> patterns,
                                        DataFormat format);

/// Same total as sequence_bt for the stream patterns[perm[0]],
/// patterns[perm[1]], ... without materializing the permuted copy.
[[nodiscard]] std::uint64_t permuted_sequence_bt(
    std::span<const std::uint32_t> patterns,
    std::span<const std::uint32_t> perm, DataFormat format) noexcept;

/// Naive per-bit reference implementation of sequence_bt. Differential
/// tests pin the packed kernel byte-identical to this; micro_ordering
/// benchmarks the two against each other.
[[nodiscard]] std::uint64_t sequence_bt_reference(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// Row-major n*n matrix of pairwise Hamming distances between the low
/// value_bits(format) bits of the patterns. Entries fit uint8_t (the
/// widest format is 32 bits). The diagonal is zero.
[[nodiscard]] std::vector<std::uint8_t> pairwise_hd_matrix(
    std::span<const std::uint32_t> patterns, DataFormat format);

}  // namespace nocbt::ordering
