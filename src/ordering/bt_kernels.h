#pragma once
// Word-packed bit-transition / Hamming-distance kernels for the ordering
// hot path.
//
// The per-window quality metric every strategy optimizes is the *sequence
// BT*: the total number of wire flips when the window's values traverse a
// link back to back, one value per flit slot (the SV-A stream model with a
// single lane). The fast kernels below pack a whole window into a
// contiguous uint64_t bitstream so one XOR + std::popcount covers up to 64
// bits (8 fixed-8 values) at a time; the naive per-bit implementations are
// retained as reference models for differential tests and as the benchmark
// baseline in bench/micro_ordering.
//
// The free functions here dispatch through the registered BtKernelBackend
// tier (bt_kernel_backend.h): scalar, batch64 or avx2 depending on the
// host CPU and the NOCBT_KERNEL_TIER override. Every tier computes the
// exact same integer sums, so results are tier-invariant by construction.

#include <cstdint>
#include <span>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// A value stream packed LSB-first into a contiguous bitstream: value i
/// occupies bits [i * bits_per_value, (i + 1) * bits_per_value). Unused
/// high bits of the last word are zero.
struct PackedStream {
  std::vector<std::uint64_t> words;
  std::size_t value_count = 0;
  unsigned bits_per_value = 0;

  [[nodiscard]] std::size_t bit_length() const noexcept {
    return value_count * bits_per_value;
  }
};

/// Pack the low value_bits(format) bits of each pattern; stray higher bits
/// are masked off (matching pattern_popcount's view of a value).
[[nodiscard]] PackedStream pack_patterns(std::span<const std::uint32_t> patterns,
                                         DataFormat format);

/// Reuse overload: repack into an existing stream, reusing its word
/// buffer's capacity. Hot loops that score one window after another (the
/// batch64 tier, strategy scoring paths) call this instead of
/// pack_patterns so the steady state allocates nothing — the same idiom as
/// the PR-5 zero-alloc flit path.
void pack_patterns_into(PackedStream& out,
                        std::span<const std::uint32_t> patterns,
                        DataFormat format);

/// Fast kernel: total transitions between consecutive values of the
/// stream, computed as popcount(stream XOR (stream >> bits_per_value))
/// over the first (value_count - 1) * bits_per_value bits. Always the
/// scalar word kernel — the stream is already packed.
[[nodiscard]] std::uint64_t sequence_bt(const PackedStream& stream) noexcept;

/// Convenience: pack then count (what the hot paths call per window).
/// Dispatches through the active kernel tier.
[[nodiscard]] std::uint64_t sequence_bt(std::span<const std::uint32_t> patterns,
                                        DataFormat format);

/// Batched form: the sequence BT of every consecutive window_values-sized
/// window of `patterns` (the last window may be ragged), scored in one
/// kernel pass through the active tier. Element w equals
/// sequence_bt(patterns.subspan(w * window_values, ...), format) exactly.
[[nodiscard]] std::vector<std::uint64_t> sequence_bt_batch(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values);

/// Same total as sequence_bt for the stream patterns[perm[0]],
/// patterns[perm[1]], ... without materializing the permuted copy.
[[nodiscard]] std::uint64_t permuted_sequence_bt(
    std::span<const std::uint32_t> patterns,
    std::span<const std::uint32_t> perm, DataFormat format) noexcept;

/// Naive per-bit reference implementation of sequence_bt. Differential
/// tests pin every kernel tier byte-identical to this; micro_ordering
/// benchmarks the tiers against it.
[[nodiscard]] std::uint64_t sequence_bt_reference(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// Row-major n*n matrix of pairwise Hamming distances between the low
/// value_bits(format) bits of the patterns. The upper triangle is computed
/// once (block-by-block in cache-resident tiles) and mirrored; the
/// diagonal is zero. Entries fit uint8_t — formats wider than 255 bits are
/// rejected with a descriptive error rather than silently truncated.
/// Dispatches through the active kernel tier.
[[nodiscard]] std::vector<std::uint8_t> pairwise_hd_matrix(
    std::span<const std::uint32_t> patterns, DataFormat format);

namespace detail {

/// Pack patterns LSB-first into `words` (sized (n*bits + 63)/64; needs no
/// pre-zeroing — every word, including the ragged last one, is written).
/// Building block shared by pack_patterns and the kernel backends.
void pack_into(std::uint64_t* words, std::span<const std::uint32_t> patterns,
               unsigned bits, std::uint64_t mask) noexcept;

/// Shift-XOR-popcount core over an already-packed stream.
[[nodiscard]] std::uint64_t sequence_bt_words(const std::uint64_t* words,
                                              std::size_t word_count,
                                              std::size_t value_count,
                                              unsigned bits) noexcept;

}  // namespace detail

}  // namespace nocbt::ordering
