#include "ordering/ordering.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nocbt::ordering {

std::string to_string(OrderingMode mode) {
  switch (mode) {
    case OrderingMode::kBaseline: return "O0-baseline";
    case OrderingMode::kAffiliated: return "O1-affiliated";
    case OrderingMode::kSeparated: return "O2-separated";
    case OrderingMode::kChain: return "chain";
    case OrderingMode::kHdChain: return "hdchain";
    case OrderingMode::kBucket: return "bucket";
    case OrderingMode::kHybrid: return "hybrid";
    case OrderingMode::kTwoFlit: return "twoflit";
  }
  return "?";
}

OrderingMode parse_ordering_mode(const std::string& s) {
  if (s == "O0" || s == "baseline") return OrderingMode::kBaseline;
  if (s == "O1" || s == "affiliated") return OrderingMode::kAffiliated;
  if (s == "O2" || s == "separated") return OrderingMode::kSeparated;
  if (s == "chain" || s == "greedy-chain") return OrderingMode::kChain;
  if (s == "hdchain" || s == "hd-chain") return OrderingMode::kHdChain;
  if (s == "bucket" || s == "bucket-sort") return OrderingMode::kBucket;
  if (s == "hybrid") return OrderingMode::kHybrid;
  if (s == "twoflit" || s == "two-flit") return OrderingMode::kTwoFlit;
  throw std::invalid_argument("parse_ordering_mode: unknown mode '" + s + "'");
}

std::string_view mode_strategy_name(OrderingMode mode) noexcept {
  switch (mode) {
    case OrderingMode::kBaseline: return "arrival";
    case OrderingMode::kAffiliated: return "popcount";
    case OrderingMode::kSeparated: return "popcount";
    case OrderingMode::kChain: return "chain";
    case OrderingMode::kHdChain: return "hdchain";
    case OrderingMode::kBucket: return "bucket";
    case OrderingMode::kHybrid: return "hybrid";
    case OrderingMode::kTwoFlit: return "twoflit";
  }
  return "arrival";
}

std::string short_mode_name(OrderingMode mode) {
  switch (mode) {
    case OrderingMode::kBaseline: return "O0";
    case OrderingMode::kAffiliated: return "O1";
    case OrderingMode::kSeparated: return "O2";
    default: return std::string(mode_strategy_name(mode));
  }
}

std::vector<OrderingMode> parse_ordering_mode_list(const std::string& csv) {
  std::vector<OrderingMode> modes;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (token.empty())
      throw std::invalid_argument(
          "parse_ordering_mode_list: empty mode in list '" + csv + "'");
    modes.push_back(parse_ordering_mode(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return modes;
}

const std::vector<OrderingMode>& all_ordering_modes() {
  static const std::vector<OrderingMode> modes{
      OrderingMode::kBaseline, OrderingMode::kAffiliated,
      OrderingMode::kSeparated, OrderingMode::kChain,
      OrderingMode::kHdChain,   OrderingMode::kBucket,
      OrderingMode::kHybrid,    OrderingMode::kTwoFlit};
  return modes;
}

std::vector<std::uint32_t> popcount_descending_order(
    std::span<const std::uint32_t> patterns, DataFormat format) {
  std::vector<std::uint32_t> perm(patterns.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return pattern_popcount(patterns[a], format) >
                            pattern_popcount(patterns[b], format);
                   });
  return perm;
}

std::vector<std::uint32_t> inverse_permutation(
    std::span<const std::uint32_t> perm) {
  std::vector<std::uint32_t> inv(perm.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i)
    inv[perm[i]] = i;
  return inv;
}

std::vector<std::uint32_t> separated_pairing_index(
    std::span<const std::uint32_t> weight_perm,
    std::span<const std::uint32_t> input_perm) {
  if (weight_perm.size() != input_perm.size())
    throw std::invalid_argument("separated_pairing_index: size mismatch");
  const auto inv_input = inverse_permutation(input_perm);
  std::vector<std::uint32_t> pair_index(weight_perm.size());
  for (std::size_t i = 0; i < weight_perm.size(); ++i)
    pair_index[i] = inv_input[weight_perm[i]];
  return pair_index;
}

bool is_permutation(std::span<const std::uint32_t> perm, std::size_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::uint32_t idx : perm) {
    if (idx >= n || seen[idx]) return false;
    seen[idx] = true;
  }
  return true;
}

std::vector<std::uint32_t> order_stream_descending(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values) {
  if (window_values == 0)
    throw std::invalid_argument("order_stream_descending: window_values == 0");
  std::vector<std::uint32_t> out;
  out.reserve(patterns.size());
  for (std::size_t start = 0; start < patterns.size();
       start += window_values) {
    const std::size_t len =
        std::min(window_values, patterns.size() - start);
    const auto window = patterns.subspan(start, len);
    const auto perm = popcount_descending_order(window, format);
    for (const std::uint32_t idx : perm) out.push_back(window[idx]);
  }
  return out;
}

}  // namespace nocbt::ordering
