#pragma once
// '1'-bit count-based data transmission ordering — the paper's primary
// contribution (§III-B, §IV).
//
// Three transmission configurations (§V-B):
//   O0 baseline   — values transmitted in natural task order
//   O1 affiliated — (weight, input) pairs sorted by the weight's popcount,
//                   descending; pairing preserved, no recovery needed
//   O2 separated  — weights and inputs each sorted by their own popcount;
//                   a minimal-bit-width pairing index re-pairs them at the PE
//
// All routines operate on value bit patterns (uint32_t, low value_bits()
// significant) and return permutations so callers can reorder values and
// any side data consistently.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// Transmission ordering configuration (paper names O0/O1/O2).
enum class OrderingMode : std::uint8_t {
  kBaseline,    // O0
  kAffiliated,  // O1
  kSeparated,   // O2
};

[[nodiscard]] std::string to_string(OrderingMode mode);
[[nodiscard]] OrderingMode parse_ordering_mode(const std::string& s);

/// Permutation p such that patterns[p[0]], patterns[p[1]], ... have
/// non-increasing popcount. Stable: equal-popcount values keep their
/// original relative order, making the result deterministic.
[[nodiscard]] std::vector<std::uint32_t> popcount_descending_order(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// out[i] = values[perm[i]].
template <typename T>
[[nodiscard]] std::vector<T> apply_permutation(
    std::span<const T> values, std::span<const std::uint32_t> perm) {
  std::vector<T> out;
  out.reserve(perm.size());
  for (const std::uint32_t idx : perm) out.push_back(values[idx]);
  return out;
}

/// inv[perm[i]] = i.
[[nodiscard]] std::vector<std::uint32_t> inverse_permutation(
    std::span<const std::uint32_t> perm);

/// Pairing index for separated-ordering recovery: entry i gives the
/// position, in the *sorted-input* sequence, of the input originally paired
/// with the i-th *sorted weight*. The PE computes
///   sum_i sorted_w[i] * sorted_in[pair_index[i]]
/// to recover the original dot product. Width per entry is
/// index_bits(N) — the "minimal-bit-width index" of §IV-C1.
[[nodiscard]] std::vector<std::uint32_t> separated_pairing_index(
    std::span<const std::uint32_t> weight_perm,
    std::span<const std::uint32_t> input_perm);

/// Verify that `perm` is a permutation of [0, n) (used by tests and by the
/// packet decoder to validate sideband metadata).
[[nodiscard]] bool is_permutation(std::span<const std::uint32_t> perm,
                                  std::size_t n);

/// Reorder a whole value stream window by window: within each consecutive
/// window of `window_values` values, sort descending by popcount. This is
/// the no-NoC experiment's transformation (§V-A): a window models one
/// packet whose flits traverse a link back to back.
[[nodiscard]] std::vector<std::uint32_t> order_stream_descending(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values);

}  // namespace nocbt::ordering
