#pragma once
// '1'-bit count-based data transmission ordering — the paper's primary
// contribution (§III-B, §IV).
//
// Three transmission configurations (§V-B):
//   O0 baseline   — values transmitted in natural task order
//   O1 affiliated — (weight, input) pairs sorted by the weight's popcount,
//                   descending; pairing preserved, no recovery needed
//   O2 separated  — weights and inputs each sorted by their own popcount;
//                   a minimal-bit-width pairing index re-pairs them at the PE
//
// All routines operate on value bit patterns (uint32_t, low value_bits()
// significant) and return permutations so callers can reorder values and
// any side data consistently.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// Transmission ordering configuration. The paper names O0/O1/O2; the
/// remaining modes pair (weight, input) values like O1 but key the
/// reordering on a different registered OrderingStrategy (see strategy.h).
enum class OrderingMode : std::uint8_t {
  kBaseline,    // O0: natural task order
  kAffiliated,  // O1: popcount sort on weights, pairs move together
  kSeparated,   // O2: popcount sort per stream + pairing index
  kChain,       // affiliated pairing, greedy min-XOR chain (naive reference)
  kHdChain,     // affiliated pairing, matrix-accelerated HD chaining
  kBucket,      // affiliated pairing, '1'-count bucket sort (Han et al.)
  kHybrid,      // affiliated pairing, per-window best-of candidate pick
  kTwoFlit,     // affiliated pairing, two-flit interleave of SIII
};

[[nodiscard]] std::string to_string(OrderingMode mode);
[[nodiscard]] OrderingMode parse_ordering_mode(const std::string& s);

/// O0: values leave in arrival order, no strategy runs.
[[nodiscard]] constexpr bool mode_is_baseline(OrderingMode mode) noexcept {
  return mode == OrderingMode::kBaseline;
}

/// O2: weights and inputs are ordered independently and re-paired at the
/// PE through the minimal-bit-width index. Every other non-baseline mode
/// keeps pairs affiliated and needs no recovery metadata.
[[nodiscard]] constexpr bool mode_is_separated(OrderingMode mode) noexcept {
  return mode == OrderingMode::kSeparated;
}

/// Name of the registered OrderingStrategy a mode reorders with ("arrival"
/// for O0, "popcount" for O1/O2, the strategy's own name otherwise).
[[nodiscard]] std::string_view mode_strategy_name(OrderingMode mode) noexcept;

/// Compact mode key used in scenario names and sweep arguments: "O0", "O1",
/// "O2", "chain", "hdchain", "bucket", "hybrid", "twoflit". Each is also
/// accepted by parse_ordering_mode.
[[nodiscard]] std::string short_mode_name(OrderingMode mode);

/// Every mode, in enum order (for sweeps and exhaustive tests).
[[nodiscard]] const std::vector<OrderingMode>& all_ordering_modes();

/// Parse a comma-separated mode list ("O0,O2,hybrid"). Empty tokens are
/// rejected, as is an empty result — the shared front door for every
/// sweep front-end's `modes=` argument.
[[nodiscard]] std::vector<OrderingMode> parse_ordering_mode_list(
    const std::string& csv);

/// Permutation p such that patterns[p[0]], patterns[p[1]], ... have
/// non-increasing popcount. Stable: equal-popcount values keep their
/// original relative order, making the result deterministic.
[[nodiscard]] std::vector<std::uint32_t> popcount_descending_order(
    std::span<const std::uint32_t> patterns, DataFormat format);

/// out[i] = values[perm[i]].
template <typename T>
[[nodiscard]] std::vector<T> apply_permutation(
    std::span<const T> values, std::span<const std::uint32_t> perm) {
  std::vector<T> out;
  out.reserve(perm.size());
  for (const std::uint32_t idx : perm) out.push_back(values[idx]);
  return out;
}

/// inv[perm[i]] = i.
[[nodiscard]] std::vector<std::uint32_t> inverse_permutation(
    std::span<const std::uint32_t> perm);

/// Pairing index for separated-ordering recovery: entry i gives the
/// position, in the *sorted-input* sequence, of the input originally paired
/// with the i-th *sorted weight*. The PE computes
///   sum_i sorted_w[i] * sorted_in[pair_index[i]]
/// to recover the original dot product. Width per entry is
/// index_bits(N) — the "minimal-bit-width index" of §IV-C1.
[[nodiscard]] std::vector<std::uint32_t> separated_pairing_index(
    std::span<const std::uint32_t> weight_perm,
    std::span<const std::uint32_t> input_perm);

/// Verify that `perm` is a permutation of [0, n) (used by tests and by the
/// packet decoder to validate sideband metadata).
[[nodiscard]] bool is_permutation(std::span<const std::uint32_t> perm,
                                  std::size_t n);

/// Reorder a whole value stream window by window: within each consecutive
/// window of `window_values` values, sort descending by popcount. This is
/// the no-NoC experiment's transformation (§V-A): a window models one
/// packet whose flits traverse a link back to back.
[[nodiscard]] std::vector<std::uint32_t> order_stream_descending(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values);

}  // namespace nocbt::ordering
