#pragma once
// Behavioral + timing model of the hardware ordering unit (paper Fig. 14):
// a SWAR pop-count stage feeding an odd-even-transposition (bubble) sort
// network. One unit sits next to each memory controller; §IV-C3 argues its
// latency hides behind the layer-level compute interval — ablation A5
// verifies that claim by enabling this timing model in the platform.

#include <cstdint>
#include <span>
#include <vector>

namespace nocbt::ordering {

/// Structural and timing parameters of one ordering unit.
struct OrderingUnitConfig {
  std::uint32_t lanes = 16;        ///< values sorted per batch (flit slots)
  std::uint32_t value_bits = 32;   ///< key width fed to the pop-counters
  std::uint32_t popcount_stages = 1;  ///< pipeline depth of the pop-count tree
};

/// Cycle cost model of the unit. The sort network is *pipelined*: sorting a
/// packet has an end-to-end latency of roughly pop-count stages + one
/// transposition pass per value, but a new packet can enter the pipeline
/// every initiation interval, so steady-state throughput matches the link
/// rate and the latency hides behind the MC's prefetch buffer (§IV-C3).
class OrderingUnitModel {
 public:
  explicit OrderingUnitModel(OrderingUnitConfig config) : config_(config) {}

  [[nodiscard]] const OrderingUnitConfig& config() const noexcept {
    return config_;
  }

  /// End-to-end latency to sort `n` values: pop-count pipeline depth plus
  /// n transposition passes (classic bubble-sort depth; values beyond
  /// `lanes` stream through at line rate).
  [[nodiscard]] std::uint64_t cycles_to_order(std::uint32_t n) const noexcept;

  /// Affiliated-ordering latency for one packet of `n` pairs: one sort
  /// keyed on the weights.
  [[nodiscard]] std::uint64_t affiliated_cycles(std::uint32_t n) const noexcept {
    return cycles_to_order(n);
  }

  /// Separated-ordering latency: weights and inputs are each sorted —
  /// "double time consumption" (§V-C).
  [[nodiscard]] std::uint64_t separated_cycles(std::uint32_t n) const noexcept {
    return 2 * cycles_to_order(n);
  }

  /// Cycles before the *next* packet can enter the pipeline: one cycle per
  /// `lanes`-wide batch of values (the unit ingests one flit-batch per
  /// cycle).
  [[nodiscard]] std::uint64_t initiation_interval(std::uint32_t n) const noexcept {
    const std::uint32_t lanes = config_.lanes ? config_.lanes : 1;
    return n == 0 ? 1 : (n + lanes - 1) / lanes;
  }

  /// Separated-ordering runs two sorts through the same unit.
  [[nodiscard]] std::uint64_t separated_initiation_interval(
      std::uint32_t n) const noexcept {
    return 2 * initiation_interval(n);
  }

  /// Bit-accurate behavioral model of the sort network: a SWAR pop-count
  /// per value feeding n odd-even-transposition passes whose comparators
  /// swap only on strictly out-of-order keys. Keys are the low
  /// `config().value_bits` bits of each pattern — the same width the cycle
  /// model's pop-count stage is sized for. The strict comparison makes the
  /// network stable, so for a matching-width DataFormat the permutation
  /// must match the software popcount_descending_order reference exactly.
  [[nodiscard]] std::vector<std::uint32_t> hardware_order(
      std::span<const std::uint32_t> patterns) const;

  /// Comparator count of the transposition network (lanes/2 per pass slot).
  [[nodiscard]] std::uint32_t comparators() const noexcept {
    return config_.lanes / 2;
  }

 private:
  OrderingUnitConfig config_;
};

}  // namespace nocbt::ordering
