#pragma once
// Related-work bus-encoding baselines for ablation A3.
//
// Bus-invert coding [Stan & Burleson, TVLSI'95]: per flit, transmit either
// the data or its complement, whichever flips fewer wires relative to the
// previous transmission; one extra invert wire per segment carries the
// choice. Needs extra lines on the bus (the paper contrasts its ordering
// with exactly this cost).
//
// XOR-delta encoding (in the spirit of RiBiT / delta schemes [11]):
// transmit d_t = v_t XOR v_{t-1}; correlated streams produce near-zero
// deltas, hence near-zero transitions between consecutive encoded flits.
// Requires a decoder register per link.

#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace nocbt::ordering {

/// Result of encoding a flit stream: the transformed payload sequence plus
/// the extra wires the scheme needs per link.
struct EncodedStream {
  std::vector<BitVec> payloads;
  unsigned extra_wires_per_link = 0;
  /// Transitions contributed by the extra (e.g. invert) wires.
  std::uint64_t extra_wire_transitions = 0;
};

/// Bus-invert coding with `segments` independently inverted slices of the
/// flit (segments must divide the payload width). One invert wire per
/// segment. Transitions on the invert wires themselves are tallied in
/// `extra_wire_transitions`.
[[nodiscard]] EncodedStream bus_invert_encode(const std::vector<BitVec>& flits,
                                              unsigned segments = 1);

/// XOR-delta coding: payload[0] unchanged, payload[t] = flit[t] ^ flit[t-1].
[[nodiscard]] EncodedStream xor_delta_encode(const std::vector<BitVec>& flits);

/// Invert XOR-delta (for round-trip tests).
[[nodiscard]] std::vector<BitVec> xor_delta_decode(
    const std::vector<BitVec>& encoded);

}  // namespace nocbt::ordering
