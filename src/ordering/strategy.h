#pragma once
// Pluggable ordering-strategy engine.
//
// The paper evaluates exactly two reorderings (popcount sort, greedy
// min-XOR chain), but related work shows the design space is wider: '1'-
// bit-count sorting units (Han et al.) and operand Hamming-distance
// scheduling (Li et al.) are both orderings over the same packets. This
// header turns "how do we reorder a window" into a registered interface so
// O0/O1/O2, the greedy chain, and the two-flit interleave are instances
// rather than special cases — and new strategies become sweepable from the
// campaign runner by name.
//
// A strategy is a pure function window -> permutation. Pairing semantics
// (affiliated vs separated) stay with OrderingMode: every non-O2 mode
// applies its strategy's permutation to (weight, input) pairs keyed on the
// weights; O2 applies the popcount strategy per stream plus the pairing
// index. Registered built-ins:
//
//   arrival   identity (O0 reference point)
//   popcount  stable '1'-count descending sort (the paper's unit, O1/O2)
//   bucket    '1'-count bucket sort; permutation identical to popcount
//   chain     greedy min-XOR chain, naive O(N^2) scan (ablation A4)
//   hdchain   same chain semantics over a precomputed pairwise-HD matrix
//   hybrid    per-window best of {arrival, popcount, chain} by measured BT
//   twoflit   SIII interleave x1 >= y1 >= x2 >= y2 >= ... across two flits
//
// chain/hdchain/hybrid additionally guarantee they never increase the
// window's sequence BT versus arrival order (they fall back to the
// identity permutation when the chained order would be worse), which is
// the invariant the property suite asserts for every chain-class strategy.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/data_format.h"
#include "ordering/ordering.h"

namespace nocbt::ordering {

/// Hardware-cost assumptions of a strategy, relative to the paper's
/// 12.91 kGE pop-count + odd-even-transposition unit (Fig. 14).
struct HardwareCost {
  std::string summary;          ///< one-line circuit sketch
  double relative_area = 1.0;   ///< rough gate budget vs the paper's unit
  bool sequential_scan = false; ///< needs a serial O(N^2) selection loop
  bool per_window_adaptive = false;  ///< needs per-window BT monitors
};

/// One ordering policy. Implementations must be stateless and thread-safe:
/// order() is called concurrently from campaign worker threads and must be
/// a deterministic pure function of (patterns, format).
class OrderingStrategy {
 public:
  virtual ~OrderingStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  [[nodiscard]] virtual HardwareCost hardware_cost() const = 0;

  /// Permutation p such that patterns[p[0]], patterns[p[1]], ... is the
  /// transmission order (same contract as popcount_descending_order).
  [[nodiscard]] virtual std::vector<std::uint32_t> order(
      std::span<const std::uint32_t> patterns, DataFormat format) const = 0;

  /// Batched entry point: `patterns` holds consecutive window_values-sized
  /// windows (the last may be ragged — one window per campaign injection
  /// request, or every window of a stream). Returns the concatenated
  /// window-local permutations: window w occupies the output range
  /// [w * window_values, w * window_values + len_w), holding exactly what
  /// order() returns for that window.
  ///
  /// The default loops order() per window; chain-class and hybrid
  /// strategies override it to push all their sequence-BT scoring through
  /// one BtKernelBackend batch pass per candidate ordering instead of one
  /// kernel call per window.
  ///
  /// `arrival_bt` optionally carries precomputed arrival-order sequence
  /// BTs, one per window (the campaign runner shares one batch pass across
  /// every mode row of a grid point). Empty means "compute them here";
  /// non-empty spans must hold exactly one entry per window. Since every
  /// kernel tier returns identical sums, the hint can never change the
  /// chosen permutations.
  [[nodiscard]] virtual std::vector<std::uint32_t> order_batch(
      std::span<const std::uint32_t> patterns, DataFormat format,
      std::size_t window_values,
      std::span<const std::uint64_t> arrival_bt = {}) const;

  /// True for chain-class strategies that guarantee the ordered window's
  /// sequence BT never exceeds arrival order's (the property suite
  /// enforces the guarantee for every strategy that claims it).
  [[nodiscard]] virtual bool never_worse_than_arrival() const noexcept {
    return false;
  }
};

/// Registered strategy by name, or nullptr. Thread-safe.
[[nodiscard]] const OrderingStrategy* find_strategy(std::string_view name);

/// Registered strategy by name; throws std::invalid_argument (listing the
/// registered names) when absent.
[[nodiscard]] const OrderingStrategy& get_strategy(std::string_view name);

/// Snapshot of every registered strategy, registration order. The pointers
/// stay valid for the process lifetime (strategies are never removed).
[[nodiscard]] std::vector<const OrderingStrategy*> registered_strategies();

/// Names of every registered strategy, registration order — the
/// enumeration hook exhaustive sweeps and the co-optimizer build their
/// strategy axis from (get_strategy accepts each returned name).
[[nodiscard]] std::vector<std::string> registered_strategy_names();

/// Add a strategy to the registry. Throws std::invalid_argument on a null
/// strategy or a duplicate/empty name.
void register_strategy(std::unique_ptr<OrderingStrategy> strategy);

/// The strategy an OrderingMode reorders with (see mode_strategy_name).
[[nodiscard]] const OrderingStrategy& mode_strategy(OrderingMode mode);

/// Reorder a whole value stream window by window with `strategy` — the
/// strategy-generic form of order_stream_descending / chain_stream_greedy.
[[nodiscard]] std::vector<std::uint32_t> order_stream_with(
    const OrderingStrategy& strategy, std::span<const std::uint32_t> patterns,
    DataFormat format, std::size_t window_values);

}  // namespace nocbt::ordering
