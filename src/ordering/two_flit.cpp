#include "ordering/two_flit.h"

#include <algorithm>
#include <stdexcept>

#include "ordering/ordering.h"

namespace nocbt::ordering {

std::int64_t pairwise_product_sum(const TwoFlitAssignment& a,
                                  DataFormat format) {
  std::int64_t f = 0;
  for (std::size_t i = 0; i < a.flit1.size(); ++i)
    f += static_cast<std::int64_t>(pattern_popcount(a.flit1[i], format)) *
         pattern_popcount(a.flit2[i], format);
  return f;
}

TwoFlitAssignment interleave_descending(std::span<const std::uint32_t> values,
                                        DataFormat format) {
  if (values.size() % 2 != 0)
    throw std::invalid_argument("interleave_descending: need an even count");
  const auto perm = popcount_descending_order(values, format);
  TwoFlitAssignment out;
  out.flit1.reserve(values.size() / 2);
  out.flit2.reserve(values.size() / 2);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (i % 2 == 0)
      out.flit1.push_back(values[perm[i]]);
    else
      out.flit2.push_back(values[perm[i]]);
  }
  return out;
}

namespace {

// Recursively enumerate perfect matchings of the remaining values: take the
// first unused value, pair it with every other unused value.
std::int64_t best_matching(std::vector<std::uint32_t>& counts,
                           std::vector<bool>& used, std::size_t n_used) {
  const std::size_t n = counts.size();
  if (n_used == n) return 0;
  std::size_t first = 0;
  while (used[first]) ++first;
  used[first] = true;
  std::int64_t best = -1;
  for (std::size_t j = first + 1; j < n; ++j) {
    if (used[j]) continue;
    used[j] = true;
    const std::int64_t rest = best_matching(counts, used, n_used + 2);
    best = std::max(best,
                    static_cast<std::int64_t>(counts[first]) * counts[j] + rest);
    used[j] = false;
  }
  used[first] = false;
  return best;
}

}  // namespace

std::int64_t exhaustive_best_f(std::span<const std::uint32_t> values,
                               DataFormat format) {
  if (values.size() % 2 != 0)
    throw std::invalid_argument("exhaustive_best_f: need an even count");
  if (values.size() > 12)
    throw std::invalid_argument("exhaustive_best_f: too large for brute force");
  std::vector<std::uint32_t> counts;
  counts.reserve(values.size());
  for (const auto v : values)
    counts.push_back(static_cast<std::uint32_t>(pattern_popcount(v, format)));
  std::vector<bool> used(values.size(), false);
  return best_matching(counts, used, 0);
}

double expected_transitions(const TwoFlitAssignment& a, DataFormat format) {
  const double w = value_bits(format);
  double sum_counts = 0.0;
  for (const auto v : a.flit1) sum_counts += pattern_popcount(v, format);
  for (const auto v : a.flit2) sum_counts += pattern_popcount(v, format);
  const auto f = static_cast<double>(pairwise_product_sum(a, format));
  return sum_counts - 2.0 * f / w;
}

}  // namespace nocbt::ordering
