#include "ordering/bt_kernel_backend.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/bitops.h"
#include "ordering/bt_kernels.h"

namespace nocbt::ordering {

#ifdef NOCBT_HAVE_AVX2_TU
namespace detail_avx2 {
// Defined in bt_kernels_avx2.cpp, which CMake compiles with the AVX2 ISA
// flags only when the compiler supports them on this architecture.
std::unique_ptr<BtKernelBackend> make_avx2_backend();
}  // namespace detail_avx2
#endif

namespace {

/// Tile edge for the blocked pairwise-HD matrix: a 128x128 tile of the
/// uint8 matrix plus the two 128-value pattern slices stay well inside L1,
/// so the quadratic fill streams through cache-resident data.
constexpr std::size_t kHdTile = 128;

/// Blocked upper-triangle fill over pre-masked values, mirrored per tile.
/// Shared by the scalar and batch64 tiers; the avx2 tier vectorizes the
/// inner row scan but keeps the same tiling and mirroring.
void hd_matrix_blocked(std::span<const std::uint32_t> patterns,
                       DataFormat format, std::span<std::uint8_t> out) {
  const std::size_t n = patterns.size();
  const auto mask = static_cast<std::uint32_t>(low_mask(value_bits(format)));
  // Pre-mask once: the O(n^2) fill then reads clean values. The tiled fill
  // only touches off-diagonal entries, so the diagonal is written here —
  // callers may hand over an uninitialized buffer.
  std::vector<std::uint32_t> masked(n);
  for (std::size_t i = 0; i < n; ++i) masked[i] = patterns[i] & mask;
  for (std::size_t i = 0; i < n; ++i) out[i * n + i] = 0;
  for (std::size_t i0 = 0; i0 < n; i0 += kHdTile) {
    const std::size_t i1 = std::min(n, i0 + kHdTile);
    for (std::size_t j0 = i0; j0 < n; j0 += kHdTile) {
      const std::size_t j1 = std::min(n, j0 + kHdTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const std::uint32_t vi = masked[i];
        std::uint8_t* row = out.data() + i * n;
        for (std::size_t j = std::max(j0, i + 1); j < j1; ++j) {
          const auto d = static_cast<std::uint8_t>(popcount32(vi ^ masked[j]));
          row[j] = d;
          out[j * n + i] = d;
        }
      }
    }
  }
}

class ScalarBackend final : public BtKernelBackend {
 public:
  std::string_view name() const noexcept override { return "scalar"; }
  std::string_view description() const noexcept override {
    return "PR-3 word-packed uint64 shift-XOR-popcount, one window per call";
  }
  int priority() const noexcept override { return 0; }

  std::uint64_t sequence_bt(std::span<const std::uint32_t> window,
                            DataFormat format) const override {
    const unsigned bits = value_bits(format);
    const std::uint64_t mask = low_mask(bits);
    const std::size_t word_count = (window.size() * bits + 63) / 64;
    // Ordering windows are small (the paper sweeps 16-1024 values); pack
    // into a stack buffer when the stream fits so the hot path never
    // allocates. 128 words hold 1024 fixed-8 or 256 float-32 values.
    constexpr std::size_t kStackWords = 128;
    if (word_count <= kStackWords) {
      std::array<std::uint64_t, kStackWords> words;  // pack_into fills it
      detail::pack_into(words.data(), window, bits, mask);
      return detail::sequence_bt_words(words.data(), word_count, window.size(),
                                       bits);
    }
    const PackedStream stream = pack_patterns(window, format);
    return detail::sequence_bt_words(stream.words.data(), stream.words.size(),
                                     stream.value_count,
                                     stream.bits_per_value);
  }
};

/// Portable batched tier: one PackedStream reused across the whole batch
/// (zero-alloc steady state via pack_patterns_into) and a 4-way-unrolled
/// multi-word XOR+popcount that walks each packed window in independent
/// accumulator chains.
class Batch64Backend final : public BtKernelBackend {
 public:
  std::string_view name() const noexcept override { return "batch64"; }
  std::string_view description() const noexcept override {
    return "portable batched uint64 tier: packed-stream reuse + unrolled "
           "multi-word XOR+popcount over whole windows per call";
  }
  int priority() const noexcept override { return 10; }

  std::uint64_t sequence_bt(std::span<const std::uint32_t> window,
                            DataFormat format) const override {
    PackedStream& stream = scratch();
    pack_patterns_into(stream, window, format);
    return sequence_bt_unrolled(stream);
  }

  void sequence_bt_batch(std::span<const std::uint32_t> patterns,
                         DataFormat format, std::size_t window_values,
                         std::span<std::uint64_t> out) const override {
    check_batch_args(patterns.size(), window_values, out.size());
    PackedStream& stream = scratch();
    for (std::size_t w = 0; w < out.size(); ++w) {
      const std::size_t start = w * window_values;
      const std::size_t len =
          std::min(window_values, patterns.size() - start);
      pack_patterns_into(stream, patterns.subspan(start, len), format);
      out[w] = sequence_bt_unrolled(stream);
    }
  }

 private:
  /// Per-thread packed-stream scratch: campaign workers batch
  /// concurrently, and the reused heap buffer is what makes the steady
  /// state allocation-free.
  static PackedStream& scratch() {
    thread_local PackedStream stream;
    return stream;
  }

  static std::uint64_t sequence_bt_unrolled(const PackedStream& s) noexcept {
    const std::size_t value_count = s.value_count;
    const unsigned bits = s.bits_per_value;
    if (value_count < 2 || bits == 0) return 0;
    const std::uint64_t* words = s.words.data();
    const std::size_t word_count = s.words.size();
    const std::size_t limit = (value_count - 1) * bits;
    const std::size_t nwords = (limit + 63) / 64;
    const auto term = [&](std::size_t i) {
      std::uint64_t shifted = words[i] >> bits;
      if (i + 1 < word_count) shifted |= words[i + 1] << (64 - bits);
      std::uint64_t x = words[i] ^ shifted;
      const std::size_t bits_here = std::min<std::size_t>(64, limit - i * 64);
      if (bits_here < 64) x &= low_mask(static_cast<unsigned>(bits_here));
      return static_cast<std::uint64_t>(popcount64(x));
    };
    std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= nwords; i += 4) {
      t0 += term(i);
      t1 += term(i + 1);
      t2 += term(i + 2);
      t3 += term(i + 3);
    }
    for (; i < nwords; ++i) t0 += term(i);
    return t0 + t1 + t2 + t3;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<BtKernelBackend>> list;

  Registry() {
    list.push_back(std::make_unique<ScalarBackend>());
    list.push_back(std::make_unique<Batch64Backend>());
#ifdef NOCBT_HAVE_AVX2_TU
    list.push_back(detail_avx2::make_avx2_backend());
#endif
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Innermost live ScopedKernelTier (nullptr when none). A plain atomic:
/// scopes are test/bench tooling created from one thread at a time, but
/// worker threads spawned inside a scope read it concurrently.
std::atomic<const BtKernelBackend*> g_scoped_override{nullptr};

const BtKernelBackend* resolve_default_backend() {
  if (const char* env = std::getenv("NOCBT_KERNEL_TIER"); env && *env) {
    const BtKernelBackend* chosen = find_kernel_backend(env);
    if (chosen == nullptr) {
      std::string known;
      for (const BtKernelBackend* b : registered_kernel_backends()) {
        if (!known.empty()) known += ", ";
        known += b->name();
      }
      throw std::runtime_error(
          "NOCBT_KERNEL_TIER names unknown kernel tier '" + std::string(env) +
          "' (registered: " + known + ")");
    }
    if (!chosen->available())
      throw std::runtime_error("NOCBT_KERNEL_TIER names kernel tier '" +
                               std::string(env) +
                               "', which this CPU cannot execute");
    return chosen;
  }
  const BtKernelBackend* best = nullptr;
  for (const BtKernelBackend* b : registered_kernel_backends())
    if (b->available() && (best == nullptr || b->priority() > best->priority()))
      best = b;
  return best;  // scalar is always available, so never null
}

}  // namespace

void BtKernelBackend::check_batch_args(std::size_t pattern_count,
                                       std::size_t window_values,
                                       std::size_t out_size) {
  if (window_values == 0)
    throw std::invalid_argument("sequence_bt_batch: window_values == 0");
  const std::size_t windows =
      (pattern_count + window_values - 1) / window_values;
  if (out_size != windows)
    throw std::invalid_argument(
        "sequence_bt_batch: out holds " + std::to_string(out_size) +
        " slots but " + std::to_string(pattern_count) + " patterns at " +
        std::to_string(window_values) + " values per window form " +
        std::to_string(windows) + " windows");
}

void BtKernelBackend::sequence_bt_batch(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values, std::span<std::uint64_t> out) const {
  check_batch_args(patterns.size(), window_values, out.size());
  for (std::size_t w = 0; w < out.size(); ++w) {
    const std::size_t start = w * window_values;
    const std::size_t len = std::min(window_values, patterns.size() - start);
    out[w] = sequence_bt(patterns.subspan(start, len), format);
  }
}

void BtKernelBackend::pairwise_hd_matrix(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::span<std::uint8_t> out) const {
  if (out.size() != patterns.size() * patterns.size())
    throw std::invalid_argument(
        "pairwise_hd_matrix: out holds " + std::to_string(out.size()) +
        " entries, want n*n = " +
        std::to_string(patterns.size() * patterns.size()));
  hd_matrix_blocked(patterns, format, out);
}

const BtKernelBackend* find_kernel_backend(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& b : reg.list)
    if (b->name() == name) return b.get();
  return nullptr;
}

const BtKernelBackend& get_kernel_backend(std::string_view name) {
  if (const BtKernelBackend* b = find_kernel_backend(name)) return *b;
  std::string known;
  for (const BtKernelBackend* b : registered_kernel_backends()) {
    if (!known.empty()) known += ", ";
    known += b->name();
  }
  throw std::invalid_argument("get_kernel_backend: unknown kernel tier '" +
                              std::string(name) + "' (registered: " + known +
                              ")");
}

std::vector<const BtKernelBackend*> registered_kernel_backends() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<const BtKernelBackend*> out;
  out.reserve(reg.list.size());
  for (const auto& b : reg.list) out.push_back(b.get());
  return out;
}

std::vector<std::string> registered_kernel_backend_names() {
  std::vector<std::string> out;
  for (const BtKernelBackend* b : registered_kernel_backends())
    out.emplace_back(b->name());
  return out;
}

void register_kernel_backend(std::unique_ptr<BtKernelBackend> backend) {
  if (!backend)
    throw std::invalid_argument("register_kernel_backend: null backend");
  if (backend->name().empty())
    throw std::invalid_argument("register_kernel_backend: empty backend name");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& b : reg.list)
    if (b->name() == backend->name())
      throw std::invalid_argument(
          "register_kernel_backend: duplicate name '" +
          std::string(backend->name()) + "'");
  reg.list.push_back(std::move(backend));
}

const BtKernelBackend& active_kernel_backend() {
  if (const BtKernelBackend* scoped =
          g_scoped_override.load(std::memory_order_acquire))
    return *scoped;
  // Environment/CPUID resolution happens once; the scoped override above
  // stays checkable afterwards because it is consulted first.
  static const BtKernelBackend* const resolved = resolve_default_backend();
  return *resolved;
}

ScopedKernelTier::ScopedKernelTier(std::string_view name) {
  const BtKernelBackend& chosen = get_kernel_backend(name);
  if (!chosen.available())
    throw std::runtime_error("ScopedKernelTier: kernel tier '" +
                             std::string(name) +
                             "' is registered but this CPU cannot execute it");
  previous_ = g_scoped_override.exchange(&chosen, std::memory_order_acq_rel);
}

ScopedKernelTier::~ScopedKernelTier() {
  g_scoped_override.store(previous_, std::memory_order_release);
}

}  // namespace nocbt::ordering
