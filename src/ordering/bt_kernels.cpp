#include "ordering/bt_kernels.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/bitops.h"
#include "ordering/bt_kernel_backend.h"

namespace nocbt::ordering {

namespace detail {

void pack_into(std::uint64_t* words, std::span<const std::uint32_t> patterns,
               unsigned bits, std::uint64_t mask) noexcept {
  if (64 % bits == 0) {
    // 8- and 32-bit values never straddle a word: assemble each word in a
    // register and store it once.
    const unsigned per_word = 64 / bits;
    std::size_t i = 0;
    for (std::size_t w = 0; i < patterns.size(); ++w) {
      const std::size_t n =
          std::min<std::size_t>(per_word, patterns.size() - i);
      std::uint64_t word = 0;
      for (std::size_t k = 0; k < n; ++k)
        word |= (patterns[i + k] & mask) << (k * bits);
      words[w] = word;
      i += n;
    }
    return;
  }
  const std::size_t word_count = (patterns.size() * bits + 63) / 64;
  std::fill_n(words, word_count, std::uint64_t{0});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const std::size_t pos = i * bits;
    const unsigned shift = static_cast<unsigned>(pos & 63);
    const std::uint64_t value = patterns[i] & mask;
    words[pos >> 6] |= value << shift;
    if (shift + bits > 64) words[(pos >> 6) + 1] |= value >> (64 - shift);
  }
}

std::uint64_t sequence_bt_words(const std::uint64_t* words,
                                std::size_t word_count, std::size_t value_count,
                                unsigned bits) noexcept {
  if (value_count < 2 || bits == 0) return 0;
  // Bit j of (stream XOR (stream >> bits)) is the flip between bit j of
  // value i and the same slot bit of value i+1; summing popcounts over the
  // first (count-1)*bits positions yields exactly the sequence BT.
  const std::size_t limit = (value_count - 1) * bits;
  const std::size_t nwords = (limit + 63) / 64;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    std::uint64_t shifted = words[i] >> bits;
    if (i + 1 < word_count) shifted |= words[i + 1] << (64 - bits);
    std::uint64_t x = words[i] ^ shifted;
    const std::size_t bits_here = std::min<std::size_t>(64, limit - i * 64);
    if (bits_here < 64) x &= low_mask(static_cast<unsigned>(bits_here));
    total += static_cast<std::uint64_t>(popcount64(x));
  }
  return total;
}

}  // namespace detail

PackedStream pack_patterns(std::span<const std::uint32_t> patterns,
                           DataFormat format) {
  PackedStream out;
  pack_patterns_into(out, patterns, format);
  return out;
}

void pack_patterns_into(PackedStream& out,
                        std::span<const std::uint32_t> patterns,
                        DataFormat format) {
  const unsigned bits = value_bits(format);
  out.value_count = patterns.size();
  out.bits_per_value = bits;
  // resize (not assign) reuses the buffer without re-zeroing it:
  // detail::pack_into writes every word including the ragged last one.
  out.words.resize((patterns.size() * bits + 63) / 64);
  detail::pack_into(out.words.data(), patterns, bits, low_mask(bits));
}

std::uint64_t sequence_bt(const PackedStream& stream) noexcept {
  return detail::sequence_bt_words(stream.words.data(), stream.words.size(),
                                   stream.value_count, stream.bits_per_value);
}

std::uint64_t sequence_bt(std::span<const std::uint32_t> patterns,
                          DataFormat format) {
  return active_kernel_backend().sequence_bt(patterns, format);
}

std::vector<std::uint64_t> sequence_bt_batch(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values) {
  if (window_values == 0)
    throw std::invalid_argument("sequence_bt_batch: window_values == 0");
  std::vector<std::uint64_t> out(
      (patterns.size() + window_values - 1) / window_values);
  active_kernel_backend().sequence_bt_batch(patterns, format, window_values,
                                            out);
  return out;
}

std::uint64_t permuted_sequence_bt(std::span<const std::uint32_t> patterns,
                                   std::span<const std::uint32_t> perm,
                                   DataFormat format) noexcept {
  if (perm.size() < 2) return 0;
  const auto mask = static_cast<std::uint32_t>(low_mask(value_bits(format)));
  std::uint64_t total = 0;
  std::uint32_t prev = patterns[perm[0]] & mask;
  for (std::size_t i = 1; i < perm.size(); ++i) {
    const std::uint32_t cur = patterns[perm[i]] & mask;
    total += static_cast<std::uint64_t>(popcount32(prev ^ cur));
    prev = cur;
  }
  return total;
}

std::uint64_t sequence_bt_reference(std::span<const std::uint32_t> patterns,
                                    DataFormat format) {
  const unsigned bits = value_bits(format);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i)
    for (unsigned b = 0; b < bits; ++b)
      total += ((patterns[i] >> b) ^ (patterns[i + 1] >> b)) & 1u;
  return total;
}

std::vector<std::uint8_t> pairwise_hd_matrix(
    std::span<const std::uint32_t> patterns, DataFormat format) {
  if (value_bits(format) > 255)
    throw std::invalid_argument(
        "pairwise_hd_matrix: format is " + std::to_string(value_bits(format)) +
        " bits wide; distances no longer fit the uint8_t matrix (max 255 "
        "bits per value)");
  std::vector<std::uint8_t> matrix(patterns.size() * patterns.size(), 0);
  active_kernel_backend().pairwise_hd_matrix(patterns, format, matrix);
  return matrix;
}

}  // namespace nocbt::ordering
