// AVX2 (and, where the CPU offers it, AVX-512 vpopcntq) kernel tier.
//
// CMake compiles this TU with -mavx2 into a separate object target and
// defines NOCBT_HAVE_AVX2_TU for the registry, which then registers the
// backend; available() still gates on runtime CPUID so a binary built with
// the TU stays runnable (auto-dispatch skips the tier) on CPUs without
// AVX2. Everything here computes the exact same integer sums as the scalar
// word kernels — the differential suites pin that — so tier selection can
// never shift a campaign report.
//
// Kernel shape: a window's sequence BT is sum_i popcount(v[i] ^ v[i+1])
// over format-masked values. Values are first narrowed (fixed-8) or copied
// (float-32) into a contiguous per-thread byte scratch with zero padding,
// where "XOR with the next value" becomes "XOR with the buffer shifted by
// one value's bytes". Unaligned 256-bit pair loads + a vpshufb nibble-LUT
// byte popcount folded with psadbw then cover 32 byte-pairs per step
// (AVX-512: 64 with a native vpopcntq), a uint64 loop covers 8, and one
// masked word handles the ragged tail exactly.

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/bitops.h"
#include "ordering/bt_kernel_backend.h"
#include "ordering/bt_kernels.h"

#if !defined(__AVX2__)
#error "bt_kernels_avx2.cpp must be compiled with -mavx2 (see src/ordering/CMakeLists.txt)"
#endif

#include <immintrin.h>

namespace nocbt::ordering::detail_avx2 {

namespace {

/// Scratch bytes appended past the live data so the masked tail load of
/// the pair kernel (up to 8 bytes starting vb bytes past the last pair)
/// never reads out of bounds.
constexpr std::size_t kScratchPad = 64;

/// Per-thread byte scratch holding the narrowed/copied value stream.
std::vector<std::uint8_t>& byte_scratch() {
  thread_local std::vector<std::uint8_t> buf;
  return buf;
}

/// Bytes per transmitted value (fixed-8 -> 1, float-32 -> 4).
std::size_t value_bytes(DataFormat format) noexcept {
  return value_bits(format) / 8;
}

/// Narrow (or copy) `patterns` into the thread scratch as a contiguous
/// masked byte stream and return its base pointer. The scratch keeps
/// kScratchPad readable bytes past the end.
const std::uint8_t* load_scratch(std::span<const std::uint32_t> patterns,
                                 DataFormat format) {
  std::vector<std::uint8_t>& buf = byte_scratch();
  const std::size_t vb = value_bytes(format);
  const std::size_t bytes = patterns.size() * vb;
  if (buf.size() < bytes + kScratchPad) buf.resize(bytes + kScratchPad);
  if (vb == 1) {
    // u32 -> u8 narrowing loop; with -mavx2 the compiler turns this into
    // packed truncation, and the cast is the 8-bit mask.
    std::uint8_t* out = buf.data();
    for (std::size_t i = 0; i < patterns.size(); ++i)
      out[i] = static_cast<std::uint8_t>(patterns[i]);
  } else {
    // 32-bit values carry all their bits: the byte stream is the values'
    // own little-endian bytes.
    std::memcpy(buf.data(), patterns.data(), bytes);
  }
  return buf.data();
}

std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Per-byte popcount of a 256-bit lane via the classic vpshufb nibble LUT.
__m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), nibble);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// sum_{i in [0, pair_bytes)} popcount(buf[i] ^ buf[i + vb]) — the byte
/// form of "stream XOR (stream >> one value)". AVX2 main loop, uint64
/// middle loop, masked-word tail.
std::uint64_t pair_popcount_avx2(const std::uint8_t* buf,
                                 std::size_t pair_bytes,
                                 std::size_t vb) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  if (pair_bytes >= 32) {
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 32 <= pair_bytes; i += 32) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(buf + i));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(buf + i + vb));
      // psadbw against zero folds the per-byte counts into four u64 lanes
      // without ever overflowing the u8 counters.
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(popcount_bytes(_mm256_xor_si256(a, b)), zero));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  for (; i + 8 <= pair_bytes; i += 8)
    total += static_cast<std::uint64_t>(
        popcount64(load_u64(buf + i) ^ load_u64(buf + i + vb)));
  if (i < pair_bytes) {
    // Ragged tail: one padded word, masked down to the live pair bytes.
    const std::uint64_t x = load_u64(buf + i) ^ load_u64(buf + i + vb);
    const auto live = static_cast<unsigned>((pair_bytes - i) * 8);
    total += static_cast<std::uint64_t>(popcount64(x & low_mask(live)));
  }
  return total;
}

#ifdef NOCBT_HAVE_AVX512_ATTR
__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
pair_popcount_avx512(const std::uint8_t* buf, std::size_t pair_bytes,
                     std::size_t vb) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  if (pair_bytes >= 64) {
    __m512i acc = _mm512_setzero_si512();
    for (; i + 64 <= pair_bytes; i += 64) {
      const __m512i a = _mm512_loadu_si512(buf + i);
      const __m512i b = _mm512_loadu_si512(buf + i + vb);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_xor_si512(a, b)));
    }
    // Manual lane fold: _mm512_reduce_add_epi64 trips GCC 12's
    // -Wmaybe-uninitialized on the _mm256_undefined_si256 inside it.
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    for (const std::uint64_t lane : lanes) total += lane;
  }
  for (; i + 8 <= pair_bytes; i += 8)
    total += static_cast<std::uint64_t>(
        popcount64(load_u64(buf + i) ^ load_u64(buf + i + vb)));
  if (i < pair_bytes) {
    const std::uint64_t x = load_u64(buf + i) ^ load_u64(buf + i + vb);
    const auto live = static_cast<unsigned>((pair_bytes - i) * 8);
    total += static_cast<std::uint64_t>(popcount64(x & low_mask(live)));
  }
  return total;
}
#endif  // NOCBT_HAVE_AVX512_ATTR

using PairPopcountFn = std::uint64_t (*)(const std::uint8_t*, std::size_t,
                                         std::size_t) noexcept;

class Avx2Backend final : public BtKernelBackend {
 public:
  Avx2Backend() {
#ifdef NOCBT_HAVE_AVX512_ATTR
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vpopcntdq"))
      pair_popcount_ = &pair_popcount_avx512;
#endif
  }

  std::string_view name() const noexcept override { return "avx2"; }
  std::string_view description() const noexcept override {
    return "256-bit vpshufb-LUT popcount over byte-narrowed windows "
           "(AVX-512 vpopcntq inner loops where the CPU supports them)";
  }
  bool available() const noexcept override {
    return __builtin_cpu_supports("avx2") != 0;
  }
  int priority() const noexcept override { return 20; }

  std::uint64_t sequence_bt(std::span<const std::uint32_t> window,
                            DataFormat format) const override {
    if (window.size() < 2) return 0;
    const std::uint8_t* buf = load_scratch(window, format);
    const std::size_t vb = value_bytes(format);
    return pair_popcount_(buf, (window.size() - 1) * vb, vb);
  }

  void sequence_bt_batch(std::span<const std::uint32_t> patterns,
                         DataFormat format, std::size_t window_values,
                         std::span<std::uint64_t> out) const override {
    check_batch_args(patterns.size(), window_values, out.size());
    // One narrowing pass over the whole span; every window then scores
    // off its slice of the shared byte stream.
    const std::uint8_t* buf = load_scratch(patterns, format);
    const std::size_t vb = value_bytes(format);
    for (std::size_t w = 0; w < out.size(); ++w) {
      const std::size_t start = w * window_values;
      const std::size_t len = std::min(window_values, patterns.size() - start);
      out[w] = len < 2 ? 0
                       : pair_popcount_(buf + start * vb, (len - 1) * vb, vb);
    }
  }

  void pairwise_hd_matrix(std::span<const std::uint32_t> patterns,
                          DataFormat format,
                          std::span<std::uint8_t> out) const override {
    if (out.size() != patterns.size() * patterns.size())
      throw std::invalid_argument(
          "pairwise_hd_matrix: out holds " + std::to_string(out.size()) +
          " entries, want n*n = " +
          std::to_string(patterns.size() * patterns.size()));
    const std::size_t n = patterns.size();
    const auto mask = static_cast<std::uint32_t>(low_mask(value_bits(format)));
    thread_local std::vector<std::uint32_t> masked;
    masked.resize(n);
    for (std::size_t i = 0; i < n; ++i) masked[i] = patterns[i] & mask;
    // The tiled fill only touches off-diagonal entries; write the diagonal
    // here so callers may hand over an uninitialized buffer.
    for (std::size_t i = 0; i < n; ++i) out[i * n + i] = 0;
    // Same 128x128 cache tiling and upper-triangle/mirror discipline as
    // the scalar tier; the row scan vectorizes 8 distances per step.
    constexpr std::size_t kTile = 128;
    const __m256i ones8 = _mm256_set1_epi8(1);
    const __m256i ones16 = _mm256_set1_epi16(1);
    for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
      const std::size_t i1 = std::min(n, i0 + kTile);
      for (std::size_t j0 = i0; j0 < n; j0 += kTile) {
        const std::size_t j1 = std::min(n, j0 + kTile);
        for (std::size_t i = i0; i < i1; ++i) {
          const std::uint32_t vi = masked[i];
          std::uint8_t* row = out.data() + i * n;
          std::size_t j = std::max(j0, i + 1);
          const __m256i vvi = _mm256_set1_epi32(static_cast<int>(vi));
          for (; j + 8 <= j1; j += 8) {
            const __m256i vj = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(masked.data() + j));
            const __m256i cnt8 = popcount_bytes(_mm256_xor_si256(vvi, vj));
            // Fold per-byte counts to one u32 distance per lane:
            // maddubs sums byte pairs to u16, madd sums u16 pairs to u32.
            const __m256i cnt32 = _mm256_madd_epi16(
                _mm256_maddubs_epi16(cnt8, ones8), ones16);
            // Narrow the eight u32 distances (<= 32 each) to bytes.
            __m256i p16 = _mm256_packus_epi32(cnt32, _mm256_setzero_si256());
            p16 = _mm256_permute4x64_epi64(p16, 0xD8);
            const __m128i p8 = _mm_packus_epi16(_mm256_castsi256_si128(p16),
                                                _mm_setzero_si128());
            _mm_storel_epi64(reinterpret_cast<__m128i*>(row + j), p8);
          }
          for (; j < j1; ++j)
            row[j] = static_cast<std::uint8_t>(popcount32(vi ^ masked[j]));
          for (std::size_t m = std::max(j0, i + 1); m < j1; ++m)
            out[m * n + i] = row[m];
        }
      }
    }
  }

 private:
  PairPopcountFn pair_popcount_ = &pair_popcount_avx2;
};

}  // namespace

std::unique_ptr<BtKernelBackend> make_avx2_backend() {
  return std::make_unique<Avx2Backend>();
}

}  // namespace nocbt::ordering::detail_avx2
