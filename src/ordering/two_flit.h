#pragma once
// The two-flit scenario of §III: given 2N numbers to place into two N-value
// flits that traverse the same link back to back, maximize
// F = sum_i x_i * y_i (Eq. 4), where x_i / y_i are the '1'-bit counts of
// the values at position i of flit 1 / flit 2. The paper proves the
// descending interleaved ordering x1 >= y1 >= x2 >= y2 >= ... is globally
// optimal; `exhaustive_best_f` provides the brute-force reference used by
// the tests to confirm optimality.

#include <cstdint>
#include <span>
#include <vector>

#include "common/data_format.h"

namespace nocbt::ordering {

/// Result of splitting 2N values into two flits.
struct TwoFlitAssignment {
  std::vector<std::uint32_t> flit1;  ///< values at positions 1..N of flit 1
  std::vector<std::uint32_t> flit2;  ///< values at positions 1..N of flit 2
};

/// Pairwise product sum F = sum_i popcount(flit1[i]) * popcount(flit2[i]).
[[nodiscard]] std::int64_t pairwise_product_sum(const TwoFlitAssignment& a,
                                                DataFormat format);

/// Count-based interleaved assignment (§III-B): sort all 2N values by
/// popcount descending, then deal them alternately — largest to flit 1
/// position 1, next to flit 2 position 1, and so on, enforcing
/// x1 >= y1 >= x2 >= y2 >= ...
[[nodiscard]] TwoFlitAssignment interleave_descending(
    std::span<const std::uint32_t> values, DataFormat format);

/// Brute force over all ways of pairing the 2N values into N (flit1, flit2)
/// couples; returns the maximal achievable F. Cost is (2N-1)!!, so N <= 6.
[[nodiscard]] std::int64_t exhaustive_best_f(
    std::span<const std::uint32_t> values, DataFormat format);

/// Expected bit transitions of an assignment under the independence model
/// of Eq. 3: E_t = sum(x) + sum(y) - F * 2 / W with W = value_bits(format).
[[nodiscard]] double expected_transitions(const TwoFlitAssignment& a,
                                          DataFormat format);

}  // namespace nocbt::ordering
