#include "ordering/strategy.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/bitops.h"
#include "ordering/bt_kernels.h"
#include "ordering/greedy_chain.h"
#include "ordering/two_flit.h"

namespace nocbt::ordering {

namespace {

std::vector<std::uint32_t> identity_permutation(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  return perm;
}

/// Shared argument validation for order_batch (window count derives from
/// the span; an arrival-BT hint must cover every window exactly).
std::size_t check_order_batch_args(std::size_t pattern_count,
                                   std::size_t window_values,
                                   std::size_t hint_size) {
  if (window_values == 0)
    throw std::invalid_argument("order_batch: window_values == 0");
  const std::size_t windows =
      (pattern_count + window_values - 1) / window_values;
  if (hint_size != 0 && hint_size != windows)
    throw std::invalid_argument(
        "order_batch: arrival_bt hint holds " + std::to_string(hint_size) +
        " entries but the span forms " + std::to_string(windows) +
        " windows");
  return windows;
}

/// Arrival-order sequence BTs for every window: the caller's hint when
/// provided (one batch pass shared across mode rows), else one batch pass
/// here. `store` keeps the computed values alive.
std::span<const std::uint64_t> arrival_bts(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values, std::span<const std::uint64_t> hint,
    std::vector<std::uint64_t>& store) {
  if (!hint.empty() || patterns.empty()) return hint;
  store = sequence_bt_batch(patterns, format, window_values);
  return store;
}

/// Apply concatenated window-local permutations (the order_batch return
/// layout) to the values themselves: the flat candidate stream one batch
/// BT pass scores, window for window, identically to scoring each window
/// through permuted_sequence_bt.
std::vector<std::uint32_t> materialize_permuted(
    std::span<const std::uint32_t> patterns,
    std::span<const std::uint32_t> flat_perm, std::size_t window_values) {
  std::vector<std::uint32_t> values(patterns.size());
  for (std::size_t start = 0; start < patterns.size();
       start += window_values) {
    const std::size_t len = std::min(window_values, patterns.size() - start);
    for (std::size_t k = 0; k < len; ++k)
      values[start + k] = patterns[start + flat_perm[start + k]];
  }
  return values;
}

/// Nearest-neighbor Hamming-distance chain: same semantics as
/// greedy_min_xor_chain (seed = highest popcount, ties to the lowest
/// index; successor = minimum HD, ties to the lowest index), but the
/// distances come from a precomputed pairwise-HD matrix whose row scans
/// are branch-light and cache-friendly. Windows too large for an N^2
/// matrix fall back to on-the-fly distances with identical results.
constexpr std::size_t kHdMatrixMaxWindow = 4096;

std::vector<std::uint32_t> hd_chain_raw(std::span<const std::uint32_t> patterns,
                                        DataFormat format) {
  const std::size_t n = patterns.size();
  std::vector<std::uint32_t> perm;
  if (n == 0) return perm;
  perm.reserve(n);

  const auto mask = static_cast<std::uint32_t>(low_mask(value_bits(format)));
  const bool use_matrix = n <= kHdMatrixMaxWindow;
  const std::vector<std::uint8_t> matrix =
      use_matrix ? pairwise_hd_matrix(patterns, format)
                 : std::vector<std::uint8_t>{};

  std::size_t current = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (pattern_popcount(patterns[i], format) >
        pattern_popcount(patterns[current], format))
      current = i;

  std::vector<char> used(n, 0);
  used[current] = 1;
  perm.push_back(static_cast<std::uint32_t>(current));
  for (std::size_t step = 1; step < n; ++step) {
    const std::uint8_t* row = use_matrix ? matrix.data() + current * n : nullptr;
    std::size_t best = n;
    int best_dist = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (used[j]) continue;
      const int dist =
          row ? row[j]
              : popcount32((patterns[current] & mask) ^ (patterns[j] & mask));
      if (best == n || dist < best_dist) {
        best = j;
        best_dist = dist;
      }
    }
    used[best] = 1;
    perm.push_back(static_cast<std::uint32_t>(best));
    current = best;
  }
  return perm;
}

class ArrivalStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "arrival"; }
  std::string_view description() const noexcept override {
    return "identity: values leave in natural task order (O0)";
  }
  HardwareCost hardware_cost() const override {
    return {.summary = "none - the ordering unit is bypassed",
            .relative_area = 0.0};
  }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat) const override {
    return identity_permutation(patterns.size());
  }
  std::vector<std::uint32_t> order_batch(
      std::span<const std::uint32_t> patterns, DataFormat,
      std::size_t window_values,
      std::span<const std::uint64_t> arrival_bt) const override {
    check_order_batch_args(patterns.size(), window_values, arrival_bt.size());
    // One flat identity ramp per window, no per-window allocations.
    std::vector<std::uint32_t> flat(patterns.size());
    for (std::size_t i = 0; i < flat.size(); ++i)
      flat[i] = static_cast<std::uint32_t>(i % window_values);
    return flat;
  }
};

class PopcountStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "popcount" ; }
  std::string_view description() const noexcept override {
    return "stable '1'-count descending sort (the paper's O1/O2 kernel)";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "SWAR pop-count stage + odd-even transposition network, "
                "12.91 kGE at 16 lanes (paper Fig. 14)",
            .relative_area = 1.0};
  }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    return popcount_descending_order(patterns, format);
  }
};

class BucketStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "bucket"; }
  std::string_view description() const noexcept override {
    return "'1'-count bucket (counting) sort, descending; permutation "
           "identical to popcount (Han et al. sorting unit)";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "pop-count stage + W+1 bucket counters and a prefix-sum "
                "placement pass; comparable area to the sort network but "
                "fixed two-pass latency",
            .relative_area = 1.0};
  }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    const unsigned bits = value_bits(format);
    std::vector<std::uint32_t> counts(bits + 2, 0);
    for (const std::uint32_t p : patterns)
      ++counts[static_cast<unsigned>(pattern_popcount(p, format))];
    // Descending placement offsets: bucket `bits` first, bucket 0 last.
    std::vector<std::uint32_t> offset(bits + 1, 0);
    std::uint32_t running = 0;
    for (unsigned c = bits + 1; c-- > 0;) {
      offset[c] = running;
      running += counts[c];
    }
    std::vector<std::uint32_t> perm(patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const auto c = static_cast<unsigned>(pattern_popcount(patterns[i], format));
      perm[offset[c]++] = static_cast<std::uint32_t>(i);
    }
    return perm;
  }
};

class ChainStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "chain"; }
  std::string_view description() const noexcept override {
    return "greedy min-XOR chain (naive O(N^2) reference, ablation A4), "
           "with fall-back to arrival order when chaining would add BT";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "serial nearest-neighbor selection: N XOR+popcount compares "
                "per emitted value - beyond the paper's sort network",
            .relative_area = 4.0,
            .sequential_scan = true};
  }
  bool never_worse_than_arrival() const noexcept override { return true; }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    auto perm = greedy_min_xor_chain(patterns, format);
    // Guard with the naive reference metric: this strategy *is* the
    // retained reference implementation of HD chaining.
    const auto chained = apply_permutation(patterns,
                                           std::span<const std::uint32_t>(perm));
    if (sequence_bt_reference(chained, format) >
        sequence_bt_reference(patterns, format))
      return identity_permutation(patterns.size());
    return perm;
  }
};

class HdChainStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "hdchain"; }
  std::string_view description() const noexcept override {
    return "nearest-neighbor Hamming-distance chaining over a precomputed "
           "pairwise-HD matrix; same permutation as 'chain', word-packed "
           "kernels underneath";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "N^2/2 HD array filled at line rate + min-scan per emitted "
                "value (Li et al. operand scheduling); area grows with the "
                "window, not the paper's fixed-lane unit",
            .relative_area = 6.0,
            .sequential_scan = true};
  }
  bool never_worse_than_arrival() const noexcept override { return true; }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    auto perm = hd_chain_raw(patterns, format);
    if (permuted_sequence_bt(patterns, perm, format) >
        sequence_bt(patterns, format))
      return identity_permutation(patterns.size());
    return perm;
  }
  std::vector<std::uint32_t> order_batch(
      std::span<const std::uint32_t> patterns, DataFormat format,
      std::size_t window_values,
      std::span<const std::uint64_t> arrival_bt) const override {
    check_order_batch_args(patterns.size(), window_values, arrival_bt.size());
    std::vector<std::uint32_t> flat;
    flat.reserve(patterns.size());
    for (std::size_t start = 0; start < patterns.size();
         start += window_values) {
      const std::size_t len = std::min(window_values, patterns.size() - start);
      const auto perm = hd_chain_raw(patterns.subspan(start, len), format);
      flat.insert(flat.end(), perm.begin(), perm.end());
    }
    // One batch pass scores every chained window, one (or the caller's
    // hint) scores arrival order; the same `>` comparison as order()
    // triggers the identity fall-back on exactly the same windows.
    std::vector<std::uint64_t> abt_store;
    const auto abt =
        arrival_bts(patterns, format, window_values, arrival_bt, abt_store);
    const auto chained = materialize_permuted(patterns, flat, window_values);
    const auto cbt = sequence_bt_batch(chained, format, window_values);
    for (std::size_t w = 0; w < cbt.size(); ++w) {
      if (cbt[w] <= abt[w]) continue;
      const std::size_t start = w * window_values;
      const std::size_t len = std::min(window_values, patterns.size() - start);
      for (std::size_t k = 0; k < len; ++k)
        flat[start + k] = static_cast<std::uint32_t>(k);
    }
    return flat;
  }
};

class HybridStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "hybrid"; }
  std::string_view description() const noexcept override {
    return "window-adaptive: measures the sequence BT of arrival, popcount "
           "sort, and HD chaining per window and transmits the cheapest "
           "(ties prefer the cheaper circuit)";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "popcount unit + chain engine + per-window BT monitors and "
                "a 2-bit strategy select in the packet header",
            .relative_area = 7.5,
            .sequential_scan = true,
            .per_window_adaptive = true};
  }
  bool never_worse_than_arrival() const noexcept override { return true; }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    std::vector<std::uint32_t> best = identity_permutation(patterns.size());
    std::uint64_t best_bt = sequence_bt(patterns, format);
    auto pop = popcount_descending_order(patterns, format);
    const std::uint64_t pop_bt = permuted_sequence_bt(patterns, pop, format);
    if (pop_bt < best_bt) {
      best_bt = pop_bt;
      best = std::move(pop);
    }
    auto chain = hd_chain_raw(patterns, format);
    if (permuted_sequence_bt(patterns, chain, format) < best_bt)
      best = std::move(chain);
    return best;
  }
  std::vector<std::uint32_t> order_batch(
      std::span<const std::uint32_t> patterns, DataFormat format,
      std::size_t window_values,
      std::span<const std::uint64_t> arrival_bt) const override {
    check_order_batch_args(patterns.size(), window_values, arrival_bt.size());
    std::vector<std::uint64_t> abt_store;
    const auto abt =
        arrival_bts(patterns, format, window_values, arrival_bt, abt_store);
    // Build both candidate orderings for every window, then score each
    // candidate stream in one batch pass instead of two kernel calls per
    // window.
    std::vector<std::uint32_t> pop_flat, chain_flat;
    pop_flat.reserve(patterns.size());
    chain_flat.reserve(patterns.size());
    for (std::size_t start = 0; start < patterns.size();
         start += window_values) {
      const std::size_t len = std::min(window_values, patterns.size() - start);
      const auto window = patterns.subspan(start, len);
      const auto pop = popcount_descending_order(window, format);
      pop_flat.insert(pop_flat.end(), pop.begin(), pop.end());
      const auto chain = hd_chain_raw(window, format);
      chain_flat.insert(chain_flat.end(), chain.begin(), chain.end());
    }
    const auto pop_bt = sequence_bt_batch(
        materialize_permuted(patterns, pop_flat, window_values), format,
        window_values);
    const auto chain_bt = sequence_bt_batch(
        materialize_permuted(patterns, chain_flat, window_values), format,
        window_values);
    // Same strict-< cascade as order(): arrival wins ties over popcount,
    // popcount wins ties over the chain (cheaper circuit first).
    std::vector<std::uint32_t> flat(patterns.size());
    for (std::size_t w = 0; w < pop_bt.size(); ++w) {
      const std::size_t start = w * window_values;
      const std::size_t len = std::min(window_values, patterns.size() - start);
      std::uint64_t best_bt = abt[w];
      const std::uint32_t* src = nullptr;  // identity
      if (pop_bt[w] < best_bt) {
        best_bt = pop_bt[w];
        src = pop_flat.data() + start;
      }
      if (chain_bt[w] < best_bt) src = chain_flat.data() + start;
      for (std::size_t k = 0; k < len; ++k)
        flat[start + k] = src ? src[k] : static_cast<std::uint32_t>(k);
    }
    return flat;
  }
};

class TwoFlitStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "twoflit"; }
  std::string_view description() const noexcept override {
    return "SIII two-flit interleave: popcount-sort the window, deal "
           "alternately so x1 >= y1 >= x2 >= y2 >= ..., transmit flit 1 "
           "then flit 2";
  }
  HardwareCost hardware_cost() const override {
    return {.summary =
                "popcount sort network + an alternating deal crossbar "
                "(two flit buffers)",
            .relative_area = 1.2};
  }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat format) const override {
    const auto sorted = popcount_descending_order(patterns, format);
    const std::size_t n = sorted.size();
    const std::size_t half = (n + 1) / 2;  // flit 1 takes the odd extra
    std::vector<std::uint32_t> perm(n);
    for (std::size_t i = 0; i < half; ++i) perm[i] = sorted[2 * i];
    for (std::size_t i = 0; half + i < n; ++i) perm[half + i] = sorted[2 * i + 1];
    return perm;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<OrderingStrategy>> list;

  Registry() {
    list.push_back(std::make_unique<ArrivalStrategy>());
    list.push_back(std::make_unique<PopcountStrategy>());
    list.push_back(std::make_unique<BucketStrategy>());
    list.push_back(std::make_unique<ChainStrategy>());
    list.push_back(std::make_unique<HdChainStrategy>());
    list.push_back(std::make_unique<HybridStrategy>());
    list.push_back(std::make_unique<TwoFlitStrategy>());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

std::vector<std::uint32_t> OrderingStrategy::order_batch(
    std::span<const std::uint32_t> patterns, DataFormat format,
    std::size_t window_values, std::span<const std::uint64_t> arrival_bt) const {
  check_order_batch_args(patterns.size(), window_values, arrival_bt.size());
  std::vector<std::uint32_t> flat;
  flat.reserve(patterns.size());
  for (std::size_t start = 0; start < patterns.size();
       start += window_values) {
    const std::size_t len = std::min(window_values, patterns.size() - start);
    const auto perm = order(patterns.subspan(start, len), format);
    flat.insert(flat.end(), perm.begin(), perm.end());
  }
  return flat;
}

const OrderingStrategy* find_strategy(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& s : reg.list)
    if (s->name() == name) return s.get();
  return nullptr;
}

const OrderingStrategy& get_strategy(std::string_view name) {
  if (const OrderingStrategy* s = find_strategy(name)) return *s;
  std::string known;
  for (const OrderingStrategy* s : registered_strategies()) {
    if (!known.empty()) known += ", ";
    known += s->name();
  }
  throw std::invalid_argument("get_strategy: unknown ordering strategy '" +
                              std::string(name) + "' (registered: " + known +
                              ")");
}

std::vector<const OrderingStrategy*> registered_strategies() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<const OrderingStrategy*> out;
  out.reserve(reg.list.size());
  for (const auto& s : reg.list) out.push_back(s.get());
  return out;
}

std::vector<std::string> registered_strategy_names() {
  std::vector<std::string> out;
  for (const OrderingStrategy* s : registered_strategies())
    out.emplace_back(s->name());
  return out;
}

void register_strategy(std::unique_ptr<OrderingStrategy> strategy) {
  if (!strategy)
    throw std::invalid_argument("register_strategy: null strategy");
  if (strategy->name().empty())
    throw std::invalid_argument("register_strategy: empty strategy name");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& s : reg.list)
    if (s->name() == strategy->name())
      throw std::invalid_argument("register_strategy: duplicate name '" +
                                  std::string(strategy->name()) + "'");
  reg.list.push_back(std::move(strategy));
}

const OrderingStrategy& mode_strategy(OrderingMode mode) {
  // Every mode maps to a built-in, and built-ins are never removed, so the
  // resolutions can be cached once: this sits on the per-packet hot path
  // of the campaign runner and the accel packet builder, where taking the
  // registry mutex per packet would serialize worker threads.
  static const std::vector<const OrderingStrategy*> cache = [] {
    std::vector<const OrderingStrategy*> modes;
    for (const OrderingMode m : all_ordering_modes())
      modes.push_back(&get_strategy(mode_strategy_name(m)));
    return modes;
  }();
  const auto index = static_cast<std::size_t>(mode);
  if (index >= cache.size())
    throw std::invalid_argument("mode_strategy: unknown OrderingMode");
  return *cache[index];
}

std::vector<std::uint32_t> order_stream_with(
    const OrderingStrategy& strategy, std::span<const std::uint32_t> patterns,
    DataFormat format, std::size_t window_values) {
  if (window_values == 0)
    throw std::invalid_argument("order_stream_with: window_values == 0");
  // One order_batch call: chain-class/hybrid strategies score all windows
  // through batched kernel passes rather than one kernel call per window.
  const auto flat = strategy.order_batch(patterns, format, window_values);
  return materialize_permuted(patterns, flat, window_values);
}

}  // namespace nocbt::ordering
