#include "ordering/ordering_unit.h"

namespace nocbt::ordering {

std::uint64_t OrderingUnitModel::cycles_to_order(std::uint32_t n) const noexcept {
  if (n <= 1) return config_.popcount_stages;
  // Pop-count pipeline depth + one transposition pass per value. Values
  // beyond the lane width stream through the pipelined network at line
  // rate, so the latency stays linear in n.
  return config_.popcount_stages + n;
}

}  // namespace nocbt::ordering
