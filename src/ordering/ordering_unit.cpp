#include "ordering/ordering_unit.h"

#include <utility>

#include "common/bitops.h"

namespace nocbt::ordering {

std::uint64_t OrderingUnitModel::cycles_to_order(std::uint32_t n) const noexcept {
  if (n <= 1) return config_.popcount_stages;
  // Pop-count pipeline depth + one transposition pass per value. Values
  // beyond the lane width stream through the pipelined network at line
  // rate, so the latency stays linear in n.
  return config_.popcount_stages + n;
}

std::vector<std::uint32_t> OrderingUnitModel::hardware_order(
    std::span<const std::uint32_t> patterns) const {
  const std::size_t n = patterns.size();
  const auto mask = static_cast<std::uint32_t>(low_mask(config_.value_bits));
  std::vector<std::uint32_t> perm(n);
  std::vector<int> key(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
    // The hardware pop-count stage is the SWAR circuit of Fig. 14, sized
    // for config_.value_bits wires per slot.
    key[i] = swar_popcount32(patterns[i] & mask);
  }
  // Odd-even transposition: pass p compares pairs starting at p & 1. Each
  // comparator swaps only on a strictly smaller left key (descending sort),
  // so equal keys never move past each other and the network is stable.
  for (std::size_t pass = 0; pass < n; ++pass) {
    for (std::size_t i = pass & 1; i + 1 < n; i += 2) {
      if (key[i] < key[i + 1]) {
        std::swap(key[i], key[i + 1]);
        std::swap(perm[i], perm[i + 1]);
      }
    }
  }
  return perm;
}

}  // namespace nocbt::ordering
