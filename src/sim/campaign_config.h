#pragma once
// The campaign key=value surface as a library: parsing and emission.
//
// campaign_from_options() is nocbt_campaign's option surface extracted
// into src/sim so every front-end (nocbt_campaign, nocbt_optimize, tests)
// builds byte-identical campaigns from the same keys — the single place
// where "packets=", "modes=", "tiles_per_layer=", ... are interpreted.
//
// campaign_config_text() is the inverse: it serializes a CampaignSpec back
// into that surface such that
//   campaign_from_options(Options::parse_file(emitted_file))
// reconstructs a campaign whose expansion, seeds and measurements are
// byte-identical to the original. This is how the co-optimizer (src/opt)
// emits its winning configuration as a reproducible spec file that
// `nocbt_campaign config=FILE` re-runs byte for byte. Every knob is
// emitted explicitly — never relying on a default — so a spec file stays
// reproducible even if a front-end default drifts later.

#include <set>
#include <string>

#include "common/config.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"

namespace nocbt::sim {

/// Every campaign-shaping option key campaign_from_options() reads. Runner
/// keys (threads=, progress=, csv=, json=, ...) are deliberately absent:
/// they select how a sweep is executed and reported, not what it measures.
[[nodiscard]] const std::set<std::string>& campaign_option_keys();

/// The campaign-service execution keys execution_from_options() reads
/// (cache_dir=, resume=, shard=). Like the runner keys they select *how* a
/// sweep executes, never what it measures — front-ends pass them as
/// `extra` to check_campaign_keys.
[[nodiscard]] const std::set<std::string>& campaign_service_option_keys();

/// Reject option keys that are neither campaign-shaping nor in `extra`
/// (a front-end's runner keys), so a typo ("generator=", "packts=") fails
/// loudly — the error lists every key that would have been valid.
void check_campaign_keys(const Options& opts,
                         const std::set<std::string>& extra);

/// Build the executor's service config from the campaign-service keys:
/// cache_dir=DIR (content-addressed result store), resume=FILE
/// (checkpoint journal, loaded when present), shard=i/N (deterministic
/// expansion slice). Throws std::invalid_argument on a malformed shard.
[[nodiscard]] ExecutionConfig execution_from_options(const Options& opts);

/// Build the declarative sweep a set of options describes (grid axes,
/// base scenario knobs, default LeNet model hooks). Throws
/// std::invalid_argument on malformed or out-of-range values.
[[nodiscard]] CampaignSpec campaign_from_options(const Options& opts);

/// Serialize `spec` as a key=value config file body (one pair per line,
/// '#' header comment). Throws std::invalid_argument on a spec the key
/// surface cannot express (an empty grid axis).
[[nodiscard]] std::string campaign_config_text(const CampaignSpec& spec);

/// campaign_config_text straight to a file. Throws std::runtime_error on
/// I/O failure.
void write_campaign_config(const std::string& path, const CampaignSpec& spec);

}  // namespace nocbt::sim
