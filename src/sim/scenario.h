#pragma once
// Declarative scenario description for the campaign engine.
//
// A ScenarioSpec is one fully-resolved point of an evaluation grid: which
// traffic generator, on which mesh, in which data format, under which
// transmission ordering, with how much traffic, from which seed. Specs are
// plain values — cheap to copy, trivially hashable into names, and safe to
// hand to worker threads.

#include <cstdint>
#include <string>

#include "common/data_format.h"
#include "noc/noc_config.h"
#include "ordering/ordering.h"

namespace nocbt::sim {

/// Workload families the engine can synthesize.
enum class GeneratorKind : std::uint8_t {
  kUniform,        ///< uniform-random src/dst pairs
  kTranspose,      ///< (r, c) -> (c, r); diagonal nodes stay silent
  kBitComplement,  ///< node i -> node (N-1) - i
  kHotspot,        ///< a fraction of traffic converges on one node
  kBurst,          ///< on/off bursts of uniform-random traffic
  kReplay,         ///< re-inject a recorded PacketTrace CSV
  kModel,          ///< full DNN inference through NocDnaPlatform
  kPlacement,      ///< placed model-zoo schedule (src/place traffic)
};

[[nodiscard]] std::string to_string(GeneratorKind kind);
[[nodiscard]] GeneratorKind parse_generator_kind(const std::string& s);

/// Payload value distributions (drawn per value, then codec-encoded).
enum class ValueDist : std::uint8_t {
  kUniform,  ///< uniform real in [a, b]
  kNormal,   ///< normal(mean = a, stddev = b)
  kLaplace,  ///< Laplace(0, b): trained-DNN-like, heavy at zero
};

[[nodiscard]] std::string to_string(ValueDist dist);
[[nodiscard]] ValueDist parse_value_dist(const std::string& s);

struct ScenarioSpec;

/// The campaign-level engine selector ("engine=" on the CLIs): either
/// auto-selection (analytical when exact, cycle engine otherwise) or one
/// forced backend. Kept distinct from noc::SimEngine because "auto" is a
/// campaign policy, not a backend the NoC library knows about.
struct EngineChoice {
  bool auto_select = true;
  /// The forced backend, or the fallback cycle engine under auto_select.
  noc::SimEngine engine = noc::SimEngine::kActiveSet;

  friend bool operator==(const EngineChoice&, const EngineChoice&) = default;
};

/// Parse "auto | active | fullscan | analytical" (plus parse_sim_engine's
/// aliases). Throws std::invalid_argument listing the valid values.
[[nodiscard]] EngineChoice parse_engine_choice(const std::string& s);
[[nodiscard]] std::string to_string(const EngineChoice& choice);

/// Apply a parsed choice to a spec (engine + engine_auto).
void apply_engine_choice(ScenarioSpec& spec, const EngineChoice& choice);

/// One point of the evaluation grid.
struct ScenarioSpec {
  std::string name;  ///< unique within a campaign (set by expansion)

  GeneratorKind generator = GeneratorKind::kUniform;
  std::int32_t rows = 4;
  std::int32_t cols = 4;
  std::int32_t num_vcs = 4;
  std::int32_t vc_buffer_depth = 4;
  DataFormat format = DataFormat::kFloat32;
  ordering::OrderingMode mode = ordering::OrderingMode::kBaseline;
  unsigned values_per_flit = 16;  ///< slots per flit (even; paper: 16)
  unsigned fixed_bits = 8;        ///< quantizer width for kFixed8

  /// (weight, input) pairs per packet — the per-packet ordering window, in
  /// pairs. Packet length is ceil(window / (values_per_flit / 2)) flits.
  std::uint32_t window = 64;
  std::uint32_t packets = 128;    ///< packets injected per scenario
  double injection_rate = 0.25;   ///< mean packets per cycle, network-wide

  ValueDist value_dist = ValueDist::kLaplace;
  double dist_a = 0.0;  ///< uniform lo / normal mean (unused for laplace)
  double dist_b = 0.2;  ///< uniform hi / normal stddev / laplace b

  double hotspot_fraction = 0.5;   ///< kHotspot: share of traffic to the spot
  std::int32_t hotspot_node = -1;  ///< -1 = mesh center
  std::uint32_t burst_len = 8;     ///< kBurst: packets per burst
  std::uint32_t burst_gap = 64;    ///< kBurst: idle cycles between bursts

  std::string trace_path;          ///< kReplay: CSV from PacketTrace::dump_csv

  std::int32_t num_mcs = 2;        ///< kModel/kPlacement: memory controllers
  std::uint64_t model_seed = 42;   ///< kModel/kPlacement: model factory seed
  std::uint64_t input_seed = 7;    ///< kModel: input factory seed

  std::string model = "lenet";       ///< kPlacement: zoo model name
  std::string placement = "rowmajor";  ///< kPlacement: placement policy
  std::int32_t tiles_per_layer = 4;  ///< kPlacement: PE tiles per layer

  /// Link-energy reporting (§V-C units). The defaults are the paper's
  /// Innovus-extracted point at its 125 MHz link clock; 0.532 selects
  /// Banerjee's model (hw::kInnovusEnergyPj / hw::kBanerjeeEnergyPj).
  double energy_per_transition_pj = 0.173;
  double frequency_mhz = 125.0;

  std::uint64_t seed = 1;          ///< derived per-scenario by expansion
  std::uint64_t max_cycles = 5'000'000;  ///< per-variant stall guard

  /// Requested simulation backend. With engine_auto (the default) this is
  /// the *cycle-engine fallback*: the campaign runner first evaluates the
  /// schedule analytically and keeps that result when it is proven exact
  /// (congestion-free), falling back to `engine` otherwise. With
  /// engine_auto off the spec runs exactly `engine` — forcing kAnalytical
  /// on a contended schedule fails the scenario loudly rather than
  /// silently approximating. SimProfile::engine records which backend
  /// actually ran.
  noc::SimEngine engine = noc::SimEngine::kActiveSet;
  bool engine_auto = true;

  /// NoC configuration implied by the spec. Self-traffic is rejected for
  /// synthetic patterns (none emits it, so it would indicate a generator
  /// bug) and allowed for replay (a recorded trace may contain it).
  [[nodiscard]] noc::NocConfig noc_config() const;

  /// Throws std::invalid_argument on an unusable spec.
  void validate() const;
};

}  // namespace nocbt::sim
