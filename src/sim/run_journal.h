#pragma once
// Checkpoint/resume journal: an append-only record of completed scenario
// rows, flushed after every append, so a killed campaign (or co-optimizer
// search) resumes by replaying the journal and re-running only what is
// missing. The header pins the campaign content hash — resuming against a
// journal written for a different spec fails with a descriptive error
// instead of silently mixing rows — and every record line carries its own
// checksum, so a torn final append (the normal wreckage of a kill) is
// rejected with a diagnostic naming the file and record while every intact
// record still resumes.
//
// The same record lines double as shard outputs: merge_campaign unions the
// journals of an N-way sharded run back into one CampaignResult whose
// reports are byte-identical to a serial run's.

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/campaign.h"

namespace nocbt::sim {

/// Everything read_journal recovers from a journal file.
struct JournalContents {
  bool exists = false;     ///< the file was present (even if damaged)
  bool header_ok = false;  ///< the header line parsed; hash/total are valid
  std::string campaign_hash;
  std::uint64_t total = 0;  ///< expansion size recorded at write time
  /// Intact rows keyed by scenario content hash (the journal's identity
  /// domain — positional indexes are only advisory). row.spec is
  /// default-constructed; consumers re-attach the live spec.
  std::unordered_map<std::string, ScenarioResult> rows;
  /// Advisory expansion index of each recovered row, keyed like `rows`.
  std::unordered_map<std::string, std::uint64_t> indexes;
  /// One entry per rejected line, naming the file and offending record.
  std::vector<std::string> warnings;
};

/// Load a journal, tolerating damage: corrupt or truncated records are
/// skipped with a warning (file + record number + defect); a missing file
/// yields exists=false; an unrecognizable header yields header_ok=false
/// (callers must then ignore `rows` and start the journal fresh). Never
/// throws on file content — damage degrades to re-simulation.
[[nodiscard]] JournalContents read_journal(const std::string& path);

/// The append side. Construction either starts the file fresh (writing the
/// header) or reopens it for appending — callers validate the existing
/// header via read_journal first. Appends are flushed immediately so a
/// kill loses at most the row being written (whose torn record the reader
/// rejects by checksum).
class RunJournal {
 public:
  /// Open `path` for appending. When `fresh` is true the file is truncated
  /// and a `campaign_hash`/`total` header is written. Throws on I/O error.
  RunJournal(const std::string& path, const std::string& campaign_hash,
             std::uint64_t total, bool fresh);

  /// Append one completed row (encode_result_record line) and flush.
  void append(const std::string& content_hash, std::uint64_t index,
              const ScenarioResult& row);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Reassemble a full sweep from the journals of an N-way sharded run (any
/// journal set covering the expansion works — including a single serial
/// journal). Validates that every journal's header hash matches `spec`'s
/// campaign content hash, then returns rows in grid order with live specs
/// re-attached, so render_table / write_csv_report / json_report emit
/// byte-identical output to a serial in-process run. Throws a descriptive
/// error on a hash mismatch, an unreadable journal, an uncacheable
/// scenario (which no journal can carry), or scenarios missing from every
/// journal (naming them). Damaged records skipped during reading surface
/// in the returned stats.warnings.
[[nodiscard]] CampaignResult merge_campaign(
    const CampaignSpec& spec, const std::vector<std::string>& journal_paths);

}  // namespace nocbt::sim
