#include "sim/campaign_executor.h"

#include <atomic>
#include <charconv>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/run_journal.h"
#include "sim/scenario_cache.h"
#include "sim/scenario_runner.h"

namespace nocbt::sim {

ShardSpec parse_shard_spec(const std::string& s) {
  const auto bad = [&]() -> std::invalid_argument {
    return std::invalid_argument(
        "parse_shard_spec: expected i/N with N >= 1 and i < N (e.g. \"0/4\"), "
        "got '" +
        s + "'");
  };
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos) throw bad();
  const auto parse_u32 = [&](std::size_t first,
                             std::size_t last) -> std::uint32_t {
    std::uint32_t v = 0;
    const char* begin = s.data() + first;
    const char* end = s.data() + last;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr != end || begin == end) throw bad();
    return v;
  };
  ShardSpec shard;
  shard.index = parse_u32(0, slash);
  shard.count = parse_u32(slash + 1, s.size());
  if (shard.count < 1 || shard.index >= shard.count) throw bad();
  return shard;
}

std::string to_string(const ShardSpec& shard) {
  return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerConfig& runner) {
  const ExecutionConfig& exec = runner.exec;
  if (exec.shard.count < 1 || exec.shard.index >= exec.shard.count)
    throw std::invalid_argument("run_campaign: invalid shard " +
                                to_string(exec.shard));

  const std::vector<ScenarioSpec> scenarios = spec.expand();
  CampaignResult result;
  result.stats.grid_total = scenarios.size();

  // Content keys are only needed when some persistence layer is on; a
  // plain sweep skips the hashing (and the trace-file reads it may imply).
  const bool keyed = !exec.cache_dir.empty() || !exec.journal_path.empty();
  std::vector<ContentKey> keys;
  if (keyed) {
    keys.reserve(scenarios.size());
    for (const ScenarioSpec& s : scenarios)
      keys.push_back(scenario_content_key(s, spec.hooks.id));
  }

  std::unique_ptr<ScenarioCache> cache;
  if (!exec.cache_dir.empty())
    cache = std::make_unique<ScenarioCache>(exec.cache_dir);

  // Journal: validate any existing file against this spec's content hash,
  // preload its intact rows, then open for append (or start fresh).
  std::unique_ptr<RunJournal> journal;
  std::unordered_map<std::string, ScenarioResult> journaled;
  if (!exec.journal_path.empty()) {
    const std::string campaign_hash = campaign_content_hash(spec);
    JournalContents prior = read_journal(exec.journal_path);
    bool fresh = true;
    if (prior.exists && prior.header_ok) {
      if (prior.campaign_hash != campaign_hash)
        throw std::runtime_error(
            "run_campaign: journal '" + exec.journal_path +
            "' was written for campaign " + prior.campaign_hash +
            " but campaign '" + spec.name + "' hashes to " + campaign_hash +
            " — refusing to mix rows across differing campaign specs (point "
            "resume= at a fresh file or rerun the original spec)");
      journaled = std::move(prior.rows);
      fresh = false;
    }
    for (std::string& w : prior.warnings)
      result.stats.warnings.push_back(std::move(w));
    // Damaged records were diagnosed above; compact them away by rewriting
    // the journal from its intact rows, so the next resume is warning-free
    // instead of re-reporting the same torn fragment forever.
    const bool compact = !fresh && !prior.warnings.empty();
    journal = std::make_unique<RunJournal>(exec.journal_path, campaign_hash,
                                           scenarios.size(),
                                           fresh || compact);
    if (compact)
      for (const auto& [hash, row] : journaled)
        journal->append(hash, prior.indexes.at(hash), row);
  }

  // This shard's slice of the expansion, in grid order.
  std::vector<std::size_t> assigned;
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (i % exec.shard.count == exec.shard.index) assigned.push_back(i);
  result.stats.assigned = assigned.size();
  result.rows.resize(assigned.size());

  // One schedule per traffic stream: the mode rows of a grid point share
  // their materialized generator output (expand() gives them one seed).
  ScheduleCache schedules(spec.modes.size());
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;       // guarded by report_mutex
  std::mutex report_mutex;    // serializes on_result + done
  std::mutex persist_mutex;   // serializes journal appends + stat counts
  const auto worker = [&] {
    for (;;) {
      const std::size_t j = next.fetch_add(1);
      if (j >= assigned.size()) return;
      const std::size_t i = assigned[j];
      const ScenarioSpec& scenario = scenarios[i];
      const ContentKey* key = keyed ? &keys[i] : nullptr;

      std::optional<ScenarioResult> row;
      bool from_journal = false;
      bool from_cache = false;
      if (key && key->cacheable) {
        const auto it = journaled.find(key->hash);
        if (it != journaled.end()) {
          row = it->second;  // journaled is read-only during the sweep
          row->spec = scenario;
          from_journal = true;
        } else if (cache) {
          row = cache->lookup(scenario, key->hash);
          from_cache = row.has_value();
        }
      }
      const bool simulated = !row.has_value();
      if (simulated)
        row = run_scenario_shared(scenario, spec.hooks, &schedules);

      {
        const std::lock_guard<std::mutex> lock(persist_mutex);
        if (simulated) ++result.stats.simulated;
        if (from_cache) ++result.stats.cache_hits;
        if (from_journal) ++result.stats.journal_hits;
        if (key && key->cacheable) {
          if (simulated && cache) cache->store(key->hash, *row);
          if (journal && !from_journal) journal->append(key->hash, i, *row);
        }
      }
      result.rows[j] = std::move(*row);
      if (runner.on_result) {
        // done is incremented under the same lock as the callback so the
        // reported counts never regress.
        const std::lock_guard<std::mutex> lock(report_mutex);
        runner.on_result(result.rows[j], ++done, assigned.size());
      }
    }
  };

  const std::size_t want = runner.threads < 1 ? 1 : runner.threads;
  const std::size_t pool =
      assigned.size() < want ? (assigned.empty() ? 1 : assigned.size())
                             : want;
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  if (cache)
    for (std::string& w : cache->take_diagnostics())
      result.stats.warnings.push_back(std::move(w));
  return result;
}

}  // namespace nocbt::sim
