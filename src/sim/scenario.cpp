#include "sim/scenario.h"

#include <stdexcept>

#include "dnn/zoo.h"
#include "place/policy.h"

namespace nocbt::sim {

std::string to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kUniform: return "uniform";
    case GeneratorKind::kTranspose: return "transpose";
    case GeneratorKind::kBitComplement: return "bitcomp";
    case GeneratorKind::kHotspot: return "hotspot";
    case GeneratorKind::kBurst: return "burst";
    case GeneratorKind::kReplay: return "replay";
    case GeneratorKind::kModel: return "model";
    case GeneratorKind::kPlacement: return "placement";
  }
  return "?";
}

GeneratorKind parse_generator_kind(const std::string& s) {
  if (s == "uniform" || s == "uniform-random") return GeneratorKind::kUniform;
  if (s == "transpose") return GeneratorKind::kTranspose;
  if (s == "bitcomp" || s == "bit-complement")
    return GeneratorKind::kBitComplement;
  if (s == "hotspot") return GeneratorKind::kHotspot;
  if (s == "burst") return GeneratorKind::kBurst;
  if (s == "replay") return GeneratorKind::kReplay;
  if (s == "model" || s == "lenet") return GeneratorKind::kModel;
  if (s == "placement" || s == "placed") return GeneratorKind::kPlacement;
  throw std::invalid_argument(
      "parse_generator_kind: unknown generator '" + s +
      "' (want uniform | transpose | bitcomp | hotspot | burst | replay | "
      "model | placement)");
}

std::string to_string(ValueDist dist) {
  switch (dist) {
    case ValueDist::kUniform: return "uniform";
    case ValueDist::kNormal: return "normal";
    case ValueDist::kLaplace: return "laplace";
  }
  return "?";
}

ValueDist parse_value_dist(const std::string& s) {
  if (s == "uniform") return ValueDist::kUniform;
  if (s == "normal" || s == "gaussian") return ValueDist::kNormal;
  if (s == "laplace") return ValueDist::kLaplace;
  throw std::invalid_argument("parse_value_dist: unknown distribution '" + s +
                              "' (want uniform | normal | laplace)");
}

EngineChoice parse_engine_choice(const std::string& s) {
  if (s == "auto") return EngineChoice{};
  try {
    return EngineChoice{false, noc::parse_sim_engine(s)};
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        "parse_engine_choice: unknown engine '" + s +
        "' (want auto | active | fullscan | analytical)");
  }
}

std::string to_string(const EngineChoice& choice) {
  return choice.auto_select ? "auto" : noc::to_string(choice.engine);
}

void apply_engine_choice(ScenarioSpec& spec, const EngineChoice& choice) {
  spec.engine_auto = choice.auto_select;
  if (!choice.auto_select) spec.engine = choice.engine;
}

noc::NocConfig ScenarioSpec::noc_config() const {
  noc::NocConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.num_vcs = num_vcs;
  cfg.vc_buffer_depth = vc_buffer_depth;
  cfg.flit_payload_bits = values_per_flit * value_bits(format);
  cfg.engine = engine;
  // Synthetic patterns never emit src == dst, so reject it loudly — except
  // under replay, where a recorded trace may legitimately contain
  // self-delivered packets.
  cfg.allow_self_traffic = generator == GeneratorKind::kReplay;
  return cfg;
}

void ScenarioSpec::validate() const {
  // Overflow-safe mesh-size gate before anything multiplies rows * cols in
  // int32 (node_count, task mapping, router construction).
  if (rows < 1 || cols < 1 ||
      static_cast<std::int64_t>(rows) * cols > (std::int64_t{1} << 24))
    throw std::invalid_argument(
        "ScenarioSpec: mesh dimensions out of range (max 2^24 nodes)");
  // Negated tests so NaN fails too. Checked before the model-workload early
  // return: every scenario's BT counts get converted to energy/power.
  if (!(energy_per_transition_pj > 0.0) || !(frequency_mhz > 0.0))
    throw std::invalid_argument(
        "ScenarioSpec: energy_per_transition_pj and frequency_mhz must be "
        "positive");
  if (max_cycles < 1)
    throw std::invalid_argument("ScenarioSpec: max_cycles must be >= 1");
  if (generator == GeneratorKind::kModel) {
    if (!engine_auto && engine == noc::SimEngine::kAnalytical)
      throw std::invalid_argument(
          "ScenarioSpec: model workloads inject reactively (sinks respond "
          "to deliveries) and need a cycle engine — engine=analytical "
          "cannot replay them; use engine=auto, active or fullscan");
    if (num_mcs < 1 || num_mcs >= rows * cols)
      throw std::invalid_argument("ScenarioSpec: bad MC count for model workload");
    noc::NocConfig cfg = noc_config();
    cfg.allow_self_traffic = true;  // platform MCs self-deliver result packets
    cfg.validate();
    return;
  }
  noc_config().validate();
  if (format == DataFormat::kFixed8 &&
      (fixed_bits < 2 || fixed_bits > value_bits(DataFormat::kFixed8)))
    throw std::invalid_argument(
        "ScenarioSpec: fixed_bits must be in [2, 8] so patterns fit the "
        "fixed-8 flit slot");
  if (values_per_flit < 2 || values_per_flit % 2 != 0)
    throw std::invalid_argument(
        "ScenarioSpec: values_per_flit must be even and >= 2");
  if (window < 1)
    throw std::invalid_argument("ScenarioSpec: window must be >= 1 pair");
  if (packets < 1)
    throw std::invalid_argument("ScenarioSpec: packets must be >= 1");
  // Written as a negated in-range test so NaN fails it too; the lower
  // bound keeps 2.0/rate (the mean interarrival) finite and castable.
  if (!(injection_rate >= 1e-9 && injection_rate <= 1e9))
    throw std::invalid_argument(
        "ScenarioSpec: injection_rate must be in [1e-9, 1e9]");
  if (!(dist_b == dist_b) || !(dist_a == dist_a))  // NaN gate
    throw std::invalid_argument("ScenarioSpec: dist_a/dist_b must not be NaN");
  if (rows * cols < 2)
    throw std::invalid_argument(
        "ScenarioSpec: synthetic traffic needs >= 2 nodes");
  if (generator == GeneratorKind::kTranspose && rows != cols)
    throw std::invalid_argument(
        "ScenarioSpec: transpose traffic needs a square mesh");
  if (generator == GeneratorKind::kHotspot &&
      !(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0))
    throw std::invalid_argument(
        "ScenarioSpec: hotspot_fraction must be in [0, 1]");
  if (generator == GeneratorKind::kHotspot &&
      (hotspot_node < -1 || hotspot_node >= rows * cols))
    throw std::invalid_argument(
        "ScenarioSpec: hotspot_node " + std::to_string(hotspot_node) +
        " outside the " + std::to_string(rows) + "x" + std::to_string(cols) +
        " mesh (want -1 for the mesh center, or a node id in [0, " +
        std::to_string(rows * cols - 1) + "])");
  if (generator == GeneratorKind::kBurst && burst_len < 1)
    throw std::invalid_argument("ScenarioSpec: burst_len must be >= 1");
  if (generator == GeneratorKind::kReplay && trace_path.empty())
    throw std::invalid_argument("ScenarioSpec: replay needs trace_path");
  if (generator == GeneratorKind::kPlacement) {
    if (num_mcs < 1 || num_mcs >= rows * cols)
      throw std::invalid_argument(
          "ScenarioSpec: bad MC count for placement workload");
    // Every op's tiles must land on distinct PEs: beyond the PE count the
    // policies' wrap-around indexing would co-locate two tiles of the same
    // layer, so gate the knob against the mesh's PE budget up front.
    const std::int32_t pe_count = rows * cols - num_mcs;
    if (tiles_per_layer < 1 || tiles_per_layer > pe_count)
      throw std::invalid_argument(
          "ScenarioSpec: tiles_per_layer " + std::to_string(tiles_per_layer) +
          " for model '" + model + "' does not fit the " +
          std::to_string(rows) + "x" + std::to_string(cols) + " mesh's " +
          std::to_string(pe_count) + " PE tiles (" + std::to_string(num_mcs) +
          " of " + std::to_string(rows * cols) +
          " nodes are memory controllers; want a value in [1, " +
          std::to_string(pe_count) + "])");
    (void)dnn::zoo_model_spec(model);    // throws listing the zoo names
    (void)place::get_policy(placement);  // throws listing the policies
  }
}

}  // namespace nocbt::sim
