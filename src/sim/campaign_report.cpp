#include "sim/campaign_report.h"

#include <fstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/json_writer.h"
#include "common/table.h"

namespace nocbt::sim {

std::string render_table(const CampaignResult& result) {
  AsciiTable table({"scenario", "O0 BT", "ordered BT", "reduction",
                    "energy (pJ)", "O0 mW", "mW", "cycles", "flits", "backlog",
                    "status"});
  for (const ScenarioResult& row : result.rows) {
    if (!row.error.empty() && !row.drained && row.cycles == 0 &&
        row.bt_baseline == 0) {
      table.add_row({row.spec.name, "-", "-", "-", "-", "-", "-", "-", "-",
                     "-", "error: " + row.error});
      continue;
    }
    table.add_row({row.spec.name, std::to_string(row.bt_baseline),
                   std::to_string(row.bt_ordered),
                   format_percent(row.reduction),
                   format_double(row.energy_pj, 1),
                   format_double(row.power_baseline_mw, 3),
                   format_double(row.power_mw, 3), std::to_string(row.cycles),
                   std::to_string(row.flits), std::to_string(row.peak_backlog),
                   row.drained ? "ok" : "stalled"});
  }
  return table.render();
}

std::size_t write_csv_report(const std::string& path,
                             const CampaignSpec& campaign,
                             const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path,
                {"scenario", "generator", "format", "mode", "rows", "cols",
                 "window", "seed", "bt_baseline", "bt_ordered", "reduction",
                 "energy_baseline_pj", "energy_pj", "power_baseline_mw",
                 "power_mw", "cycles", "packets", "flits", "peak_backlog",
                 "avg_latency", "avg_hops", "drained", "error"});
  for (const ScenarioResult& row : result.rows) {
    const ScenarioSpec& s = row.spec;
    csv.add_row({s.name, to_string(s.generator), to_string(s.format),
                 ordering::to_string(s.mode), std::to_string(s.rows),
                 std::to_string(s.cols), std::to_string(s.window),
                 std::to_string(s.seed), std::to_string(row.bt_baseline),
                 std::to_string(row.bt_ordered),
                 format_double(row.reduction, 6),
                 format_double(row.energy_baseline_pj, 3),
                 format_double(row.energy_pj, 3),
                 format_double(row.power_baseline_mw, 6),
                 format_double(row.power_mw, 6), std::to_string(row.cycles),
                 std::to_string(row.packets), std::to_string(row.flits),
                 std::to_string(row.peak_backlog),
                 format_double(row.avg_latency, 3),
                 format_double(row.avg_hops, 3), row.drained ? "1" : "0",
                 row.error});
  }
  return csv.rows_written();
}

std::size_t write_profile_csv(const std::string& path,
                              const CampaignSpec& campaign,
                              const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path,
                {"scenario", "engine", "wall_ms_baseline", "wall_ms_ordered",
                 "cycles", "cycles_stepped", "idle_cycles_skipped",
                 "components_stepped", "components_skipped", "skip_ratio"});
  for (const ScenarioResult& row : result.rows) {
    // row.sim.engine is the backend that actually ran the ordered variant
    // (auto-selection may pick analytical over the spec's cycle engine).
    csv.add_row({row.spec.name, noc::to_string(row.sim.engine),
                 format_double(row.wall_ms_baseline, 3),
                 format_double(row.wall_ms_ordered, 3),
                 std::to_string(row.cycles),
                 std::to_string(row.sim.cycles_stepped),
                 std::to_string(row.sim.idle_cycles_skipped),
                 std::to_string(row.sim.components_stepped),
                 std::to_string(row.sim.components_skipped),
                 format_double(row.sim.skip_ratio(), 6)});
  }
  return csv.rows_written();
}

std::size_t write_link_heatmap_csv(const std::string& path,
                                   const CampaignSpec& campaign,
                                   const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path, {"scenario", "link_id", "kind", "src", "dst", "src_port",
                       "flits", "bt", "energy_pj"});
  for (const ScenarioResult& row : result.rows)
    for (const hw::LinkEnergyRow& link : row.links)
      csv.add_row({row.spec.name, std::to_string(link.link_id),
                   noc::to_string(link.info.kind),
                   std::to_string(link.info.src),
                   std::to_string(link.info.dst),
                   std::to_string(link.info.src_port),
                   std::to_string(link.flits), std::to_string(link.transitions),
                   format_double(link.energy_pj, 3)});
  return csv.rows_written();
}

std::string json_report(const CampaignSpec& campaign,
                        const CampaignResult& result) {
  JsonWriter json;
  json.begin_object()
      .key("campaign").value(campaign.name)
      .key("root_seed").value(std::to_string(campaign.root_seed))
      .key("scenario_count").value(static_cast<std::uint64_t>(result.rows.size()))
      .key("scenarios").begin_array();
  for (const ScenarioResult& row : result.rows) {
    const ScenarioSpec& s = row.spec;
    json.begin_object()
        .key("name").value(s.name)
        .key("generator").value(to_string(s.generator))
        .key("format").value(to_string(s.format))
        .key("mode").value(ordering::to_string(s.mode))
        .key("rows").value(static_cast<std::int64_t>(s.rows))
        .key("cols").value(static_cast<std::int64_t>(s.cols))
        .key("window").value(static_cast<std::uint64_t>(s.window))
        // As a string: 64-bit seeds exceed the 2^53 exact-integer range of
        // double-based JSON consumers (jq, JavaScript) and would round.
        .key("seed").value(std::to_string(s.seed))
        .key("energy_per_transition_pj").value(s.energy_per_transition_pj)
        .key("frequency_mhz").value(s.frequency_mhz)
        .key("bt_baseline").value(row.bt_baseline)
        .key("bt_ordered").value(row.bt_ordered)
        .key("reduction").value(row.reduction)
        .key("energy_baseline_pj").value(row.energy_baseline_pj)
        .key("energy_pj").value(row.energy_pj)
        .key("power_baseline_mw").value(row.power_baseline_mw)
        .key("power_mw").value(row.power_mw)
        .key("cycles").value(row.cycles)
        .key("packets").value(row.packets)
        .key("flits").value(row.flits)
        .key("peak_backlog").value(row.peak_backlog)
        .key("avg_latency").value(row.avg_latency)
        .key("avg_hops").value(row.avg_hops)
        .key("drained").value(row.drained);
    json.key("error");
    if (row.error.empty())
      json.null();
    else
      json.value(row.error);
    json.end_object();
  }
  json.end_array().end_object();
  return json.take();
}

void write_json_report(const std::string& path, const CampaignSpec& campaign,
                       const CampaignResult& result) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("write_json_report: cannot open " + path);
  out << json_report(campaign, result) << '\n';
  if (!out)
    throw std::runtime_error("write_json_report: write failed for " + path);
}

}  // namespace nocbt::sim
