#pragma once
// Campaign reporting layer: render a CampaignResult's rows as the ASCII
// table, the per-scenario CSV, the step-loop profile CSV, the per-link
// heatmap CSV, or the JSON document. Pure functions of (spec, rows) — a
// merged sharded run and a serial run with equal rows emit byte-identical
// reports, which the shard differential tests and the CI cmp gate prove.

#include <cstddef>
#include <string>

#include "sim/campaign.h"

namespace nocbt::sim {

/// Render results as the repo's standard ASCII table.
[[nodiscard]] std::string render_table(const CampaignResult& result);

/// Write one CSV row per scenario via common/csv. Returns rows written.
std::size_t write_csv_report(const std::string& path,
                             const CampaignSpec& campaign,
                             const CampaignResult& result);

/// Step-loop profile CSV: one row per scenario with the engine, wall-clock
/// per variant, deterministic step counters and the component skip ratio.
/// Kept separate from write_csv_report/json_report so the wall-clock
/// columns never enter the byte-compared golden fixtures (cache- or
/// journal-replayed rows report wall_ms 0 here). Returns rows written.
std::size_t write_profile_csv(const std::string& path,
                              const CampaignSpec& campaign,
                              const CampaignResult& result);

/// Per-link "heatmap" CSV: one row per monitored link per scenario
/// (scenario, link id, kind, src -> dst, flits, BT, energy in pJ), for
/// plotting spatial BT/energy distributions. Returns rows written.
std::size_t write_link_heatmap_csv(const std::string& path,
                                   const CampaignSpec& campaign,
                                   const CampaignResult& result);

/// The JSON report document (no trailing newline).
[[nodiscard]] std::string json_report(const CampaignSpec& campaign,
                                      const CampaignResult& result);

/// json_report written to `path` with a trailing newline. Throws on I/O
/// failure.
void write_json_report(const std::string& path, const CampaignSpec& campaign,
                       const CampaignResult& result);

}  // namespace nocbt::sim
