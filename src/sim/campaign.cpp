#include "sim/campaign.h"

#include <atomic>
#include <cctype>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "accel/accel_config.h"
#include "accel/flitization.h"
#include "accel/platform.h"
#include "common/csv.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "noc/analytical_engine.h"
#include "noc/network.h"
#include "ordering/strategy.h"
#include "sim/traffic_gen.h"

namespace nocbt::sim {

namespace {

/// SplitMix64 finalizer: spreads (root seed, grid index) into independent
/// per-scenario seeds. Depends only on the scenario's grid position, never
/// on worker scheduling.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  std::uint64_t z = root + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string short_format(DataFormat format) {
  return format == DataFormat::kFloat32 ? "fp32" : "fx8";
}

/// Flitize one request under the given ordering mode: encode order, pack
/// half-half (weights right, inputs left, no bias — pure traffic). The
/// mode's registered OrderingStrategy supplies the permutation, so every
/// strategy in the registry is sweepable through the campaign grid.
std::vector<BitVec> build_payloads(const InjectionRequest& req,
                                   DataFormat format,
                                   const accel::FlitLayout& layout,
                                   ordering::OrderingMode mode) {
  using ordering::apply_permutation;
  std::span<const std::uint32_t> weights(req.weights);
  std::span<const std::uint32_t> inputs(req.inputs);
  std::vector<std::uint32_t> w_store;
  std::vector<std::uint32_t> in_store;
  if (!ordering::mode_is_baseline(mode)) {
    const ordering::OrderingStrategy& strategy = ordering::mode_strategy(mode);
    if (ordering::mode_is_separated(mode)) {
      const auto w_perm = strategy.order(weights, format);
      const auto in_perm = strategy.order(inputs, format);
      w_store =
          apply_permutation(weights, std::span<const std::uint32_t>(w_perm));
      in_store =
          apply_permutation(inputs, std::span<const std::uint32_t>(in_perm));
    } else {
      // Affiliated pairing: one permutation keyed on the weights moves
      // (weight, input) pairs together.
      const auto perm = strategy.order(weights, format);
      w_store = apply_permutation(weights, std::span<const std::uint32_t>(perm));
      in_store = apply_permutation(inputs, std::span<const std::uint32_t>(perm));
    }
    weights = w_store;
    inputs = in_store;
  }
  return accel::pack_half_half(inputs, weights, std::nullopt, layout);
}

/// A generator's fully-materialized injection schedule: the pre-ordering
/// traffic every variant of a scenario (baseline, ordered, analytical or
/// cycle) replays. Immutable once built, so workers share it freely.
using Schedule = std::vector<InjectionRequest>;
using SchedulePtr = std::shared_ptr<const Schedule>;

SchedulePtr materialize_schedule(const ScenarioSpec& spec) {
  auto gen = make_generator(spec);
  auto schedule = std::make_shared<Schedule>();
  while (auto req = gen->next()) schedule->push_back(std::move(*req));
  return schedule;
}

/// Fingerprint of every spec field the synthetic generators read. Mode,
/// engine and name are deliberately absent: scenarios differing only in
/// those produce byte-identical schedules and share one materialization.
std::string schedule_key(const ScenarioSpec& spec) {
  std::string key = to_string(spec.generator);
  const auto add = [&key](const std::string& s) {
    key += '|';
    key += s;
  };
  add(std::to_string(spec.rows));
  add(std::to_string(spec.cols));
  add(to_string(spec.format));
  add(std::to_string(spec.fixed_bits));
  add(std::to_string(spec.values_per_flit));
  add(std::to_string(spec.window));
  add(std::to_string(spec.packets));
  add(std::to_string(spec.injection_rate));
  add(to_string(spec.value_dist));
  add(std::to_string(spec.dist_a));
  add(std::to_string(spec.dist_b));
  add(std::to_string(spec.hotspot_fraction));
  add(std::to_string(spec.hotspot_node));
  add(std::to_string(spec.burst_len));
  add(std::to_string(spec.burst_gap));
  add(spec.trace_path);
  add(std::to_string(spec.num_mcs));
  add(std::to_string(spec.model_seed));
  add(spec.model);
  add(spec.placement);
  add(std::to_string(spec.tiles_per_layer));
  add(std::to_string(spec.seed));
  return key;
}

/// Campaign-scoped schedule store: grid points that share every
/// payload-relevant knob (all mode rows of one traffic stream — expand()
/// derives their seeds mode-independently) generate their schedule once.
/// Thread-safe; the first worker to request a key materializes it while
/// later workers block on the shared future. Entries are dropped after
/// `uses_per_key` lookups (one per mode row) to bound campaign memory.
class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t uses_per_key)
      : uses_per_key_(uses_per_key < 1 ? 1 : uses_per_key) {}

  SchedulePtr get(const ScenarioSpec& spec) {
    const std::string key = schedule_key(spec);
    std::promise<SchedulePtr> mine;
    std::shared_future<SchedulePtr> fut;
    bool owner = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it == entries_.end()) {
        owner = true;
        fut = mine.get_future().share();
        entries_.emplace(key, Entry{fut, uses_per_key_});
      } else {
        fut = it->second.future;
      }
    }
    if (owner) {
      try {
        mine.set_value(materialize_schedule(spec));
      } catch (...) {
        mine.set_exception(std::current_exception());
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && --it->second.remaining == 0)
        entries_.erase(it);  // shared_future keeps the state alive
    }
    return fut.get();  // rethrows a materialization failure to every sharer
  }

 private:
  struct Entry {
    std::shared_future<SchedulePtr> future;
    std::size_t remaining = 0;
  };
  std::size_t uses_per_key_;
  std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Everything one network run yields.
struct VariantOutcome {
  std::uint64_t bt = 0;
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  std::uint64_t peak_backlog = 0;
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  bool drained = false;
  noc::SimProfile sim;   ///< step-loop counters (deterministic)
  double wall_ms = 0.0;  ///< host wall-clock of the run (nondeterministic)
  std::vector<noc::LinkObservation> links;  ///< frozen per-link counters
};

/// Drive a synthetic generator's schedule through a fresh network with the
/// payload ordering of `mode`. `want_links` gates the per-link snapshot:
/// only the ordered run's links are reported, so the baseline variant
/// skips copying every link counter of a large mesh.
VariantOutcome run_traffic_variant(const ScenarioSpec& spec,
                                   ordering::OrderingMode mode,
                                   bool want_links,
                                   const Schedule& schedule) {
  const noc::WallTimer timer;
  noc::Network net(spec.noc_config());
  const std::int32_t nodes = spec.rows * spec.cols;
  for (std::int32_t node = 0; node < nodes; ++node)
    net.set_sink(node, nullptr);  // stats-only sink

  const accel::FlitLayout layout{spec.values_per_flit, value_bits(spec.format)};
  std::size_t next_req = 0;
  const auto* pending = next_req < schedule.size() ? &schedule[next_req]
                                                   : nullptr;

  VariantOutcome out;
  // The stall guard counts *active* steps, not the absolute clock: idle
  // gaps in a sparse schedule are skipped via advance_idle, so a bursty or
  // replayed workload with long quiet periods cannot trip it.
  std::uint64_t active_steps = 0;
  while (pending || !net.idle()) {
    if (active_steps > spec.max_cycles) {  // drained stays false
      out.sim = net.stats().sim;
      out.wall_ms = timer.millis();
      return out;
    }
    if (pending && pending->cycle > net.cycle() && net.idle()) {
      net.advance_idle(pending->cycle - net.cycle());
    }
    while (pending && pending->cycle <= net.cycle()) {
      net.inject(pending->src, pending->dst,
                 build_payloads(*pending, spec.format, layout, mode));
      ++next_req;
      pending = next_req < schedule.size() ? &schedule[next_req] : nullptr;
    }
    net.step();
    ++active_steps;
    std::uint64_t backlog = 0;
    for (std::int32_t node = 0; node < nodes; ++node)
      backlog += net.injection_backlog(node);
    if (backlog > out.peak_backlog) out.peak_backlog = backlog;
  }

  out.bt = net.bt().total();
  out.cycles = net.cycle();
  out.packets = net.stats().packets_delivered;
  out.flits = net.stats().flits_delivered;
  out.avg_latency = net.stats().packet_latency.mean();
  out.avg_hops = net.stats().packet_hops.mean();
  out.drained = true;
  out.sim = net.stats().sim;
  if (want_links) out.links = net.bt().snapshot();
  out.wall_ms = timer.millis();
  return out;
}

/// Full DNN inference through the accelerator platform (model workloads).
VariantOutcome run_model_variant(const ScenarioSpec& spec,
                                 ordering::OrderingMode mode,
                                 const ModelHooks& hooks, bool want_links) {
  if (!hooks.model || !hooks.input)
    throw std::invalid_argument(
        "run_scenario: model workload needs CampaignSpec::hooks");
  const noc::WallTimer timer;
  accel::AccelConfig cfg = accel::AccelConfig::defaults(
      spec.format, mode, spec.rows, spec.cols, spec.num_mcs);
  cfg.noc.num_vcs = spec.num_vcs;
  cfg.noc.vc_buffer_depth = spec.vc_buffer_depth;
  cfg.noc.engine = spec.engine;
  dnn::Sequential model = hooks.model(spec.model_seed);
  accel::NocDnaPlatform platform(cfg, model);
  accel::InferenceResult result = platform.run(hooks.input(spec.input_seed));

  VariantOutcome out;
  out.bt = result.bt_total;
  out.cycles = result.total_cycles;
  out.packets = result.noc_stats.packets_delivered;
  out.flits = result.noc_stats.flits_delivered;
  out.avg_latency = result.noc_stats.packet_latency.mean();
  out.avg_hops = result.noc_stats.packet_hops.mean();
  out.drained = true;
  out.sim = result.noc_stats.sim;
  if (want_links) out.links = std::move(result.links);
  out.wall_ms = timer.millis();
  return out;
}

/// Evaluate a synthetic schedule through the zero-load analytical backend.
/// Returns true when the result is exact (schedule proven congestion-free)
/// with `out` filled; false when the schedule is contended or the config
/// unsupported, with `why_not` explaining — the caller then replays the
/// same materialized schedule on a cycle engine.
bool run_analytical_variant(const ScenarioSpec& spec,
                            ordering::OrderingMode mode, bool want_links,
                            const Schedule& schedule, VariantOutcome& out,
                            std::string& why_not) {
  const noc::WallTimer timer;
  noc::AnalyticalEngine eng(spec.noc_config());
  const accel::FlitLayout layout{spec.values_per_flit, value_bits(spec.format)};
  for (const InjectionRequest& req : schedule)
    eng.inject(req.cycle, req.src, req.dst,
               build_payloads(req, spec.format, layout, mode));
  if (!eng.run()) {
    why_not = eng.contention_detail();
    return false;
  }
  out.bt = eng.bt().total();
  out.cycles = eng.cycle();
  out.packets = eng.stats().packets_delivered;
  out.flits = eng.stats().flits_delivered;
  // Congestion-free means every packet is VC-assigned the cycle it is
  // enqueued, so the cycle engines' post-step backlog samples are all 0.
  out.peak_backlog = 0;
  out.avg_latency = eng.stats().packet_latency.mean();
  out.avg_hops = eng.stats().packet_hops.mean();
  out.drained = true;
  out.sim = eng.stats().sim;
  if (want_links) out.links = eng.bt().snapshot();
  out.wall_ms = timer.millis();
  return true;
}

VariantOutcome run_variant(const ScenarioSpec& spec,
                           ordering::OrderingMode mode,
                           const ModelHooks& hooks, bool want_links,
                           const Schedule* schedule) {
  // Model workloads inject reactively and always need a cycle engine
  // (validate() rejects forcing analytical on them); every other workload
  // replays the caller's materialized schedule.
  if (spec.generator != GeneratorKind::kModel &&
      (spec.engine_auto || spec.engine == noc::SimEngine::kAnalytical)) {
    VariantOutcome out;
    std::string why_not;
    if (run_analytical_variant(spec, mode, want_links, *schedule, out,
                               why_not))
      return out;
    if (!spec.engine_auto)
      throw std::runtime_error(
          "engine=analytical cannot evaluate this schedule exactly: " +
          why_not + " (engine=auto falls back to a cycle engine instead)");
  }
  // Cycle-engine path; under auto-selection kAnalytical is a policy, not a
  // steppable backend, so the fallback runs active-set.
  ScenarioSpec cyc = spec;
  if (cyc.engine == noc::SimEngine::kAnalytical)
    cyc.engine = noc::SimEngine::kActiveSet;
  return cyc.generator == GeneratorKind::kModel
             ? run_model_variant(cyc, mode, hooks, want_links)
             : run_traffic_variant(cyc, mode, want_links, *schedule);
}

/// run_scenario with an optional campaign-scoped schedule cache.
ScenarioResult run_scenario_impl(const ScenarioSpec& spec,
                                 const ModelHooks& hooks,
                                 ScheduleCache* cache) {
  ScenarioResult result;
  result.spec = spec;
  try {
    spec.validate();
    // Materialize the pre-ordering schedule once: both variants (and the
    // analytical attempt plus its cycle-engine fallback) replay the same
    // request list, and with a cache every mode row of this traffic stream
    // shares it too.
    SchedulePtr schedule;
    if (spec.generator != GeneratorKind::kModel)
      schedule = cache ? cache->get(spec) : materialize_schedule(spec);
    // Per-link rows come from the ordered run only, so the baseline
    // variant skips the snapshot — unless it *is* the ordered run.
    const bool baseline_is_ordered =
        spec.mode == ordering::OrderingMode::kBaseline;
    const VariantOutcome baseline =
        run_variant(spec, ordering::OrderingMode::kBaseline, hooks,
                    baseline_is_ordered, schedule.get());
    const VariantOutcome ordered =
        baseline_is_ordered
            ? baseline
            : run_variant(spec, spec.mode, hooks, true, schedule.get());
    result.bt_baseline = baseline.bt;
    result.bt_ordered = ordered.bt;
    result.reduction =
        baseline.bt > 0 ? 1.0 - static_cast<double>(ordered.bt) /
                                    static_cast<double>(baseline.bt)
                        : 0.0;
    const hw::EnergyModel energy(hw::EnergyModelConfig{
        spec.energy_per_transition_pj, spec.frequency_mhz});
    result.energy_baseline_pj = energy.energy_pj(baseline.bt);
    result.energy_pj = energy.energy_pj(ordered.bt);
    result.power_baseline_mw = energy.power_mw(baseline.bt, baseline.cycles);
    result.power_mw = energy.power_mw(ordered.bt, ordered.cycles);
    result.links = energy.annotate(ordered.links);
    result.cycles = ordered.cycles;
    result.packets = ordered.packets;
    result.flits = ordered.flits;
    result.peak_backlog = ordered.peak_backlog;
    result.avg_latency = ordered.avg_latency;
    result.avg_hops = ordered.avg_hops;
    result.drained = baseline.drained && ordered.drained;
    result.sim = ordered.sim;
    result.wall_ms_baseline = baseline.wall_ms;
    result.wall_ms_ordered = ordered.wall_ms;
    if (!result.drained)
      result.error = "scenario '" + spec.name +
                     "' hit the max_cycles stall guard (" +
                     std::to_string(spec.max_cycles) +
                     " active cycles) before draining";
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

MeshSpec parse_mesh_spec(const std::string& s) {
  // "<rows>x<cols>[mc<count>]", e.g. "4x4" or "8x8mc4".
  const auto bad = [&]() -> std::invalid_argument {
    return std::invalid_argument("parse_mesh_spec: expected RxC[mcN], got '" +
                                 s + "'");
  };
  std::size_t pos = 0;
  const auto read_int = [&]() -> std::int32_t {
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      throw bad();
    std::int32_t v = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      v = v * 10 + (s[pos] - '0');
      if (v > 4096) throw bad();  // keeps rows*cols safely inside int32
      ++pos;
    }
    return v;
  };
  MeshSpec mesh;
  mesh.rows = read_int();
  if (pos >= s.size() || (s[pos] != 'x' && s[pos] != 'X')) throw bad();
  ++pos;
  mesh.cols = read_int();
  if (pos != s.size()) {
    if (s.compare(pos, 2, "mc") != 0 && s.compare(pos, 2, "MC") != 0)
      throw bad();
    pos += 2;
    mesh.mcs = read_int();
    if (pos != s.size()) throw bad();
  }
  return mesh;
}

std::string to_string(const MeshSpec& mesh) {
  return std::to_string(mesh.rows) + "x" + std::to_string(mesh.cols) +
         (mesh.mcs != 2 ? "mc" + std::to_string(mesh.mcs) : std::string());
}

std::string scenario_name(GeneratorKind generator, DataFormat format,
                          ordering::OrderingMode mode, const MeshSpec& mesh,
                          std::uint32_t window) {
  return to_string(generator) + "/" + short_format(format) + "/" +
         ordering::short_mode_name(mode) + "/" + std::to_string(mesh.rows) + "x" +
         std::to_string(mesh.cols) + "mc" + std::to_string(mesh.mcs) + "/w" +
         std::to_string(window);
}

std::vector<ScenarioSpec> CampaignSpec::expand() const {
  std::vector<ScenarioSpec> out;
  // Seeds are derived from the scenario's *mode-independent* grid position
  // (its traffic stream): every mode row of one (generator, format, mesh,
  // window, replicate) point injects the byte-identical pre-ordering
  // schedule, so mode deltas measure the ordering alone — and the runner's
  // schedule cache materializes each stream once per campaign.
  for (std::size_t gi = 0; gi < generators.size(); ++gi)
    for (std::size_t fi = 0; fi < formats.size(); ++fi)
      for (const ordering::OrderingMode mode : modes)
        for (std::size_t mi = 0; mi < meshes.size(); ++mi)
          for (std::size_t wi = 0; wi < windows.size(); ++wi)
            for (std::uint32_t rep = 0; rep < replicates; ++rep) {
              const MeshSpec& mesh = meshes[mi];
              const std::uint64_t stream =
                  ((gi * formats.size() + fi) * meshes.size() + mi) *
                      windows.size() * replicates +
                  wi * replicates + rep;
              ScenarioSpec spec = base;
              spec.generator = generators[gi];
              spec.format = formats[fi];
              spec.mode = mode;
              spec.rows = mesh.rows;
              spec.cols = mesh.cols;
              spec.num_mcs = mesh.mcs;
              spec.window = windows[wi];
              spec.seed = derive_seed(root_seed, stream);
              spec.name = scenario_name(generators[gi], formats[fi], mode,
                                        mesh, windows[wi]);
              if (replicates > 1) spec.name += "/r" + std::to_string(rep);
              out.push_back(std::move(spec));
            }
  return out;
}

bool operator==(const ScenarioResult& a, const ScenarioResult& b) {
  return a.spec.name == b.spec.name && a.spec.seed == b.spec.seed &&
         a.bt_baseline == b.bt_baseline && a.bt_ordered == b.bt_ordered &&
         a.reduction == b.reduction &&
         a.energy_baseline_pj == b.energy_baseline_pj &&
         a.energy_pj == b.energy_pj &&
         a.power_baseline_mw == b.power_baseline_mw &&
         a.power_mw == b.power_mw && a.cycles == b.cycles &&
         a.packets == b.packets && a.flits == b.flits &&
         a.peak_backlog == b.peak_backlog &&
         a.avg_latency == b.avg_latency && a.avg_hops == b.avg_hops &&
         a.drained == b.drained && a.sim == b.sim && a.links == b.links &&
         a.error == b.error;
  // wall_ms_* are deliberately not compared: wall-clock is the one
  // nondeterministic measurement a scenario carries.
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const ModelHooks& hooks) {
  return run_scenario_impl(spec, hooks, nullptr);
}

ScenarioResult run_single_scenario(const CampaignSpec& spec) {
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  if (scenarios.size() != 1)
    throw std::invalid_argument(
        "run_single_scenario: campaign '" + spec.name + "' expands to " +
        std::to_string(scenarios.size()) +
        " scenarios (every grid axis must hold exactly one value and "
        "replicates must be 1)");
  return run_scenario_impl(scenarios.front(), spec.hooks, nullptr);
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerConfig& runner) {
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  CampaignResult result;
  result.rows.resize(scenarios.size());

  // One schedule per traffic stream: the mode rows of a grid point share
  // their materialized generator output (expand() gives them one seed).
  ScheduleCache cache(spec.modes.size());
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;  // guarded by report_mutex
  std::mutex report_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      result.rows[i] = run_scenario_impl(scenarios[i], spec.hooks, &cache);
      if (runner.on_result) {
        // done is incremented under the same lock as the callback so the
        // reported counts never regress.
        const std::lock_guard<std::mutex> lock(report_mutex);
        runner.on_result(result.rows[i], ++done, scenarios.size());
      }
    }
  };

  const std::size_t want = runner.threads < 1 ? 1 : runner.threads;
  const std::size_t pool =
      scenarios.size() < want ? (scenarios.empty() ? 1 : scenarios.size())
                              : want;
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  return result;
}

std::string render_table(const CampaignResult& result) {
  AsciiTable table({"scenario", "O0 BT", "ordered BT", "reduction",
                    "energy (pJ)", "O0 mW", "mW", "cycles", "flits", "backlog",
                    "status"});
  for (const ScenarioResult& row : result.rows) {
    if (!row.error.empty() && !row.drained && row.cycles == 0 &&
        row.bt_baseline == 0) {
      table.add_row({row.spec.name, "-", "-", "-", "-", "-", "-", "-", "-",
                     "-", "error: " + row.error});
      continue;
    }
    table.add_row({row.spec.name, std::to_string(row.bt_baseline),
                   std::to_string(row.bt_ordered),
                   format_percent(row.reduction),
                   format_double(row.energy_pj, 1),
                   format_double(row.power_baseline_mw, 3),
                   format_double(row.power_mw, 3), std::to_string(row.cycles),
                   std::to_string(row.flits), std::to_string(row.peak_backlog),
                   row.drained ? "ok" : "stalled"});
  }
  return table.render();
}

std::size_t write_csv_report(const std::string& path,
                             const CampaignSpec& campaign,
                             const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path,
                {"scenario", "generator", "format", "mode", "rows", "cols",
                 "window", "seed", "bt_baseline", "bt_ordered", "reduction",
                 "energy_baseline_pj", "energy_pj", "power_baseline_mw",
                 "power_mw", "cycles", "packets", "flits", "peak_backlog",
                 "avg_latency", "avg_hops", "drained", "error"});
  for (const ScenarioResult& row : result.rows) {
    const ScenarioSpec& s = row.spec;
    csv.add_row({s.name, to_string(s.generator), to_string(s.format),
                 ordering::to_string(s.mode), std::to_string(s.rows),
                 std::to_string(s.cols), std::to_string(s.window),
                 std::to_string(s.seed), std::to_string(row.bt_baseline),
                 std::to_string(row.bt_ordered),
                 format_double(row.reduction, 6),
                 format_double(row.energy_baseline_pj, 3),
                 format_double(row.energy_pj, 3),
                 format_double(row.power_baseline_mw, 6),
                 format_double(row.power_mw, 6), std::to_string(row.cycles),
                 std::to_string(row.packets), std::to_string(row.flits),
                 std::to_string(row.peak_backlog),
                 format_double(row.avg_latency, 3),
                 format_double(row.avg_hops, 3), row.drained ? "1" : "0",
                 row.error});
  }
  return csv.rows_written();
}

std::size_t write_profile_csv(const std::string& path,
                              const CampaignSpec& campaign,
                              const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path,
                {"scenario", "engine", "wall_ms_baseline", "wall_ms_ordered",
                 "cycles", "cycles_stepped", "idle_cycles_skipped",
                 "components_stepped", "components_skipped", "skip_ratio"});
  for (const ScenarioResult& row : result.rows) {
    // row.sim.engine is the backend that actually ran the ordered variant
    // (auto-selection may pick analytical over the spec's cycle engine).
    csv.add_row({row.spec.name, noc::to_string(row.sim.engine),
                 format_double(row.wall_ms_baseline, 3),
                 format_double(row.wall_ms_ordered, 3),
                 std::to_string(row.cycles),
                 std::to_string(row.sim.cycles_stepped),
                 std::to_string(row.sim.idle_cycles_skipped),
                 std::to_string(row.sim.components_stepped),
                 std::to_string(row.sim.components_skipped),
                 format_double(row.sim.skip_ratio(), 6)});
  }
  return csv.rows_written();
}

std::size_t write_link_heatmap_csv(const std::string& path,
                                   const CampaignSpec& campaign,
                                   const CampaignResult& result) {
  (void)campaign;
  CsvWriter csv(path, {"scenario", "link_id", "kind", "src", "dst", "src_port",
                       "flits", "bt", "energy_pj"});
  for (const ScenarioResult& row : result.rows)
    for (const hw::LinkEnergyRow& link : row.links)
      csv.add_row({row.spec.name, std::to_string(link.link_id),
                   noc::to_string(link.info.kind),
                   std::to_string(link.info.src),
                   std::to_string(link.info.dst),
                   std::to_string(link.info.src_port),
                   std::to_string(link.flits), std::to_string(link.transitions),
                   format_double(link.energy_pj, 3)});
  return csv.rows_written();
}

std::string json_report(const CampaignSpec& campaign,
                        const CampaignResult& result) {
  JsonWriter json;
  json.begin_object()
      .key("campaign").value(campaign.name)
      .key("root_seed").value(std::to_string(campaign.root_seed))
      .key("scenario_count").value(static_cast<std::uint64_t>(result.rows.size()))
      .key("scenarios").begin_array();
  for (const ScenarioResult& row : result.rows) {
    const ScenarioSpec& s = row.spec;
    json.begin_object()
        .key("name").value(s.name)
        .key("generator").value(to_string(s.generator))
        .key("format").value(to_string(s.format))
        .key("mode").value(ordering::to_string(s.mode))
        .key("rows").value(static_cast<std::int64_t>(s.rows))
        .key("cols").value(static_cast<std::int64_t>(s.cols))
        .key("window").value(static_cast<std::uint64_t>(s.window))
        // As a string: 64-bit seeds exceed the 2^53 exact-integer range of
        // double-based JSON consumers (jq, JavaScript) and would round.
        .key("seed").value(std::to_string(s.seed))
        .key("energy_per_transition_pj").value(s.energy_per_transition_pj)
        .key("frequency_mhz").value(s.frequency_mhz)
        .key("bt_baseline").value(row.bt_baseline)
        .key("bt_ordered").value(row.bt_ordered)
        .key("reduction").value(row.reduction)
        .key("energy_baseline_pj").value(row.energy_baseline_pj)
        .key("energy_pj").value(row.energy_pj)
        .key("power_baseline_mw").value(row.power_baseline_mw)
        .key("power_mw").value(row.power_mw)
        .key("cycles").value(row.cycles)
        .key("packets").value(row.packets)
        .key("flits").value(row.flits)
        .key("peak_backlog").value(row.peak_backlog)
        .key("avg_latency").value(row.avg_latency)
        .key("avg_hops").value(row.avg_hops)
        .key("drained").value(row.drained);
    json.key("error");
    if (row.error.empty())
      json.null();
    else
      json.value(row.error);
    json.end_object();
  }
  json.end_array().end_object();
  return json.take();
}

void write_json_report(const std::string& path, const CampaignSpec& campaign,
                       const CampaignResult& result) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("write_json_report: cannot open " + path);
  out << json_report(campaign, result) << '\n';
  if (!out)
    throw std::runtime_error("write_json_report: write failed for " + path);
}

}  // namespace nocbt::sim
