#include "sim/campaign.h"

#include <cctype>
#include <stdexcept>
#include <utility>

namespace nocbt::sim {

namespace {

/// SplitMix64 finalizer: spreads (root seed, grid index) into independent
/// per-scenario seeds. Depends only on the scenario's grid position, never
/// on worker scheduling.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  std::uint64_t z = root + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string short_format(DataFormat format) {
  return format == DataFormat::kFloat32 ? "fp32" : "fx8";
}

}  // namespace

MeshSpec parse_mesh_spec(const std::string& s) {
  // "<rows>x<cols>[mc<count>]", e.g. "4x4" or "8x8mc4".
  const auto bad = [&]() -> std::invalid_argument {
    return std::invalid_argument("parse_mesh_spec: expected RxC[mcN], got '" +
                                 s + "'");
  };
  std::size_t pos = 0;
  const auto read_int = [&]() -> std::int32_t {
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      throw bad();
    std::int32_t v = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      v = v * 10 + (s[pos] - '0');
      if (v > 4096) throw bad();  // keeps rows*cols safely inside int32
      ++pos;
    }
    return v;
  };
  MeshSpec mesh;
  mesh.rows = read_int();
  if (pos >= s.size() || (s[pos] != 'x' && s[pos] != 'X')) throw bad();
  ++pos;
  mesh.cols = read_int();
  if (pos != s.size()) {
    if (s.compare(pos, 2, "mc") != 0 && s.compare(pos, 2, "MC") != 0)
      throw bad();
    pos += 2;
    mesh.mcs = read_int();
    if (pos != s.size()) throw bad();
  }
  return mesh;
}

std::string to_string(const MeshSpec& mesh) {
  return std::to_string(mesh.rows) + "x" + std::to_string(mesh.cols) +
         (mesh.mcs != 2 ? "mc" + std::to_string(mesh.mcs) : std::string());
}

std::string scenario_name(GeneratorKind generator, DataFormat format,
                          ordering::OrderingMode mode, const MeshSpec& mesh,
                          std::uint32_t window) {
  return to_string(generator) + "/" + short_format(format) + "/" +
         ordering::short_mode_name(mode) + "/" + std::to_string(mesh.rows) + "x" +
         std::to_string(mesh.cols) + "mc" + std::to_string(mesh.mcs) + "/w" +
         std::to_string(window);
}

std::vector<ScenarioSpec> CampaignSpec::expand() const {
  std::vector<ScenarioSpec> out;
  // Seeds are derived from the scenario's *mode-independent* grid position
  // (its traffic stream): every mode row of one (generator, format, mesh,
  // window, replicate) point injects the byte-identical pre-ordering
  // schedule, so mode deltas measure the ordering alone — and the runner's
  // schedule cache materializes each stream once per campaign.
  for (std::size_t gi = 0; gi < generators.size(); ++gi)
    for (std::size_t fi = 0; fi < formats.size(); ++fi)
      for (const ordering::OrderingMode mode : modes)
        for (std::size_t mi = 0; mi < meshes.size(); ++mi)
          for (std::size_t wi = 0; wi < windows.size(); ++wi)
            for (std::uint32_t rep = 0; rep < replicates; ++rep) {
              const MeshSpec& mesh = meshes[mi];
              const std::uint64_t stream =
                  ((gi * formats.size() + fi) * meshes.size() + mi) *
                      windows.size() * replicates +
                  wi * replicates + rep;
              ScenarioSpec spec = base;
              spec.generator = generators[gi];
              spec.format = formats[fi];
              spec.mode = mode;
              spec.rows = mesh.rows;
              spec.cols = mesh.cols;
              spec.num_mcs = mesh.mcs;
              spec.window = windows[wi];
              spec.seed = derive_seed(root_seed, stream);
              spec.name = scenario_name(generators[gi], formats[fi], mode,
                                        mesh, windows[wi]);
              if (replicates > 1) spec.name += "/r" + std::to_string(rep);
              out.push_back(std::move(spec));
            }
  return out;
}

bool operator==(const ScenarioResult& a, const ScenarioResult& b) {
  return a.spec.name == b.spec.name && a.spec.seed == b.spec.seed &&
         a.bt_baseline == b.bt_baseline && a.bt_ordered == b.bt_ordered &&
         a.reduction == b.reduction &&
         a.energy_baseline_pj == b.energy_baseline_pj &&
         a.energy_pj == b.energy_pj &&
         a.power_baseline_mw == b.power_baseline_mw &&
         a.power_mw == b.power_mw && a.cycles == b.cycles &&
         a.packets == b.packets && a.flits == b.flits &&
         a.peak_backlog == b.peak_backlog &&
         a.avg_latency == b.avg_latency && a.avg_hops == b.avg_hops &&
         a.drained == b.drained && a.sim == b.sim && a.links == b.links &&
         a.error == b.error;
  // wall_ms_* are deliberately not compared: wall-clock is the one
  // nondeterministic measurement a scenario carries.
}

}  // namespace nocbt::sim
