#pragma once
// Campaign execution layer: the sharded, cached, resumable sweep over a
// CampaignSpec's expansion. Composes the seams below it — planner
// (sim/campaign.h) for the grid, runner (sim/scenario_runner.h) for each
// measurement, cache (sim/scenario_cache.h) for cross-run/cross-front-end
// reuse, journal (sim/run_journal.h) for kill/resume — and owns none of
// the physics itself.
//
// Determinism contract: for a fixed spec, the rows a shard contributes are
// byte-identical whether they were simulated, served by the cache, or
// replayed from a journal (wall_ms_* excepted — wall-clock is measurement
// overhead, not a result, and persisted rows replay it as 0). Sharding
// partitions the expansion by scenario index modulo the shard count, so
// the union of N shards is exactly the serial row set and merge_campaign
// can reassemble reports that cmp-match a serial run.

#include <cstdint>
#include <functional>
#include <string>

#include "sim/campaign.h"

namespace nocbt::sim {

/// One slice of a deterministic N-way partition: this process runs the
/// scenarios whose expansion index i satisfies i % count == index.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

/// Parse "i/N" (e.g. "0/4"); requires N >= 1 and i < N. Throws
/// std::invalid_argument with the offending text otherwise.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& s);
[[nodiscard]] std::string to_string(const ShardSpec& shard);

/// The campaign-service knobs, all off by default (empty/1-way — plain
/// in-process sweep, byte-identical to the pre-service behavior).
struct ExecutionConfig {
  /// Content-addressed result store directory; "" disables persistence.
  /// Safe to share between concurrent shard processes and with
  /// nocbt_optimize searches over the same scenarios.
  std::string cache_dir;
  /// Checkpoint journal path; "" disables journaling. When the file
  /// already exists it must carry this campaign's content hash (else
  /// run_campaign throws) and its intact rows are skipped, not re-run.
  std::string journal_path;
  ShardSpec shard;
};

struct RunnerConfig {
  unsigned threads = 1;
  ExecutionConfig exec;
  /// Invoked after each scenario row is obtained — simulated or replayed
  /// (serialized by the runner, so the callback needs no locking of its
  /// own). `done`/`total` count this shard's assignment.
  std::function<void(const ScenarioResult&, std::size_t done,
                     std::size_t total)>
      on_result;
};

/// Run (this shard of) the sweep. Returns the assigned rows in grid order
/// plus how each was obtained; stats.warnings carries non-fatal
/// cache/journal damage diagnostics. Throws on a journal whose header
/// hash names a different campaign spec.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const RunnerConfig& runner = {});

}  // namespace nocbt::sim
