#include "sim/run_journal.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "sim/scenario_cache.h"

namespace nocbt::sim {

namespace {

constexpr const char* kJournalMagic = "nocbt-journal v1 ";

std::string header_line(const std::string& campaign_hash,
                        std::uint64_t total) {
  return std::string(kJournalMagic) + "campaign=" + campaign_hash +
         " total=" + std::to_string(total);
}

/// Parse "nocbt-journal v1 campaign=<32hex> total=<N>".
bool parse_header(const std::string& line, std::string& hash,
                  std::uint64_t& total) {
  const std::string magic(kJournalMagic);
  if (line.compare(0, magic.size(), magic) != 0) return false;
  std::string rest = line.substr(magic.size());
  const std::string campaign_key = "campaign=";
  if (rest.compare(0, campaign_key.size(), campaign_key) != 0) return false;
  rest = rest.substr(campaign_key.size());
  const std::size_t space = rest.find(' ');
  if (space == std::string::npos) return false;
  hash = rest.substr(0, space);
  if (hash.size() != 32) return false;
  const std::string total_field = rest.substr(space + 1);
  const std::string total_key = "total=";
  if (total_field.compare(0, total_key.size(), total_key) != 0) return false;
  const std::string n = total_field.substr(total_key.size());
  const char* first = n.data();
  const char* last = n.data() + n.size();
  const auto [ptr, ec] = std::from_chars(first, last, total);
  return ec == std::errc{} && ptr == last && !n.empty();
}

}  // namespace

JournalContents read_journal(const std::string& path) {
  JournalContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  out.exists = true;
  std::string line;
  if (!std::getline(in, line) || !parse_header(line, out.campaign_hash,
                                               out.total)) {
    out.warnings.push_back("journal " + path +
                           ": unrecognizable header line — ignoring the "
                           "whole file (it will be started fresh)");
    return out;
  }
  out.header_ok = true;
  std::uint64_t record = 0;  // 1-based count of lines after the header
  while (std::getline(in, line)) {
    ++record;
    if (line.empty()) continue;  // a torn append can leave a bare newline
    DecodedRecord decoded;
    std::string error;
    if (!decode_result_record(line, decoded, error)) {
      out.warnings.push_back("journal " + path + ": record " +
                             std::to_string(record) + ": " + error +
                             " — record skipped (its scenario will "
                             "re-run)");
      continue;
    }
    out.rows[decoded.content_hash] = decoded.row;
    out.indexes[decoded.content_hash] = decoded.index;
  }
  return out;
}

RunJournal::RunJournal(const std::string& path,
                       const std::string& campaign_hash, std::uint64_t total,
                       bool fresh)
    : path_(path) {
  // A torn append (kill mid-record) leaves a final line with no newline;
  // appending straight after it would garble the next record too. Resume
  // by completing that line first — the fragment stays diagnosable as one
  // corrupt record and every later append starts clean.
  bool needs_newline = false;
  if (!fresh) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      needs_newline = in.get() != '\n';
    }
  }
  out_.open(path, std::ios::binary | (fresh ? std::ios::trunc
                                            : std::ios::app));
  if (!out_)
    throw std::runtime_error("RunJournal: cannot open journal '" + path +
                             "' for writing");
  if (needs_newline) out_ << '\n';
  if (fresh) {
    out_ << header_line(campaign_hash, total) << '\n';
    out_.flush();
    if (!out_)
      throw std::runtime_error("RunJournal: cannot write header to '" + path +
                               "'");
  }
}

void RunJournal::append(const std::string& content_hash, std::uint64_t index,
                        const ScenarioResult& row) {
  out_ << encode_result_record(content_hash, index, row) << '\n';
  out_.flush();
  if (!out_)
    throw std::runtime_error("RunJournal: append failed for '" + path_ + "'");
}

CampaignResult merge_campaign(const CampaignSpec& spec,
                              const std::vector<std::string>& journal_paths) {
  const std::string want_hash = campaign_content_hash(spec);
  CampaignResult result;

  std::unordered_map<std::string, ScenarioResult> rows;
  for (const std::string& path : journal_paths) {
    JournalContents j = read_journal(path);
    if (!j.exists)
      throw std::runtime_error("merge_campaign: journal '" + path +
                               "' does not exist or is unreadable");
    if (!j.header_ok)
      throw std::runtime_error("merge_campaign: journal '" + path +
                               "' has an unrecognizable header line");
    if (j.campaign_hash != want_hash)
      throw std::runtime_error(
          "merge_campaign: journal '" + path + "' was written for campaign " +
          j.campaign_hash + " but this spec hashes to " + want_hash +
          " — refusing to mix rows across differing campaign specs");
    for (auto& [hash, row] : j.rows) rows.insert({hash, std::move(row)});
    for (std::string& w : j.warnings)
      result.stats.warnings.push_back(std::move(w));
  }

  const std::vector<ScenarioSpec> scenarios = spec.expand();
  result.stats.grid_total = scenarios.size();
  result.stats.assigned = scenarios.size();
  result.rows.reserve(scenarios.size());
  std::vector<std::string> missing;
  for (const ScenarioSpec& s : scenarios) {
    const ContentKey key = scenario_content_key(s, spec.hooks.id);
    if (!key.cacheable)
      throw std::runtime_error("merge_campaign: scenario '" + s.name +
                               "' is not content-addressable (" + key.why_not +
                               "), so no journal can carry its row");
    const auto it = rows.find(key.hash);
    if (it == rows.end()) {
      missing.push_back(s.name);
      continue;
    }
    ScenarioResult row = it->second;
    row.spec = s;
    result.rows.push_back(std::move(row));
    ++result.stats.journal_hits;
  }
  if (!missing.empty()) {
    std::ostringstream msg;
    msg << "merge_campaign: " << missing.size() << " of " << scenarios.size()
        << " scenarios are missing from the " << journal_paths.size()
        << " journal(s):";
    const std::size_t shown = missing.size() < 8 ? missing.size() : 8;
    for (std::size_t i = 0; i < shown; ++i) msg << ' ' << missing[i];
    if (shown < missing.size())
      msg << " (+" << missing.size() - shown << " more)";
    throw std::runtime_error(msg.str());
  }
  return result;
}

}  // namespace nocbt::sim
