#include "sim/scenario_cache.h"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <unistd.h>

#include "common/hash.h"
#include "noc/noc_config.h"

namespace nocbt::sim {

namespace {

constexpr const char* kCacheHeader = "nocbt-scenario-cache v1";

/// Shortest decimal string that parses back to exactly `v` — record
/// doubles must round-trip bit-identically or merged/cached reports would
/// drift from the serial run.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{})
    throw std::logic_error("encode_result_record: cannot format double");
  out.append(buf, ptr);
}

/// %-escape the record separators so an arbitrary error string stays on
/// one line and one field.
void append_escaped(std::string& out, const std::string& s) {
  static const char* hex = "0123456789abcdef";
  for (const char c : s) {
    if (c == '%' || c == ',' || c == '\n' || c == '\r') {
      const auto byte = static_cast<unsigned char>(c);
      out += '%';
      out += hex[byte >> 4];
      out += hex[byte & 0xF];
    } else {
      out += c;
    }
  }
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return false;
    const int hi = hex_nibble(s[i + 1]);
    const int lo = hex_nibble(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

bool parse_i32(const std::string& s, std::int32_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

bool parse_f64(const std::string& s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Feed the bytes of `path` into `h`. Returns false when unreadable.
bool hash_file_bytes(StableHash& h, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  h.add(buf.str());
  return true;
}

}  // namespace

ContentKey scenario_content_key(const ScenarioSpec& spec,
                                const std::string& hooks_id) {
  StableHash h;
  h.add("nocbt-scenario-v1");
  h.add(to_string(spec.generator));
  h.add(spec.rows);
  h.add(spec.cols);
  h.add(spec.num_vcs);
  h.add(spec.vc_buffer_depth);
  h.add(to_string(spec.format));
  h.add(ordering::to_string(spec.mode));
  h.add(static_cast<std::uint64_t>(spec.values_per_flit));
  h.add(static_cast<std::uint64_t>(spec.fixed_bits));
  h.add(spec.window);
  h.add(spec.packets);
  h.add(spec.injection_rate);
  h.add(to_string(spec.value_dist));
  h.add(spec.dist_a);
  h.add(spec.dist_b);
  h.add(spec.hotspot_fraction);
  h.add(spec.hotspot_node);
  h.add(spec.burst_len);
  h.add(spec.burst_gap);
  h.add(spec.num_mcs);
  h.add(spec.model_seed);
  h.add(spec.input_seed);
  h.add(spec.model);
  h.add(spec.placement);
  h.add(spec.tiles_per_layer);
  h.add(spec.energy_per_transition_pj);
  h.add(spec.frequency_mhz);
  h.add(spec.seed);
  h.add(spec.max_cycles);
  h.add(std::string(noc::to_string(spec.engine)));
  h.add(spec.engine_auto);

  ContentKey key;
  if (spec.generator == GeneratorKind::kModel) {
    if (hooks_id.empty()) {
      key.why_not =
          "model workload has no ModelHooks::id fingerprint, so its "
          "measurements are not content-addressable";
      return key;
    }
    h.add("hooks");
    h.add(hooks_id);
  }
  if (spec.generator == GeneratorKind::kReplay) {
    // The trace *bytes* are the workload; the path is just a location.
    h.add("trace");
    if (!hash_file_bytes(h, spec.trace_path)) {
      key.why_not = "trace file '" + spec.trace_path +
                    "' is unreadable, so the replay workload cannot be "
                    "content-addressed";
      return key;
    }
  }
  key.cacheable = true;
  key.hash = h.hex();
  return key;
}

std::string campaign_content_hash(const CampaignSpec& spec) {
  StableHash h;
  h.add("nocbt-campaign-v1");
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  h.add(static_cast<std::uint64_t>(scenarios.size()));
  for (const ScenarioSpec& s : scenarios) {
    h.add(s.name);
    const ContentKey key = scenario_content_key(s, spec.hooks.id);
    h.add(key.cacheable ? key.hash : "uncacheable");
  }
  return h.hex();
}

std::string encode_result_record(const std::string& content_hash,
                                 std::uint64_t index,
                                 const ScenarioResult& row) {
  std::string out = "rec,v1,";
  out += content_hash;
  out += ',';
  out += std::to_string(index);
  const auto add_u = [&out](std::uint64_t v) {
    out += ',';
    out += std::to_string(v);
  };
  const auto add_d = [&out](double v) {
    out += ',';
    append_double(out, v);
  };
  add_u(row.bt_baseline);
  add_u(row.bt_ordered);
  add_d(row.reduction);
  add_d(row.energy_baseline_pj);
  add_d(row.energy_pj);
  add_d(row.power_baseline_mw);
  add_d(row.power_mw);
  add_u(row.cycles);
  add_u(row.packets);
  add_u(row.flits);
  add_u(row.peak_backlog);
  add_d(row.avg_latency);
  add_d(row.avg_hops);
  add_u(row.drained ? 1 : 0);
  add_u(static_cast<std::uint64_t>(row.sim.engine));
  add_u(row.sim.cycles_stepped);
  add_u(row.sim.idle_cycles_skipped);
  add_u(row.sim.components_stepped);
  add_u(row.sim.components_skipped);
  add_u(static_cast<std::uint64_t>(row.links.size()));
  for (const hw::LinkEnergyRow& link : row.links) {
    add_u(static_cast<std::uint64_t>(link.link_id));
    add_u(static_cast<std::uint64_t>(link.info.kind));
    out += ',';
    out += std::to_string(link.info.src);
    out += ',';
    out += std::to_string(link.info.dst);
    out += ',';
    out += std::to_string(link.info.src_port);
    add_u(link.flits);
    add_u(link.transitions);
    add_d(link.energy_pj);
  }
  out += ',';
  append_escaped(out, row.error);
  // Self-checking suffix: the checksum covers every preceding byte, so a
  // torn append or a flipped bit is detected before a row is trusted.
  const std::string cksum = fnv1a64_hex(out);
  out += ',';
  out += cksum;
  return out;
}

bool decode_result_record(const std::string& line, DecodedRecord& out,
                          std::string& error) {
  const std::size_t last_comma = line.rfind(',');
  if (last_comma == std::string::npos || line.compare(0, 4, "rec,") != 0) {
    error = "not a result record line";
    return false;
  }
  const std::string body = line.substr(0, last_comma);
  const std::string cksum = line.substr(last_comma + 1);
  if (fnv1a64_hex(body) != cksum) {
    error = "checksum mismatch (truncated or corrupted record)";
    return false;
  }
  const std::vector<std::string> f = split_fields(line);
  // rec,v1,hash,index + 19 measurement fields + nlinks + 8*n + error + cksum
  constexpr std::size_t kFixed = 26;
  if (f.size() < kFixed || f[0] != "rec" || f[1] != "v1") {
    error = "malformed record framing";
    return false;
  }
  out = DecodedRecord{};
  out.content_hash = f[2];
  std::uint64_t nlinks = 0;
  std::uint64_t drained = 0;
  std::uint64_t engine = 0;
  ScenarioResult& row = out.row;
  bool ok = parse_u64(f[3], out.index) && parse_u64(f[4], row.bt_baseline) &&
            parse_u64(f[5], row.bt_ordered) && parse_f64(f[6], row.reduction) &&
            parse_f64(f[7], row.energy_baseline_pj) &&
            parse_f64(f[8], row.energy_pj) &&
            parse_f64(f[9], row.power_baseline_mw) &&
            parse_f64(f[10], row.power_mw) && parse_u64(f[11], row.cycles) &&
            parse_u64(f[12], row.packets) && parse_u64(f[13], row.flits) &&
            parse_u64(f[14], row.peak_backlog) &&
            parse_f64(f[15], row.avg_latency) &&
            parse_f64(f[16], row.avg_hops) && parse_u64(f[17], drained) &&
            parse_u64(f[18], engine) &&
            parse_u64(f[19], row.sim.cycles_stepped) &&
            parse_u64(f[20], row.sim.idle_cycles_skipped) &&
            parse_u64(f[21], row.sim.components_stepped) &&
            parse_u64(f[22], row.sim.components_skipped) &&
            parse_u64(f[23], nlinks);
  if (!ok || drained > 1 || engine > 2) {
    error = "malformed measurement field";
    return false;
  }
  row.drained = drained == 1;
  row.sim.engine = static_cast<noc::SimEngine>(engine);
  if (f.size() != kFixed + 8 * nlinks) {
    error = "link-row count disagrees with the field count";
    return false;
  }
  row.links.resize(nlinks);
  for (std::uint64_t i = 0; i < nlinks; ++i) {
    const std::size_t base = 24 + 8 * i;
    hw::LinkEnergyRow& link = row.links[i];
    std::uint64_t kind = 0;
    ok = parse_i32(f[base], link.link_id) && parse_u64(f[base + 1], kind) &&
         parse_i32(f[base + 2], link.info.src) &&
         parse_i32(f[base + 3], link.info.dst) &&
         parse_i32(f[base + 4], link.info.src_port) &&
         parse_u64(f[base + 5], link.flits) &&
         parse_u64(f[base + 6], link.transitions) &&
         parse_f64(f[base + 7], link.energy_pj);
    if (!ok || kind > 3) {
      error = "malformed link field in link row " + std::to_string(i);
      return false;
    }
    link.info.kind = static_cast<noc::LinkKind>(kind);
  }
  if (!unescape(f[kFixed + 8 * nlinks - 2], row.error)) {
    error = "malformed escape in error field";
    return false;
  }
  return true;
}

ScenarioCache::ScenarioCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
      throw std::runtime_error("ScenarioCache: cannot create cache_dir '" +
                               dir_ + "': " + ec.message());
  }
}

std::string ScenarioCache::entry_path(const std::string& hash) const {
  return dir_ + "/" + hash + ".row";
}

std::optional<ScenarioResult> ScenarioCache::lookup(const ScenarioSpec& spec,
                                                    const std::string& hash) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(hash);
    if (it != memory_.end()) {
      ++hits_;
      ScenarioResult row = it->second;
      row.spec = spec;
      return row;
    }
  }
  if (dir_.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return std::nullopt;
  }
  const std::string path = entry_path(hash);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return std::nullopt;
  }
  std::string header;
  std::string line;
  std::string detail;
  DecodedRecord decoded;
  bool ok = static_cast<bool>(std::getline(in, header)) &&
            static_cast<bool>(std::getline(in, line));
  if (!ok) {
    detail = "truncated entry (missing header or record line)";
  } else if (header != kCacheHeader) {
    detail = "unrecognized header '" + header + "'";
  } else if (!decode_result_record(line, decoded, detail)) {
    // detail already set
  } else if (decoded.content_hash != hash) {
    detail = "record carries content hash " + decoded.content_hash +
             " but the entry is addressed as " + hash;
  } else {
    decoded.row.spec = spec;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
    memory_.emplace(hash, decoded.row);
    return decoded.row;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  diagnostics_.push_back("scenario cache entry " + path + ": record 1: " +
                         detail + " — entry ignored (will re-simulate)");
  return std::nullopt;
}

void ScenarioCache::store(const std::string& hash, const ScenarioResult& row) {
  if (!dir_.empty()) {
    static std::atomic<std::uint64_t> counter{0};
    const std::string path = entry_path(hash);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    {
      std::ofstream out(tmp, std::ios::binary);
      if (!out)
        throw std::runtime_error("ScenarioCache: cannot open " + tmp);
      out << kCacheHeader << '\n'
          << encode_result_record(hash, 0, row) << '\n';
      if (!out)
        throw std::runtime_error("ScenarioCache: write failed for " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("ScenarioCache: cannot publish entry " + path);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  memory_[hash] = row;
  ++stores_;
}

void ScenarioCache::insert_memory(const std::string& hash,
                                  const ScenarioResult& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  memory_[hash] = row;
}

std::size_t ScenarioCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ScenarioCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ScenarioCache::stores() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}

std::vector<std::string> ScenarioCache::take_diagnostics() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(diagnostics_, {});
}

}  // namespace nocbt::sim
