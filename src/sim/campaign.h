#pragma once
// Campaign planning layer: the declarative sweep description and its
// deterministic expansion into seeded scenarios, plus the result row type
// every downstream layer exchanges.
//
// A CampaignSpec is the cross product
//   generators x formats x modes x meshes x windows x replicates
// over a base ScenarioSpec that supplies every non-grid knob. Each expanded
// scenario gets a deterministic seed derived from the campaign root seed
// and its *mode-independent* grid position (its traffic stream), so every
// ordering-mode row of one grid point injects the byte-identical
// pre-ordering schedule and mode deltas measure the ordering alone.
//
// The execution core is layered on top of this file, one seam per unit:
//   sim/scenario_runner.h   — run one scenario (both ordering variants)
//   sim/scenario_cache.h    — content-addressed persisted ScenarioResults
//   sim/run_journal.h       — append-only checkpoint/resume journal
//   sim/campaign_executor.h — sharded parallel sweep over the expansion
//   sim/campaign_report.h   — ASCII / CSV / JSON / heatmap / profile output
// Front-ends include the seams they drive; nothing here depends on them.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dnn/sequential.h"
#include "dnn/tensor.h"
#include "hw/energy_model.h"
#include "noc/sim_profiler.h"
#include "sim/scenario.h"

namespace nocbt::sim {

/// One mesh geometry of the grid (MC count only matters for kModel).
struct MeshSpec {
  std::int32_t rows = 4;
  std::int32_t cols = 4;
  std::int32_t mcs = 2;
};

/// Parse "4x4", "8x8mc4" (case-insensitive 'x'/"mc"). Throws on junk and
/// on dimensions beyond 4096 (the node count must fit comfortably in
/// int32 arithmetic).
[[nodiscard]] MeshSpec parse_mesh_spec(const std::string& s);
[[nodiscard]] std::string to_string(const MeshSpec& mesh);

/// The canonical scenario name for one grid point, e.g.
/// "uniform/fx8/O2/4x4mc2/w64". Every grid axis appears — even axes the
/// workload ignores — so names are unique across an expansion (expand()
/// additionally appends "/rN" when replicates > 1). Consumers that look
/// rows up by name (bench/fig12_noc_sizes) build names through this
/// helper rather than re-deriving the layout.
[[nodiscard]] std::string scenario_name(GeneratorKind generator,
                                        DataFormat format,
                                        ordering::OrderingMode mode,
                                        const MeshSpec& mesh,
                                        std::uint32_t window);

/// Hooks for model workloads: build the (trained) model / the inference
/// input for a seed. Called once per scenario run, possibly concurrently —
/// factories must be safe to invoke from multiple threads.
struct ModelHooks {
  std::function<dnn::Sequential(std::uint64_t seed)> model;
  std::function<dnn::Tensor(std::uint64_t seed)> input;
  /// Stable fingerprint of what the factories build (e.g.
  /// "builtin-lenet-v1"). Model scenarios are only content-addressable —
  /// cacheable and journalable — when this is non-empty, because the
  /// lambdas themselves cannot be hashed; leave it empty for ad-hoc hooks
  /// and those scenarios simply always re-simulate.
  std::string id;
};

/// Declarative sweep description.
struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t root_seed = 42;

  std::vector<GeneratorKind> generators{GeneratorKind::kUniform};
  std::vector<DataFormat> formats{DataFormat::kFloat32};
  std::vector<ordering::OrderingMode> modes{
      ordering::OrderingMode::kSeparated};
  std::vector<MeshSpec> meshes{MeshSpec{}};
  std::vector<std::uint32_t> windows{64};
  std::uint32_t replicates = 1;  ///< independent seeds per grid point

  ScenarioSpec base;  ///< non-grid knobs (traffic volume, distribution, ...)
  ModelHooks hooks;   ///< required iff generators contains kModel

  /// The fully-expanded, deterministically-seeded scenario list, in grid
  /// order (generator-major, replicate-minor).
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
};

/// Measurements of one scenario. `error` is non-empty when the scenario
/// threw (the campaign keeps going; the row reports the failure).
struct ScenarioResult {
  ScenarioSpec spec;
  std::uint64_t bt_baseline = 0;  ///< in-scope BT under O0 ordering
  std::uint64_t bt_ordered = 0;   ///< in-scope BT under spec.mode
  double reduction = 0.0;         ///< 1 - ordered/baseline (0 when baseline 0)
  /// Measured link energy/power at the spec's pJ point and clock
  /// (hw::EnergyModel over the recorded BT counts; §V-C units). Powers
  /// average each variant's transitions over that variant's own cycles.
  double energy_baseline_pj = 0.0;
  double energy_pj = 0.0;          ///< ordered-run link energy
  double power_baseline_mw = 0.0;
  double power_mw = 0.0;           ///< ordered-run average link power
  std::uint64_t cycles = 0;       ///< drain time of the ordered run
  std::uint64_t packets = 0;      ///< packets delivered (ordered run)
  std::uint64_t flits = 0;        ///< flits delivered (ordered run)
  std::uint64_t peak_backlog = 0; ///< max total source-queue depth observed
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  bool drained = false;           ///< false = hit the max_cycles stall guard
  /// Step-loop profile of the ordered run (deterministic engine counters:
  /// cycles stepped vs. idle-skipped, component steps run vs. skipped).
  noc::SimProfile sim;
  /// Host wall-clock of each variant run, in milliseconds. NOT
  /// deterministic — excluded from operator==, from the golden-compared
  /// CSV/JSON reports, and from the persisted cache/journal records
  /// (cached rows replay with 0 here); surfaced via write_profile_csv
  /// only.
  double wall_ms_baseline = 0.0;
  double wall_ms_ordered = 0.0;
  /// Per-link measurements of the ordered run (every monitored link, in
  /// link-id order) — the rows of the heatmap CSV.
  std::vector<hw::LinkEnergyRow> links;
  std::string error;
};

[[nodiscard]] bool operator==(const ScenarioResult& a, const ScenarioResult& b);

/// How the executor obtained each row of a sweep — the observability the
/// cache/resume machinery is tested and CI-gated through.
struct ExecutionStats {
  std::size_t grid_total = 0;    ///< scenarios in the full expansion
  std::size_t assigned = 0;      ///< scenarios in this process's shard
  std::size_t simulated = 0;     ///< rows actually run by the engines
  std::size_t cache_hits = 0;    ///< rows served by the scenario cache
  std::size_t journal_hits = 0;  ///< rows skipped via the resume journal
  /// Non-fatal diagnostics (corrupt cache/journal records, each naming the
  /// file and offending record). Front-ends print these to stderr.
  std::vector<std::string> warnings;
};

struct CampaignResult {
  /// Executed rows in grid order. A full (unsharded) run carries one row
  /// per expanded scenario; a shard carries only its assigned subset —
  /// merge_campaign (sim/run_journal.h) reassembles the full sweep.
  std::vector<ScenarioResult> rows;
  ExecutionStats stats;
};

}  // namespace nocbt::sim
