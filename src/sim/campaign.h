#pragma once
// Campaign runner: parameter-grid expansion over scenarios, a simple
// fixed-pool parallel executor, and report generation (ASCII table, CSV,
// JSON).
//
// A CampaignSpec is the cross product
//   generators x formats x modes x meshes x windows x replicates
// over a base ScenarioSpec that supplies every non-grid knob. Each expanded
// scenario gets a deterministic seed derived from the campaign root seed
// and its *mode-independent* grid position (its traffic stream), so every
// ordering-mode row of one grid point injects the byte-identical
// pre-ordering schedule and mode deltas measure the ordering alone.
// Results are bit-identical regardless of how many worker threads execute
// the sweep — each worker owns a private noc::Network and the only shared
// state is an immutable per-stream schedule, generated once per campaign
// and reused across the stream's mode rows.
//
// Every scenario is measured twice through identical injection schedules:
// once with O0 (baseline) payload ordering and once with the scenario's
// ordering mode, yielding the BT reduction the paper reports. Model
// scenarios run full inferences through NocDnaPlatform instead, which is
// how bench/fig12_noc_sizes reproduces its paper figure through this
// engine.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dnn/sequential.h"
#include "dnn/tensor.h"
#include "hw/energy_model.h"
#include "noc/sim_profiler.h"
#include "sim/scenario.h"

namespace nocbt::sim {

/// One mesh geometry of the grid (MC count only matters for kModel).
struct MeshSpec {
  std::int32_t rows = 4;
  std::int32_t cols = 4;
  std::int32_t mcs = 2;
};

/// Parse "4x4", "8x8mc4" (case-insensitive 'x'/"mc"). Throws on junk and
/// on dimensions beyond 4096 (the node count must fit comfortably in
/// int32 arithmetic).
[[nodiscard]] MeshSpec parse_mesh_spec(const std::string& s);
[[nodiscard]] std::string to_string(const MeshSpec& mesh);

/// The canonical scenario name for one grid point, e.g.
/// "uniform/fx8/O2/4x4mc2/w64". Every grid axis appears — even axes the
/// workload ignores — so names are unique across an expansion (expand()
/// additionally appends "/rN" when replicates > 1). Consumers that look
/// rows up by name (bench/fig12_noc_sizes) build names through this
/// helper rather than re-deriving the layout.
[[nodiscard]] std::string scenario_name(GeneratorKind generator,
                                        DataFormat format,
                                        ordering::OrderingMode mode,
                                        const MeshSpec& mesh,
                                        std::uint32_t window);

/// Hooks for model workloads: build the (trained) model / the inference
/// input for a seed. Called once per scenario run, possibly concurrently —
/// factories must be safe to invoke from multiple threads.
struct ModelHooks {
  std::function<dnn::Sequential(std::uint64_t seed)> model;
  std::function<dnn::Tensor(std::uint64_t seed)> input;
};

/// Declarative sweep description.
struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t root_seed = 42;

  std::vector<GeneratorKind> generators{GeneratorKind::kUniform};
  std::vector<DataFormat> formats{DataFormat::kFloat32};
  std::vector<ordering::OrderingMode> modes{
      ordering::OrderingMode::kSeparated};
  std::vector<MeshSpec> meshes{MeshSpec{}};
  std::vector<std::uint32_t> windows{64};
  std::uint32_t replicates = 1;  ///< independent seeds per grid point

  ScenarioSpec base;  ///< non-grid knobs (traffic volume, distribution, ...)
  ModelHooks hooks;   ///< required iff generators contains kModel

  /// The fully-expanded, deterministically-seeded scenario list, in grid
  /// order (generator-major, replicate-minor).
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
};

/// Measurements of one scenario. `error` is non-empty when the scenario
/// threw (the campaign keeps going; the row reports the failure).
struct ScenarioResult {
  ScenarioSpec spec;
  std::uint64_t bt_baseline = 0;  ///< in-scope BT under O0 ordering
  std::uint64_t bt_ordered = 0;   ///< in-scope BT under spec.mode
  double reduction = 0.0;         ///< 1 - ordered/baseline (0 when baseline 0)
  /// Measured link energy/power at the spec's pJ point and clock
  /// (hw::EnergyModel over the recorded BT counts; §V-C units). Powers
  /// average each variant's transitions over that variant's own cycles.
  double energy_baseline_pj = 0.0;
  double energy_pj = 0.0;          ///< ordered-run link energy
  double power_baseline_mw = 0.0;
  double power_mw = 0.0;           ///< ordered-run average link power
  std::uint64_t cycles = 0;       ///< drain time of the ordered run
  std::uint64_t packets = 0;      ///< packets delivered (ordered run)
  std::uint64_t flits = 0;        ///< flits delivered (ordered run)
  std::uint64_t peak_backlog = 0; ///< max total source-queue depth observed
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  bool drained = false;           ///< false = hit the max_cycles stall guard
  /// Step-loop profile of the ordered run (deterministic engine counters:
  /// cycles stepped vs. idle-skipped, component steps run vs. skipped).
  noc::SimProfile sim;
  /// Host wall-clock of each variant run, in milliseconds. NOT
  /// deterministic — excluded from operator== and from the golden-compared
  /// CSV/JSON reports; surfaced via write_profile_csv only.
  double wall_ms_baseline = 0.0;
  double wall_ms_ordered = 0.0;
  /// Per-link measurements of the ordered run (every monitored link, in
  /// link-id order) — the rows of the heatmap CSV.
  std::vector<hw::LinkEnergyRow> links;
  std::string error;
};

[[nodiscard]] bool operator==(const ScenarioResult& a, const ScenarioResult& b);

struct CampaignResult {
  std::vector<ScenarioResult> rows;  ///< same order as CampaignSpec::expand()
};

struct RunnerConfig {
  unsigned threads = 1;
  /// Invoked after each scenario completes (serialized by the runner, so
  /// the callback needs no locking of its own).
  std::function<void(const ScenarioResult&, std::size_t done,
                     std::size_t total)>
      on_result;
};

/// Run one already-expanded scenario (both ordering variants).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const ModelHooks& hooks);

/// Expand a single-point campaign (every grid axis holding exactly one
/// value, replicates == 1) and run its only scenario — the co-optimizer's
/// inner-loop scorer. The result is byte-identical to the matching row of
/// run_campaign on the same spec: expansion derives the same name and
/// seed, and the runner's schedule cache only shares materialization, not
/// measurements. Throws std::invalid_argument when the grid expands to
/// more than one scenario.
[[nodiscard]] ScenarioResult run_single_scenario(const CampaignSpec& spec);

/// Expand and execute the whole grid on `threads` workers.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const RunnerConfig& runner = {});

/// Render results as the repo's standard ASCII table.
[[nodiscard]] std::string render_table(const CampaignResult& result);

/// Write one CSV row per scenario via common/csv. Returns rows written.
std::size_t write_csv_report(const std::string& path,
                             const CampaignSpec& campaign,
                             const CampaignResult& result);

/// Step-loop profile CSV: one row per scenario with the engine, wall-clock
/// per variant, deterministic step counters and the component skip ratio.
/// Kept separate from write_csv_report/json_report so the wall-clock
/// columns never enter the byte-compared golden fixtures. Returns rows
/// written.
std::size_t write_profile_csv(const std::string& path,
                              const CampaignSpec& campaign,
                              const CampaignResult& result);

/// Per-link "heatmap" CSV: one row per monitored link per scenario
/// (scenario, link id, kind, src -> dst, flits, BT, energy in pJ), for
/// hotspot analysis across meshes. Returns rows written.
std::size_t write_link_heatmap_csv(const std::string& path,
                                   const CampaignSpec& campaign,
                                   const CampaignResult& result);

/// Machine-readable report: campaign metadata + one JSON object per
/// scenario. Deliberately excludes wall-clock and thread-count fields so
/// the report is byte-identical for identical specs at any parallelism.
[[nodiscard]] std::string json_report(const CampaignSpec& campaign,
                                      const CampaignResult& result);

/// json_report straight to a file. Throws std::runtime_error on I/O failure.
void write_json_report(const std::string& path, const CampaignSpec& campaign,
                       const CampaignResult& result);

}  // namespace nocbt::sim
