#pragma once
// Config-driven traffic generators: the workload half of the scenario
// campaign engine. A TrafficGenerator turns a ScenarioSpec into a stream of
// timed injection requests — (cycle, src, dst, weight/input value patterns)
// — that the campaign runner flitizes (with O0/O1/O2 ordering applied) and
// drives through a noc::Network.
//
// Geometry patterns are the classic NoC suite (uniform-random, transpose,
// bit-complement, hotspot, bursty sources) plus a replay generator that
// feeds a recorded PacketTrace (PacketTrace::load_csv) back through the
// network — non-DNN traffic the accelerator pipeline cannot express.
// Payload values are drawn from a configurable distribution and encoded
// with the existing float-32 / fixed-point codecs, so the popcount profile
// the ordering exploits is under experiment control.
//
// Determinism contract: a generator's output is a pure function of the
// ScenarioSpec (including its seed). Cycles are non-decreasing.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/value_codec.h"
#include "common/rng.h"
#include "noc/trace.h"
#include "sim/scenario.h"

namespace nocbt::sim {

/// One packet worth of traffic: inject at `cycle` (or as soon after as the
/// source queue allows), carrying `pairs` (weight, input) value pairs.
struct InjectionRequest {
  std::uint64_t cycle = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::vector<std::uint32_t> weights;  ///< wire patterns, natural order
  std::vector<std::uint32_t> inputs;   ///< same length as weights
};

/// Pull-based generator interface. next() returns requests with
/// non-decreasing cycles until the workload is exhausted.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;
  virtual std::optional<InjectionRequest> next() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Draws payload values from the spec's distribution and encodes them to
/// wire patterns with the format's codec (identity for float-32, Q-format
/// quantization for fixed-8).
class ValueSource {
 public:
  explicit ValueSource(const ScenarioSpec& spec);

  [[nodiscard]] std::uint32_t draw_pattern(Rng& rng);
  [[nodiscard]] std::vector<std::uint32_t> draw_patterns(Rng& rng,
                                                         std::size_t count);

 private:
  ValueDist dist_;
  double dist_a_;
  double dist_b_;
  accel::ValueCodec codec_;
};

/// Build the generator a scenario asks for. Throws std::invalid_argument on
/// a spec the generator kind cannot satisfy (e.g. transpose on a
/// non-square mesh, replay without a trace file).
[[nodiscard]] std::unique_ptr<TrafficGenerator> make_generator(
    const ScenarioSpec& spec);

/// Drain the spec's generator into a payload-carrying PacketTrace: one
/// event per request, with the pre-ordering (weight, input) wire patterns
/// recorded verbatim. Replaying the dumped trace under the same mesh,
/// format and window reproduces the schedule bit-exactly (the replay
/// generator re-injects recorded payloads), so a replayed campaign matches
/// the directly-generated one byte for byte.
[[nodiscard]] noc::PacketTrace record_schedule(const ScenarioSpec& spec);

}  // namespace nocbt::sim
