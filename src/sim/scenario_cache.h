#pragma once
// Content-addressed scenario cache: a stable 128-bit hash over every
// campaign-shaping knob of a ScenarioSpec (plus its derived per-scenario
// seed) maps to a persisted ScenarioResult record, so an identical
// spec+seed never re-simulates — across reruns, across shards, and across
// front-ends (campaign sweeps and co-optimizer searches share hits).
//
// Hash-key domain: every ScenarioSpec field that shapes the measurement —
// workload, mesh, codec, ordering mode, traffic volume and distribution,
// energy point, engine choice, seed, stall guard — plus the ModelHooks
// fingerprint for model workloads and the *bytes* of the trace file for
// replay workloads (a path alone could alias different recordings). The
// scenario/campaign *names* and every output-side field are excluded:
// names are presentation (re-attached from the live expansion on lookup),
// and wall-clock/profile numbers are results, not identity — wall-clock is
// nondeterministic by nature, and the deterministic profile counters are
// determined by the hashed engine choice, so hashing either would only
// split identical measurements across keys.
//
// Record format: one line, comma-separated, doubles emitted via
// std::to_chars shortest-round-trip so a decoded row is bit-identical to
// the in-memory one, terminated by an FNV-1a checksum field. A corrupted
// or truncated record is rejected with a diagnostic naming the file and
// the offending record, counted as a miss, and overwritten by the next
// store — a damaged cache degrades to re-simulation, never to wrong rows.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/campaign.h"

namespace nocbt::sim {

/// A scenario's content address, or why it cannot have one.
struct ContentKey {
  bool cacheable = false;
  std::string hash;     ///< 32 hex chars when cacheable
  std::string why_not;  ///< reason when not (unhashable hooks, missing trace)
};

/// Content address of one expanded scenario. `hooks_id` is the
/// ModelHooks::id fingerprint — required (non-empty) for kModel scenarios,
/// ignored otherwise. kReplay scenarios hash the trace file's bytes; an
/// unreadable trace makes the scenario uncacheable (validation will name
/// the file when the scenario actually runs).
[[nodiscard]] ContentKey scenario_content_key(const ScenarioSpec& spec,
                                              const std::string& hooks_id);

/// Fingerprint of everything a campaign's row set depends on: the ordered
/// expansion's scenario names and content hashes. Two CampaignSpecs with
/// equal hashes produce byte-identical report rows; the resume journal
/// refuses to mix rows across differing hashes.
[[nodiscard]] std::string campaign_content_hash(const CampaignSpec& spec);

/// Serialize one completed row as a single self-checking record line (no
/// trailing newline). `index` is the row's position in the campaign
/// expansion (0 for free-standing cache entries).
[[nodiscard]] std::string encode_result_record(const std::string& content_hash,
                                               std::uint64_t index,
                                               const ScenarioResult& row);

struct DecodedRecord {
  std::string content_hash;
  std::uint64_t index = 0;
  /// Measurements only — `row.spec` is default-constructed; the caller
  /// re-attaches the live spec (ScenarioCache::lookup does this for you).
  ScenarioResult row;
};

/// Parse a record line. Returns false with `error` describing the defect
/// (truncation, checksum mismatch, malformed field) — never throws on bad
/// input, so callers decide whether a bad record is fatal.
[[nodiscard]] bool decode_result_record(const std::string& line,
                                        DecodedRecord& out,
                                        std::string& error);

/// The persisted store: one record file per content hash under `dir`
/// (created on construction), fronted by an in-memory layer. With an empty
/// `dir` the cache is memory-only — the co-optimizer's default memoization.
/// Thread-safe; concurrent stores of the same hash are benign (atomic
/// temp-file + rename, last writer wins with identical bytes).
class ScenarioCache {
 public:
  explicit ScenarioCache(std::string dir = "");

  /// The cached row for `hash`, with `spec` re-attached, or nullopt on a
  /// miss. Corrupt entries are diagnosed (see take_diagnostics) and
  /// treated as misses.
  [[nodiscard]] std::optional<ScenarioResult> lookup(const ScenarioSpec& spec,
                                                     const std::string& hash);

  /// Persist `row` under `hash` (memory layer + record file when backed).
  void store(const std::string& hash, const ScenarioResult& row);

  /// Preload the memory layer only (journal warm-up) — no disk write.
  void insert_memory(const std::string& hash, const ScenarioResult& row);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t stores() const;

  /// Drain accumulated corruption diagnostics, each naming the file and
  /// offending record.
  [[nodiscard]] std::vector<std::string> take_diagnostics();

 private:
  [[nodiscard]] std::string entry_path(const std::string& hash) const;

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, ScenarioResult> memory_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t stores_ = 0;
  std::vector<std::string> diagnostics_;
};

}  // namespace nocbt::sim
