#pragma once
// Scenario execution seam: run one expanded scenario (both ordering
// variants) through whichever backend its spec selects. This is the unit
// below the executor — it knows nothing about grids, shards, journals or
// persistent caching; it measures exactly one ScenarioSpec.
//
// Every scenario is measured twice through identical injection schedules:
// once with O0 (baseline) payload ordering and once with the scenario's
// ordering mode, yielding the BT reduction the paper reports. Model
// scenarios run full inferences through NocDnaPlatform instead, which is
// how bench/fig12_noc_sizes reproduces its paper figure through this
// engine. Synthetic scenarios under engine=auto are first evaluated by the
// zero-load analytical backend and keep that result when it is proven
// exact, falling back to the requested cycle engine otherwise.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/data_format.h"
#include "sim/campaign.h"
#include "sim/traffic_gen.h"

namespace nocbt::sim {

class ScenarioCache;  // sim/scenario_cache.h

/// A generator's fully-materialized injection schedule: the pre-ordering
/// traffic every variant of a scenario (baseline, ordered, analytical or
/// cycle) replays. Immutable once built, so workers share it freely.
using InjectionSchedule = std::vector<InjectionRequest>;

/// A materialized schedule plus the derived inputs of batched payload
/// ordering: the per-stream value concatenations and arrival-order
/// sequence-BT hints that let one OrderingStrategy::order_batch call (one
/// kernel pass per candidate ordering) score every window of the
/// scenario. The request list is immutable after materialization; the
/// derived block is built lazily on the first ordered variant and then
/// shared — across both variants of a scenario, and, through the campaign
/// ScheduleCache, across every mode row of a grid point.
struct SharedSchedule {
  InjectionSchedule requests;

  struct Derived {
    /// True when every request carries equally-sized weight/input windows
    /// (the last may be ragged), i.e. the concatenations below form a
    /// valid order_batch layout. False routes through the per-request
    /// ordering path with identical results.
    bool uniform = false;
    std::size_t window_values = 0;
    std::vector<std::uint32_t> weights_concat;
    std::vector<std::uint32_t> inputs_concat;
    /// Arrival-order sequence BT per window — the order_batch hint that
    /// chain-class strategies would otherwise recompute per mode row.
    std::vector<std::uint64_t> weights_bt;
    std::vector<std::uint64_t> inputs_bt;
  };

  /// Derived block, built exactly once (thread-safe). The schedule cache
  /// key pins the format, so every caller passes the same one.
  [[nodiscard]] const Derived& derived(DataFormat format) const;

 private:
  mutable std::once_flag once_;
  mutable Derived derived_;
};

using SharedSchedulePtr = std::shared_ptr<const SharedSchedule>;

/// Campaign-scoped schedule store: grid points that share every
/// payload-relevant knob (all mode rows of one traffic stream — expand()
/// derives their seeds mode-independently) generate their schedule once,
/// and with it the SharedSchedule::Derived ordering inputs. Thread-safe;
/// the first worker to request a key materializes it while later workers
/// block on the shared future. Entries are dropped after `uses_per_key`
/// lookups (one per mode row) to bound campaign memory.
class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t uses_per_key)
      : uses_per_key_(uses_per_key < 1 ? 1 : uses_per_key) {}

  [[nodiscard]] SharedSchedulePtr get(const ScenarioSpec& spec);

 private:
  struct Entry {
    std::shared_future<SharedSchedulePtr> future;
    std::size_t remaining = 0;
  };
  std::size_t uses_per_key_;
  std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Run one already-expanded scenario (both ordering variants).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const ModelHooks& hooks);

/// run_scenario sharing a campaign-scoped ScheduleCache (may be null) —
/// the executor's per-row entry point.
[[nodiscard]] ScenarioResult run_scenario_shared(const ScenarioSpec& spec,
                                                 const ModelHooks& hooks,
                                                 ScheduleCache* schedules);

/// Expand a single-point campaign (every grid axis holding exactly one
/// value, replicates == 1) and run its only scenario — the co-optimizer's
/// inner-loop scorer. The result is byte-identical to the matching row of
/// run_campaign on the same spec: expansion derives the same name and
/// seed, and the runner's schedule cache only shares materialization, not
/// measurements. Throws std::invalid_argument when the grid expands to
/// more than one scenario.
[[nodiscard]] ScenarioResult run_single_scenario(const CampaignSpec& spec);

/// One cached single-scenario evaluation: the row plus how it was
/// obtained, so callers (opt::Evaluator, warm-rerun gates) can count real
/// simulations against cache hits.
struct SingleRunOutcome {
  ScenarioResult row;
  bool cache_hit = false;      ///< served from `cache` without simulating
  std::string content_hash;    ///< empty when the scenario is uncacheable
};

/// run_single_scenario through a content-addressed ScenarioCache (may be
/// null — then it always simulates). On a miss the fresh row is stored
/// back, so co-optimizer searches and campaign sweeps share hits.
/// `schedules` (may be null) shares materialized schedules and their
/// derived batched-ordering inputs across calls — opt::Evaluator passes
/// its own so candidates differing only in ordering mode reuse one
/// schedule and one set of arrival-BT hints.
[[nodiscard]] SingleRunOutcome run_single_scenario_cached(
    const CampaignSpec& spec, ScenarioCache* cache,
    ScheduleCache* schedules = nullptr);

}  // namespace nocbt::sim
