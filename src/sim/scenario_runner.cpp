#include "sim/scenario_runner.h"

#include <stdexcept>
#include <utility>

#include "accel/accel_config.h"
#include "accel/flitization.h"
#include "accel/platform.h"
#include "noc/analytical_engine.h"
#include "noc/network.h"
#include "ordering/bt_kernels.h"
#include "ordering/strategy.h"
#include "sim/scenario_cache.h"

namespace nocbt::sim {

namespace {

/// Per-request flitized payload batch: payloads[i] is what request i
/// injects. Built once per variant and replayed by the analytical attempt
/// and, on fallback, the cycle engine.
using PayloadBatch = std::vector<std::vector<BitVec>>;

/// Flitize one request under the given ordering mode: encode order, pack
/// half-half (weights right, inputs left, no bias — pure traffic). The
/// mode's registered OrderingStrategy supplies the permutation, so every
/// strategy in the registry is sweepable through the campaign grid.
std::vector<BitVec> build_payloads(const InjectionRequest& req,
                                   DataFormat format,
                                   const accel::FlitLayout& layout,
                                   ordering::OrderingMode mode) {
  using ordering::apply_permutation;
  std::span<const std::uint32_t> weights(req.weights);
  std::span<const std::uint32_t> inputs(req.inputs);
  std::vector<std::uint32_t> w_store;
  std::vector<std::uint32_t> in_store;
  if (!ordering::mode_is_baseline(mode)) {
    const ordering::OrderingStrategy& strategy = ordering::mode_strategy(mode);
    if (ordering::mode_is_separated(mode)) {
      const auto w_perm = strategy.order(weights, format);
      const auto in_perm = strategy.order(inputs, format);
      w_store =
          apply_permutation(weights, std::span<const std::uint32_t>(w_perm));
      in_store =
          apply_permutation(inputs, std::span<const std::uint32_t>(in_perm));
    } else {
      // Affiliated pairing: one permutation keyed on the weights moves
      // (weight, input) pairs together.
      const auto perm = strategy.order(weights, format);
      w_store = apply_permutation(weights, std::span<const std::uint32_t>(perm));
      in_store = apply_permutation(inputs, std::span<const std::uint32_t>(perm));
    }
    weights = w_store;
    inputs = in_store;
  }
  return accel::pack_half_half(inputs, weights, std::nullopt, layout);
}

/// Flitize the whole schedule for `mode` in one batched ordering pass:
/// every request's windows are concatenated and scored through one
/// OrderingStrategy::order_batch call (one BtKernelBackend pass per
/// candidate ordering) instead of one-to-two kernel calls per request.
/// Payloads are byte-identical to looping build_payloads — order_batch
/// returns exactly what order() returns per window, and the equivalence
/// suite pins it. Baseline mode and non-uniform window layouts take the
/// per-request path.
PayloadBatch build_payload_batch(const SharedSchedule& sched,
                                 DataFormat format,
                                 const accel::FlitLayout& layout,
                                 ordering::OrderingMode mode) {
  const InjectionSchedule& reqs = sched.requests;
  PayloadBatch payloads;
  payloads.reserve(reqs.size());
  if (!ordering::mode_is_baseline(mode) && !reqs.empty()) {
    const SharedSchedule::Derived& d = sched.derived(format);
    if (d.uniform) {
      const ordering::OrderingStrategy& strategy =
          ordering::mode_strategy(mode);
      const bool separated = ordering::mode_is_separated(mode);
      const auto w_flat = strategy.order_batch(d.weights_concat, format,
                                               d.window_values, d.weights_bt);
      // Affiliated pairing reuses the weight permutation for the inputs.
      const auto in_flat =
          separated ? strategy.order_batch(d.inputs_concat, format,
                                           d.window_values, d.inputs_bt)
                    : std::vector<std::uint32_t>{};
      std::vector<std::uint32_t> w_store;
      std::vector<std::uint32_t> in_store;
      std::size_t start = 0;
      for (const InjectionRequest& req : reqs) {
        const std::size_t len = req.weights.size();
        w_store.resize(len);
        in_store.resize(len);
        const std::uint32_t* w_perm = w_flat.data() + start;
        const std::uint32_t* in_perm =
            (separated ? in_flat.data() : w_flat.data()) + start;
        for (std::size_t k = 0; k < len; ++k) {
          w_store[k] = req.weights[w_perm[k]];
          in_store[k] = req.inputs[in_perm[k]];
        }
        payloads.push_back(
            accel::pack_half_half(in_store, w_store, std::nullopt, layout));
        start += len;
      }
      return payloads;
    }
  }
  for (const InjectionRequest& req : reqs)
    payloads.push_back(build_payloads(req, format, layout, mode));
  return payloads;
}

SharedSchedulePtr materialize_schedule(const ScenarioSpec& spec) {
  auto gen = make_generator(spec);
  auto schedule = std::make_shared<SharedSchedule>();
  while (auto req = gen->next()) schedule->requests.push_back(std::move(*req));
  return schedule;
}

/// Fingerprint of every spec field the synthetic generators read. Mode,
/// engine and name are deliberately absent: scenarios differing only in
/// those produce byte-identical schedules and share one materialization.
std::string schedule_key(const ScenarioSpec& spec) {
  std::string key = to_string(spec.generator);
  const auto add = [&key](const std::string& s) {
    key += '|';
    key += s;
  };
  add(std::to_string(spec.rows));
  add(std::to_string(spec.cols));
  add(to_string(spec.format));
  add(std::to_string(spec.fixed_bits));
  add(std::to_string(spec.values_per_flit));
  add(std::to_string(spec.window));
  add(std::to_string(spec.packets));
  add(std::to_string(spec.injection_rate));
  add(to_string(spec.value_dist));
  add(std::to_string(spec.dist_a));
  add(std::to_string(spec.dist_b));
  add(std::to_string(spec.hotspot_fraction));
  add(std::to_string(spec.hotspot_node));
  add(std::to_string(spec.burst_len));
  add(std::to_string(spec.burst_gap));
  add(spec.trace_path);
  add(std::to_string(spec.num_mcs));
  add(std::to_string(spec.model_seed));
  add(spec.model);
  add(spec.placement);
  add(std::to_string(spec.tiles_per_layer));
  add(std::to_string(spec.seed));
  return key;
}

/// Everything one network run yields.
struct VariantOutcome {
  std::uint64_t bt = 0;
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  std::uint64_t peak_backlog = 0;
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  bool drained = false;
  noc::SimProfile sim;   ///< step-loop counters (deterministic)
  double wall_ms = 0.0;  ///< host wall-clock of the run (nondeterministic)
  std::vector<noc::LinkObservation> links;  ///< frozen per-link counters
};

/// Drive a synthetic generator's schedule through a fresh network,
/// injecting the prebuilt per-request payloads (consumed — each request's
/// payloads are moved into the network). `want_links` gates the per-link
/// snapshot: only the ordered run's links are reported, so the baseline
/// variant skips copying every link counter of a large mesh.
VariantOutcome run_traffic_variant(const ScenarioSpec& spec, bool want_links,
                                   const InjectionSchedule& schedule,
                                   PayloadBatch&& payloads) {
  const noc::WallTimer timer;
  noc::Network net(spec.noc_config());
  const std::int32_t nodes = spec.rows * spec.cols;
  for (std::int32_t node = 0; node < nodes; ++node)
    net.set_sink(node, nullptr);  // stats-only sink

  std::size_t next_req = 0;
  const auto* pending = next_req < schedule.size() ? &schedule[next_req]
                                                   : nullptr;

  VariantOutcome out;
  // The stall guard counts *active* steps, not the absolute clock: idle
  // gaps in a sparse schedule are skipped via advance_idle, so a bursty or
  // replayed workload with long quiet periods cannot trip it.
  std::uint64_t active_steps = 0;
  while (pending || !net.idle()) {
    if (active_steps > spec.max_cycles) {  // drained stays false
      out.sim = net.stats().sim;
      out.wall_ms = timer.millis();
      return out;
    }
    if (pending && pending->cycle > net.cycle() && net.idle()) {
      net.advance_idle(pending->cycle - net.cycle());
    }
    while (pending && pending->cycle <= net.cycle()) {
      net.inject(pending->src, pending->dst, std::move(payloads[next_req]));
      ++next_req;
      pending = next_req < schedule.size() ? &schedule[next_req] : nullptr;
    }
    net.step();
    ++active_steps;
    std::uint64_t backlog = 0;
    for (std::int32_t node = 0; node < nodes; ++node)
      backlog += net.injection_backlog(node);
    if (backlog > out.peak_backlog) out.peak_backlog = backlog;
  }

  out.bt = net.bt().total();
  out.cycles = net.cycle();
  out.packets = net.stats().packets_delivered;
  out.flits = net.stats().flits_delivered;
  out.avg_latency = net.stats().packet_latency.mean();
  out.avg_hops = net.stats().packet_hops.mean();
  out.drained = true;
  out.sim = net.stats().sim;
  if (want_links) out.links = net.bt().snapshot();
  out.wall_ms = timer.millis();
  return out;
}

/// Full DNN inference through the accelerator platform (model workloads).
VariantOutcome run_model_variant(const ScenarioSpec& spec,
                                 ordering::OrderingMode mode,
                                 const ModelHooks& hooks, bool want_links) {
  if (!hooks.model || !hooks.input)
    throw std::invalid_argument(
        "run_scenario: model workload needs CampaignSpec::hooks");
  const noc::WallTimer timer;
  accel::AccelConfig cfg = accel::AccelConfig::defaults(
      spec.format, mode, spec.rows, spec.cols, spec.num_mcs);
  cfg.noc.num_vcs = spec.num_vcs;
  cfg.noc.vc_buffer_depth = spec.vc_buffer_depth;
  cfg.noc.engine = spec.engine;
  dnn::Sequential model = hooks.model(spec.model_seed);
  accel::NocDnaPlatform platform(cfg, model);
  accel::InferenceResult result = platform.run(hooks.input(spec.input_seed));

  VariantOutcome out;
  out.bt = result.bt_total;
  out.cycles = result.total_cycles;
  out.packets = result.noc_stats.packets_delivered;
  out.flits = result.noc_stats.flits_delivered;
  out.avg_latency = result.noc_stats.packet_latency.mean();
  out.avg_hops = result.noc_stats.packet_hops.mean();
  out.drained = true;
  out.sim = result.noc_stats.sim;
  if (want_links) out.links = std::move(result.links);
  out.wall_ms = timer.millis();
  return out;
}

/// Evaluate a synthetic schedule through the zero-load analytical backend.
/// Returns true when the result is exact (schedule proven congestion-free)
/// with `out` filled; false when the schedule is contended or the config
/// unsupported, with `why_not` explaining — the caller then replays the
/// same materialized schedule on a cycle engine.
bool run_analytical_variant(const ScenarioSpec& spec, bool want_links,
                            const InjectionSchedule& schedule,
                            const PayloadBatch& payloads,
                            VariantOutcome& out, std::string& why_not) {
  const noc::WallTimer timer;
  noc::AnalyticalEngine eng(spec.noc_config());
  for (std::size_t i = 0; i < schedule.size(); ++i)
    eng.inject(schedule[i].cycle, schedule[i].src, schedule[i].dst,
               payloads[i]);
  if (!eng.run()) {
    why_not = eng.contention_detail();
    return false;
  }
  out.bt = eng.bt().total();
  out.cycles = eng.cycle();
  out.packets = eng.stats().packets_delivered;
  out.flits = eng.stats().flits_delivered;
  // Congestion-free means every packet is VC-assigned the cycle it is
  // enqueued, so the cycle engines' post-step backlog samples are all 0.
  out.peak_backlog = 0;
  out.avg_latency = eng.stats().packet_latency.mean();
  out.avg_hops = eng.stats().packet_hops.mean();
  out.drained = true;
  out.sim = eng.stats().sim;
  if (want_links) out.links = eng.bt().snapshot();
  out.wall_ms = timer.millis();
  return true;
}

VariantOutcome run_variant(const ScenarioSpec& spec,
                           ordering::OrderingMode mode,
                           const ModelHooks& hooks, bool want_links,
                           const SharedSchedule* schedule) {
  // Model workloads inject reactively and always need a cycle engine
  // (validate() rejects forcing analytical on them); every other workload
  // replays the caller's materialized schedule.
  ScenarioSpec cyc = spec;
  if (cyc.engine == noc::SimEngine::kAnalytical)
    cyc.engine = noc::SimEngine::kActiveSet;
  if (spec.generator == GeneratorKind::kModel)
    return run_model_variant(cyc, mode, hooks, want_links);

  // Flitize the whole schedule once — one batched ordering pass whose
  // payloads both the analytical attempt and its cycle-engine fallback
  // replay, so a fallback never repeats the ordering work.
  const accel::FlitLayout layout{spec.values_per_flit, value_bits(spec.format)};
  PayloadBatch payloads =
      build_payload_batch(*schedule, spec.format, layout, mode);
  if (spec.engine_auto || spec.engine == noc::SimEngine::kAnalytical) {
    VariantOutcome out;
    std::string why_not;
    if (run_analytical_variant(spec, want_links, schedule->requests, payloads,
                               out, why_not))
      return out;
    if (!spec.engine_auto)
      throw std::runtime_error(
          "engine=analytical cannot evaluate this schedule exactly: " +
          why_not + " (engine=auto falls back to a cycle engine instead)");
  }
  // Cycle-engine path; under auto-selection kAnalytical is a policy, not a
  // steppable backend, so the fallback runs active-set.
  return run_traffic_variant(cyc, want_links, schedule->requests,
                             std::move(payloads));
}

}  // namespace

const SharedSchedule::Derived& SharedSchedule::derived(
    DataFormat format) const {
  std::call_once(once_, [&] {
    Derived d;
    const std::size_t wv =
        requests.empty() ? 0 : requests.front().weights.size();
    if (wv > 0) {
      // order_batch needs every window full except possibly the last, and
      // affiliated pairing needs matching weight/input lengths per request.
      d.uniform = true;
      for (std::size_t i = 0; i < requests.size() && d.uniform; ++i) {
        const InjectionRequest& r = requests[i];
        const bool last = i + 1 == requests.size();
        d.uniform = r.weights.size() == r.inputs.size() &&
                    (last ? !r.weights.empty() && r.weights.size() <= wv
                          : r.weights.size() == wv);
      }
    }
    if (d.uniform) {
      d.window_values = wv;
      std::size_t total = 0;
      for (const InjectionRequest& r : requests) total += r.weights.size();
      d.weights_concat.reserve(total);
      d.inputs_concat.reserve(total);
      for (const InjectionRequest& r : requests) {
        d.weights_concat.insert(d.weights_concat.end(), r.weights.begin(),
                                r.weights.end());
        d.inputs_concat.insert(d.inputs_concat.end(), r.inputs.begin(),
                               r.inputs.end());
      }
      d.weights_bt = ordering::sequence_bt_batch(d.weights_concat, format, wv);
      d.inputs_bt = ordering::sequence_bt_batch(d.inputs_concat, format, wv);
    }
    derived_ = std::move(d);
  });
  return derived_;
}

SharedSchedulePtr ScheduleCache::get(const ScenarioSpec& spec) {
  const std::string key = schedule_key(spec);
  std::promise<SharedSchedulePtr> mine;
  std::shared_future<SharedSchedulePtr> fut;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      owner = true;
      fut = mine.get_future().share();
      entries_.emplace(key, Entry{fut, uses_per_key_});
    } else {
      fut = it->second.future;
    }
  }
  if (owner) {
    try {
      mine.set_value(materialize_schedule(spec));
    } catch (...) {
      mine.set_exception(std::current_exception());
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && --it->second.remaining == 0)
      entries_.erase(it);  // shared_future keeps the state alive
  }
  return fut.get();  // rethrows a materialization failure to every sharer
}

ScenarioResult run_scenario_shared(const ScenarioSpec& spec,
                                   const ModelHooks& hooks,
                                   ScheduleCache* schedules) {
  ScenarioResult result;
  result.spec = spec;
  try {
    spec.validate();
    // Materialize the pre-ordering schedule once: both variants (and the
    // analytical attempt plus its cycle-engine fallback) replay the same
    // request list, and with a cache every mode row of this traffic stream
    // shares it too — including the derived batched-ordering inputs.
    SharedSchedulePtr schedule;
    if (spec.generator != GeneratorKind::kModel)
      schedule =
          schedules ? schedules->get(spec) : materialize_schedule(spec);
    // Per-link rows come from the ordered run only, so the baseline
    // variant skips the snapshot — unless it *is* the ordered run.
    const bool baseline_is_ordered =
        spec.mode == ordering::OrderingMode::kBaseline;
    const VariantOutcome baseline =
        run_variant(spec, ordering::OrderingMode::kBaseline, hooks,
                    baseline_is_ordered, schedule.get());
    const VariantOutcome ordered =
        baseline_is_ordered
            ? baseline
            : run_variant(spec, spec.mode, hooks, true, schedule.get());
    result.bt_baseline = baseline.bt;
    result.bt_ordered = ordered.bt;
    result.reduction =
        baseline.bt > 0 ? 1.0 - static_cast<double>(ordered.bt) /
                                    static_cast<double>(baseline.bt)
                        : 0.0;
    const hw::EnergyModel energy(hw::EnergyModelConfig{
        spec.energy_per_transition_pj, spec.frequency_mhz});
    result.energy_baseline_pj = energy.energy_pj(baseline.bt);
    result.energy_pj = energy.energy_pj(ordered.bt);
    result.power_baseline_mw = energy.power_mw(baseline.bt, baseline.cycles);
    result.power_mw = energy.power_mw(ordered.bt, ordered.cycles);
    result.links = energy.annotate(ordered.links);
    result.cycles = ordered.cycles;
    result.packets = ordered.packets;
    result.flits = ordered.flits;
    result.peak_backlog = ordered.peak_backlog;
    result.avg_latency = ordered.avg_latency;
    result.avg_hops = ordered.avg_hops;
    result.drained = baseline.drained && ordered.drained;
    result.sim = ordered.sim;
    result.wall_ms_baseline = baseline.wall_ms;
    result.wall_ms_ordered = ordered.wall_ms;
    if (!result.drained)
      result.error = "scenario '" + spec.name +
                     "' hit the max_cycles stall guard (" +
                     std::to_string(spec.max_cycles) +
                     " active cycles) before draining";
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const ModelHooks& hooks) {
  return run_scenario_shared(spec, hooks, nullptr);
}

ScenarioResult run_single_scenario(const CampaignSpec& spec) {
  return run_single_scenario_cached(spec, nullptr).row;
}

SingleRunOutcome run_single_scenario_cached(const CampaignSpec& spec,
                                            ScenarioCache* cache,
                                            ScheduleCache* schedules) {
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  if (scenarios.size() != 1)
    throw std::invalid_argument(
        "run_single_scenario: campaign '" + spec.name + "' expands to " +
        std::to_string(scenarios.size()) +
        " scenarios (every grid axis must hold exactly one value and "
        "replicates must be 1)");
  const ScenarioSpec& scenario = scenarios.front();

  SingleRunOutcome out;
  if (cache) {
    const ContentKey key = scenario_content_key(scenario, spec.hooks.id);
    if (key.cacheable) {
      out.content_hash = key.hash;
      if (auto cached = cache->lookup(scenario, key.hash)) {
        out.row = std::move(*cached);
        out.cache_hit = true;
        return out;
      }
      out.row = run_scenario_shared(scenario, spec.hooks, schedules);
      cache->store(key.hash, out.row);
      return out;
    }
  }
  out.row = run_scenario_shared(scenario, spec.hooks, schedules);
  return out;
}

}  // namespace nocbt::sim
