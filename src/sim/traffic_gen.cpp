#include "sim/traffic_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "accel/flitization.h"
#include "accel/mapping.h"
#include "dnn/models.h"
#include "dnn/zoo.h"
#include "noc/trace.h"
#include "place/placement.h"
#include "place/schedule.h"

namespace nocbt::sim {

namespace {

/// Mean inter-arrival time implied by a network-wide packets/cycle rate.
std::uint64_t draw_interarrival(Rng& rng, double rate) {
  return static_cast<std::uint64_t>(rng.uniform(0.0, 2.0 / rate));
}

/// dst drawn uniformly from [0, nodes) \ {src}.
std::int32_t draw_other_node(Rng& rng, std::int32_t nodes, std::int32_t src) {
  auto d = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 2));
  if (d >= src) ++d;
  return d;
}

/// Shared scaffolding: packet budget, clock, payload drawing.
class SyntheticGenerator : public TrafficGenerator {
 public:
  explicit SyntheticGenerator(const ScenarioSpec& spec)
      : spec_(spec), rng_(spec.seed), values_(spec) {}

  std::optional<InjectionRequest> next() final {
    if (emitted_ >= spec_.packets) return std::nullopt;
    InjectionRequest req;
    req.cycle = clock_;
    pick_endpoints(req.src, req.dst);
    req.weights = values_.draw_patterns(rng_, spec_.window);
    req.inputs = values_.draw_patterns(rng_, spec_.window);
    ++emitted_;
    advance_clock();
    return req;
  }

 protected:
  /// Choose src/dst for the next packet (may use rng()).
  virtual void pick_endpoints(std::int32_t& src, std::int32_t& dst) = 0;

  /// Move the clock to the next packet's earliest injection cycle.
  virtual void advance_clock() {
    clock_ += draw_interarrival(rng_, spec_.injection_rate);
  }

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::int32_t nodes() const noexcept {
    return spec_.rows * spec_.cols;
  }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  std::uint64_t clock_ = 0;

 private:
  ScenarioSpec spec_;
  Rng rng_;
  ValueSource values_;
  std::uint32_t emitted_ = 0;
};

class UniformGenerator final : public SyntheticGenerator {
 public:
  using SyntheticGenerator::SyntheticGenerator;
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  void pick_endpoints(std::int32_t& src, std::int32_t& dst) override {
    src = static_cast<std::int32_t>(rng().uniform_int(0, nodes() - 1));
    dst = draw_other_node(rng(), nodes(), src);
  }
};

/// Round-robins over the nodes that actually send under a fixed
/// permutation pattern (transpose / bit-complement).
class PermutationGenerator final : public SyntheticGenerator {
 public:
  PermutationGenerator(const ScenarioSpec& spec, bool transpose)
      : SyntheticGenerator(spec), transpose_(transpose) {
    for (std::int32_t node = 0; node < nodes(); ++node)
      if (pattern_dst(node) != node) sources_.push_back(node);
    if (sources_.empty())
      throw std::invalid_argument(
          "PermutationGenerator: every node maps to itself");
  }

  [[nodiscard]] std::string name() const override {
    return transpose_ ? "transpose" : "bitcomp";
  }

 private:
  [[nodiscard]] std::int32_t pattern_dst(std::int32_t src) const {
    if (!transpose_) return nodes() - 1 - src;
    const std::int32_t r = src / spec().cols;
    const std::int32_t c = src % spec().cols;
    return c * spec().cols + r;
  }

  void pick_endpoints(std::int32_t& src, std::int32_t& dst) override {
    src = sources_[cursor_];
    dst = pattern_dst(src);
    cursor_ = (cursor_ + 1) % sources_.size();
  }

  bool transpose_;
  std::vector<std::int32_t> sources_;
  std::size_t cursor_ = 0;
};

class HotspotGenerator final : public SyntheticGenerator {
 public:
  explicit HotspotGenerator(const ScenarioSpec& spec)
      : SyntheticGenerator(spec),
        hotspot_(spec.hotspot_node >= 0
                     ? spec.hotspot_node
                     : (spec.rows / 2) * spec.cols + spec.cols / 2) {}

  [[nodiscard]] std::string name() const override { return "hotspot"; }

 private:
  void pick_endpoints(std::int32_t& src, std::int32_t& dst) override {
    const bool to_spot = rng().flip(spec().hotspot_fraction);
    if (to_spot) {
      dst = hotspot_;
      src = draw_other_node(rng(), nodes(), dst);
    } else {
      src = static_cast<std::int32_t>(rng().uniform_int(0, nodes() - 1));
      dst = draw_other_node(rng(), nodes(), src);
    }
  }

  std::int32_t hotspot_;
};

class BurstGenerator final : public SyntheticGenerator {
 public:
  using SyntheticGenerator::SyntheticGenerator;
  [[nodiscard]] std::string name() const override { return "burst"; }

 private:
  void pick_endpoints(std::int32_t& src, std::int32_t& dst) override {
    src = static_cast<std::int32_t>(rng().uniform_int(0, nodes() - 1));
    dst = draw_other_node(rng(), nodes(), src);
  }

  void advance_clock() override {
    // burst_len back-to-back packets, then burst_gap idle cycles.
    if (++in_burst_ < spec().burst_len) {
      ++clock_;
    } else {
      in_burst_ = 0;
      clock_ += spec().burst_gap;
    }
  }

  std::uint32_t in_burst_ = 0;
};

/// Re-injects a recorded PacketTrace: each event becomes one packet at its
/// original inject_cycle with its original src/dst and flit count. Events
/// that carry recorded payload words (a trace dumped by record_schedule)
/// re-inject them verbatim — bit-exact replay; legacy traces without
/// payload columns get values synthesized from the scenario's value
/// distribution instead.
class ReplayGenerator final : public TrafficGenerator {
 public:
  explicit ReplayGenerator(const ScenarioSpec& spec)
      : spec_(spec), rng_(spec.seed), values_(spec) {
    const noc::PacketTrace trace = noc::PacketTrace::load_csv(spec.trace_path);
    events_ = trace.events();
    std::stable_sort(events_.begin(), events_.end(),
                     [](const noc::TraceEvent& a, const noc::TraceEvent& b) {
                       return a.inject_cycle < b.inject_cycle;
                     });
    const std::int32_t nodes = spec.rows * spec.cols;
    for (const auto& e : events_) {
      if (e.src < 0 || e.src >= nodes || e.dst < 0 || e.dst >= nodes)
        throw std::invalid_argument(
            "ReplayGenerator: trace node outside the " +
            std::to_string(spec.rows) + "x" + std::to_string(spec.cols) +
            " mesh (packet " + std::to_string(e.packet_id) + ")");
      if (e.num_flits < 1)
        throw std::invalid_argument("ReplayGenerator: zero-flit packet " +
                                    std::to_string(e.packet_id));
      if (e.has_payload()) {
        // Recorded pairs must still fill exactly num_flits flits under this
        // scenario's layout, or the replayed timing would diverge from the
        // recorded one.
        const auto pairs = static_cast<std::uint32_t>(e.weights.size());
        const std::uint32_t half = spec.values_per_flit / 2;
        if ((pairs + half - 1) / half != e.num_flits)
          throw std::invalid_argument(
              "ReplayGenerator: packet " + std::to_string(e.packet_id) +
              " records " + std::to_string(pairs) + " pairs but " +
              std::to_string(e.num_flits) + " flits — trace was dumped " +
              "under a different values_per_flit");
      }
    }
  }

  std::optional<InjectionRequest> next() override {
    if (cursor_ >= events_.size()) return std::nullopt;
    noc::TraceEvent& e = events_[cursor_++];
    InjectionRequest req;
    req.cycle = e.inject_cycle;
    req.src = e.src;
    req.dst = e.dst;
    if (e.has_payload()) {
      req.weights = std::move(e.weights);
      req.inputs = std::move(e.inputs);
      return req;
    }
    // Exactly num_flits flits: half-half packing with no bias makes
    // flits_needed(pairs) == ceil(pairs / half) == num_flits.
    const std::size_t pairs =
        static_cast<std::size_t>(e.num_flits) * (spec_.values_per_flit / 2);
    req.weights = values_.draw_patterns(rng_, pairs);
    req.inputs = values_.draw_patterns(rng_, pairs);
    return req;
  }

  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  ScenarioSpec spec_;
  Rng rng_;
  ValueSource values_;
  std::vector<noc::TraceEvent> events_;
  std::size_t cursor_ = 0;
};

/// Placed model-zoo workload: builds the scenario's zoo model (model_seed),
/// shards its weighted layers across PE tiles (src/place, spec.placement
/// policy, spec.tiles_per_layer), and injects the derived MC->PE
/// weight/ifmap and PE->PE partial-sum schedule. Weight payloads are the
/// model's real trained-like weights; activation payloads come from the
/// scenario's value distribution (spec.seed).
class PlacementGenerator final : public TrafficGenerator {
 public:
  explicit PlacementGenerator(const ScenarioSpec& spec)
      : rng_(spec.seed), values_(spec) {
    Rng model_rng(spec.model_seed);
    dnn::Sequential model = dnn::build_zoo_model(spec.model, model_rng);
    Rng fill_rng(spec.model_seed + 1);
    dnn::fill_weights_trained_like(model, fill_rng);

    const noc::MeshShape mesh(spec.rows, spec.cols);
    const accel::NodeRoles roles = accel::assign_roles(mesh, spec.num_mcs);
    const place::Placement placed = place::place_model(
        model, dnn::zoo_model_spec(spec.model).input, mesh, roles,
        place::get_policy(spec.placement), spec.tiles_per_layer);

    place::TrafficConfig traffic;
    traffic.pairs_per_packet = spec.window;
    traffic.layout =
        accel::FlitLayout{spec.values_per_flit, value_bits(spec.format)};
    traffic.weight_codec =
        spec.format == DataFormat::kFixed8
            ? accel::ValueCodec::fixed_calibrated(spec.fixed_bits,
                                                  model.weight_values())
            : accel::ValueCodec::float32();
    traffic.draw_activation = [this] { return values_.draw_pattern(rng_); };
    schedule_ = place::build_schedule(placed, traffic);
  }

  std::optional<InjectionRequest> next() override {
    if (cursor_ >= schedule_.packets.size()) return std::nullopt;
    place::FlowPacket& pkt = schedule_.packets[cursor_++];
    InjectionRequest req;
    req.cycle = pkt.cycle;
    req.src = pkt.src;
    req.dst = pkt.dst;
    req.weights = std::move(pkt.weights);
    req.inputs = std::move(pkt.inputs);
    return req;
  }

  [[nodiscard]] std::string name() const override { return "placement"; }

 private:
  Rng rng_;
  ValueSource values_;
  place::PlacedSchedule schedule_;
  std::size_t cursor_ = 0;
};

}  // namespace

ValueSource::ValueSource(const ScenarioSpec& spec)
    : dist_(spec.value_dist),
      dist_a_(spec.dist_a),
      dist_b_(spec.dist_b),
      codec_(accel::ValueCodec::float32()) {
  if (dist_ == ValueDist::kUniform && !(dist_a_ < dist_b_))
    throw std::invalid_argument("ValueSource: uniform needs dist_a < dist_b");
  if (dist_ != ValueDist::kUniform && dist_b_ <= 0.0)
    throw std::invalid_argument("ValueSource: scale (dist_b) must be > 0");
  if (spec.format == DataFormat::kFixed8) {
    // Fix the quantizer range from the distribution's practical support so
    // every scenario of a campaign shares the same codec (no per-stream
    // calibration — patterns must not depend on the drawn sample).
    double range = 1.0;
    switch (dist_) {
      case ValueDist::kUniform:
        range = std::max(std::fabs(dist_a_), std::fabs(dist_b_));
        break;
      case ValueDist::kNormal:
        range = std::fabs(dist_a_) + 4.0 * dist_b_;
        break;
      case ValueDist::kLaplace:
        range = 8.0 * dist_b_;
        break;
    }
    if (range <= 0.0) range = 1.0;
    const auto max_code = static_cast<double>((1 << (spec.fixed_bits - 1)) - 1);
    codec_ = accel::ValueCodec::fixed(
        FixedPointCodec(spec.fixed_bits, range / max_code));
  }
}

std::uint32_t ValueSource::draw_pattern(Rng& rng) {
  double v = 0.0;
  switch (dist_) {
    case ValueDist::kUniform: v = rng.uniform(dist_a_, dist_b_); break;
    case ValueDist::kNormal: v = rng.normal(dist_a_, dist_b_); break;
    case ValueDist::kLaplace: v = rng.laplace(dist_b_); break;
  }
  return codec_.encode(static_cast<float>(v));
}

std::vector<std::uint32_t> ValueSource::draw_patterns(Rng& rng,
                                                      std::size_t count) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(draw_pattern(rng));
  return out;
}

std::unique_ptr<TrafficGenerator> make_generator(const ScenarioSpec& spec) {
  spec.validate();
  switch (spec.generator) {
    case GeneratorKind::kUniform:
      return std::make_unique<UniformGenerator>(spec);
    case GeneratorKind::kTranspose:
      return std::make_unique<PermutationGenerator>(spec, /*transpose=*/true);
    case GeneratorKind::kBitComplement:
      return std::make_unique<PermutationGenerator>(spec, /*transpose=*/false);
    case GeneratorKind::kHotspot:
      return std::make_unique<HotspotGenerator>(spec);
    case GeneratorKind::kBurst:
      return std::make_unique<BurstGenerator>(spec);
    case GeneratorKind::kReplay:
      return std::make_unique<ReplayGenerator>(spec);
    case GeneratorKind::kPlacement:
      return std::make_unique<PlacementGenerator>(spec);
    case GeneratorKind::kModel:
      break;
  }
  throw std::invalid_argument(
      "make_generator: '" + to_string(spec.generator) +
      "' is not a synthetic generator (model workloads run through "
      "NocDnaPlatform in the campaign runner)");
}

noc::PacketTrace record_schedule(const ScenarioSpec& spec) {
  const std::unique_ptr<TrafficGenerator> gen = make_generator(spec);
  const accel::FlitLayout layout{spec.values_per_flit,
                                 value_bits(spec.format)};
  const noc::MeshShape mesh(spec.rows, spec.cols);
  noc::PacketTrace trace;
  std::uint64_t id = 0;
  while (auto req = gen->next()) {
    noc::TraceEvent e;
    e.packet_id = id++;
    e.src = req->src;
    e.dst = req->dst;
    e.num_flits = accel::flits_needed(
        static_cast<std::uint32_t>(req->weights.size()), /*has_bias=*/false,
        layout);
    e.inject_cycle = req->cycle;
    e.hops = static_cast<std::uint16_t>(mesh.manhattan(req->src, req->dst));
    e.eject_cycle = req->cycle + e.hops + e.num_flits;
    e.weights = std::move(req->weights);
    e.inputs = std::move(req->inputs);
    trace.record(e);
  }
  return trace;
}

}  // namespace nocbt::sim
