#include "sim/campaign_config.h"

#include <charconv>
#include <fstream>
#include <stdexcept>

#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "hw/energy_model.h"

namespace nocbt::sim {

namespace {

/// get_int with a range gate, so a negative or absurd value fails with a
/// clear message instead of wrapping through an unsigned cast.
std::int64_t get_bounded(const Options& opts, const std::string& key,
                         std::int64_t fallback, std::int64_t lo,
                         std::int64_t hi) {
  const std::int64_t v = opts.get_int(key, fallback);
  if (v < lo || v > hi)
    throw std::invalid_argument("option '" + key + "' must be in [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(v));
  return v;
}

/// Shortest decimal string that parses back (stod) to exactly `v` — the
/// emission format every double-valued key uses, so an emitted spec file
/// reconstructs bit-identical doubles.
std::string shortest_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{})
    throw std::invalid_argument("shortest_double: cannot format value");
  return std::string(buf, ptr);
}

/// Comma-join applying `render` to each element; rejects an empty axis
/// (split_csv_list would read it back as no values at all).
template <typename T, typename Fn>
std::string join_axis(const std::vector<T>& values, const char* key, Fn render) {
  if (values.empty())
    throw std::invalid_argument("campaign_config_text: grid axis '" +
                                std::string(key) + "' is empty");
  std::string out;
  for (const T& v : values) {
    if (!out.empty()) out += ',';
    out += render(v);
  }
  return out;
}

}  // namespace

const std::set<std::string>& campaign_option_keys() {
  static const std::set<std::string> keys{
      "name",       "seed",        "replicates",  "generators",
      "formats",    "modes",       "meshes",      "windows",
      "packets",    "rate",        "vcs",         "vc_depth",
      "slots",      "fixed_bits",  "dist",        "dist_a",
      "dist_b",     "hotspot_fraction",           "hotspot_node",
      "burst_len",  "burst_gap",   "trace",       "model_seed",
      "input_seed", "max_cycles",  "energy_pj",   "freq_mhz",
      "engine",     "model",       "placement",   "tiles_per_layer"};
  return keys;
}

const std::set<std::string>& campaign_service_option_keys() {
  static const std::set<std::string> keys{"cache_dir", "resume", "shard"};
  return keys;
}

void check_campaign_keys(const Options& opts,
                         const std::set<std::string>& extra) {
  const std::set<std::string>& known = campaign_option_keys();
  for (const auto& [key, value] : opts.values())
    if (known.count(key) == 0 && extra.count(key) == 0) {
      std::string valid;
      for (const std::string& k : known) valid += k + " ";
      for (const std::string& k : extra) valid += k + " ";
      if (!valid.empty()) valid.pop_back();
      throw std::invalid_argument("unknown option '" + key +
                                  "' (valid keys: " + valid + ")");
    }
}

ExecutionConfig execution_from_options(const Options& opts) {
  ExecutionConfig exec;
  exec.cache_dir = opts.get_string("cache_dir", "");
  exec.journal_path = opts.get_string("resume", "");
  const std::string shard = opts.get_string("shard", "");
  if (!shard.empty()) exec.shard = parse_shard_spec(shard);
  return exec;
}

CampaignSpec campaign_from_options(const Options& opts) {
  CampaignSpec camp;
  camp.name = opts.get_string("name", "campaign");
  camp.root_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  camp.replicates =
      static_cast<std::uint32_t>(get_bounded(opts, "replicates", 1, 1, 1024));

  camp.generators.clear();
  for (const auto& g : split_csv_list(opts.get_string("generators", "uniform")))
    camp.generators.push_back(parse_generator_kind(g));
  camp.formats.clear();
  for (const auto& f :
       split_csv_list(opts.get_string("formats", "float32,fixed8")))
    camp.formats.push_back(parse_data_format(f));
  camp.modes =
      ordering::parse_ordering_mode_list(opts.get_string("modes", "O0,O1,O2"));
  camp.meshes.clear();
  for (const auto& m : split_csv_list(opts.get_string("meshes", "4x4")))
    camp.meshes.push_back(parse_mesh_spec(m));
  camp.windows.clear();
  for (const auto& w : split_csv_list(opts.get_string("windows", "64"))) {
    std::int64_t parsed = -1;
    try {
      parsed = parse_int_strict(w);
    } catch (const std::exception&) {
      parsed = -1;
    }
    if (parsed < 0 || parsed > 1'000'000)
      throw std::invalid_argument("windows entry '" + w +
                                  "' is not in [0, 1000000]");
    camp.windows.push_back(static_cast<std::uint32_t>(parsed));
  }

  ScenarioSpec& base = camp.base;
  base.packets = static_cast<std::uint32_t>(
      get_bounded(opts, "packets", 128, 1, 100'000'000));
  base.injection_rate = opts.get_double("rate", 0.25);
  base.num_vcs = static_cast<std::int32_t>(get_bounded(opts, "vcs", 4, 1, 64));
  base.vc_buffer_depth =
      static_cast<std::int32_t>(get_bounded(opts, "vc_depth", 4, 1, 1024));
  base.values_per_flit =
      static_cast<unsigned>(get_bounded(opts, "slots", 16, 2, 4096));
  base.fixed_bits =
      static_cast<unsigned>(get_bounded(opts, "fixed_bits", 8, 2, 8));
  base.value_dist = parse_value_dist(opts.get_string("dist", "laplace"));
  base.dist_a = opts.get_double(
      "dist_a", base.value_dist == ValueDist::kUniform ? -1.0 : 0.0);
  base.dist_b = opts.get_double(
      "dist_b", base.value_dist == ValueDist::kUniform ? 1.0 : 0.2);
  base.hotspot_fraction = opts.get_double("hotspot_fraction", 0.5);
  base.hotspot_node = static_cast<std::int32_t>(
      get_bounded(opts, "hotspot_node", -1, -1, 1 << 24));
  base.burst_len = static_cast<std::uint32_t>(
      get_bounded(opts, "burst_len", 8, 1, 1'000'000));
  base.burst_gap = static_cast<std::uint32_t>(
      get_bounded(opts, "burst_gap", 64, 0, 1'000'000'000));
  base.trace_path = opts.get_string("trace", "");
  base.energy_per_transition_pj =
      hw::parse_energy_point(opts.get_string("energy_pj", "innovus"));
  base.frequency_mhz = opts.get_double("freq_mhz", 125.0);
  if (!(base.frequency_mhz > 0.0))
    throw std::invalid_argument("option 'freq_mhz' must be positive");
  apply_engine_choice(base,
                      parse_engine_choice(opts.get_string("engine", "auto")));
  base.model_seed = static_cast<std::uint64_t>(opts.get_int("model_seed", 42));
  base.input_seed = static_cast<std::uint64_t>(opts.get_int("input_seed", 7));
  base.model = opts.get_string("model", "lenet");
  base.placement = opts.get_string("placement", "rowmajor");
  base.tiles_per_layer = static_cast<std::int32_t>(
      get_bounded(opts, "tiles_per_layer", 4, 1, 1 << 20));
  base.max_cycles = static_cast<std::uint64_t>(
      get_bounded(opts, "max_cycles", 5'000'000, 1, std::int64_t{1} << 62));

  // Model workload: a small trained-like LeNet (no training — the weight
  // distribution is what matters for BT). Heavyweight trained models go
  // through the library API instead (see bench/fig12_noc_sizes.cpp).
  camp.hooks.model = [](std::uint64_t seed) {
    Rng rng(seed);
    dnn::Sequential model = dnn::build_lenet(rng);
    Rng fill_rng(seed + 1);
    dnn::fill_weights_trained_like(model, fill_rng, 0.04);
    return model;
  };
  camp.hooks.input = [](std::uint64_t seed) {
    dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed);
    return data.sample(1).images;
  };
  // The fingerprint that makes these hooks content-addressable: bump it if
  // the factories above ever change what they build.
  camp.hooks.id = "builtin-lenet-v1";
  return camp;
}

std::string campaign_config_text(const CampaignSpec& spec) {
  const ScenarioSpec& base = spec.base;
  std::string out;
  out += "# nocbt campaign spec (emitted by campaign_config_text)\n";
  out += "# Re-run with: nocbt_campaign config=THIS_FILE\n";
  const auto kv = [&out](const char* key, const std::string& value) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  };
  kv("name", spec.name);
  kv("seed", std::to_string(spec.root_seed));
  kv("replicates", std::to_string(spec.replicates));
  kv("generators", join_axis(spec.generators, "generators",
                             [](GeneratorKind g) { return to_string(g); }));
  kv("formats", join_axis(spec.formats, "formats",
                          [](DataFormat f) { return to_string(f); }));
  kv("modes", join_axis(spec.modes, "modes", [](ordering::OrderingMode m) {
       return ordering::short_mode_name(m);
     }));
  kv("meshes", join_axis(spec.meshes, "meshes",
                         [](const MeshSpec& m) { return to_string(m); }));
  kv("windows", join_axis(spec.windows, "windows", [](std::uint32_t w) {
       return std::to_string(w);
     }));
  kv("packets", std::to_string(base.packets));
  kv("rate", shortest_double(base.injection_rate));
  kv("vcs", std::to_string(base.num_vcs));
  kv("vc_depth", std::to_string(base.vc_buffer_depth));
  kv("slots", std::to_string(base.values_per_flit));
  kv("fixed_bits", std::to_string(base.fixed_bits));
  kv("dist", to_string(base.value_dist));
  kv("dist_a", shortest_double(base.dist_a));
  kv("dist_b", shortest_double(base.dist_b));
  kv("hotspot_fraction", shortest_double(base.hotspot_fraction));
  kv("hotspot_node", std::to_string(base.hotspot_node));
  kv("burst_len", std::to_string(base.burst_len));
  kv("burst_gap", std::to_string(base.burst_gap));
  // An empty trace path would parse back as "" anyway, but only replay
  // workloads read it — keep spec files for other generators free of it.
  if (!base.trace_path.empty()) kv("trace", base.trace_path);
  kv("model_seed", std::to_string(base.model_seed));
  kv("input_seed", std::to_string(base.input_seed));
  kv("model", base.model);
  kv("placement", base.placement);
  kv("tiles_per_layer", std::to_string(base.tiles_per_layer));
  kv("energy_pj", shortest_double(base.energy_per_transition_pj));
  kv("freq_mhz", shortest_double(base.frequency_mhz));
  kv("engine", to_string(EngineChoice{base.engine_auto, base.engine}));
  kv("max_cycles", std::to_string(base.max_cycles));
  return out;
}

void write_campaign_config(const std::string& path, const CampaignSpec& spec) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("write_campaign_config: cannot open " + path);
  out << campaign_config_text(spec);
  if (!out)
    throw std::runtime_error("write_campaign_config: write failed for " +
                             path);
}

}  // namespace nocbt::sim
