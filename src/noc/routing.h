#pragma once
// Mesh geometry and routing functions.
//
// Port numbering on every router: 0=East, 1=West, 2=North, 3=South, 4=Local.
// Coordinates: x grows eastward (column index), y grows southward (row
// index); node id = y * cols + x. The paper's NoC uses dimension-ordered X-Y
// routing (deadlock-free on a mesh); Y-X is provided for ablations.

#include <cstdint>
#include <stdexcept>

namespace nocbt::noc {

/// Router port indices. kLocal attaches the network interface.
enum Port : std::int32_t {
  kEast = 0,
  kWest = 1,
  kNorth = 2,
  kSouth = 3,
  kLocal = 4,
  kNumPorts = 5,
};

/// Which dimension-ordered routing to use.
enum class RoutingAlgorithm { kXY, kYX };

/// Integer coordinates of a mesh node.
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Geometry helper for an R x C mesh.
class MeshShape {
 public:
  MeshShape(std::int32_t rows, std::int32_t cols) : rows_(rows), cols_(cols) {
    if (rows < 1 || cols < 1)
      throw std::invalid_argument("MeshShape: rows/cols must be >= 1");
  }

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int32_t node_count() const noexcept { return rows_ * cols_; }

  [[nodiscard]] Coord coord_of(std::int32_t node) const noexcept {
    return Coord{node % cols_, node / cols_};
  }
  [[nodiscard]] std::int32_t node_at(Coord c) const noexcept {
    return c.y * cols_ + c.x;
  }
  [[nodiscard]] bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
  }

  /// Neighbor node through `port` (kEast..kSouth), or -1 at a mesh edge.
  [[nodiscard]] std::int32_t neighbor(std::int32_t node, Port port) const noexcept;

  /// Manhattan distance in hops between two nodes.
  [[nodiscard]] std::int32_t manhattan(std::int32_t a, std::int32_t b) const noexcept;

 private:
  std::int32_t rows_;
  std::int32_t cols_;
};

/// Opposite direction of a port (east<->west, north<->south).
[[nodiscard]] Port opposite(Port port);

/// Output port for a flit at `current` heading to `dst` under the given
/// dimension-ordered algorithm. Returns kLocal when current == dst.
[[nodiscard]] Port route_dimension_ordered(const MeshShape& shape,
                                           RoutingAlgorithm algorithm,
                                           std::int32_t current,
                                           std::int32_t dst);

}  // namespace nocbt::noc
