#pragma once
// Network: the assembled NoC.
//
// Owns the mesh of routers, all flit/credit channels, one network interface
// per node, the BT recorder tapping every physical link, and the transport
// statistics. This is the public entry point of the NoC library:
//
//   NocConfig cfg;                       // 4x4, 4 VCs, XY, 512-bit links
//   Network net(cfg);
//   net.set_sink(dst, [](Packet&& p, uint64_t cycle) { ... });
//   net.inject(src, dst, payloads);
//   net.run_until_idle();
//   net.bt().total();                    // accumulated bit transitions

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "noc/bt_recorder.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "noc/network_interface.h"
#include "noc/noc_config.h"
#include "noc/noc_stats.h"
#include "noc/router.h"
#include "noc/routing.h"

namespace nocbt::noc {

class Network {
 public:
  using PacketSink = NetworkInterface::PacketSink;

  explicit Network(const NocConfig& cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Install a delivery callback for packets arriving at `node`.
  void set_sink(std::int32_t node, PacketSink sink);

  /// Submit a packet. Each payload must be exactly `flit_payload_bits` wide;
  /// the packet enters `src`'s source queue this cycle. Returns the packet id.
  std::uint64_t inject(std::int32_t src, std::int32_t dst,
                       std::vector<BitVec> payloads);

  /// Advance the network by one cycle.
  void step();

  /// Step until no flit/credit/packet is anywhere in flight, or until
  /// `max_cycles` additional cycles have elapsed. Returns true if the
  /// network drained.
  bool run_until_idle(std::uint64_t max_cycles = 10'000'000);

  /// Advance the clock by `cycles` without stepping any component. Only
  /// legal while idle (throws std::logic_error otherwise): wires hold
  /// their state and no event can occur, so the jump is observationally
  /// exact — it lets sparse injection schedules skip dead time instead of
  /// grinding through millions of no-op steps.
  void advance_idle(std::uint64_t cycles);

  /// True when all routers, NIs and channels are empty.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] const MeshShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] const BtRecorder& bt() const noexcept { return bt_; }
  [[nodiscard]] BtRecorder& bt() noexcept { return bt_; }
  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }

  /// Packets queued at `node`'s NI, not yet assigned an injection VC.
  [[nodiscard]] std::size_t injection_backlog(std::int32_t node) const;

  /// Total flits buffered inside routers (diagnostics / livelock checks).
  [[nodiscard]] std::size_t buffered_flits() const noexcept;

 private:
  void build();
  Channel<Flit>* new_flit_channel(const LinkInfo& info);
  Channel<Credit>* new_credit_channel();

  NocConfig cfg_;
  MeshShape shape_;
  BtRecorder bt_;
  NocStats stats_;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_packet_id_ = 0;

  std::deque<Router> routers_;
  std::deque<NetworkInterface> nis_;
  std::deque<Channel<Flit>> flit_channels_;
  std::deque<Channel<Credit>> credit_channels_;
};

}  // namespace nocbt::noc
