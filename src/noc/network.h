#pragma once
// Network: the assembled NoC.
//
// Owns the mesh of routers, all flit/credit channels, one network interface
// per node, the BT recorder tapping every physical link, and the transport
// statistics. This is the public entry point of the NoC library:
//
//   NocConfig cfg;                       // 4x4, 4 VCs, XY, 512-bit links
//   Network net(cfg);
//   net.set_sink(dst, [](Packet&& p, uint64_t cycle) { ... });
//   net.inject(src, dst, payloads);
//   net.run_until_idle();
//   net.bt().total();                    // accumulated bit transitions
//
// Two step-loop engines share the identical component models
// (NocConfig::engine):
//
//   kActiveSet (default) — event-skipping worklist. step() visits only the
//   components registered as able to make progress: a component stays on
//   the worklist while its step() reports remaining internal state, and
//   quiescent components are woken by their channels exactly at the cycle
//   a pushed flit/credit arrives (a small timing wheel holds future
//   wakes). idle() is an O(1) check of the worklist and wheel counters.
//
//   kFullScan — the retained naive reference: every NI and router steps
//   every cycle, idle() scans the whole mesh. Differential suites pin the
//   active-set engine byte-identical (cycles, BT, delivery order, stats)
//   against it.
//
// Skipping is exact, not approximate: a skipped component is one whose
// step() would have been a no-op (all cross-component communication rides
// channels with >= 1 cycle latency, so a component with no internal state
// and no arriving item cannot act), and per-cycle component order is kept
// sorted (all NIs in node order, then all routers) so even floating-point
// statistic accumulation order matches the full scan.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "noc/bt_recorder.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "noc/network_interface.h"
#include "noc/noc_config.h"
#include "noc/noc_stats.h"
#include "noc/router.h"
#include "noc/routing.h"

namespace nocbt::noc {

class Network : private ChannelWaker {
 public:
  using PacketSink = NetworkInterface::PacketSink;

  explicit Network(const NocConfig& cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Install a delivery callback for packets arriving at `node`.
  void set_sink(std::int32_t node, PacketSink sink);

  /// Submit a packet. Each payload must be exactly `flit_payload_bits` wide;
  /// the packet enters `src`'s source queue this cycle. Returns the packet id.
  std::uint64_t inject(std::int32_t src, std::int32_t dst,
                       std::vector<BitVec> payloads);

  /// Advance the network by one cycle.
  void step();

  /// Step until no flit/credit/packet is anywhere in flight, or until
  /// `max_cycles` additional cycles have elapsed. Returns true if the
  /// network drained.
  bool run_until_idle(std::uint64_t max_cycles = 10'000'000);

  /// Advance the clock by `cycles` without stepping any component. Only
  /// legal while idle (throws std::logic_error otherwise): wires hold
  /// their state and no event can occur, so the jump is observationally
  /// exact — it lets sparse injection schedules skip dead time instead of
  /// grinding through millions of no-op steps.
  void advance_idle(std::uint64_t cycles);

  /// True when all routers, NIs and channels are empty. O(1) under the
  /// active-set engine; a full mesh scan under the full-scan reference.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] const MeshShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] const BtRecorder& bt() const noexcept { return bt_; }
  [[nodiscard]] BtRecorder& bt() noexcept { return bt_; }
  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }

  /// Packets queued at `node`'s NI, not yet assigned an injection VC.
  [[nodiscard]] std::size_t injection_backlog(std::int32_t node) const;

  /// Total flits buffered inside routers (diagnostics / livelock checks).
  [[nodiscard]] std::size_t buffered_flits() const noexcept;

  /// Components (NIs + routers) currently on the active worklist. Always
  /// the full component count under the full-scan reference.
  [[nodiscard]] std::size_t active_components() const noexcept;

 private:
  void build();
  Channel<Flit>* new_flit_channel(const LinkInfo& info, std::int32_t consumer);
  Channel<Credit>* new_credit_channel(std::int32_t consumer);

  // ---- active-set engine ----
  /// ChannelWaker: schedule component `comp` to step at `cycle` (the
  /// arrival cycle of an item just pushed into one of its input channels).
  void wake(std::int32_t comp, std::uint64_t cycle) override;
  /// Put `src`'s NI on the worklist after an inject() — mid-step, the NI is
  /// slotted into the current cycle iff the full scan would still reach it.
  void activate_ni(std::int32_t node);
  void step_active();
  void step_full_scan();
  [[nodiscard]] bool idle_full_scan() const noexcept;

  NocConfig cfg_;
  MeshShape shape_;
  BtRecorder bt_;
  NocStats stats_;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_packet_id_ = 0;

  std::deque<Router> routers_;
  std::deque<NetworkInterface> nis_;
  std::deque<Channel<Flit>> flit_channels_;
  std::deque<Channel<Credit>> credit_channels_;

  // Active-set state. Component ids: [0, n) = NI of node i, [n, 2n) =
  // router i, so a sorted worklist reproduces the full scan's "all NIs in
  // node order, then all routers" order exactly.
  bool active_engine_ = true;
  std::vector<std::int32_t> run_list_;   ///< components to step next step()
  std::vector<std::int32_t> next_list_;  ///< scratch: survivors of this step
  std::vector<std::uint8_t> scheduled_;  ///< comp is in run_list_/next_list_
  /// Timing wheel of future channel-arrival wakes, indexed by cycle modulo
  /// wheel size (channel_latency + 1 covers every reachable arrival).
  /// Entries may repeat a component; the merge into run_list_ dedupes.
  std::vector<std::vector<std::int32_t>> wheel_;
  std::size_t wheel_count_ = 0;  ///< total entries across all wheel slots
  bool stepping_ = false;        ///< inside step_active()'s component loop
  std::size_t run_pos_ = 0;      ///< index into run_list_ during a step
  std::int32_t current_comp_ = -1;  ///< component currently being stepped
};

}  // namespace nocbt::noc
