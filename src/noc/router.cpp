#include "noc/router.h"

#include <algorithm>
#include <stdexcept>

namespace nocbt::noc {

Router::Router(const NocConfig& cfg, const MeshShape& shape, std::int32_t id)
    : cfg_(cfg), shape_(shape), id_(id) {
  inputs_.reserve(kNumPorts);
  outputs_.reserve(kNumPorts);
  const auto num_vcs = static_cast<std::size_t>(cfg.num_vcs);
  const auto depth = static_cast<std::size_t>(cfg.vc_buffer_depth);
  for (int p = 0; p < kNumPorts; ++p) {
    inputs_.emplace_back(num_vcs, depth);
    outputs_.emplace_back(num_vcs, cfg.vc_buffer_depth);
  }
  vc_alloc_requests_.resize(num_vcs * kNumPorts, false);
  input_vc_requests_.resize(num_vcs, false);
  switch_requests_.resize(kNumPorts, false);
}

void Router::connect_input(Port port, Channel<Flit>* in_flits,
                           Channel<Credit>* credit_return) {
  inputs_[port].in = in_flits;
  inputs_[port].credit_return = credit_return;
}

void Router::connect_output(Port port, Channel<Flit>* out_flits,
                            Channel<Credit>* credit_in) {
  outputs_[port].out = out_flits;
  outputs_[port].credit_in = credit_in;
}

bool Router::step(std::uint64_t cycle) {
  ingest_credits(cycle);
  ingest_flits(cycle);
  compute_routes();
  allocate_vcs();
  allocate_and_traverse_switch(cycle);
  return !idle();
}

void Router::ingest_credits(std::uint64_t cycle) {
  for (auto& out : outputs_) {
    if (!out.credit_in) continue;
    while (auto credit = out.credit_in->pop_ready(cycle)) {
      ++out.credits[credit->vc];
      if (out.credits[credit->vc] > cfg_.vc_buffer_depth)
        throw std::logic_error("Router: credit overflow (protocol bug)");
    }
  }
}

void Router::ingest_flits(std::uint64_t cycle) {
  for (auto& in : inputs_) {
    if (!in.in) continue;
    if (auto flit = in.in->pop_ready(cycle)) {
      VcState& vc = in.vcs[flit->vc];
      if (vc.buffer.full())
        throw std::logic_error("Router: VC buffer overflow (protocol bug)");
      const bool was_empty_idle =
          vc.stage == VcStage::kIdle && vc.buffer.empty();
      vc.buffer.push_back(std::move(*flit));
      if (was_empty_idle) {
        if (!is_head(vc.buffer.front().kind))
          throw std::logic_error("Router: body flit on idle VC (protocol bug)");
        vc.stage = VcStage::kRouting;
      }
    }
  }
}

void Router::compute_routes() {
  for (auto& in : inputs_) {
    for (auto& vc : in.vcs) {
      if (vc.stage != VcStage::kRouting || vc.buffer.empty()) continue;
      const Flit& head = vc.buffer.front();
      vc.out_port =
          route_dimension_ordered(shape_, cfg_.routing, id_, head.dst);
      vc.stage = VcStage::kWaitingVc;
    }
  }
}

void Router::allocate_vcs() {
  // One VC grant per output port per cycle; bidders are (in_port, in_vc)
  // pairs whose head flit has been routed to this output.
  const auto num_vcs = static_cast<std::size_t>(cfg_.num_vcs);
  for (int out_port = 0; out_port < kNumPorts; ++out_port) {
    OutputUnit& out = outputs_[out_port];
    if (!out.out) continue;
    std::fill(vc_alloc_requests_.begin(), vc_alloc_requests_.end(), false);
    bool any = false;
    for (int in_port = 0; in_port < kNumPorts; ++in_port) {
      for (std::size_t v = 0; v < num_vcs; ++v) {
        const VcState& vc = inputs_[in_port].vcs[v];
        if (vc.stage == VcStage::kWaitingVc && vc.out_port == out_port) {
          vc_alloc_requests_[static_cast<std::size_t>(in_port) * num_vcs + v] =
              true;
          any = true;
        }
      }
    }
    if (!any) continue;
    // Lowest-index free downstream VC.
    std::int32_t free_vc = -1;
    for (std::size_t v = 0; v < num_vcs; ++v) {
      if (out.vc_free[v]) {
        free_vc = static_cast<std::int32_t>(v);
        break;
      }
    }
    if (free_vc < 0) continue;
    const std::int32_t winner = out.vc_alloc_arb.arbitrate(vc_alloc_requests_);
    if (winner < 0) continue;
    const auto in_port = static_cast<std::size_t>(winner) / num_vcs;
    const auto in_vc = static_cast<std::size_t>(winner) % num_vcs;
    VcState& vc = inputs_[in_port].vcs[in_vc];
    vc.stage = VcStage::kActive;
    vc.out_vc = free_vc;
    out.vc_free[free_vc] = false;
  }
}

void Router::allocate_and_traverse_switch(std::uint64_t cycle) {
  const auto num_vcs = static_cast<std::size_t>(cfg_.num_vcs);

  // Phase 1 (input arbitration): each input port nominates one VC that is
  // active, has a buffered flit, and holds a downstream credit.
  nominee_.fill(-1);  // VC index per input port
  for (int in_port = 0; in_port < kNumPorts; ++in_port) {
    InputUnit& in = inputs_[in_port];
    std::fill(input_vc_requests_.begin(), input_vc_requests_.end(), false);
    bool any = false;
    for (std::size_t v = 0; v < num_vcs; ++v) {
      const VcState& vc = in.vcs[v];
      if (vc.stage == VcStage::kActive && !vc.buffer.empty() &&
          outputs_[vc.out_port].credits[vc.out_vc] > 0) {
        input_vc_requests_[v] = true;
        any = true;
      }
    }
    if (any) nominee_[in_port] = in.vc_arb.arbitrate(input_vc_requests_);
  }

  // Phase 2 (output arbitration): each output port picks one nominating
  // input port; the winner's flit traverses the crossbar this cycle.
  for (int out_port = 0; out_port < kNumPorts; ++out_port) {
    OutputUnit& out = outputs_[out_port];
    if (!out.out) continue;
    std::fill(switch_requests_.begin(), switch_requests_.end(), false);
    bool any = false;
    for (int in_port = 0; in_port < kNumPorts; ++in_port) {
      if (nominee_[in_port] >= 0 &&
          inputs_[in_port].vcs[static_cast<std::size_t>(nominee_[in_port])]
                  .out_port == out_port) {
        switch_requests_[in_port] = true;
        any = true;
      }
    }
    if (!any) continue;
    const std::int32_t winner_port = out.switch_arb.arbitrate(switch_requests_);
    if (winner_port < 0) continue;

    InputUnit& in = inputs_[winner_port];
    const auto vc_index = static_cast<std::size_t>(nominee_[winner_port]);
    VcState& vc = in.vcs[vc_index];

    Flit flit = vc.buffer.pop_front();
    const bool tail = is_tail(flit.kind);
    const std::int32_t out_vc = vc.out_vc;

    flit.vc = out_vc;
    if (out_port != kLocal) ++flit.hops;
    --out.credits[out_vc];
    out.out->push(cycle, std::move(flit));

    // A buffer slot freed: return a credit upstream for the input VC.
    if (in.credit_return)
      in.credit_return->push(cycle,
                             Credit{static_cast<std::int32_t>(vc_index)});

    if (tail) {
      out.vc_free[out_vc] = true;  // relaxed reuse: free once the tail is sent
      refresh_vc(vc);
    }
  }
}

bool Router::idle() const noexcept {
  for (const auto& in : inputs_) {
    for (const auto& vc : in.vcs) {
      if (!vc.buffer.empty() || vc.stage != VcStage::kIdle) return false;
    }
  }
  return true;
}

std::size_t Router::buffered_flits() const noexcept {
  std::size_t total = 0;
  for (const auto& in : inputs_)
    for (const auto& vc : in.vcs) total += vc.buffer.size();
  return total;
}

void Router::refresh_vc(VcState& vc) {
  vc.stage = VcStage::kIdle;
  vc.out_vc = -1;
  if (!vc.buffer.empty()) {
    if (!is_head(vc.buffer.front().kind))
      throw std::logic_error("Router: stray body flit after tail");
    vc.stage = VcStage::kRouting;
  }
}

}  // namespace nocbt::noc
