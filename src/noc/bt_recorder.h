#pragma once
// Bit-transition recorder (paper Fig. 8).
//
// One previous-flit register per link; every flit pushed onto a link is
// XOR-compared against that register and the popcount of the difference is
// accumulated. Idle cycles hold the wire state, so no transitions are
// charged while a link is silent. Recording is measurement-only: it models
// the *wires*, not hardware added to the design.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "noc/noc_config.h"

namespace nocbt::noc {

/// Which class of physical link a monitored channel is.
enum class LinkKind : std::uint8_t {
  kInjection,    ///< NI -> router (NI output port)
  kInterRouter,  ///< router -> router
  kEjection,     ///< router -> NI (router local output port)
};

/// Static description of a monitored link.
struct LinkInfo {
  LinkKind kind = LinkKind::kInterRouter;
  std::int32_t src = -1;       ///< source node id (router or NI node)
  std::int32_t dst = -1;       ///< destination node id
  std::int32_t src_port = -1;  ///< output port at the source (routers only)
};

[[nodiscard]] inline bool operator==(const LinkInfo& a,
                                     const LinkInfo& b) noexcept {
  return a.kind == b.kind && a.src == b.src && a.dst == b.dst &&
         a.src_port == b.src_port;
}

/// One link's accumulated measurements, frozen at snapshot time. This is
/// the unit the hw::EnergyModel converts into pJ — keeping it a plain
/// value lets campaign workers copy it out of a worker-private Network
/// before the network is torn down.
struct LinkObservation {
  std::int32_t link_id = -1;
  LinkInfo info;
  std::uint64_t flits = 0;
  std::uint64_t transitions = 0;
};

[[nodiscard]] inline bool operator==(const LinkObservation& a,
                                     const LinkObservation& b) noexcept {
  return a.link_id == b.link_id && a.info == b.info && a.flits == b.flits &&
         a.transitions == b.transitions;
}

/// One link's live wire state + counters. This is the unit of BT
/// accounting shared by the cycle engines (via BtRecorder::observe, one
/// flit at a time) and the analytical engine (whole packets at a time,
/// and thread-local partials absorbed at the end). Keeping the XOR/latch
/// in one place means the two paths cannot drift.
struct LinkAccumulator {
  BitVec prev;  ///< wire state: payload of the last flit that crossed
  std::uint64_t flits = 0;
  std::uint64_t transitions = 0;

  LinkAccumulator() = default;
  explicit LinkAccumulator(unsigned payload_bits) : prev(payload_bits) {}

  /// One flit crossing: charge popcount(prev XOR payload), latch payload.
  /// Returns the transitions charged so callers can mirror them into
  /// per-class totals.
  std::uint64_t observe(const BitVec& payload) {
    const auto bt = static_cast<std::uint64_t>(prev.transitions_to(payload));
    prev = payload;
    transitions += bt;
    ++flits;
    return bt;
  }

  /// A whole packet crossing back-to-back (flits on consecutive wire
  /// beats): the boundary transition against the current wire state plus
  /// the packet's precomputed internal transitions, in O(1) popcounts.
  /// Exactly equivalent to observe()-ing every flit in order.
  std::uint64_t observe_packet(const BitVec& first, const BitVec& last,
                               std::uint64_t intra_bt,
                               std::uint64_t packet_flits) {
    const auto bt =
        static_cast<std::uint64_t>(prev.transitions_to(first)) + intra_bt;
    prev = last;
    transitions += bt;
    flits += packet_flits;
    return bt;
  }
};

/// Accumulates bit transitions per link and per link class.
class BtRecorder {
 public:
  BtRecorder(BtScopeConfig scope, unsigned payload_bits)
      : scope_(scope), payload_bits_(payload_bits) {}

  /// Register a link to monitor; returns its link id.
  std::int32_t register_link(const LinkInfo& info);

  /// Record one flit payload crossing link `link_id`.
  void observe(std::int32_t link_id, const BitVec& payload);

  /// Fold a finished per-link partial into link `link_id`. The partial
  /// must describe *all* traffic on that link starting from the reset wire
  /// state (all-zero) — the analytical engine owns each link with exactly
  /// one accumulator, so absorbing is a plain add + wire-state adoption.
  void absorb(std::int32_t link_id, const LinkAccumulator& partial);

  /// BTs summed over the link classes enabled in the scope config — the
  /// "NoC Bit Transition Sum" of Fig. 8.
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// BTs over every monitored link regardless of scope.
  [[nodiscard]] std::uint64_t total_all_links() const noexcept;

  [[nodiscard]] std::uint64_t by_kind(LinkKind kind) const noexcept {
    return kind_bt_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t flits_by_kind(LinkKind kind) const noexcept {
    return kind_flits_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const LinkInfo& link_info(std::int32_t id) const {
    return links_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::uint64_t link_bt(std::int32_t id) const {
    return accs_[static_cast<std::size_t>(id)].transitions;
  }
  [[nodiscard]] std::uint64_t link_flits(std::int32_t id) const {
    return accs_[static_cast<std::size_t>(id)].flits;
  }

  /// Frozen copies of every monitored link's counters, in link-id order.
  [[nodiscard]] std::vector<LinkObservation> snapshot() const;

  /// Flits observed on in-scope links.
  [[nodiscard]] std::uint64_t flits_in_scope() const noexcept;

  /// Mean BT per flit over in-scope links (0 when nothing observed).
  [[nodiscard]] double bt_per_flit() const noexcept;

  /// Reset all accumulators and wire states (for multi-phase experiments).
  void reset() noexcept;

 private:
  [[nodiscard]] bool in_scope(LinkKind kind) const noexcept;

  BtScopeConfig scope_;
  unsigned payload_bits_;
  std::vector<LinkInfo> links_;
  std::vector<LinkAccumulator> accs_;  // wire state + counters per link
  std::uint64_t kind_bt_[3] = {0, 0, 0};
  std::uint64_t kind_flits_[3] = {0, 0, 0};
};

/// Human-readable name of a link kind.
[[nodiscard]] std::string to_string(LinkKind kind);

}  // namespace nocbt::noc
