#include "noc/bt_recorder.h"

namespace nocbt::noc {

std::int32_t BtRecorder::register_link(const LinkInfo& info) {
  const auto id = static_cast<std::int32_t>(links_.size());
  links_.push_back(info);
  accs_.emplace_back(payload_bits_);
  return id;
}

void BtRecorder::observe(std::int32_t link_id, const BitVec& payload) {
  const auto idx = static_cast<std::size_t>(link_id);
  const auto kind = static_cast<std::size_t>(links_[idx].kind);
  kind_bt_[kind] += accs_[idx].observe(payload);
  ++kind_flits_[kind];
}

void BtRecorder::absorb(std::int32_t link_id, const LinkAccumulator& partial) {
  const auto idx = static_cast<std::size_t>(link_id);
  const auto kind = static_cast<std::size_t>(links_[idx].kind);
  accs_[idx].prev = partial.prev;
  accs_[idx].flits += partial.flits;
  accs_[idx].transitions += partial.transitions;
  kind_bt_[kind] += partial.transitions;
  kind_flits_[kind] += partial.flits;
}

bool BtRecorder::in_scope(LinkKind kind) const noexcept {
  switch (kind) {
    case LinkKind::kInjection: return scope_.count_injection;
    case LinkKind::kInterRouter: return scope_.count_inter_router;
    case LinkKind::kEjection: return scope_.count_ejection;
  }
  return false;
}

std::uint64_t BtRecorder::total() const noexcept {
  std::uint64_t sum = 0;
  for (int k = 0; k < 3; ++k)
    if (in_scope(static_cast<LinkKind>(k))) sum += kind_bt_[k];
  return sum;
}

std::uint64_t BtRecorder::total_all_links() const noexcept {
  return kind_bt_[0] + kind_bt_[1] + kind_bt_[2];
}

std::vector<LinkObservation> BtRecorder::snapshot() const {
  std::vector<LinkObservation> out;
  out.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i)
    out.push_back(LinkObservation{static_cast<std::int32_t>(i), links_[i],
                                  accs_[i].flits, accs_[i].transitions});
  return out;
}

std::uint64_t BtRecorder::flits_in_scope() const noexcept {
  std::uint64_t sum = 0;
  for (int k = 0; k < 3; ++k)
    if (in_scope(static_cast<LinkKind>(k))) sum += kind_flits_[k];
  return sum;
}

double BtRecorder::bt_per_flit() const noexcept {
  const std::uint64_t flits = flits_in_scope();
  return flits ? static_cast<double>(total()) / static_cast<double>(flits) : 0.0;
}

void BtRecorder::reset() noexcept {
  for (auto& a : accs_) {
    a.prev.clear();
    a.flits = 0;
    a.transitions = 0;
  }
  for (int k = 0; k < 3; ++k) {
    kind_bt_[k] = 0;
    kind_flits_[k] = 0;
  }
}

std::string to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kInjection: return "injection";
    case LinkKind::kInterRouter: return "inter-router";
    case LinkKind::kEjection: return "ejection";
  }
  return "?";
}

}  // namespace nocbt::noc
