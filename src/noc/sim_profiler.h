#pragma once
// Lightweight simulation-engine profiler.
//
// SimProfile holds the deterministic step-loop counters the Network
// maintains (how many cycles were stepped vs. jumped over while idle, how
// many component steps ran vs. were skipped by the active-set engine).
// They quantify the event-skipping win without perturbing simulation
// results: identical specs produce identical counters at any parallelism.
// Wall-clock — which is NOT deterministic — is measured by callers with
// WallTimer around whole phases (a campaign variant run, one platform
// layer) rather than per step, so the hot loop never touches the clock.

#include <chrono>
#include <cstdint>

#include "noc/noc_config.h"

namespace nocbt::noc {

/// Deterministic step-loop counters, accumulated by the Network.
struct SimProfile {
  /// Which backend actually produced the run's measurements. Filled by the
  /// Network (from its config) and by AnalyticalEngine; under campaign
  /// auto-selection this records the engine that *ran*, which may differ
  /// from the one the spec requested as its cycle-engine fallback.
  SimEngine engine = SimEngine::kActiveSet;
  /// Network::step() invocations (cycles actually simulated).
  std::uint64_t cycles_stepped = 0;
  /// Cycles jumped over by advance_idle() (no component ran).
  std::uint64_t idle_cycles_skipped = 0;
  /// Component (router/NI) steps executed.
  std::uint64_t components_stepped = 0;
  /// Component steps the active-set engine skipped (always 0 under the
  /// full-scan reference, which steps everything every cycle).
  std::uint64_t components_skipped = 0;

  /// Fraction of component-cycles skipped over the stepped cycles:
  /// skipped / (stepped + skipped), 0 when nothing ran.
  [[nodiscard]] double skip_ratio() const noexcept {
    const std::uint64_t total = components_stepped + components_skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(components_skipped) /
                            static_cast<double>(total);
  }
};

[[nodiscard]] inline bool operator==(const SimProfile& a,
                                     const SimProfile& b) noexcept {
  return a.engine == b.engine && a.cycles_stepped == b.cycles_stepped &&
         a.idle_cycles_skipped == b.idle_cycles_skipped &&
         a.components_stepped == b.components_stepped &&
         a.components_skipped == b.components_skipped;
}

/// Monotonic stopwatch for whole-phase wall-clock measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nocbt::noc
