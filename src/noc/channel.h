#pragma once
// Pipelined point-to-point channel with fixed latency.
//
// Channels connect router output ports to downstream input ports (and NIs
// to routers). An optional observer sees every item as it is pushed — this
// is where the bit-transition recorder taps the physical wires.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

namespace nocbt::noc {

/// FIFO channel carrying T with `latency` cycles of delay.
/// Single producer, single consumer; at most one push per cycle.
template <typename T>
class Channel {
 public:
  explicit Channel(unsigned latency = 1) : latency_(latency) {}

  /// Install an observer invoked on every push (BT recording tap).
  void set_observer(std::function<void(const T&)> observer) {
    observer_ = std::move(observer);
  }

  /// Send an item at cycle `now`; it becomes visible at `now + latency`.
  void push(std::uint64_t now, T item) {
    if (observer_) observer_(item);
    in_flight_.emplace_back(now + latency_, std::move(item));
  }

  /// Receive the item that arrives at cycle `now`, if any.
  [[nodiscard]] std::optional<T> pop_ready(std::uint64_t now) {
    if (in_flight_.empty() || in_flight_.front().first > now) return std::nullopt;
    T item = std::move(in_flight_.front().second);
    in_flight_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const noexcept { return in_flight_.empty(); }
  [[nodiscard]] unsigned latency() const noexcept { return latency_; }

 private:
  unsigned latency_;
  std::deque<std::pair<std::uint64_t, T>> in_flight_;
  std::function<void(const T&)> observer_;
};

}  // namespace nocbt::noc
