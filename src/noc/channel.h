#pragma once
// Pipelined point-to-point channel with fixed latency.
//
// Channels connect router output ports to downstream input ports (and NIs
// to routers). An optional observer sees every item as it is pushed — this
// is where the bit-transition recorder taps the physical wires. An optional
// waker tells the owning Network which component consumes this channel and
// on which cycle the pushed item becomes visible, so the active-set engine
// can skip the consumer until then.
//
// Storage is a growable ring buffer rather than a std::deque: occupancy is
// bounded by credit flow control (at most num_vcs * vc_buffer_depth flits
// can be unacknowledged on a link), so after a brief warm-up the hot path
// performs no heap allocation per push/pop.

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace nocbt::noc {

/// Callback interface the Network implements: `wake(comp, cycle)` schedules
/// component `comp` (an id the Network assigned via set_waker) to be
/// stepped at `cycle`, when an item pushed into this channel arrives.
class ChannelWaker {
 public:
  virtual void wake(std::int32_t comp, std::uint64_t cycle) = 0;

 protected:
  ~ChannelWaker() = default;
};

/// FIFO channel carrying T with `latency` cycles of delay.
/// Single producer, single consumer; at most one push per cycle.
template <typename T>
class Channel {
 public:
  explicit Channel(unsigned latency = 1) : latency_(latency) {}

  /// Install an observer invoked on every push (BT recording tap).
  void set_observer(std::function<void(const T&)> observer) {
    observer_ = std::move(observer);
  }

  /// Register the consuming component: every push schedules a wake of
  /// `consumer` at the item's arrival cycle. Installed by the Network only
  /// when the active-set engine is selected.
  void set_waker(ChannelWaker* waker, std::int32_t consumer) noexcept {
    waker_ = waker;
    consumer_ = consumer;
  }

  /// Send an item at cycle `now`; it becomes visible at `now + latency`.
  void push(std::uint64_t now, T item) {
    if (observer_) observer_(item);
    const std::uint64_t arrival = now + latency_;
    if (waker_) waker_->wake(consumer_, arrival);
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) % slots_.size()] = {arrival, std::move(item)};
    ++count_;
  }

  /// Receive the item that arrives at cycle `now`, if any.
  [[nodiscard]] std::optional<T> pop_ready(std::uint64_t now) {
    if (count_ == 0 || slots_[head_].first > now) return std::nullopt;
    T item = std::move(slots_[head_].second);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return item;
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] unsigned latency() const noexcept { return latency_; }

 private:
  void grow() {
    std::vector<std::pair<std::uint64_t, T>> bigger(
        slots_.empty() ? 4 : slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    slots_.swap(bigger);
    head_ = 0;
  }

  unsigned latency_;
  std::vector<std::pair<std::uint64_t, T>> slots_;  // ring: [head_, head_+count_)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::function<void(const T&)> observer_;
  ChannelWaker* waker_ = nullptr;
  std::int32_t consumer_ = -1;
};

}  // namespace nocbt::noc
