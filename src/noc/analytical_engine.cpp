#include "noc/analytical_engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace nocbt::noc {

AnalyticalEngine::AnalyticalEngine(const NocConfig& cfg)
    : cfg_(cfg),
      shape_(cfg.rows, cfg.cols),
      bt_(cfg.bt_scope, cfg.flit_payload_bits) {
  cfg_.validate();
  stats_.sim.engine = SimEngine::kAnalytical;

  // Register links in exactly Network::build's order so link ids (and
  // therefore snapshots, heatmaps and energy rows) are interchangeable
  // between engines: all inter-router links node-major/port-minor, then
  // per node the injection and ejection links.
  const std::int32_t n = shape_.node_count();
  inter_link_.assign(static_cast<std::size_t>(n) * 4, -1);
  for (std::int32_t node = 0; node < n; ++node) {
    for (Port port : {kEast, kWest, kNorth, kSouth}) {
      const std::int32_t nbr = shape_.neighbor(node, port);
      if (nbr < 0) continue;
      inter_link_[static_cast<std::size_t>(node) * 4 + port] =
          bt_.register_link(LinkInfo{LinkKind::kInterRouter, node, nbr, port});
    }
  }
  injection_link_.reserve(static_cast<std::size_t>(n));
  ejection_link_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t node = 0; node < n; ++node) {
    injection_link_.push_back(
        bt_.register_link(LinkInfo{LinkKind::kInjection, node, node, -1}));
    ejection_link_.push_back(
        bt_.register_link(LinkInfo{LinkKind::kEjection, node, node, kLocal}));
  }
  crossings_.resize(bt_.link_count());
}

std::string AnalyticalEngine::unsupported_reason(const NocConfig& cfg) {
  // The zero-load model assumes a source can stream a packet's flits on
  // consecutive cycles. With fewer credits than the credit round trip
  // (2 * channel_latency), the wormhole loop throttles even an otherwise
  // empty network, and zero-load timing is no longer the realized timing.
  if (cfg.vc_buffer_depth < 2 * static_cast<std::int32_t>(cfg.channel_latency))
    return "analytical model needs vc_buffer_depth >= 2 * channel_latency "
           "(credit round trip); got depth " +
           std::to_string(cfg.vc_buffer_depth) + " with latency " +
           std::to_string(cfg.channel_latency);
  return {};
}

std::uint64_t AnalyticalEngine::inject(std::uint64_t cycle, std::int32_t src,
                                       std::int32_t dst,
                                       const std::vector<BitVec>& payloads) {
  if (ran_)
    throw std::logic_error("AnalyticalEngine::inject: run() already called");
  const std::int32_t nodes = shape_.node_count();
  if (src < 0 || src >= nodes)
    throw std::invalid_argument("AnalyticalEngine::inject: src node " +
                                std::to_string(src) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (dst < 0 || dst >= nodes)
    throw std::invalid_argument("AnalyticalEngine::inject: dst node " +
                                std::to_string(dst) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (src == dst && !cfg_.allow_self_traffic)
    throw std::invalid_argument(
        "AnalyticalEngine::inject: src == dst (" + std::to_string(src) +
        ") but NocConfig::allow_self_traffic is off");
  if (payloads.empty())
    throw std::invalid_argument(
        "AnalyticalEngine::inject: packet needs >= 1 flit");
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (payloads[i].width() != cfg_.flit_payload_bits)
      throw std::invalid_argument(
          "AnalyticalEngine::inject: payload " + std::to_string(i) + " is " +
          std::to_string(payloads[i].width()) + " bits wide, link carries " +
          std::to_string(cfg_.flit_payload_bits));
  }

  PacketRec rec;
  rec.inject_cycle = cycle;
  rec.dst = dst;
  rec.hops = shape_.manhattan(src, dst);
  rec.flits = static_cast<std::uint32_t>(payloads.size());
  rec.first = payloads.front();
  rec.last = payloads.back();
  for (std::size_t i = 1; i < payloads.size(); ++i)
    rec.intra_bt += static_cast<std::uint64_t>(
        payloads[i - 1].transitions_to(payloads[i]));

  // Walk the route, recording one crossing per physical link. Flit f of
  // this packet pushes onto hop h's link at cycle T + h*L + f.
  const auto idx = static_cast<std::uint32_t>(packets_.size());
  const std::uint64_t latency = cfg_.channel_latency;
  std::uint64_t hop = 0;
  const auto cross = [&](std::int32_t link_id) {
    crossings_[static_cast<std::size_t>(link_id)].push_back(
        Crossing{cycle + hop * latency, idx});
    ++hop;
  };
  cross(injection_link_[static_cast<std::size_t>(src)]);
  for (std::int32_t at = src; at != dst;) {
    const Port port = route_dimension_ordered(shape_, cfg_.routing, at, dst);
    cross(inter_link_[static_cast<std::size_t>(at) * 4 + port]);
    at = shape_.neighbor(at, port);
  }
  cross(ejection_link_[static_cast<std::size_t>(dst)]);

  ++stats_.packets_injected;
  stats_.flits_injected += rec.flits;
  packets_.push_back(std::move(rec));
  return idx;
}

bool AnalyticalEngine::evaluate_link(std::size_t link, LinkAccumulator& acc,
                                     std::string& detail) const {
  auto crossings = crossings_[link];  // copy: evaluate_link is const + reentrant
  std::sort(crossings.begin(), crossings.end(),
            [](const Crossing& a, const Crossing& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.packet < b.packet;
            });
  bool free = true;
  std::uint64_t busy_until = 0;  // first cycle the wire is free again
  for (const Crossing& c : crossings) {
    const PacketRec& p = packets_[c.packet];
    if (&c != crossings.data() && c.start < busy_until && free) {
      free = false;
      const LinkInfo& info = bt_.link_info(static_cast<std::int32_t>(link));
      detail = "link " + std::to_string(link) + " (" + to_string(info.kind) +
               " " + std::to_string(info.src) + " -> " +
               std::to_string(info.dst) + ") still busy at cycle " +
               std::to_string(c.start) + "; schedule is not congestion-free";
    }
    busy_until = c.start + p.flits;
    acc.observe_packet(p.first, p.last, p.intra_bt, p.flits);
  }
  return free;
}

bool AnalyticalEngine::run(unsigned threads) {
  if (ran_) throw std::logic_error("AnalyticalEngine::run: already ran");
  ran_ = true;
  contention_detail_ = unsupported_reason(cfg_);

  // Per-link replay, partitioned across threads; each link is owned by
  // exactly one private accumulator, absorbed serially in link-id order so
  // totals are independent of the thread count.
  const std::size_t links = bt_.link_count();
  std::vector<LinkAccumulator> accs(links,
                                    LinkAccumulator(cfg_.flit_payload_bits));
  std::vector<std::string> details(links);
  std::vector<std::uint8_t> link_free(links, 1);
  const auto sweep = [&](std::size_t begin, std::size_t end) {
    for (std::size_t link = begin; link < end; ++link)
      link_free[link] = evaluate_link(link, accs[link], details[link]) ? 1 : 0;
  };
  const unsigned workers =
      std::max(1u, std::min(threads, static_cast<unsigned>(links)));
  if (workers <= 1) {
    sweep(0, links);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = links * w / workers;
      const std::size_t end = links * (w + 1) / workers;
      pool.emplace_back(sweep, begin, end);
    }
    for (auto& t : pool) t.join();
  }
  bool congestion_free = contention_detail_.empty();
  for (std::size_t link = 0; link < links; ++link) {
    bt_.absorb(static_cast<std::int32_t>(link), accs[link]);
    if (!link_free[link] && congestion_free) {
      congestion_free = false;
      contention_detail_ = details[link];
    }
  }

  // Zero-load transport stats. A packet injected at T with D hops and F
  // flits is delivered (tail reassembled at the destination NI) at
  // T + (D+2)*L + F - 1; the network goes idle — the run_until_idle cycle
  // count — one cycle after the ejection credit is consumed, at
  // T + (D+3)*L + F. Deliveries feed the Welford accumulators in the
  // cycle engines' order: by delivery cycle, then destination node (NIs
  // step in node order within a cycle).
  const std::uint64_t latency = cfg_.channel_latency;
  std::vector<std::uint32_t> order(packets_.size());
  std::iota(order.begin(), order.end(), 0u);
  const auto delivery = [&](std::uint32_t i) {
    const PacketRec& p = packets_[i];
    return p.inject_cycle +
           (static_cast<std::uint64_t>(p.hops) + 2) * latency + p.flits - 1;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const std::uint64_t da = delivery(a), db = delivery(b);
                     if (da != db) return da < db;
                     return packets_[a].dst < packets_[b].dst;
                   });
  cycle_ = 0;
  for (const std::uint32_t i : order) {
    const PacketRec& p = packets_[i];
    ++stats_.packets_delivered;
    stats_.flits_delivered += p.flits;
    stats_.packet_latency.add(
        static_cast<double>(delivery(i) - p.inject_cycle));
    stats_.packet_hops.add(static_cast<double>(p.hops));
    cycle_ = std::max(cycle_, p.inject_cycle +
                                  (static_cast<std::uint64_t>(p.hops) + 3) *
                                      latency +
                                  p.flits);
  }
  stats_.cycles = cycle_;
  // The whole run is one exact clock jump: nothing was stepped.
  stats_.sim.idle_cycles_skipped = cycle_;
  return congestion_free;
}

}  // namespace nocbt::noc
