#pragma once
// Fixed-capacity ring buffer of flits — the storage behind a router VC
// input FIFO. Capacity equals the configured `vc_buffer_depth`, allocated
// once at router construction, so the hot flit path performs no heap
// allocation per buffered flit (the Flits themselves are moved in and out;
// their BitVec payload storage moves with them).

#include <cstddef>
#include <utility>
#include <vector>

#include "noc/flit.h"

namespace nocbt::noc {

/// FIFO of at most `capacity` flits. push_back on a full ring and
/// front/pop_front on an empty ring are protocol bugs; callers (the
/// router's credit flow control) guarantee they never happen, and the
/// router throws std::logic_error before pushing into a full ring.
class FlitRing {
 public:
  explicit FlitRing(std::size_t capacity) : slots_(capacity) {}

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] const Flit& front() const noexcept { return slots_[head_]; }

  void push_back(Flit&& flit) noexcept {
    slots_[(head_ + count_) % slots_.size()] = std::move(flit);
    ++count_;
  }

  /// Move the oldest flit out (its slot keeps a moved-from husk whose
  /// heap storage is reused by a later push's move-assignment).
  [[nodiscard]] Flit pop_front() noexcept {
    Flit flit = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return flit;
  }

 private:
  std::vector<Flit> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace nocbt::noc
