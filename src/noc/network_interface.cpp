#include "noc/network_interface.h"

#include <algorithm>
#include <stdexcept>

namespace nocbt::noc {

NetworkInterface::NetworkInterface(const NocConfig& cfg, std::int32_t node)
    : cfg_(cfg), node_(node), inj_arb_(static_cast<std::size_t>(cfg.num_vcs)) {
  inj_vcs_.resize(static_cast<std::size_t>(cfg.num_vcs));
  for (auto& vc : inj_vcs_) vc.credits = cfg.vc_buffer_depth;
  inj_requests_.resize(inj_vcs_.size(), false);
}

void NetworkInterface::connect_injection(Channel<Flit>* to_router,
                                         Channel<Credit>* credit_from_router) {
  to_router_ = to_router;
  credit_from_router_ = credit_from_router;
}

void NetworkInterface::connect_ejection(Channel<Flit>* from_router,
                                        Channel<Credit>* credit_to_router) {
  from_router_ = from_router;
  credit_to_router_ = credit_to_router;
}

bool NetworkInterface::step(std::uint64_t cycle) {
  ingest_credits(cycle);
  assign_packets();
  send_one_flit(cycle);
  drain_ejection(cycle);
  return !idle();
}

void NetworkInterface::ingest_credits(std::uint64_t cycle) {
  if (!credit_from_router_) return;
  while (auto credit = credit_from_router_->pop_ready(cycle)) {
    auto& vc = inj_vcs_[static_cast<std::size_t>(credit->vc)];
    ++vc.credits;
    if (vc.credits > cfg_.vc_buffer_depth)
      throw std::logic_error("NI: credit overflow (protocol bug)");
  }
}

void NetworkInterface::assign_packets() {
  for (auto& vc : inj_vcs_) {
    if (vc.busy || source_queue_.empty()) continue;
    vc.packet = std::move(source_queue_.front());
    source_queue_.pop_front();
    vc.next_flit = 0;
    vc.busy = true;
  }
}

void NetworkInterface::send_one_flit(std::uint64_t cycle) {
  if (!to_router_) return;
  std::fill(inj_requests_.begin(), inj_requests_.end(), false);
  bool any = false;
  for (std::size_t v = 0; v < inj_vcs_.size(); ++v) {
    if (inj_vcs_[v].busy && inj_vcs_[v].credits > 0) {
      inj_requests_[v] = true;
      any = true;
    }
  }
  if (!any) return;
  // Packet-serial injection: keep draining the in-progress packet while it
  // can make progress (a memory controller streams one packet at a time,
  // and contiguous flits preserve the transmission ordering the technique
  // relies on). Other VCs only get the link when the sticky one stalls.
  std::int32_t winner = -1;
  if (sticky_vc_ >= 0 && inj_requests_[static_cast<std::size_t>(sticky_vc_)])
    winner = sticky_vc_;
  else
    winner = inj_arb_.arbitrate(inj_requests_);
  if (winner < 0) return;
  sticky_vc_ = winner;

  auto& vc = inj_vcs_[static_cast<std::size_t>(winner)];
  const std::size_t total = vc.packet.payloads.size();
  const std::size_t i = vc.next_flit;

  Flit flit;
  flit.packet_id = vc.packet.id;
  flit.src = vc.packet.src;
  flit.dst = vc.packet.dst;
  flit.vc = winner;
  flit.seq = static_cast<std::uint32_t>(i);
  flit.num_flits = static_cast<std::uint32_t>(total);
  flit.inject_cycle = vc.packet.inject_cycle;
  // Move, don't copy: the packet is discarded once its last flit leaves, so
  // handing the payload's heap storage to the flit eliminates the one
  // per-flit allocation on the injection path.
  flit.payload = std::move(vc.packet.payloads[i]);
  if (total == 1)
    flit.kind = FlitKind::kHeadTail;
  else if (i == 0)
    flit.kind = FlitKind::kHead;
  else if (i + 1 == total)
    flit.kind = FlitKind::kTail;
  else
    flit.kind = FlitKind::kBody;

  --vc.credits;
  to_router_->push(cycle, std::move(flit));
  ++vc.next_flit;
  if (vc.next_flit == total) {
    vc.busy = false;
    vc.packet = Packet{};
    sticky_vc_ = -1;
  }
}

void NetworkInterface::drain_ejection(std::uint64_t cycle) {
  if (!from_router_) return;
  while (auto flit = from_router_->pop_ready(cycle)) {
    if (credit_to_router_) credit_to_router_->push(cycle, Credit{flit->vc});

    Packet& pkt = reassembly_[flit->packet_id];
    if (pkt.payloads.empty()) {
      pkt.id = flit->packet_id;
      pkt.src = flit->src;
      pkt.dst = flit->dst;
      pkt.inject_cycle = flit->inject_cycle;
      pkt.payloads.resize(flit->num_flits);
    }
    pkt.payloads[flit->seq] = std::move(flit->payload);

    if (is_tail(flit->kind)) {
      pkt.eject_cycle = cycle;
      pkt.hops = flit->hops;
      Packet done = std::move(pkt);
      reassembly_.erase(flit->packet_id);
      if (sink_) sink_(std::move(done), cycle);
    }
  }
}

bool NetworkInterface::idle() const noexcept {
  if (!source_queue_.empty() || !reassembly_.empty()) return false;
  for (const auto& vc : inj_vcs_)
    if (vc.busy) return false;
  return true;
}

}  // namespace nocbt::noc
