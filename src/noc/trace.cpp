#include "noc/trace.h"

#include "common/csv.h"

namespace nocbt::noc {

std::size_t PacketTrace::dump_csv(const std::string& path) const {
  CsvWriter csv(path, {"packet_id", "src", "dst", "num_flits", "inject_cycle",
                       "eject_cycle", "latency", "hops"});
  for (const auto& e : events_) {
    csv.add_row({std::to_string(e.packet_id), std::to_string(e.src),
                 std::to_string(e.dst), std::to_string(e.num_flits),
                 std::to_string(e.inject_cycle), std::to_string(e.eject_cycle),
                 std::to_string(e.eject_cycle - e.inject_cycle),
                 std::to_string(e.hops)});
  }
  return csv.rows_written();
}

}  // namespace nocbt::noc
