#include "noc/trace.h"

#include <cctype>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/csv.h"

namespace nocbt::noc {

namespace {

std::vector<std::string> split_row(const std::string& line) {
  // Plain find-based split: this is the library's only bulk-input path, so
  // avoid a stringstream per row.
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (std::size_t comma = line.find(','); comma != std::string::npos;
       comma = line.find(',', start)) {
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  cells.push_back(line.substr(start));
  return cells;
}

/// Whole-cell unsigned parse with an explicit range cap: rejects trailing
/// garbage ("12abc"), signs/whitespace, and values the target field would
/// truncate.
std::uint64_t parse_u64(const std::string& cell, std::uint64_t max_value) {
  if (cell.empty() || !std::isdigit(static_cast<unsigned char>(cell[0])))
    throw std::invalid_argument("not a non-negative integer: " + cell);
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(cell, &pos);
  } catch (const std::out_of_range&) {
    // stoull's own message is just "stoull" — name the offending cell.
    throw std::out_of_range("value out of range: " + cell);
  }
  if (pos != cell.size())
    throw std::invalid_argument("trailing garbage: " + cell);
  if (v > max_value) throw std::out_of_range("value out of range: " + cell);
  return v;
}

/// Payload cell: each 32-bit word as exactly 8 lowercase hex digits,
/// concatenated (empty cell = no payload).
std::string format_payload(const std::vector<std::uint32_t>& words) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string cell;
  cell.reserve(words.size() * 8);
  for (const std::uint32_t w : words)
    for (int shift = 28; shift >= 0; shift -= 4)
      cell.push_back(kHex[(w >> shift) & 0xF]);
  return cell;
}

std::vector<std::uint32_t> parse_payload(const std::string& cell) {
  if (cell.size() % 8 != 0)
    throw std::invalid_argument(
        "payload of " + std::to_string(cell.size()) +
        " hex digits is not a whole number of 32-bit words (each word is "
        "exactly 8 lowercase hex digits)");
  std::vector<std::uint32_t> words;
  words.reserve(cell.size() / 8);
  for (std::size_t i = 0; i < cell.size(); i += 8) {
    std::uint32_t w = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      const char c = cell[i + j];
      std::uint32_t nibble = 0;
      if (c >= '0' && c <= '9')
        nibble = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        nibble = static_cast<std::uint32_t>(c - 'a' + 10);
      else
        throw std::invalid_argument(std::string("bad hex digit '") + c +
                                    "' in payload");
      w = (w << 4) | nibble;
    }
    words.push_back(w);
  }
  return words;
}

std::int32_t parse_i32(const std::string& cell) {
  // Same whole-cell strictness as parse_u64, with an optional leading '-'.
  const std::size_t digit_at = (!cell.empty() && cell[0] == '-') ? 1 : 0;
  if (cell.size() <= digit_at ||
      !std::isdigit(static_cast<unsigned char>(cell[digit_at])))
    throw std::invalid_argument("not an integer: " + cell);
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(cell, &pos);
  } catch (const std::out_of_range&) {
    throw std::out_of_range("value out of range: " + cell);
  }
  if (pos != cell.size())
    throw std::invalid_argument("trailing garbage: " + cell);
  if (v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max())
    throw std::out_of_range("value out of range: " + cell);
  return static_cast<std::int32_t>(v);
}

}  // namespace

std::size_t PacketTrace::dump_csv(const std::string& path) const {
  bool any_payload = false;
  for (const auto& e : events_)
    if (e.has_payload()) {
      any_payload = true;
      break;
    }

  std::vector<std::string> headers = {"packet_id",    "src",
                                      "dst",          "num_flits",
                                      "inject_cycle", "eject_cycle",
                                      "latency",      "hops"};
  if (any_payload) {
    headers.push_back("weights");
    headers.push_back("inputs");
  }
  CsvWriter csv(path, headers);
  for (const auto& e : events_) {
    std::vector<std::string> row = {
        std::to_string(e.packet_id), std::to_string(e.src),
        std::to_string(e.dst),       std::to_string(e.num_flits),
        std::to_string(e.inject_cycle), std::to_string(e.eject_cycle),
        std::to_string(e.eject_cycle - e.inject_cycle),
        std::to_string(e.hops)};
    if (any_payload) {
      row.push_back(format_payload(e.weights));
      row.push_back(format_payload(e.inputs));
    }
    csv.add_row(row);
  }
  return csv.rows_written();
}

PacketTrace PacketTrace::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("PacketTrace::load_csv: cannot open " + path);

  const std::string legacy_header =
      "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops";
  const std::string payload_header = legacy_header + ",weights,inputs";
  // Tolerate CRLF line endings so a trace recorded on one platform can be
  // replayed on another.
  const auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  std::string line;
  if (!std::getline(in, line)) line.clear();
  strip_cr(line);
  bool with_payload = false;
  if (line == payload_header)
    with_payload = true;
  else if (line != legacy_header)
    throw std::runtime_error("PacketTrace::load_csv: bad header in " + path);
  const std::size_t expected_cells = with_payload ? 10 : 8;

  PacketTrace trace;
  std::size_t row = 1;
  while (std::getline(in, line)) {
    ++row;
    strip_cr(line);
    if (line.empty()) continue;
    const auto cells = split_row(line);
    if (cells.size() != expected_cells)
      throw std::runtime_error("PacketTrace::load_csv: row " +
                               std::to_string(row) + " has " +
                               std::to_string(cells.size()) + " cells");
    try {
      TraceEvent e;
      e.packet_id = parse_u64(cells[0], std::numeric_limits<std::uint64_t>::max());
      e.src = parse_i32(cells[1]);
      e.dst = parse_i32(cells[2]);
      e.num_flits = static_cast<std::uint32_t>(
          parse_u64(cells[3], std::numeric_limits<std::uint32_t>::max()));
      e.inject_cycle =
          parse_u64(cells[4], std::numeric_limits<std::uint64_t>::max());
      e.eject_cycle =
          parse_u64(cells[5], std::numeric_limits<std::uint64_t>::max());
      // The latency column is derived on dump; require ordered timestamps
      // and an agreeing value so a hand-edited trace cannot carry
      // contradictory timing.
      if (e.eject_cycle < e.inject_cycle)
        throw std::invalid_argument("eject_cycle precedes inject_cycle");
      if (parse_u64(cells[6], std::numeric_limits<std::uint64_t>::max()) !=
          e.eject_cycle - e.inject_cycle)
        throw std::invalid_argument("latency != eject_cycle - inject_cycle");
      e.hops = static_cast<std::uint16_t>(
          parse_u64(cells[7], std::numeric_limits<std::uint16_t>::max()));
      if (with_payload) {
        e.weights = parse_payload(cells[8]);
        e.inputs = parse_payload(cells[9]);
        // Half-half flitization zips the streams pairwise, so a payload-
        // carrying row must hold matched streams.
        if (e.weights.size() != e.inputs.size())
          throw std::invalid_argument(
              "weights payload holds " + std::to_string(e.weights.size()) +
              " words but inputs holds " + std::to_string(e.inputs.size()) +
              " (half-half flitization needs matched streams)");
      }
      trace.record(e);
    } catch (const std::exception& e) {
      throw std::runtime_error("PacketTrace::load_csv: malformed row " +
                               std::to_string(row) + " in " + path + ": " +
                               e.what());
    }
  }
  return trace;
}

}  // namespace nocbt::noc
