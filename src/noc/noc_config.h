#pragma once
// NoC configuration. Defaults mirror the paper's evaluation setup (§V-B):
// 2D mesh, X-Y routing, 4 virtual channels with 4-flit buffers per VC.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "noc/routing.h"

namespace nocbt::noc {

/// Which simulation backend produces a run's measurements.
///
/// kActiveSet is the production cycle engine: `step()` visits only the
/// components (routers/NIs) that can make progress this cycle — quiescent
/// components are skipped entirely and woken by their channels when a flit
/// or credit arrives — and `idle()` is an O(1) counter check. kFullScan is
/// the retained naive reference that unconditionally walks every component
/// every cycle; it exists so differential tests (and micro_noc) can prove
/// the active-set engine cycle- and BT-exact against it. Both cycle engines
/// are observationally identical; they differ in wall-clock only.
///
/// kAnalytical does not step cycles at all: it computes per-link flit
/// loads, bit transitions, zero-load latencies and drain time directly
/// from the packet schedule (see noc::AnalyticalEngine). It is exact —
/// byte-identical to the cycle engines — whenever the schedule is
/// congestion-free, and it proves that precondition itself. Network only
/// runs the two cycle engines; selecting kAnalytical there throws.
enum class SimEngine : std::uint8_t {
  kActiveSet,   ///< event-skipping worklist cycle engine (default)
  kFullScan,    ///< naive all-components-every-cycle reference
  kAnalytical,  ///< zero-load analytical backend (noc::AnalyticalEngine)
};

[[nodiscard]] inline const char* to_string(SimEngine engine) noexcept {
  switch (engine) {
    case SimEngine::kActiveSet: return "active";
    case SimEngine::kFullScan: return "fullscan";
    case SimEngine::kAnalytical: return "analytical";
  }
  return "?";
}

[[nodiscard]] inline SimEngine parse_sim_engine(const std::string& s) {
  if (s == "active" || s == "active-set" || s == "activeset")
    return SimEngine::kActiveSet;
  if (s == "fullscan" || s == "full-scan" || s == "naive")
    return SimEngine::kFullScan;
  if (s == "analytical" || s == "analytic")
    return SimEngine::kAnalytical;
  throw std::invalid_argument("parse_sim_engine: unknown engine '" + s +
                              "' (want active | fullscan | analytical)");
}

/// Which link classes the BT recorder accumulates. The paper's Fig. 8 sums
/// over router output ports, i.e. inter-router links plus ejection links.
struct BtScopeConfig {
  bool count_injection = false;  ///< NI -> router links (NI output ports)
  bool count_inter_router = true;
  bool count_ejection = true;    ///< router -> NI links (router local outports)
};

/// Full network configuration.
struct NocConfig {
  std::int32_t rows = 4;
  std::int32_t cols = 4;
  std::int32_t num_vcs = 4;          ///< virtual channels per port
  std::int32_t vc_buffer_depth = 4;  ///< flit slots per VC
  unsigned flit_payload_bits = 512;  ///< link width (payload wires)
  unsigned channel_latency = 1;      ///< link traversal cycles
  RoutingAlgorithm routing = RoutingAlgorithm::kXY;
  SimEngine engine = SimEngine::kActiveSet;  ///< step-loop implementation
  BtScopeConfig bt_scope;
  /// Accept src == dst packets (NI -> router local port -> NI loopback).
  /// Synthetic traffic patterns usually want these rejected at injection so
  /// a misconfigured generator fails loudly instead of inflating delivery
  /// counts with zero-hop traffic.
  bool allow_self_traffic = true;

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const {
    if (rows < 1 || cols < 1)
      throw std::invalid_argument("NocConfig: mesh must be at least 1x1");
    if (num_vcs < 1) throw std::invalid_argument("NocConfig: num_vcs must be >= 1");
    if (vc_buffer_depth < 1)
      throw std::invalid_argument("NocConfig: vc_buffer_depth must be >= 1");
    if (flit_payload_bits == 0)
      throw std::invalid_argument("NocConfig: flit_payload_bits must be > 0");
    if (channel_latency < 1)
      throw std::invalid_argument("NocConfig: channel_latency must be >= 1");
  }

  [[nodiscard]] std::int32_t node_count() const noexcept { return rows * cols; }
};

}  // namespace nocbt::noc
