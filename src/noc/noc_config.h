#pragma once
// NoC configuration. Defaults mirror the paper's evaluation setup (§V-B):
// 2D mesh, X-Y routing, 4 virtual channels with 4-flit buffers per VC.

#include <cstdint>
#include <stdexcept>

#include "noc/routing.h"

namespace nocbt::noc {

/// Which link classes the BT recorder accumulates. The paper's Fig. 8 sums
/// over router output ports, i.e. inter-router links plus ejection links.
struct BtScopeConfig {
  bool count_injection = false;  ///< NI -> router links (NI output ports)
  bool count_inter_router = true;
  bool count_ejection = true;    ///< router -> NI links (router local outports)
};

/// Full network configuration.
struct NocConfig {
  std::int32_t rows = 4;
  std::int32_t cols = 4;
  std::int32_t num_vcs = 4;          ///< virtual channels per port
  std::int32_t vc_buffer_depth = 4;  ///< flit slots per VC
  unsigned flit_payload_bits = 512;  ///< link width (payload wires)
  unsigned channel_latency = 1;      ///< link traversal cycles
  RoutingAlgorithm routing = RoutingAlgorithm::kXY;
  BtScopeConfig bt_scope;
  /// Accept src == dst packets (NI -> router local port -> NI loopback).
  /// Synthetic traffic patterns usually want these rejected at injection so
  /// a misconfigured generator fails loudly instead of inflating delivery
  /// counts with zero-hop traffic.
  bool allow_self_traffic = true;

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const {
    if (rows < 1 || cols < 1)
      throw std::invalid_argument("NocConfig: mesh must be at least 1x1");
    if (num_vcs < 1) throw std::invalid_argument("NocConfig: num_vcs must be >= 1");
    if (vc_buffer_depth < 1)
      throw std::invalid_argument("NocConfig: vc_buffer_depth must be >= 1");
    if (flit_payload_bits == 0)
      throw std::invalid_argument("NocConfig: flit_payload_bits must be > 0");
    if (channel_latency < 1)
      throw std::invalid_argument("NocConfig: channel_latency must be >= 1");
  }

  [[nodiscard]] std::int32_t node_count() const noexcept { return rows * cols; }
};

}  // namespace nocbt::noc
