#include "noc/network.h"

#include <algorithm>
#include <stdexcept>

namespace nocbt::noc {

Network::Network(const NocConfig& cfg)
    : cfg_(cfg),
      shape_(cfg.rows, cfg.cols),
      bt_(cfg.bt_scope, cfg.flit_payload_bits),
      active_engine_(cfg.engine == SimEngine::kActiveSet) {
  cfg_.validate();
  if (cfg_.engine == SimEngine::kAnalytical)
    throw std::invalid_argument(
        "Network: SimEngine::kAnalytical has no cycle loop; run it through "
        "noc::AnalyticalEngine (or pick active | fullscan)");
  stats_.sim.engine = cfg_.engine;
  const std::size_t comps = 2 * static_cast<std::size_t>(shape_.node_count());
  scheduled_.assign(comps, 0);
  run_list_.reserve(comps);
  next_list_.reserve(comps);
  wheel_.resize(static_cast<std::size_t>(cfg_.channel_latency) + 1);
  build();
}

Channel<Flit>* Network::new_flit_channel(const LinkInfo& info,
                                         std::int32_t consumer) {
  flit_channels_.emplace_back(cfg_.channel_latency);
  Channel<Flit>* ch = &flit_channels_.back();
  const std::int32_t link_id = bt_.register_link(info);
  BtRecorder* recorder = &bt_;
  ch->set_observer([recorder, link_id](const Flit& flit) {
    recorder->observe(link_id, flit.payload);
  });
  if (active_engine_) ch->set_waker(this, consumer);
  return ch;
}

Channel<Credit>* Network::new_credit_channel(std::int32_t consumer) {
  credit_channels_.emplace_back(cfg_.channel_latency);
  Channel<Credit>* ch = &credit_channels_.back();
  if (active_engine_) ch->set_waker(this, consumer);
  return ch;
}

void Network::build() {
  const std::int32_t n = shape_.node_count();
  // Component ids for the waker: NI of node i is comp i, router i is n + i.
  const auto router_comp = [n](std::int32_t node) { return n + node; };
  for (std::int32_t i = 0; i < n; ++i) routers_.emplace_back(cfg_, shape_, i);
  for (std::int32_t i = 0; i < n; ++i) nis_.emplace_back(cfg_, i);

  // Inter-router links: one flit channel + one reverse credit channel per
  // directed adjacency. Flits are consumed by the downstream router;
  // returned credits by the upstream one.
  for (std::int32_t node = 0; node < n; ++node) {
    for (Port port : {kEast, kWest, kNorth, kSouth}) {
      const std::int32_t nbr = shape_.neighbor(node, port);
      if (nbr < 0) continue;
      Channel<Flit>* flits = new_flit_channel(
          LinkInfo{LinkKind::kInterRouter, node, nbr, port},
          router_comp(nbr));
      Channel<Credit>* credits = new_credit_channel(router_comp(node));
      routers_[node].connect_output(port, flits, credits);
      routers_[nbr].connect_input(opposite(port), flits, credits);
    }
  }

  // NI <-> router local-port links.
  for (std::int32_t node = 0; node < n; ++node) {
    Channel<Flit>* inj = new_flit_channel(
        LinkInfo{LinkKind::kInjection, node, node, -1}, router_comp(node));
    Channel<Credit>* inj_credits = new_credit_channel(node);
    nis_[node].connect_injection(inj, inj_credits);
    routers_[node].connect_input(kLocal, inj, inj_credits);

    Channel<Flit>* ej = new_flit_channel(
        LinkInfo{LinkKind::kEjection, node, node, kLocal}, node);
    Channel<Credit>* ej_credits = new_credit_channel(router_comp(node));
    routers_[node].connect_output(kLocal, ej, ej_credits);
    nis_[node].connect_ejection(ej, ej_credits);
  }
}

void Network::set_sink(std::int32_t node, PacketSink sink) {
  NocStats* stats = &stats_;
  nis_[node].set_sink(
      [stats, user = std::move(sink)](Packet&& packet, std::uint64_t cycle) {
        ++stats->packets_delivered;
        stats->flits_delivered += packet.payloads.size();
        stats->packet_latency.add(
            static_cast<double>(cycle - packet.inject_cycle));
        stats->packet_hops.add(static_cast<double>(packet.hops));
        if (user) user(std::move(packet), cycle);
      });
}

std::uint64_t Network::inject(std::int32_t src, std::int32_t dst,
                              std::vector<BitVec> payloads) {
  const std::int32_t nodes = shape_.node_count();
  if (src < 0 || src >= nodes)
    throw std::invalid_argument("Network::inject: src node " +
                                std::to_string(src) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (dst < 0 || dst >= nodes)
    throw std::invalid_argument("Network::inject: dst node " +
                                std::to_string(dst) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (src == dst && !cfg_.allow_self_traffic)
    throw std::invalid_argument(
        "Network::inject: src == dst (" + std::to_string(src) +
        ") but NocConfig::allow_self_traffic is off");
  if (payloads.empty())
    throw std::invalid_argument("Network::inject: packet needs >= 1 flit");
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (payloads[i].width() != cfg_.flit_payload_bits)
      throw std::invalid_argument(
          "Network::inject: payload " + std::to_string(i) + " is " +
          std::to_string(payloads[i].width()) + " bits wide, link carries " +
          std::to_string(cfg_.flit_payload_bits));
  }
  Packet packet;
  packet.id = next_packet_id_++;
  packet.src = src;
  packet.dst = dst;
  packet.inject_cycle = cycle_;
  packet.payloads = std::move(payloads);
  ++stats_.packets_injected;
  stats_.flits_injected += packet.payloads.size();
  const std::uint64_t id = packet.id;
  nis_[src].enqueue(std::move(packet));
  if (active_engine_) activate_ni(src);
  return id;
}

void Network::wake(std::int32_t comp, std::uint64_t cycle) {
  // Arrival cycles land in (cycle_, cycle_ + channel_latency]; the wheel's
  // channel_latency + 1 slots map each reachable cycle to a distinct slot,
  // and the slot for the cycle being stepped has already been drained.
  wheel_[cycle % wheel_.size()].push_back(comp);
  ++wheel_count_;
}

void Network::activate_ni(std::int32_t node) {
  if (!stepping_) {
    // Between steps: schedule for the upcoming step() (this cycle).
    if (!scheduled_[static_cast<std::size_t>(node)]) {
      scheduled_[static_cast<std::size_t>(node)] = 1;
      run_list_.push_back(node);
    }
    return;
  }
  // Mid-step (a sink callback injected): the full scan visits NIs in node
  // order, so a target the scan has not reached yet must still run this
  // cycle; one at or before the current position runs next cycle.
  if (node > current_comp_) {
    if (!scheduled_[static_cast<std::size_t>(node)]) {
      scheduled_[static_cast<std::size_t>(node)] = 1;
      run_list_.insert(std::lower_bound(run_list_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                run_pos_ + 1),
                                        run_list_.end(), node),
                       node);
    }
  } else {
    // Already stepped (or currently stepping) this cycle; the enqueue is
    // seen next cycle. The NI's own step-return usually keeps it active —
    // the wheel entry covers the race where it already reported idle.
    wake(node, cycle_ + 1);
  }
}

void Network::step() {
  if (active_engine_)
    step_active();
  else
    step_full_scan();
  ++cycle_;
  stats_.cycles = cycle_;
  ++stats_.sim.cycles_stepped;
}

void Network::step_full_scan() {
  for (auto& ni : nis_) ni.step(cycle_);
  for (auto& router : routers_) router.step(cycle_);
  stats_.sim.components_stepped +=
      2 * static_cast<std::uint64_t>(shape_.node_count());
}

void Network::step_active() {
  const std::int32_t n = shape_.node_count();

  // Merge wakes due this cycle into the worklist (deduped by the flag).
  auto& due = wheel_[cycle_ % wheel_.size()];
  for (const std::int32_t comp : due) {
    if (!scheduled_[static_cast<std::size_t>(comp)]) {
      scheduled_[static_cast<std::size_t>(comp)] = 1;
      run_list_.push_back(comp);
    }
  }
  wheel_count_ -= due.size();
  due.clear();

  // Sorted order reproduces the full scan: NIs (ids < n) in node order
  // first, then routers.
  std::sort(run_list_.begin(), run_list_.end());

  next_list_.clear();
  stepping_ = true;
  for (run_pos_ = 0; run_pos_ < run_list_.size(); ++run_pos_) {
    const std::int32_t comp = run_list_[run_pos_];
    current_comp_ = comp;
    const bool again = comp < n
                           ? nis_[comp].step(cycle_)
                           : routers_[comp - n].step(cycle_);
    if (again)
      next_list_.push_back(comp);  // keeps its scheduled_ flag
    else
      scheduled_[static_cast<std::size_t>(comp)] = 0;
  }
  stepping_ = false;
  current_comp_ = -1;

  stats_.sim.components_stepped += run_list_.size();
  stats_.sim.components_skipped +=
      2 * static_cast<std::uint64_t>(n) - run_list_.size();
  run_list_.swap(next_list_);
}

void Network::advance_idle(std::uint64_t cycles) {
  if (!idle())
    throw std::logic_error("Network::advance_idle: network is not idle");
  cycle_ += cycles;
  stats_.cycles = cycle_;
  stats_.sim.idle_cycles_skipped += cycles;
}

bool Network::run_until_idle(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (idle()) return true;
    step();
  }
  return idle();
}

bool Network::idle() const noexcept {
  if (active_engine_) return run_list_.empty() && wheel_count_ == 0;
  return idle_full_scan();
}

bool Network::idle_full_scan() const noexcept {
  for (const auto& router : routers_)
    if (!router.idle()) return false;
  for (const auto& ni : nis_)
    if (!ni.idle()) return false;
  for (const auto& ch : flit_channels_)
    if (!ch.empty()) return false;
  for (const auto& ch : credit_channels_)
    if (!ch.empty()) return false;
  return true;
}

std::size_t Network::injection_backlog(std::int32_t node) const {
  return nis_[static_cast<std::size_t>(node)].backlog();
}

std::size_t Network::buffered_flits() const noexcept {
  std::size_t total = 0;
  for (const auto& router : routers_) total += router.buffered_flits();
  return total;
}

std::size_t Network::active_components() const noexcept {
  if (!active_engine_)
    return 2 * static_cast<std::size_t>(shape_.node_count());
  return run_list_.size();
}

}  // namespace nocbt::noc
