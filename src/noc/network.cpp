#include "noc/network.h"

#include <stdexcept>

namespace nocbt::noc {

Network::Network(const NocConfig& cfg)
    : cfg_(cfg),
      shape_(cfg.rows, cfg.cols),
      bt_(cfg.bt_scope, cfg.flit_payload_bits) {
  cfg_.validate();
  build();
}

Channel<Flit>* Network::new_flit_channel(const LinkInfo& info) {
  flit_channels_.emplace_back(cfg_.channel_latency);
  Channel<Flit>* ch = &flit_channels_.back();
  const std::int32_t link_id = bt_.register_link(info);
  BtRecorder* recorder = &bt_;
  ch->set_observer([recorder, link_id](const Flit& flit) {
    recorder->observe(link_id, flit.payload);
  });
  return ch;
}

Channel<Credit>* Network::new_credit_channel() {
  credit_channels_.emplace_back(cfg_.channel_latency);
  return &credit_channels_.back();
}

void Network::build() {
  const std::int32_t n = shape_.node_count();
  for (std::int32_t i = 0; i < n; ++i) routers_.emplace_back(cfg_, shape_, i);
  for (std::int32_t i = 0; i < n; ++i) nis_.emplace_back(cfg_, i);

  // Inter-router links: one flit channel + one reverse credit channel per
  // directed adjacency.
  for (std::int32_t node = 0; node < n; ++node) {
    for (Port port : {kEast, kWest, kNorth, kSouth}) {
      const std::int32_t nbr = shape_.neighbor(node, port);
      if (nbr < 0) continue;
      Channel<Flit>* flits = new_flit_channel(
          LinkInfo{LinkKind::kInterRouter, node, nbr, port});
      Channel<Credit>* credits = new_credit_channel();
      routers_[node].connect_output(port, flits, credits);
      routers_[nbr].connect_input(opposite(port), flits, credits);
    }
  }

  // NI <-> router local-port links.
  for (std::int32_t node = 0; node < n; ++node) {
    Channel<Flit>* inj = new_flit_channel(
        LinkInfo{LinkKind::kInjection, node, node, -1});
    Channel<Credit>* inj_credits = new_credit_channel();
    nis_[node].connect_injection(inj, inj_credits);
    routers_[node].connect_input(kLocal, inj, inj_credits);

    Channel<Flit>* ej = new_flit_channel(
        LinkInfo{LinkKind::kEjection, node, node, kLocal});
    Channel<Credit>* ej_credits = new_credit_channel();
    routers_[node].connect_output(kLocal, ej, ej_credits);
    nis_[node].connect_ejection(ej, ej_credits);
  }
}

void Network::set_sink(std::int32_t node, PacketSink sink) {
  NocStats* stats = &stats_;
  nis_[node].set_sink(
      [stats, user = std::move(sink)](Packet&& packet, std::uint64_t cycle) {
        ++stats->packets_delivered;
        stats->flits_delivered += packet.payloads.size();
        stats->packet_latency.add(
            static_cast<double>(cycle - packet.inject_cycle));
        stats->packet_hops.add(static_cast<double>(packet.hops));
        if (user) user(std::move(packet), cycle);
      });
}

std::uint64_t Network::inject(std::int32_t src, std::int32_t dst,
                              std::vector<BitVec> payloads) {
  const std::int32_t nodes = shape_.node_count();
  if (src < 0 || src >= nodes)
    throw std::invalid_argument("Network::inject: src node " +
                                std::to_string(src) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (dst < 0 || dst >= nodes)
    throw std::invalid_argument("Network::inject: dst node " +
                                std::to_string(dst) + " outside mesh of " +
                                std::to_string(nodes) + " nodes");
  if (src == dst && !cfg_.allow_self_traffic)
    throw std::invalid_argument(
        "Network::inject: src == dst (" + std::to_string(src) +
        ") but NocConfig::allow_self_traffic is off");
  if (payloads.empty())
    throw std::invalid_argument("Network::inject: packet needs >= 1 flit");
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (payloads[i].width() != cfg_.flit_payload_bits)
      throw std::invalid_argument(
          "Network::inject: payload " + std::to_string(i) + " is " +
          std::to_string(payloads[i].width()) + " bits wide, link carries " +
          std::to_string(cfg_.flit_payload_bits));
  }
  Packet packet;
  packet.id = next_packet_id_++;
  packet.src = src;
  packet.dst = dst;
  packet.inject_cycle = cycle_;
  packet.payloads = std::move(payloads);
  ++stats_.packets_injected;
  stats_.flits_injected += packet.payloads.size();
  const std::uint64_t id = packet.id;
  nis_[src].enqueue(std::move(packet));
  return id;
}

void Network::step() {
  for (auto& ni : nis_) ni.step(cycle_);
  for (auto& router : routers_) router.step(cycle_);
  ++cycle_;
  stats_.cycles = cycle_;
}

void Network::advance_idle(std::uint64_t cycles) {
  if (!idle())
    throw std::logic_error("Network::advance_idle: network is not idle");
  cycle_ += cycles;
  stats_.cycles = cycle_;
}

bool Network::run_until_idle(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (idle()) return true;
    step();
  }
  return idle();
}

bool Network::idle() const noexcept {
  for (const auto& router : routers_)
    if (!router.idle()) return false;
  for (const auto& ni : nis_)
    if (!ni.idle()) return false;
  for (const auto& ch : flit_channels_)
    if (!ch.empty()) return false;
  for (const auto& ch : credit_channels_)
    if (!ch.empty()) return false;
  return true;
}

std::size_t Network::injection_backlog(std::int32_t node) const {
  return nis_[static_cast<std::size_t>(node)].backlog();
}

std::size_t Network::buffered_flits() const noexcept {
  std::size_t total = 0;
  for (const auto& router : routers_) total += router.buffered_flits();
  return total;
}

}  // namespace nocbt::noc
