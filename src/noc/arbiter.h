#pragma once
// Round-robin arbitration, the building block of the router's separable
// virtual-channel and switch allocators.

#include <cstdint>
#include <vector>

namespace nocbt::noc {

/// Round-robin arbiter over `size` requesters. The winner of a grant gets
/// lowest priority on the next arbitration, giving starvation freedom.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t size) : size_(size) {}

  /// Pick the first requesting index at or after the pointer; advances the
  /// pointer past the winner. Returns -1 if nothing is requesting.
  [[nodiscard]] std::int32_t arbitrate(const std::vector<bool>& requests) {
    if (requests.size() != size_ || size_ == 0) return -1;
    for (std::size_t offset = 0; offset < size_; ++offset) {
      const std::size_t idx = (pointer_ + offset) % size_;
      if (requests[idx]) {
        pointer_ = (idx + 1) % size_;
        return static_cast<std::int32_t>(idx);
      }
    }
    return -1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_;
  std::size_t pointer_ = 0;
};

}  // namespace nocbt::noc
