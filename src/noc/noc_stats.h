#pragma once
// Aggregate transport statistics for a simulation run.

#include <cstdint>

#include "common/stats.h"
#include "noc/sim_profiler.h"

namespace nocbt::noc {

/// Counters and distributions collected by the Network.
struct NocStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t cycles = 0;

  /// Step-loop profile (cycles stepped vs. skipped, component steps run
  /// vs. skipped by the active-set engine). Deterministic for a given
  /// config and injection schedule.
  SimProfile sim;

  /// End-to-end packet latency in cycles, source-queueing included.
  RunningStat packet_latency;
  /// Inter-router hops per packet.
  RunningStat packet_hops;

  /// Delivered flits per cycle per node — a throughput figure of merit.
  [[nodiscard]] double flit_throughput(std::int32_t nodes) const noexcept {
    if (cycles == 0 || nodes <= 0) return 0.0;
    return static_cast<double>(flits_delivered) /
           (static_cast<double>(cycles) * nodes);
  }
};

}  // namespace nocbt::noc
