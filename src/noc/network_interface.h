#pragma once
// Network interface (NI): the bridge between a node (PE or memory
// controller) and its router's local port.
//
// Injection side: an unbounded source queue of packets; up to `num_vcs`
// packets are in flight concurrently, one per virtual channel, with
// credit-based backpressure toward the router's local input port.
// Ejection side: flits are drained from the router's local output port,
// reassembled per packet id, and delivered to the node's sink callback;
// a credit returns to the router for every drained flit.

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "noc/arbiter.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "noc/noc_config.h"

namespace nocbt::noc {

class NetworkInterface {
 public:
  using PacketSink = std::function<void(Packet&&, std::uint64_t cycle)>;

  NetworkInterface(const NocConfig& cfg, std::int32_t node);

  /// Wire the injection path (NI -> router local input).
  void connect_injection(Channel<Flit>* to_router,
                         Channel<Credit>* credit_from_router);
  /// Wire the ejection path (router local output -> NI).
  void connect_ejection(Channel<Flit>* from_router,
                        Channel<Credit>* credit_to_router);

  /// Install the delivery callback for reassembled packets.
  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Enqueue a packet for injection (unbounded source queue).
  void enqueue(Packet&& packet) { source_queue_.push_back(std::move(packet)); }

  /// Advance one cycle: accept credits, start queued packets on free VCs,
  /// send at most one flit, drain and reassemble arriving flits. Returns
  /// true while the NI holds state (queued packets, streaming VCs, or
  /// half-reassembled packets) — i.e. whether the active-set engine must
  /// step it again next cycle even if nothing arrives from the router.
  bool step(std::uint64_t cycle);

  /// True when nothing is queued, in flight, or half-reassembled.
  [[nodiscard]] bool idle() const noexcept;

  /// Packets waiting in the source queue (not yet assigned a VC).
  [[nodiscard]] std::size_t backlog() const noexcept {
    return source_queue_.size();
  }

  [[nodiscard]] std::int32_t node() const noexcept { return node_; }

 private:
  struct InjectionVc {
    bool busy = false;
    Packet packet;
    std::size_t next_flit = 0;
    std::int32_t credits;
  };

  void ingest_credits(std::uint64_t cycle);
  void assign_packets();
  void send_one_flit(std::uint64_t cycle);
  void drain_ejection(std::uint64_t cycle);

  const NocConfig& cfg_;
  std::int32_t node_;

  std::deque<Packet> source_queue_;
  std::vector<InjectionVc> inj_vcs_;
  std::vector<bool> inj_requests_;  ///< per-cycle arbiter scratch, reused
  RoundRobinArbiter inj_arb_;
  std::int32_t sticky_vc_ = -1;  ///< VC of the packet currently streaming
  Channel<Flit>* to_router_ = nullptr;
  Channel<Credit>* credit_from_router_ = nullptr;

  Channel<Flit>* from_router_ = nullptr;
  Channel<Credit>* credit_to_router_ = nullptr;
  std::unordered_map<std::uint64_t, Packet> reassembly_;
  PacketSink sink_;
};

}  // namespace nocbt::noc
