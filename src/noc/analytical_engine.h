#pragma once
// Analytical (zero-load) NoC backend — SimEngine::kAnalytical.
//
// Instead of stepping routers cycle by cycle, AnalyticalEngine computes a
// run's measurements directly from the packet schedule:
//
//   * every packet's dimension-ordered route is walked once, producing the
//     exact sequence of physical links it crosses (injection link, D
//     inter-router links, ejection link — the same links, with the same
//     link ids, that Network::build registers);
//   * under zero-load timing, flit f of a packet injected at cycle T
//     crosses its h-th link at cycle T + h*L + f (L = channel latency),
//     so each (packet, link) crossing occupies the closed cycle interval
//     [T + h*L, T + h*L + F - 1];
//   * per-link bit transitions are accumulated by replaying each link's
//     crossings in wire order (sorted by start cycle) through the same
//     LinkAccumulator the cycle engines charge — one boundary popcount
//     plus the packet's precomputed internal transitions per crossing;
//   * zero-load latency, hop counts, drain time and delivery order follow
//     in closed form, reproducing the cycle engines' NocStats
//     byte-for-byte (Welford accumulators included: deliveries are added
//     in the cycle engines' (delivery cycle, destination node) order).
//
// The results are EXACT — bit-identical to Network under either cycle
// engine — precisely when the schedule is congestion-free: on every link,
// the crossing intervals are pairwise disjoint. Disjoint link intervals
// imply no router-internal contention either (two packets can only meet
// inside a router if they share its input or output link), so every flit
// moves at zero-load speed and the analytical timing is the realized
// timing. run() verifies this precondition from the schedule itself and
// reports it; on a contended schedule the totals are a serialized
// approximation and callers (the campaign runner) fall back to a cycle
// engine or fail loudly.
//
// Exactness additionally needs the wormhole credit loop to sustain one
// flit per cycle: vc_buffer_depth >= 2 * channel_latency (the credit
// round trip). unsupported_reason() gates configurations outside that.
//
// Per-link work is embarrassingly parallel: run(threads) partitions links
// across threads with private per-link accumulators and absorbs them into
// the BtRecorder serially in link-id order, so results are identical for
// any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "noc/bt_recorder.h"
#include "noc/noc_config.h"
#include "noc/noc_stats.h"
#include "noc/routing.h"

namespace nocbt::noc {

class AnalyticalEngine {
 public:
  explicit AnalyticalEngine(const NocConfig& cfg);

  AnalyticalEngine(const AnalyticalEngine&) = delete;
  AnalyticalEngine& operator=(const AnalyticalEngine&) = delete;

  /// Why `cfg` cannot be simulated exactly by this backend; empty when it
  /// can. (Cycle engines handle every valid config; the analytical model
  /// additionally needs the credit loop deep enough for back-to-back
  /// flits.)
  [[nodiscard]] static std::string unsupported_reason(const NocConfig& cfg);

  /// Submit a packet injected at `cycle`. Mirrors Network::inject's
  /// validation (bounds, self-traffic gate, payload width); only the
  /// packet's first/last payloads and internal transition count are
  /// retained. Must not be called after run(). Returns the packet id.
  std::uint64_t inject(std::uint64_t cycle, std::int32_t src, std::int32_t dst,
                       const std::vector<BitVec>& payloads);

  /// Evaluate the schedule: per-link flits/BT, NocStats, drain cycle.
  /// Returns true when the schedule was proven congestion-free (results
  /// exact) — false means the totals are a serialized approximation and
  /// contention_detail() names the first oversubscribed link. Callable
  /// once. `threads` only affects wall-clock, never results.
  bool run(unsigned threads = 1);

  /// Non-empty after run() returned false: which link/cycle clashed (or
  /// the unsupported-config reason).
  [[nodiscard]] const std::string& contention_detail() const noexcept {
    return contention_detail_;
  }

  [[nodiscard]] const BtRecorder& bt() const noexcept { return bt_; }
  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }
  /// Drain cycle (valid after run()): the cycle count a cycle engine
  /// reports after run_until_idle on the same schedule.
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] const MeshShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }

 private:
  struct PacketRec {
    std::uint64_t inject_cycle = 0;
    std::int32_t dst = -1;
    std::int32_t hops = 0;       ///< manhattan(src, dst)
    std::uint32_t flits = 0;
    std::uint64_t intra_bt = 0;  ///< transitions between consecutive flits
    BitVec first, last;          ///< head/tail payloads (wire boundary state)
  };
  /// One packet's occupancy of one link: flits push on cycles
  /// [start, start + flits - 1].
  struct Crossing {
    std::uint64_t start = 0;
    std::uint32_t packet = 0;  ///< index into packets_
  };

  /// Replay one link's crossings in wire order. Returns false (and fills
  /// `detail` once) when two crossings overlap.
  bool evaluate_link(std::size_t link, LinkAccumulator& acc,
                     std::string& detail) const;

  NocConfig cfg_;
  MeshShape shape_;
  BtRecorder bt_;
  NocStats stats_;
  std::uint64_t cycle_ = 0;
  bool ran_ = false;
  std::string contention_detail_;

  std::vector<PacketRec> packets_;
  // Link table in Network::build registration order. inter_link_[node*4 +
  // port] is the inter-router link id out of `node` through `port` (-1 at
  // mesh edges); injection_link_/ejection_link_ are per node.
  std::vector<std::int32_t> inter_link_;
  std::vector<std::int32_t> injection_link_;
  std::vector<std::int32_t> ejection_link_;
  std::vector<std::vector<Crossing>> crossings_;  ///< per link id
};

}  // namespace nocbt::noc
