#include "noc/routing.h"

#include <cstdlib>

namespace nocbt::noc {

std::int32_t MeshShape::neighbor(std::int32_t node, Port port) const noexcept {
  Coord c = coord_of(node);
  switch (port) {
    case kEast: ++c.x; break;
    case kWest: --c.x; break;
    case kNorth: --c.y; break;
    case kSouth: ++c.y; break;
    default: return -1;
  }
  return contains(c) ? node_at(c) : -1;
}

std::int32_t MeshShape::manhattan(std::int32_t a, std::int32_t b) const noexcept {
  const Coord ca = coord_of(a);
  const Coord cb = coord_of(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

Port opposite(Port port) {
  switch (port) {
    case kEast: return kWest;
    case kWest: return kEast;
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    default: throw std::invalid_argument("opposite: not a direction port");
  }
}

Port route_dimension_ordered(const MeshShape& shape, RoutingAlgorithm algorithm,
                             std::int32_t current, std::int32_t dst) {
  const Coord cur = shape.coord_of(current);
  const Coord target = shape.coord_of(dst);
  const bool x_first = algorithm == RoutingAlgorithm::kXY;
  if (x_first) {
    if (target.x > cur.x) return kEast;
    if (target.x < cur.x) return kWest;
    if (target.y > cur.y) return kSouth;
    if (target.y < cur.y) return kNorth;
  } else {
    if (target.y > cur.y) return kSouth;
    if (target.y < cur.y) return kNorth;
    if (target.x > cur.x) return kEast;
    if (target.x < cur.x) return kWest;
  }
  return kLocal;
}

}  // namespace nocbt::noc
