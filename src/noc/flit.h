#pragma once
// Flit, packet and credit types — the units of transport in the NoC.
//
// A packet is a sequence of flits; the head flit opens a wormhole (route +
// virtual channel) that body flits follow and the tail flit closes. Routing
// and sequencing information is modeled out-of-band (sideband wires), as in
// BookSim-class simulators; bit-transition accounting therefore covers the
// payload wires only, matching the per-flit accounting of the paper (a
// config option adds a modeled header later in the BT recorder).

#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace nocbt::noc {

/// Position of a flit within its packet.
enum class FlitKind : std::uint8_t {
  kHead,      ///< first flit of a multi-flit packet
  kBody,      ///< middle flit
  kTail,      ///< last flit of a multi-flit packet
  kHeadTail,  ///< single-flit packet
};

[[nodiscard]] constexpr bool is_head(FlitKind k) noexcept {
  return k == FlitKind::kHead || k == FlitKind::kHeadTail;
}
[[nodiscard]] constexpr bool is_tail(FlitKind k) noexcept {
  return k == FlitKind::kTail || k == FlitKind::kHeadTail;
}

/// One flit in flight. Value type; moved through channels and buffers.
struct Flit {
  FlitKind kind = FlitKind::kHeadTail;
  std::uint64_t packet_id = 0;  ///< globally unique (assigned at injection)
  std::int32_t src = -1;        ///< source node id
  std::int32_t dst = -1;        ///< destination node id
  std::int32_t vc = -1;         ///< virtual channel on the *current* link
  std::uint32_t seq = 0;        ///< index of this flit within its packet
  std::uint32_t num_flits = 1;  ///< total flits in the packet
  std::uint64_t inject_cycle = 0;  ///< cycle the packet entered the source queue
  std::uint16_t hops = 0;          ///< inter-router links traversed so far
  BitVec payload;                  ///< link-width payload bits
};

/// A credit returned upstream when a buffer slot frees.
struct Credit {
  std::int32_t vc = -1;
};

/// A whole packet, as submitted to / reassembled by a network interface.
struct Packet {
  std::uint64_t id = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::vector<BitVec> payloads;    ///< one payload per flit; never empty
  std::uint64_t inject_cycle = 0;  ///< set by Network::inject
  std::uint64_t eject_cycle = 0;   ///< set on delivery
  std::uint16_t hops = 0;          ///< hops taken by the tail flit
};

}  // namespace nocbt::noc
