#pragma once
// Input-queued virtual-channel wormhole router.
//
// Pipeline per cycle (single-cycle router, links add `channel_latency`):
//   1. credit ingest        — replenish per-output-VC credit counters
//   2. flit ingest          — channel -> per-VC input FIFO
//   3. route computation    — head flit picks an output port (X-Y / Y-X)
//   4. VC allocation        — head flit acquires a free downstream VC
//   5. switch allocation    — separable input-first round-robin allocator
//   6. switch traversal     — winners cross to the output channel, a credit
//                             returns upstream, tail flits release the VC
//
// VC reuse is relaxed (the downstream VC is released when the tail is
// *sent*); FIFO order per link per VC keeps packets well-formed downstream.
//
// Hot-path storage is allocation-free in steady state: VC input FIFOs are
// fixed rings sized by `vc_buffer_depth`, and the allocators' request
// vectors are members reused every cycle instead of per-cycle temporaries.

#include <array>
#include <cstdint>
#include <vector>

#include "noc/arbiter.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "noc/flit_ring.h"
#include "noc/noc_config.h"
#include "noc/routing.h"

namespace nocbt::noc {

class Router {
 public:
  Router(const NocConfig& cfg, const MeshShape& shape, std::int32_t id);

  /// Wire an input port: flits arrive on `in_flits`; credits for freed
  /// buffer slots are returned upstream on `credit_return`.
  void connect_input(Port port, Channel<Flit>* in_flits,
                     Channel<Credit>* credit_return);

  /// Wire an output port: flits depart on `out_flits`; downstream credits
  /// arrive on `credit_in`.
  void connect_output(Port port, Channel<Flit>* out_flits,
                      Channel<Credit>* credit_in);

  /// Advance one cycle. Returns true while the router holds state that can
  /// make progress without external input (any VC non-idle or non-empty) —
  /// i.e. whether the active-set engine must step it again next cycle even
  /// if no flit or credit arrives.
  bool step(std::uint64_t cycle);

  /// True when no flit is buffered and every VC is idle.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] std::int32_t id() const noexcept { return id_; }

  /// Total flits currently buffered (for diagnostics).
  [[nodiscard]] std::size_t buffered_flits() const noexcept;

 private:
  enum class VcStage : std::uint8_t { kIdle, kRouting, kWaitingVc, kActive };

  struct VcState {
    VcStage stage = VcStage::kIdle;
    Port out_port = kLocal;
    std::int32_t out_vc = -1;
    FlitRing buffer;

    explicit VcState(std::size_t depth) : buffer(depth) {}
  };

  struct InputUnit {
    Channel<Flit>* in = nullptr;
    Channel<Credit>* credit_return = nullptr;
    std::vector<VcState> vcs;
    RoundRobinArbiter vc_arb;  // picks which VC bids for the switch

    InputUnit(std::size_t num_vcs, std::size_t depth) : vc_arb(num_vcs) {
      vcs.reserve(num_vcs);
      for (std::size_t v = 0; v < num_vcs; ++v) vcs.emplace_back(depth);
    }
  };

  struct OutputUnit {
    Channel<Flit>* out = nullptr;
    Channel<Credit>* credit_in = nullptr;
    std::vector<std::int32_t> credits;  // per downstream VC
    std::vector<bool> vc_free;          // downstream VC not owned by a packet
    RoundRobinArbiter vc_alloc_arb;     // among (in_port * V + vc) bidders
    RoundRobinArbiter switch_arb;       // among input ports

    OutputUnit(std::size_t num_vcs, std::int32_t depth)
        : credits(num_vcs, depth),
          vc_free(num_vcs, true),
          vc_alloc_arb(num_vcs * kNumPorts),
          switch_arb(kNumPorts) {}
  };

  void ingest_credits(std::uint64_t cycle);
  void ingest_flits(std::uint64_t cycle);
  void compute_routes();
  void allocate_vcs();
  void allocate_and_traverse_switch(std::uint64_t cycle);
  /// After a tail departs, restart the VC state machine if another packet's
  /// head is already queued behind it.
  void refresh_vc(VcState& vc);

  const NocConfig& cfg_;
  const MeshShape& shape_;
  std::int32_t id_;
  std::vector<InputUnit> inputs_;    // indexed by Port
  std::vector<OutputUnit> outputs_;  // indexed by Port

  // Per-cycle allocator scratch, reused to keep the step loop free of heap
  // allocation (sized once in the constructor).
  std::vector<bool> vc_alloc_requests_;    // num_vcs * kNumPorts bidders
  std::vector<bool> input_vc_requests_;    // num_vcs bidders per input port
  std::vector<bool> switch_requests_;      // kNumPorts bidders per output
  std::array<std::int32_t, kNumPorts> nominee_{};  // chosen VC per input port
};

}  // namespace nocbt::noc
