#pragma once
// Packet trace: the "packet traffic trace" output of the platform (Fig. 7).
//
// Records one event per packet delivery; can be dumped to CSV for offline
// analysis or replayed as a synthetic workload.

#include <cstdint>
#include <string>
#include <vector>

namespace nocbt::noc {

/// One delivered-packet record.
struct TraceEvent {
  std::uint64_t packet_id = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::uint32_t num_flits = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t eject_cycle = 0;
  std::uint16_t hops = 0;
};

/// Append-only trace with CSV export.
class PacketTrace {
 public:
  void record(const TraceEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Write all events to `path` as CSV. Returns rows written.
  std::size_t dump_csv(const std::string& path) const;

  /// Parse a CSV previously written by dump_csv, so a recorded trace can be
  /// replayed as a synthetic workload. Throws std::runtime_error on a
  /// missing file, wrong header, or malformed row.
  [[nodiscard]] static PacketTrace load_csv(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nocbt::noc
