#pragma once
// Packet trace: the "packet traffic trace" output of the platform (Fig. 7).
//
// Records one event per packet delivery; can be dumped to CSV for offline
// analysis or replayed as a synthetic workload.

#include <cstdint>
#include <string>
#include <vector>

namespace nocbt::noc {

/// One delivered-packet record. `weights`/`inputs` optionally carry the
/// packet's pre-ordering payload patterns (equal lengths; empty = geometry
/// and timing only): with payloads a replayed trace reproduces the original
/// run's per-link bit transitions exactly, which is what lets a placed DNN
/// schedule be dumped and replayed byte-identically.
struct TraceEvent {
  std::uint64_t packet_id = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::uint32_t num_flits = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t eject_cycle = 0;
  std::uint16_t hops = 0;
  std::vector<std::uint32_t> weights;
  std::vector<std::uint32_t> inputs;

  [[nodiscard]] bool has_payload() const noexcept {
    return !weights.empty() || !inputs.empty();
  }
};

/// Append-only trace with CSV export.
class PacketTrace {
 public:
  void record(const TraceEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Write all events to `path` as CSV. Traces without payloads use the
  /// original 8-column format (byte-stable with earlier versions); as soon
  /// as any event carries payloads, two extra columns (`weights`,`inputs`)
  /// hold each stream as concatenated 8-hex-digit words. Returns rows
  /// written.
  std::size_t dump_csv(const std::string& path) const;

  /// Parse a CSV previously written by dump_csv (either format), so a
  /// recorded trace can be replayed as a synthetic workload. Throws
  /// std::runtime_error on a missing file, wrong header, or malformed row.
  [[nodiscard]] static PacketTrace load_csv(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nocbt::noc
