// Ablation A6: why the paper's float-32 reductions (~20%, Table I) do not
// emerge from popcount-only ordering of IEEE-754 weights — and what weight
// precision would make them emerge.
//
// On full-precision weights the 23 mantissa bits are i.i.d. coin flips;
// they dominate the popcount, so sorting by popcount barely correlates with
// actual pattern similarity and the measured reduction is a few percent.
// If the float-32 payloads carry *reduced-precision* values (weights that
// came from fp16/bf16 storage or compression, common in accelerator memory
// hierarchies), the mantissa entropy collapses, popcount becomes dominated
// by sign/exponent structure, and ordering recovers reductions of the
// magnitude the paper reports. This sweep quantifies that transition.

#include <cstdio>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/float_bits.h"
#include "common/table.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

constexpr unsigned kValuesPerFlit = 8;
constexpr std::size_t kWindow = 8 * 32;

/// Round a float's mantissa to `bits` bits (round-to-nearest-even on the
/// kept bits, like a conversion through a lower-precision format).
std::uint32_t truncate_mantissa(std::uint32_t pattern, unsigned bits) {
  if (bits >= 23) return pattern;
  const unsigned drop = 23 - bits;
  const std::uint32_t half = 1u << (drop - 1);
  std::uint32_t rounded = pattern + half;
  rounded &= ~((1u << drop) - 1);
  return rounded;
}

}  // namespace

int main() {
  std::puts("=== Ablation A6: float-32 ordering vs mantissa precision ===");
  std::puts("(training LeNet...)\n");
  auto lenet = benchutil::make_lenet_trained(42);
  const auto weights = lenet.weight_values();
  const auto source = analysis::make_patterns(weights, DataFormat::kFloat32);

  AsciiTable table({"Mantissa bits kept", "BT/flit baseline",
                    "BT/flit ordered", "Reduction"});
  for (unsigned bits : {23u, 16u, 10u, 7u, 4u, 2u, 0u}) {
    std::vector<std::uint32_t> reduced;
    reduced.reserve(source.patterns.size());
    for (const auto p : source.patterns)
      reduced.push_back(truncate_mantissa(p, bits));
    const auto tiled = analysis::tile_patterns(reduced, kWindow * 2000);
    const auto baseline =
        analysis::pattern_stream_bt(tiled, DataFormat::kFloat32, kValuesPerFlit);
    const auto ordered = analysis::pattern_stream_bt(
        ordering::order_stream_descending(tiled, DataFormat::kFloat32, kWindow),
        DataFormat::kFloat32, kValuesPerFlit);
    table.add_row({bits == 23 ? "23 (full fp32)" : std::to_string(bits),
                   format_double(baseline.bt_per_flit(), 2),
                   format_double(ordered.bt_per_flit(), 2),
                   format_percent(1.0 - ordered.bt_per_flit() /
                                            baseline.bt_per_flit())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nReading: at full precision popcount ordering saves only a few");
  std::puts("percent; once mantissa entropy drops toward fp16/bf16-class");
  std::puts("precision, reductions reach the ~20% band of the paper's Table I.");
  return 0;
}
