// Regenerates paper Table II: synthesis results of the ordering unit vs the
// router, from the calibrated gate-equivalent model (see DESIGN.md for the
// Synopsys-DC substitution).

#include <cstdio>

#include "common/table.h"
#include "hw/gate_model.h"
#include "ordering/ordering_unit.h"

using namespace nocbt;

int main() {
  std::puts("=== Table II: synthesis results of ordering unit and router ===");
  std::puts("TSMC 90nm-calibrated model, 125 MHz, 1.0 V\n");

  hw::OrderingUnitCostModel unit_model(ordering::OrderingUnitConfig{16, 32, 1});
  const hw::BlockCost unit = unit_model.unit_cost();
  const hw::BlockCost four_units = unit_model.units_cost(4);
  const hw::BlockCost router = hw::router_reference_cost(1);
  const hw::BlockCost routers64 = hw::router_reference_cost(64);

  AsciiTable table({"Metric", "Ordering unit", "Four units", "One router",
                    "64 routers", "Paper (unit/router)"});
  table.add_row({"Power (mW)", format_double(unit.power_mw, 3),
                 format_double(four_units.power_mw, 3),
                 format_double(router.power_mw, 2),
                 format_double(routers64.power_mw, 2), "2.213 / 16.92"});
  table.add_row({"Area (kGE)", format_double(unit.kilo_ge, 2),
                 format_double(four_units.kilo_ge, 2),
                 format_double(router.kilo_ge, 2),
                 format_double(routers64.kilo_ge, 2), "12.91 / 125.54"});
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nStructural breakdown of the 16-lane x 32-bit unit (raw GE):");
  AsciiTable breakdown({"Block", "GE"});
  breakdown.add_row({"SWAR pop-count trees",
                     format_double(unit_model.popcount_ge(), 0)});
  breakdown.add_row({"Transposition sort network",
                     format_double(unit_model.sorter_ge(), 0)});
  breakdown.add_row({"Lane registers",
                     format_double(unit_model.register_ge(), 0)});
  std::fputs(breakdown.render().c_str(), stdout);

  std::puts("\nScaling (lanes x value bits -> unit kGE / mW):");
  AsciiTable scaling({"Configuration", "kGE", "mW", "sort cycles/batch"});
  for (const auto& [lanes, bits] :
       {std::pair{8u, 8u}, {16u, 8u}, {16u, 32u}, {32u, 32u}, {64u, 32u}}) {
    const ordering::OrderingUnitConfig cfg{lanes, bits, 1};
    const auto cost = hw::OrderingUnitCostModel(cfg).unit_cost();
    const ordering::OrderingUnitModel timing(cfg);
    scaling.add_row({std::to_string(lanes) + " x " + std::to_string(bits) + "b",
                     format_double(cost.kilo_ge, 2),
                     format_double(cost.power_mw, 3),
                     std::to_string(timing.cycles_to_order(lanes))});
  }
  std::fputs(scaling.render().c_str(), stdout);
  return 0;
}
