#pragma once
// Shared workload construction for the benchmark harness: the models and
// inputs every table/figure bench draws from. Everything is seeded and
// deterministic.

#include <cstdint>

#include "dnn/sequential.h"
#include "dnn/tensor.h"

namespace nocbt::benchutil {

/// LeNet-5 with Kaiming-random weights (the paper's "randomly initialized
/// weights" configuration).
[[nodiscard]] dnn::Sequential make_lenet_random(std::uint64_t seed);

/// LeNet-5 actually trained from scratch on the synthetic stroke dataset
/// (the paper's "trained LeNet weights" configuration; see DESIGN.md for
/// the MNIST substitution). Trains in a few seconds; prints nothing.
[[nodiscard]] dnn::Sequential make_lenet_trained(std::uint64_t seed);

/// DarkNetSmall with trained-like (Laplace) weights — training the conv
/// stack would dominate bench time, and only the weight distribution
/// matters for BT (DESIGN.md substitution table).
[[nodiscard]] dnn::Sequential make_darknet_trained_like(std::uint64_t seed);

/// One synthetic 1x32x32 inference input for LeNet.
[[nodiscard]] dnn::Tensor lenet_input(std::uint64_t seed);

/// One synthetic 3x64x64 inference input for DarkNetSmall.
[[nodiscard]] dnn::Tensor darknet_input(std::uint64_t seed);

}  // namespace nocbt::benchutil
