#include "bench_util.h"

#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "dnn/trainer.h"

namespace nocbt::benchutil {

dnn::Sequential make_lenet_random(std::uint64_t seed) {
  Rng rng(seed);
  return dnn::build_lenet(rng);
}

dnn::Sequential make_lenet_trained(std::uint64_t seed) {
  Rng rng(seed);
  dnn::Sequential model = dnn::build_lenet(rng);

  // Real trained convnets have heavy-tailed, zero-concentrated weights —
  // that takes >1000 SGD steps with weight decay to emerge from a uniform
  // init, so the trained model is cached on disk across bench runs.
  const std::string cache =
      "/tmp/nocbt_lenet_trained_v3_" + std::to_string(seed) + ".bin";
  try {
    model.load_weights(cache);
    return model;
  } catch (const std::runtime_error&) {
    // Cache miss: train from scratch below.
  }

  dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed + 1);
  dnn::Trainer::Config cfg;
  cfg.epochs = 32;
  cfg.steps_per_epoch = 50;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.03f;
  cfg.sgd.weight_decay = 6e-3f;  // drives the zero-concentration that the
                                 // ordering exploits on fixed-8 data
  dnn::Trainer trainer(model, data, cfg);
  (void)trainer.train();
  try {
    model.save_weights(cache);
  } catch (const std::runtime_error&) {
    // A read-only /tmp only costs retraining next run.
  }
  return model;
}

dnn::Sequential make_darknet_trained_like(std::uint64_t seed) {
  Rng rng(seed);
  dnn::Sequential model = dnn::build_darknet_small(rng);
  dnn::fill_weights_trained_like(model, rng, 0.04);
  return model;
}

dnn::Tensor lenet_input(std::uint64_t seed) {
  dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed);
  return data.sample(1).images;
}

dnn::Tensor darknet_input(std::uint64_t seed) {
  dnn::SyntheticDataset::Config cfg;
  cfg.channels = 3;
  cfg.height = 64;
  cfg.width = 64;
  dnn::SyntheticDataset data(cfg, seed);
  return data.sample(1).images;
}

}  // namespace nocbt::benchutil
