// Regenerates paper Fig. 13: normalized BTs for different DNN models —
// LeNet and the DarkNet-like model — under O0/O1/O2 on the default 4x4
// mesh with 2 MCs, both data formats.
//
// Paper reference: up to 35.93% reduction for LeNet and up to 40.85% for
// DarkNet; separated-ordering is always the best.

#include <cstdio>

#include "accel/platform.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;
using ordering::OrderingMode;

int main() {
  std::puts("=== Fig. 13: normalized BTs for different NN models (4x4 MC2) ===");
  std::puts("(preparing models: training LeNet, synthesizing DarkNet weights...)\n");

  auto lenet = benchutil::make_lenet_trained(42);
  const auto lenet_in = benchutil::lenet_input(7);
  auto darknet = benchutil::make_darknet_trained_like(43);
  const auto darknet_in = benchutil::darknet_input(8);

  struct ModelEntry {
    const char* name;
    dnn::Sequential* model;
    const dnn::Tensor* input;
  } models[] = {{"LeNet", &lenet, &lenet_in},
                {"DarkNet", &darknet, &darknet_in}};

  const OrderingMode modes[] = {OrderingMode::kBaseline,
                                OrderingMode::kAffiliated,
                                OrderingMode::kSeparated};

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s ---\n", to_string(format).c_str());
    AsciiTable table({"Model", "O0 (norm)", "O1 (norm)", "O2 (norm)",
                      "O1 reduction", "O2 reduction"});
    for (const auto& entry : models) {
      std::uint64_t bt[3];
      for (int m = 0; m < 3; ++m) {
        accel::AccelConfig cfg =
            accel::AccelConfig::defaults(format, modes[m], 4, 4, 2);
        accel::NocDnaPlatform platform(cfg, *entry.model);
        bt[m] = platform.run(*entry.input).bt_total;
      }
      const auto norm = [&](int m) {
        return format_double(
            static_cast<double>(bt[m]) / static_cast<double>(bt[0]), 4);
      };
      const auto reduction = [&](int m) {
        return format_percent(1.0 - static_cast<double>(bt[m]) /
                                        static_cast<double>(bt[0]));
      };
      table.add_row({entry.name, norm(0), norm(1), norm(2), reduction(1),
                     reduction(2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }

  std::puts("Expected shape: separated-ordering (O2) achieves the highest");
  std::puts("reduction for both models (paper: up to 35.93% LeNet, 40.85% DarkNet).");
  return 0;
}
