// micro_cache: the campaign service's content-addressed scenario cache as
// a measured micro-benchmark.
//
//   $ ./micro_cache                        # human-readable summary
//   $ ./micro_cache --json BENCH_cache.json
//   $ ./micro_cache --cache-dir DIR       # override the scratch store
//
// Runs the CI reference sweep twice through one on-disk cache_dir: a cold
// pass into a freshly-wiped store (every row simulated and persisted) and
// a warm pass over the same store (every row replayed). Self-timed — no
// google-benchmark dependency, so it is always built. The --json document
// is the machine-readable gate CI asserts on: the warm pass must simulate
// nothing (100% hit rate), replay rows byte-identical to the cold pass,
// and be at least 5x faster. Wall-clock fields are informative for humans;
// the hit counts and the identity bit are deterministic.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/config.h"
#include "common/json_writer.h"
#include "noc/noc_config.h"
#include "ordering/ordering.h"
#include "sim/campaign_config.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"

using namespace nocbt;

namespace {

/// The CI reference sweep: synthetic uniform + hotspot traffic, every
/// ordering strategy, both codecs, on an 8x8 mesh with the cycle engine
/// pinned (engine=auto would serve uniform rows analytically and shrink
/// the simulation cost the cold pass is supposed to pay).
sim::CampaignSpec reference_sweep() {
  Options opts;  // defaults only; the template is all-explicit below
  sim::CampaignSpec camp = sim::campaign_from_options(opts);
  camp.name = "micro_cache";
  camp.root_seed = 2025;
  camp.generators = {sim::GeneratorKind::kUniform,
                     sim::GeneratorKind::kHotspot};
  camp.modes = ordering::all_ordering_modes();
  camp.formats = {DataFormat::kFixed8, DataFormat::kFloat32};
  camp.meshes = {sim::parse_mesh_spec("8x8mc4")};
  camp.windows = {64};
  camp.base.packets = 512;
  camp.base.injection_rate = 0.5;
  camp.base.engine_auto = false;
  camp.base.engine = noc::SimEngine::kActiveSet;
  return camp;
}

struct BenchRun {
  std::size_t rows = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::size_t cold_simulated = 0;
  std::size_t warm_simulated = 0;
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  bool rows_identical = false;
};

double now_since_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

BenchRun run_cold_then_warm(const std::string& cache_dir) {
  const sim::CampaignSpec camp = reference_sweep();
  std::filesystem::remove_all(cache_dir);  // the cold pass must be cold
  sim::RunnerConfig runner;
  runner.threads = 1;  // single-threaded so the timings compare like runs
  runner.exec.cache_dir = cache_dir;

  BenchRun run;
  auto start = std::chrono::steady_clock::now();
  const sim::CampaignResult cold = sim::run_campaign(camp, runner);
  run.cold_ms = now_since_ms(start);

  start = std::chrono::steady_clock::now();
  const sim::CampaignResult warm = sim::run_campaign(camp, runner);
  run.warm_ms = now_since_ms(start);

  run.rows = cold.rows.size();
  run.cold_simulated = cold.stats.simulated;
  run.warm_simulated = warm.stats.simulated;
  run.warm_hits = warm.stats.cache_hits;
  run.warm_misses = warm.rows.size() - warm.stats.cache_hits;
  run.rows_identical =
      sim::json_report(camp, cold) == sim::json_report(camp, warm);
  std::filesystem::remove_all(cache_dir);
  return run;
}

int run_json(const std::string& path, const std::string& cache_dir) {
  const BenchRun run = run_cold_then_warm(cache_dir);
  JsonWriter json;
  json.begin_object()
      .key("bench").value("micro_cache")
      .key("mesh").value("8x8mc4")
      .key("rows").value(static_cast<std::uint64_t>(run.rows))
      .key("cold_ms").value(run.cold_ms)
      .key("warm_ms").value(run.warm_ms)
      .key("speedup").value(run.warm_ms > 0.0 ? run.cold_ms / run.warm_ms
                                              : 0.0)
      .key("cold_simulated").value(
          static_cast<std::uint64_t>(run.cold_simulated))
      .key("warm_simulated").value(
          static_cast<std::uint64_t>(run.warm_simulated))
      .key("warm_hits").value(static_cast<std::uint64_t>(run.warm_hits))
      .key("warm_misses").value(static_cast<std::uint64_t>(run.warm_misses))
      .key("rows_identical").value(run.rows_identical)
      .end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "micro_cache: cannot open %s\n", path.c_str());
    return 1;
  }
  out << json.take() << '\n';
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string json_path;
    std::string cache_dir =
        (std::filesystem::temp_directory_path() / "nocbt_micro_cache")
            .string();
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        json_path = argv[++i];
      else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc)
        cache_dir = argv[++i];
    }
    if (!json_path.empty()) return run_json(json_path, cache_dir);

    const BenchRun run = run_cold_then_warm(cache_dir);
    std::printf("micro_cache: %zu rows\n", run.rows);
    std::printf("  cold: %8.2f ms  (%zu simulated)\n", run.cold_ms,
                run.cold_simulated);
    std::printf("  warm: %8.2f ms  (%zu hits, %zu misses, %zu simulated)\n",
                run.warm_ms, run.warm_hits, run.warm_misses,
                run.warm_simulated);
    std::printf("  speedup: %.1fx  rows_identical: %s\n",
                run.warm_ms > 0.0 ? run.cold_ms / run.warm_ms : 0.0,
                run.rows_identical ? "yes" : "NO");
    return run.rows_identical && run.warm_simulated == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_cache: %s\n", e.what());
    return 2;
  }
}
