// Regenerates paper Fig. 12: absolute BT counts and reduction rates for
// full LeNet inference on the NOC-DNA across NoC sizes — 4x4 mesh with 2
// MCs, 8x8 with 4 MCs, 8x8 with 8 MCs — for O0/O1/O2 and both data formats
// (512-bit links for float-32, 128-bit for fixed-8; 4 VCs, 4-flit buffers,
// X-Y routing, §V-B).
//
// Since PR 2 this bench is a thin spec over the scenario campaign engine:
// the grid {formats} x {modes} x {meshes} expands into model-workload
// scenarios executed on a worker pool (the runner measures the O0 baseline
// inside each scenario), proving the campaign path reproduces a paper
// figure end to end. Any registered ordering strategy is sweepable:
//
//   $ ./fig12_noc_sizes                      # paper figure: O1, O2
//   $ ./fig12_noc_sizes modes=O2,hybrid,chain,bucket
//
// Paper reference: affiliated 12.09-18.58% (float-32) / 7.88-17.75%
// (fixed-8); separated 23.30-32.01% (float-32) / 16.95-35.93% (fixed-8);
// the 8x8-MC4 configuration shows the largest absolute BT (most routers
// per MC => most hops).

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "common/table.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"

using namespace nocbt;
using ordering::OrderingMode;

namespace {

const sim::ScenarioResult& find_row(const sim::CampaignResult& result,
                                    const std::string& name) {
  for (const auto& row : result.rows)
    if (row.spec.name == name) {
      if (!row.error.empty())
        throw std::runtime_error("scenario " + name + " failed: " + row.error);
      return row;
    }
  throw std::runtime_error("scenario " + name + " missing from campaign");
}

}  // namespace

int main(int argc, char** argv) try {
  const Options opts = Options::parse(argc, argv);
  const std::vector<OrderingMode> modes =
      ordering::parse_ordering_mode_list(opts.get_string("modes", "O1,O2"));

  std::puts("=== Fig. 12: BTs across different NoC sizes (full LeNet inference) ===");
  std::puts("(training LeNet on the synthetic dataset...)\n");
  // Warm the on-disk trained-weights cache serially so the campaign's
  // worker threads all hit it instead of racing to train.
  (void)benchutil::make_lenet_trained(42);

  sim::CampaignSpec camp;
  camp.name = "fig12_noc_sizes";
  camp.generators = {sim::GeneratorKind::kModel};
  camp.formats = {DataFormat::kFloat32, DataFormat::kFixed8};
  camp.modes = modes;
  camp.meshes = {{4, 4, 2}, {8, 8, 4}, {8, 8, 8}};
  camp.windows = {0};  // model workloads have no synthetic ordering window
  camp.base.model_seed = 42;
  camp.base.input_seed = 7;
  camp.hooks.model = [](std::uint64_t seed) {
    return benchutil::make_lenet_trained(seed);
  };
  camp.hooks.input = [](std::uint64_t seed) {
    return benchutil::lenet_input(seed);
  };

  sim::RunnerConfig runner;
  runner.threads = static_cast<unsigned>(opts.get_int("threads", 4));
  const sim::CampaignResult result = sim::run_campaign(camp, runner);

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s (%u-bit links, 16 values/flit) ---\n",
                to_string(format).c_str(), 16 * value_bits(format));
    std::vector<std::string> headers{"NoC", "O0 BT"};
    for (const OrderingMode mode : modes) {
      const std::string key = ordering::short_mode_name(mode);
      headers.push_back(key + " BT");
      headers.push_back(key + " reduction");
    }
    headers.push_back("cycles");
    AsciiTable table(headers);
    for (const sim::MeshSpec& mesh : camp.meshes) {
      std::vector<std::string> cells{std::to_string(mesh.rows) + "x" +
                                     std::to_string(mesh.cols) + " MC" +
                                     std::to_string(mesh.mcs)};
      std::string cycles;
      for (const OrderingMode mode : modes) {
        const auto& row = find_row(
            result, sim::scenario_name(sim::GeneratorKind::kModel, format,
                                       mode, mesh, 0));
        if (cells.size() == 1)
          cells.push_back(std::to_string(row.bt_baseline));
        cells.push_back(std::to_string(row.bt_ordered));
        cells.push_back(format_percent(row.reduction));
        if (cycles.empty()) cycles = std::to_string(row.cycles);
      }
      cells.push_back(cycles);
      table.add_row(cells);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }

  std::puts("Expected shape: O2 > O1 > 0 reduction everywhere; 8x8-MC4 has");
  std::puts("the largest absolute BT (most routers per MC => longest routes).");
  std::puts("Paper bands: O1 12.09-18.58% (f32) / 7.88-17.75% (fx8);");
  std::puts("             O2 23.30-32.01% (f32) / 16.95-35.93% (fx8).");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "fig12_noc_sizes: %s\n", e.what());
  return 2;
}
