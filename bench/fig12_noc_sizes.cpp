// Regenerates paper Fig. 12: absolute BT counts and reduction rates for
// full LeNet inference on the NOC-DNA across NoC sizes — 4x4 mesh with 2
// MCs, 8x8 with 4 MCs, 8x8 with 8 MCs — for O0/O1/O2 and both data formats
// (512-bit links for float-32, 128-bit for fixed-8; 4 VCs, 4-flit buffers,
// X-Y routing, §V-B).
//
// Since PR 2 this bench is a thin spec over the scenario campaign engine:
// the grid {formats} x {O1, O2} x {meshes} expands into model-workload
// scenarios executed on a worker pool (the runner measures the O0 baseline
// inside each scenario), proving the campaign path reproduces a paper
// figure end to end.
//
// Paper reference: affiliated 12.09-18.58% (float-32) / 7.88-17.75%
// (fixed-8); separated 23.30-32.01% (float-32) / 16.95-35.93% (fixed-8);
// the 8x8-MC4 configuration shows the largest absolute BT (most routers
// per MC => most hops).

#include <cstdio>
#include <stdexcept>

#include "bench_util.h"
#include "common/table.h"
#include "sim/campaign.h"

using namespace nocbt;
using ordering::OrderingMode;

namespace {

const sim::ScenarioResult& find_row(const sim::CampaignResult& result,
                                    const std::string& name) {
  for (const auto& row : result.rows)
    if (row.spec.name == name) {
      if (!row.error.empty())
        throw std::runtime_error("scenario " + name + " failed: " + row.error);
      return row;
    }
  throw std::runtime_error("scenario " + name + " missing from campaign");
}

}  // namespace

int main() {
  std::puts("=== Fig. 12: BTs across different NoC sizes (full LeNet inference) ===");
  std::puts("(training LeNet on the synthetic dataset...)\n");
  // Warm the on-disk trained-weights cache serially so the campaign's
  // worker threads all hit it instead of racing to train.
  (void)benchutil::make_lenet_trained(42);

  sim::CampaignSpec camp;
  camp.name = "fig12_noc_sizes";
  camp.generators = {sim::GeneratorKind::kModel};
  camp.formats = {DataFormat::kFloat32, DataFormat::kFixed8};
  camp.modes = {OrderingMode::kAffiliated, OrderingMode::kSeparated};
  camp.meshes = {{4, 4, 2}, {8, 8, 4}, {8, 8, 8}};
  camp.windows = {0};  // model workloads have no synthetic ordering window
  camp.base.model_seed = 42;
  camp.base.input_seed = 7;
  camp.hooks.model = [](std::uint64_t seed) {
    return benchutil::make_lenet_trained(seed);
  };
  camp.hooks.input = [](std::uint64_t seed) {
    return benchutil::lenet_input(seed);
  };

  sim::RunnerConfig runner;
  runner.threads = 4;
  const sim::CampaignResult result = sim::run_campaign(camp, runner);

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s (%u-bit links, 16 values/flit) ---\n",
                to_string(format).c_str(), 16 * value_bits(format));
    AsciiTable table({"NoC", "O0 BT", "O1 BT", "O1 reduction", "O2 BT",
                      "O2 reduction", "cycles"});
    for (const sim::MeshSpec& mesh : camp.meshes) {
      const auto& o1 = find_row(
          result, sim::scenario_name(sim::GeneratorKind::kModel, format,
                                     OrderingMode::kAffiliated, mesh, 0));
      const auto& o2 = find_row(
          result, sim::scenario_name(sim::GeneratorKind::kModel, format,
                                     OrderingMode::kSeparated, mesh, 0));
      table.add_row({std::to_string(mesh.rows) + "x" +
                         std::to_string(mesh.cols) + " MC" +
                         std::to_string(mesh.mcs),
                     std::to_string(o1.bt_baseline),
                     std::to_string(o1.bt_ordered),
                     format_percent(o1.reduction),
                     std::to_string(o2.bt_ordered),
                     format_percent(o2.reduction),
                     std::to_string(o1.cycles)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }

  std::puts("Expected shape: O2 > O1 > 0 reduction everywhere; 8x8-MC4 has");
  std::puts("the largest absolute BT (most routers per MC => longest routes).");
  std::puts("Paper bands: O1 12.09-18.58% (f32) / 7.88-17.75% (fx8);");
  std::puts("             O2 23.30-32.01% (f32) / 16.95-35.93% (fx8).");
  return 0;
}
