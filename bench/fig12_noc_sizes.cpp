// Regenerates paper Fig. 12: absolute BT counts and reduction rates for
// full LeNet inference on the NOC-DNA across NoC sizes — 4x4 mesh with 2
// MCs, 8x8 with 4 MCs, 8x8 with 8 MCs — for O0/O1/O2 and both data formats
// (512-bit links for float-32, 128-bit for fixed-8; 4 VCs, 4-flit buffers,
// X-Y routing, §V-B).
//
// Paper reference: affiliated 12.09-18.58% (float-32) / 7.88-17.75%
// (fixed-8); separated 23.30-32.01% (float-32) / 16.95-35.93% (fixed-8);
// the 8x8-MC4 configuration shows the largest absolute BT (most routers
// per MC => most hops).

#include <cstdio>

#include "accel/platform.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;
using ordering::OrderingMode;

namespace {

struct MeshConfig {
  const char* name;
  std::int32_t rows, cols, mcs;
};

}  // namespace

int main() {
  std::puts("=== Fig. 12: BTs across different NoC sizes (full LeNet inference) ===");
  std::puts("(training LeNet on the synthetic dataset...)\n");
  auto model = benchutil::make_lenet_trained(42);
  const auto input = benchutil::lenet_input(7);

  const MeshConfig meshes[] = {{"4x4 MC2", 4, 4, 2},
                               {"8x8 MC4", 8, 8, 4},
                               {"8x8 MC8", 8, 8, 8}};
  const OrderingMode modes[] = {OrderingMode::kBaseline,
                                OrderingMode::kAffiliated,
                                OrderingMode::kSeparated};

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s (%u-bit links, 16 values/flit) ---\n",
                to_string(format).c_str(), 16 * value_bits(format));
    AsciiTable table({"NoC", "O0 BT", "O1 BT", "O1 reduction", "O2 BT",
                      "O2 reduction", "cycles (O0)"});
    for (const auto& mesh : meshes) {
      std::uint64_t bt[3] = {0, 0, 0};
      std::uint64_t cycles0 = 0;
      for (int m = 0; m < 3; ++m) {
        accel::AccelConfig cfg = accel::AccelConfig::defaults(
            format, modes[m], mesh.rows, mesh.cols, mesh.mcs);
        accel::NocDnaPlatform platform(cfg, model);
        const auto result = platform.run(input);
        bt[m] = result.bt_total;
        if (m == 0) cycles0 = result.total_cycles;
      }
      auto reduction = [&](int m) {
        return format_percent(1.0 - static_cast<double>(bt[m]) /
                                        static_cast<double>(bt[0]));
      };
      table.add_row({mesh.name, std::to_string(bt[0]), std::to_string(bt[1]),
                     reduction(1), std::to_string(bt[2]), reduction(2),
                     std::to_string(cycles0)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }

  std::puts("Expected shape: O2 > O1 > 0 reduction everywhere; 8x8-MC4 has");
  std::puts("the largest absolute BT (most routers per MC => longest routes).");
  std::puts("Paper bands: O1 12.09-18.58% (f32) / 7.88-17.75% (fx8);");
  std::puts("             O2 23.30-32.01% (f32) / 16.95-35.93% (fx8).");
  return 0;
}
