// Regenerates paper Fig. 11: per-bit-position analysis of fixed-8 weights —
// the fixed-point counterpart of Fig. 10. The trained-weight panel shows
// the largest baseline/ordered gap, matching Table I's 55.71% row.

#include <cstdio>

#include "analysis/bit_stats.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

constexpr unsigned kValuesPerFlit = 8;
constexpr std::size_t kWindow = 8 * 32;

void print_bit_rows(const char* label, const std::vector<double>& p) {
  std::printf("%-26s", label);
  for (double v : p) std::printf(" %5.3f", v);
  std::printf("\n");
}

void analyze(const char* name, const std::vector<float>& weights) {
  const auto stream = analysis::make_patterns(weights, DataFormat::kFixed8);
  const auto tiled = analysis::tile_patterns(stream.patterns, kWindow * 2000);
  const auto ordered =
      ordering::order_stream_descending(tiled, DataFormat::kFixed8, kWindow);

  std::printf("\n--- %s weights (8-bit two's complement) ---\n", name);
  std::printf("%-26s", "");
  for (int b = 1; b <= 8; ++b) std::printf(" %5d", b);
  std::printf("\n");
  print_bit_rows("P('1')",
                 analysis::one_probability_per_bit(tiled, DataFormat::kFixed8));
  print_bit_rows("P(transition) baseline",
                 analysis::transition_probability_per_bit(
                     tiled, DataFormat::kFixed8, kValuesPerFlit));
  print_bit_rows("P(transition) ordered",
                 analysis::transition_probability_per_bit(
                     ordered, DataFormat::kFixed8, kValuesPerFlit));
}

}  // namespace

int main() {
  std::puts("=== Fig. 11: bit distribution & transition probability, fixed-8 ===");
  auto lenet_random = benchutil::make_lenet_random(42);
  analyze("random", lenet_random.weight_values());
  std::puts("\n(training LeNet for the trained-weight panels...)");
  auto lenet_trained = benchutil::make_lenet_trained(42);
  analyze("trained LeNet", lenet_trained.weight_values());
  std::puts("\nExpected shape: trained weights concentrate near zero, so the");
  std::puts("ordered transition probabilities collapse (largest gap of all).");
  return 0;
}
