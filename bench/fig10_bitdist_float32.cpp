// Regenerates paper Fig. 10: per-bit-position analysis of float-32 weights.
//   Top: probability of a '1' at each of the 32 bit positions (random
//        weights vs trained LeNet weights) — sign/exponent/mantissa
//        structure is clearly visible.
//   Bottom: probability of a transition at each position between
//        consecutive flits, baseline (blue in the paper) vs ordered
//        (orange) — ordering must lower every position.

#include <cstdio>

#include "analysis/bit_stats.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/table.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

constexpr unsigned kValuesPerFlit = 8;
constexpr std::size_t kWindow = 8 * 32;

void print_bit_rows(const char* label, const std::vector<double>& p) {
  std::printf("%-26s", label);
  for (double v : p) std::printf(" %4.2f", v);
  std::printf("\n");
}

void analyze(const char* name, const std::vector<float>& weights) {
  const auto stream = analysis::make_patterns(weights, DataFormat::kFloat32);
  const auto tiled = analysis::tile_patterns(stream.patterns, kWindow * 2000);
  const auto ordered = ordering::order_stream_descending(
      tiled, DataFormat::kFloat32, kWindow);

  std::printf("\n--- %s weights ---\n", name);
  std::printf("bit position (MSB=sign, then 8-bit exponent, 23-bit mantissa)\n");
  std::printf("%-26s", "");
  for (int b = 1; b <= 32; ++b) std::printf(" %4d", b);
  std::printf("\n");
  print_bit_rows("P('1')",
                 analysis::one_probability_per_bit(tiled, DataFormat::kFloat32));
  print_bit_rows("P(transition) baseline",
                 analysis::transition_probability_per_bit(
                     tiled, DataFormat::kFloat32, kValuesPerFlit));
  print_bit_rows("P(transition) ordered",
                 analysis::transition_probability_per_bit(
                     ordered, DataFormat::kFloat32, kValuesPerFlit));
}

}  // namespace

int main() {
  std::puts("=== Fig. 10: bit distribution & transition probability, float-32 ===");
  auto lenet_random = benchutil::make_lenet_random(42);
  analyze("random", lenet_random.weight_values());
  std::puts("\n(training LeNet for the trained-weight panels...)");
  auto lenet_trained = benchutil::make_lenet_trained(42);
  analyze("trained LeNet", lenet_trained.weight_values());
  std::puts("\nExpected shape: sign bit P('1') ~ 0.5; exponent bits strongly");
  std::puts("biased; ordered transition probability below baseline everywhere.");
  return 0;
}
