// micro_opt: the co-optimizer as a measured micro-benchmark.
//
//   $ ./micro_opt                    # human-readable summary
//   $ ./micro_opt --json BENCH_opt.json
//
// Runs the fixed-seed annealing co-optimization of the placed LeNet on an
// 8x8 mesh — the CI reference workload — and reports the search outcome.
// The --json document is the machine-readable gate CI asserts on:
// best_power_mw must be <= baseline_power_mw (the never-worse-than-
// baseline guarantee), and the winner's configuration is echoed so a
// regression in what the search finds is visible in the artifact diff.
// Wall-clock is informative only; every other field is deterministic.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "common/config.h"
#include "common/json_writer.h"
#include "opt/coopt.h"
#include "ordering/ordering.h"
#include "place/policy.h"
#include "sim/campaign_config.h"

using namespace nocbt;

namespace {

struct BenchRun {
  opt::CoOptResult result;
  double wall_ms = 0.0;
};

BenchRun run_reference_coopt() {
  // The CI reference workload: placed LeNet, 8x8 mesh with 4 MCs, fixed-8
  // plus float-32 codecs, two windows, every registered ordering strategy
  // and placement policy. Small enough for a ctest/CI budget, rich enough
  // that the search has real axes to move along.
  Options opts;  // defaults only; the campaign template is all-explicit below
  sim::CampaignSpec base = sim::campaign_from_options(opts);
  base.name = "micro_opt";
  base.generators = {sim::GeneratorKind::kPlacement};
  base.meshes = {sim::parse_mesh_spec("8x8mc4")};
  base.modes = ordering::all_ordering_modes();
  base.windows = {32, 64};
  base.formats = {DataFormat::kFixed8, DataFormat::kFloat32};
  base.base.model = "lenet";
  base.base.tiles_per_layer = 8;

  opt::SearchSpace space = opt::SearchSpace::from_campaign(
      base, place::registered_policy_names());

  opt::CoOptConfig config;
  config.optimizer = "anneal";
  config.seed = 1;
  config.max_evals = 16;

  const auto start = std::chrono::steady_clock::now();
  BenchRun run;
  run.result = opt::run_coopt(base, space, config);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

int run_json(const std::string& path) {
  const BenchRun run = run_reference_coopt();
  const opt::CoOptResult& r = run.result;

  JsonWriter json;
  json.begin_object()
      .key("bench").value("micro_opt")
      .key("model").value("lenet")
      .key("mesh").value("8x8mc4")
      .key("optimizer").value("anneal")
      .key("opt_seed").value(std::uint64_t{1})
      .key("max_evals").value(std::uint64_t{16})
      .key("baseline").value(opt::to_string(r.baseline))
      .key("baseline_power_mw").value(r.baseline_power_mw)
      .key("best").value(opt::to_string(r.best))
      .key("best_placement").value(r.best.placement)
      .key("best_mode").value(ordering::short_mode_name(r.best.mode))
      .key("best_window").value(std::uint64_t{r.best.window})
      .key("best_format").value(to_string(r.best.format))
      .key("best_power_mw").value(r.best_power_mw)
      .key("best_energy_pj").value(r.best_result.energy_pj)
      .key("reduction_vs_baseline")
      .value(r.baseline_power_mw > 0.0
                 ? 1.0 - r.best_power_mw / r.baseline_power_mw
                 : 0.0)
      .key("guard_applied").value(r.guard_applied)
      .key("search_steps").value(static_cast<std::uint64_t>(r.steps.size()))
      .key("evaluations").value(static_cast<std::uint64_t>(r.evaluations))
      .key("wall_ms").value(run.wall_ms)
      .end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "micro_opt: cannot open %s\n", path.c_str());
    return 1;
  }
  out << json.take() << '\n';
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        return run_json(argv[i + 1]);

    const BenchRun run = run_reference_coopt();
    const opt::CoOptResult& r = run.result;
    std::printf("micro_opt: anneal on placed LeNet, 8x8mc4\n");
    std::fputs(opt::coopt_report(r).c_str(), stdout);
    std::printf("wall_ms=%.1f\n", run.wall_ms);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_opt: %s\n", e.what());
    return 2;
  }
}
