// Regenerates paper Table I: BT reduction without NoC.
//
// 10,000 packets of 8-value flits are generated from LeNet weight streams
// (random init and actually-trained weights), in float-32 and fixed-8, and
// the per-flit BT of the baseline stream is compared against the
// descending-popcount-ordered stream.
//
// Paper reference rows:
//   float-32 random : 113.27 -> 90.18  (20.38%)
//   fixed-8  random :  31.01 -> 22.42  (27.70%)
//   float-32 trained: 112.80 -> 91.46  (18.92%)
//   fixed-8  trained:  30.55 -> 13.73  (55.71%)

#include <cstdio>

#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;

namespace {

struct Row {
  const char* name;
  DataFormat format;
  std::vector<float> weights;
  double paper_reduction;
};

}  // namespace

int main() {
  std::puts("=== Table I: BT reduction without NoC ===");
  std::puts("10,000 packets, 8 values/flit, ordering window = 32 flits\n");

  auto lenet_random = benchutil::make_lenet_random(42);
  std::puts("(training LeNet on the synthetic dataset for the 'trained' rows...)");
  auto lenet_trained = benchutil::make_lenet_trained(42);

  std::vector<Row> rows;
  rows.push_back({"Float-32 random", DataFormat::kFloat32,
                  lenet_random.weight_values(), 0.2038});
  rows.push_back({"Fixed-8 random", DataFormat::kFixed8,
                  lenet_random.weight_values(), 0.2770});
  rows.push_back({"Float-32 trained", DataFormat::kFloat32,
                  lenet_trained.weight_values(), 0.1892});
  rows.push_back({"Fixed-8 trained", DataFormat::kFixed8,
                  lenet_trained.weight_values(), 0.5571});

  AsciiTable table({"Weights", "Flit size (bit)", "BTs/flit baseline",
                    "BTs/flit ordered", "Reduction", "Paper"});
  for (const auto& row : rows) {
    analysis::StreamExperimentConfig cfg;
    cfg.format = row.format;
    cfg.values_per_flit = 8;
    cfg.flits_per_packet = 32;
    cfg.num_packets = 10'000;
    const auto result = analysis::run_stream_experiment(row.weights, cfg);
    table.add_row({row.name,
                   std::to_string(value_bits(row.format)) + "x8",
                   format_double(result.baseline_bt_per_flit, 2),
                   format_double(result.ordered_bt_per_flit, 2),
                   format_percent(result.reduction()),
                   format_percent(row.paper_reduction)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected shape: fixed-8 gains >> float-32 gains; the trained");
  std::puts("fixed-8 row is the largest (zero-concentrated weights).");
  return 0;
}
