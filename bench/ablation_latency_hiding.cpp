// Ablation A5: does the ordering unit's latency stay off the critical path
// (§IV-C3)? The platform is run with the ordering-unit timing model
// enabled: each packet pays the SWAR-popcount + transposition-sort cycles
// at its MC, overlapped with injection through a small prefetch FIFO.
// The claim holds if inference latency is within a few percent of O0.

#include <cstdio>

#include "accel/platform.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;
using ordering::OrderingMode;

int main() {
  std::puts("=== Ablation A5: ordering-unit latency hiding (LeNet, 4x4 MC2) ===");
  std::puts("(training LeNet...)\n");
  auto model = benchutil::make_lenet_trained(42);
  const auto input = benchutil::lenet_input(7);

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s ---\n", to_string(format).c_str());
    std::uint64_t baseline_cycles = 0;
    AsciiTable table({"Mode", "Ordering latency modeled", "Inference cycles",
                      "Slowdown vs O0"});
    for (const auto& [mode, timed] :
         {std::pair{OrderingMode::kBaseline, false},
          {OrderingMode::kAffiliated, true},
          {OrderingMode::kSeparated, true}}) {
      accel::AccelConfig cfg =
          accel::AccelConfig::defaults(format, mode, 4, 4, 2);
      cfg.model_ordering_latency = timed;
      accel::NocDnaPlatform platform(cfg, model);
      const auto result = platform.run(input);
      if (mode == OrderingMode::kBaseline) baseline_cycles = result.total_cycles;
      table.add_row(
          {std::string(ordering::to_string(mode)), timed ? "yes" : "no",
           std::to_string(result.total_cycles),
           format_percent(static_cast<double>(result.total_cycles) /
                              static_cast<double>(baseline_cycles) -
                          1.0)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }
  std::puts("Expected shape: slowdown within a few percent — sort cycles hide");
  std::puts("behind injection/serialization, confirming the paper's claim.");
  return 0;
}
