// Regenerates the §V-C link-power estimate: an 8x8 NoC's 112 bidirectional
// 128-bit links at 125 MHz with half the wires toggling, under the paper's
// Innovus-extracted 0.173 pJ/transition and Banerjee's 0.532 pJ/transition,
// before and after the 40.85% BT reduction. The link count and width are
// derived from a live NocConfig through hw::EnergyModel::static_estimate —
// the same path the campaign's measured reporting uses — rather than
// hardcoded 8x8 constants.

#include <cstdio>

#include "common/table.h"
#include "hw/energy_model.h"
#include "hw/link_energy.h"

using namespace nocbt;

int main() {
  std::puts("=== Sec. V-C: link power with and without BT reduction ===\n");

  noc::NocConfig mesh;  // the paper's setup: 8x8 mesh of 128-bit links
  mesh.rows = 8;
  mesh.cols = 8;
  mesh.flit_payload_bits = 128;

  const hw::EnergyModel innovus(
      hw::EnergyModelConfig{hw::kInnovusEnergyPj, 125.0});
  const hw::EnergyModel banerjee_model(
      hw::EnergyModelConfig{hw::kBanerjeeEnergyPj, 125.0});
  const hw::LinkPowerConfig ours = innovus.static_estimate(mesh);
  const hw::LinkPowerConfig banerjee = banerjee_model.static_estimate(mesh);

  std::printf(
      "Mesh link count check: 8x8 -> %u bidirectional links (paper: 112)\n\n",
      ours.num_links);

  constexpr double kReduction = 0.4085;  // best DarkNet fixed-8 result
  AsciiTable table({"Link model", "pJ/transition", "Power (mW)",
                    "After 40.85% reduction (mW)", "Paper"});
  table.add_row({"Ours (Innovus-extracted)", "0.173",
                 format_double(hw::link_power_mw(ours), 3),
                 format_double(hw::link_power_with_reduction_mw(ours, kReduction), 3),
                 "155.008 -> 91.688"});
  table.add_row({"Banerjee et al. [6]", "0.532",
                 format_double(hw::link_power_mw(banerjee), 3),
                 format_double(hw::link_power_with_reduction_mw(banerjee, kReduction), 3),
                 "476.672 -> 281.951"});
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nSensitivity: power vs BT reduction rate (our link model):");
  AsciiTable sweep({"Reduction", "Power (mW)"});
  for (double r : {0.0, 0.1, 0.2, 0.3, 0.4085, 0.5571})
    sweep.add_row({format_percent(r, 2),
                   format_double(hw::link_power_with_reduction_mw(ours, r), 3)});
  std::fputs(sweep.render().c_str(), stdout);
  return 0;
}
