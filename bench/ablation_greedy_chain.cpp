// Ablation A4: popcount-sort (the paper's 12.91 kGE bubble-sort unit) vs a
// greedy min-Hamming-distance chain (O(N^2) comparisons, far costlier
// hardware). Quantifies how much BT reduction the cheap popcount proxy
// leaves behind relative to directly minimizing XOR distance.

#include <cstdio>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/table.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {
constexpr unsigned kValuesPerFlit = 8;
}

int main() {
  std::puts("=== Ablation A4: popcount sort vs greedy min-XOR chain ===");
  std::puts("(training LeNet...)\n");
  auto lenet = benchutil::make_lenet_trained(42);
  const auto weights = lenet.weight_values();

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    const auto source = analysis::make_patterns(weights, format);
    std::printf("--- %s trained weights ---\n", to_string(format).c_str());
    AsciiTable table({"Window (flits)", "baseline BT/flit", "popcount sort",
                      "greedy chain", "sort reduction", "greedy reduction"});
    for (unsigned window_flits : {8u, 32u, 128u}) {
      const std::size_t window = window_flits * kValuesPerFlit;
      const auto tiled = analysis::tile_patterns(source.patterns, window * 500);
      const auto base =
          analysis::pattern_stream_bt(tiled, format, kValuesPerFlit);
      const auto sorted = analysis::pattern_stream_bt(
          ordering::order_stream_descending(tiled, format, window), format,
          kValuesPerFlit);
      const auto greedy = analysis::pattern_stream_bt(
          ordering::chain_stream_greedy(tiled, format, window), format,
          kValuesPerFlit);
      auto reduction = [&](const analysis::StreamBt& s) {
        return format_percent(1.0 - s.bt_per_flit() / base.bt_per_flit());
      };
      table.add_row({std::to_string(window_flits),
                     format_double(base.bt_per_flit(), 2),
                     format_double(sorted.bt_per_flit(), 2),
                     format_double(greedy.bt_per_flit(), 2), reduction(sorted),
                     reduction(greedy)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }
  std::puts("Expected shape: greedy chaining beats popcount sorting by a");
  std::puts("margin that represents the price of the paper's cheap hardware");
  std::puts("(N(N-1)/2 comparisons vs a bubble-sort of popcount keys).");
  return 0;
}
