// Ablation A1: how the ordering window (the packet size, in flits) affects
// BT reduction on the Table I workload. The paper orders within packets;
// this sweep quantifies how much window the technique needs — small windows
// leave reduction on the table, very large windows hit diminishing returns.

#include <cstdio>

#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;

int main() {
  std::puts("=== Ablation A1: ordering window size sweep (Table I workload) ===");
  std::puts("(training LeNet...)\n");
  auto lenet = benchutil::make_lenet_trained(42);
  const auto weights = lenet.weight_values();

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s trained weights, 8 values/flit ---\n",
                to_string(format).c_str());
    AsciiTable table({"Window (flits)", "BT/flit baseline", "BT/flit ordered",
                      "Reduction"});
    for (unsigned window : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      analysis::StreamExperimentConfig cfg;
      cfg.format = format;
      cfg.values_per_flit = 8;
      cfg.flits_per_packet = window;
      cfg.num_packets = 40'000 / window + 1;  // comparable stream lengths
      const auto result = analysis::run_stream_experiment(weights, cfg);
      table.add_row({std::to_string(window),
                     format_double(result.baseline_bt_per_flit, 2),
                     format_double(result.ordered_bt_per_flit, 2),
                     format_percent(result.reduction())});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }
  std::puts("Expected shape (non-monotone!): window=1 flit already helps by");
  std::puts("canonicalizing slot order *within* each flit (lane alignment);");
  std::puts("windows of 2-4 flits can *hurt* — the sort builds a sawtooth with");
  std::puts("a high->low popcount cliff at every window boundary; from ~8");
  std::puts("flits up, intra-window similarity wins and reduction grows toward");
  std::puts("saturation. The paper's packet-level ordering sits on that knee.");
  return 0;
}
