// Regenerates paper Fig. 1: the expected-BT surface E(x, y) for two 32-bit
// numbers with x and y '1' bits (Eq. 2), cross-checked against Monte-Carlo
// simulation of the independence model.

#include <cstdio>

#include "analysis/bt_math.h"
#include "common/rng.h"
#include "common/table.h"

using namespace nocbt;

int main() {
  std::puts("=== Fig. 1: Expectation of BT between two 32-bit numbers ===");
  std::puts("E(x, y) = x + y - x*y/16   (Eq. 2, W = 32)\n");

  const auto grid = analysis::expectation_surface(32);

  // Downsampled surface (every 4th count) as a table.
  std::vector<std::string> headers = {"x\\y"};
  for (int y = 0; y <= 32; y += 4) headers.push_back(std::to_string(y));
  AsciiTable table(headers);
  for (int x = 0; x <= 32; x += 4) {
    std::vector<std::string> row = {std::to_string(x)};
    for (int y = 0; y <= 32; y += 4)
      row.push_back(format_double(grid[static_cast<std::size_t>(x)]
                                      [static_cast<std::size_t>(y)], 1));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nKey points: E(0,0)=0, E(32,32)=0, E(32,0)=32 (max),");
  std::puts("E(16,16)=16: equal-popcount pairs halve the worst case.\n");

  // Monte-Carlo validation at a few grid points.
  std::puts("Monte-Carlo check (20k trials per point):");
  AsciiTable mc({"x", "y", "closed form", "monte carlo", "abs diff"});
  Rng rng(7);
  for (auto [x, y] : {std::pair{4, 28}, {8, 8}, {16, 16}, {24, 12}, {32, 16}}) {
    const double analytic = analysis::expected_bt(x, y, 32);
    const double sampled = analysis::monte_carlo_expected_bt(x, y, 32, 20'000, rng);
    mc.add_row({std::to_string(x), std::to_string(y), format_double(analytic, 3),
                format_double(sampled, 3),
                format_double(std::abs(analytic - sampled), 3)});
  }
  std::fputs(mc.render().c_str(), stdout);
  return 0;
}
