// Ablation A3: the paper's ordering vs classic bus-encoding baselines —
// bus-invert coding [Stan & Burleson '95] (whole-flit and per-value
// segmented, extra invert wires charged) and XOR-delta encoding [11]-style.
// Ordering needs no extra wires and no decoder; this bench quantifies how
// it stacks up on the same weight streams.

#include <cstdio>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "common/table.h"
#include "ordering/encoders.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

constexpr unsigned kValuesPerFlit = 8;
constexpr std::size_t kWindowValues = 8 * 32;

std::uint64_t encoded_bt(const ordering::EncodedStream& stream) {
  return analysis::stream_bt(stream.payloads).total_bt +
         stream.extra_wire_transitions;
}

void run_format(DataFormat format, const std::vector<float>& weights) {
  const auto source = analysis::make_patterns(weights, format);
  const auto tiled =
      analysis::tile_patterns(source.patterns, kWindowValues * 2000);

  const auto baseline_flits = analysis::flitize(tiled, format, kValuesPerFlit);
  const auto baseline_bt = analysis::stream_bt(baseline_flits).total_bt;

  const auto ordered = ordering::order_stream_descending(
      tiled, format, kWindowValues);
  const auto ordered_bt =
      analysis::pattern_stream_bt(ordered, format, kValuesPerFlit).total_bt;

  const auto businv1 = ordering::bus_invert_encode(baseline_flits, 1);
  const auto businv_seg =
      ordering::bus_invert_encode(baseline_flits, kValuesPerFlit);
  const auto delta = ordering::xor_delta_encode(baseline_flits);

  // Ordering composed with bus-invert: the techniques are orthogonal.
  const auto ordered_flits = analysis::flitize(ordered, format, kValuesPerFlit);
  const auto combo = ordering::bus_invert_encode(ordered_flits, kValuesPerFlit);

  auto reduction = [&](std::uint64_t bt) {
    return format_percent(1.0 - static_cast<double>(bt) /
                                    static_cast<double>(baseline_bt));
  };

  std::printf("--- %s trained weights ---\n", to_string(format).c_str());
  AsciiTable table({"Scheme", "Total BT", "Reduction", "Extra wires",
                    "Decoder needed"});
  table.add_row({"baseline", std::to_string(baseline_bt), "0.00%", "0", "no"});
  table.add_row({"popcount ordering (paper)", std::to_string(ordered_bt),
                 reduction(ordered_bt), "0", "no (order-invariant)"});
  table.add_row({"bus-invert, whole flit", std::to_string(encoded_bt(businv1)),
                 reduction(encoded_bt(businv1)), "1", "yes"});
  table.add_row({"bus-invert, per value",
                 std::to_string(encoded_bt(businv_seg)),
                 reduction(encoded_bt(businv_seg)),
                 std::to_string(kValuesPerFlit), "yes"});
  table.add_row({"XOR-delta", std::to_string(encoded_bt(delta)),
                 reduction(encoded_bt(delta)), "0", "yes (XOR register)"});
  table.add_row({"ordering + bus-invert", std::to_string(encoded_bt(combo)),
                 reduction(encoded_bt(combo)), std::to_string(kValuesPerFlit),
                 "yes"});
  std::fputs(table.render().c_str(), stdout);
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Ablation A3: ordering vs related-work encoders ===");
  std::puts("(training LeNet...)\n");
  auto lenet = benchutil::make_lenet_trained(42);
  const auto weights = lenet.weight_values();
  run_format(DataFormat::kFloat32, weights);
  run_format(DataFormat::kFixed8, weights);
  std::puts("Note: ordering composes with invert-coding — the combined row");
  std::puts("shows additional headroom at the cost of the invert wires.");
  return 0;
}
