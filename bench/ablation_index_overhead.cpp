// Ablation A2: separated-ordering's pairing-index cost. The paper carries a
// "minimal-bit-width index" out of band; this ablation ships the index
// in-band as extra payload flits and charges its bit transitions and
// traffic, quantifying how much of O2's advantage survives.

#include <cstdio>

#include "accel/platform.h"
#include "bench_util.h"
#include "common/table.h"

using namespace nocbt;
using ordering::OrderingMode;

int main() {
  std::puts("=== Ablation A2: separated-ordering index overhead (LeNet, 4x4 MC2) ===");
  std::puts("(training LeNet...)\n");
  auto model = benchutil::make_lenet_trained(42);
  const auto input = benchutil::lenet_input(7);

  for (DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    std::printf("--- %s ---\n", to_string(format).c_str());

    std::uint64_t bt_baseline = 0;
    std::uint64_t flits_baseline = 0;
    {
      accel::AccelConfig cfg = accel::AccelConfig::defaults(
          format, OrderingMode::kBaseline, 4, 4, 2);
      accel::NocDnaPlatform platform(cfg, model);
      const auto result = platform.run(input);
      bt_baseline = result.bt_total;
      flits_baseline = result.noc_stats.flits_injected;
    }

    AsciiTable table({"O2 index transport", "BT", "Reduction vs O0",
                      "Flits injected", "Flit overhead"});
    for (bool embedded : {false, true}) {
      accel::AccelConfig cfg = accel::AccelConfig::defaults(
          format, OrderingMode::kSeparated, 4, 4, 2);
      cfg.embed_pairing_index = embedded;
      accel::NocDnaPlatform platform(cfg, model);
      const auto result = platform.run(input);
      table.add_row(
          {embedded ? "in-band (payload flits)" : "sideband (paper)",
           std::to_string(result.bt_total),
           format_percent(1.0 - static_cast<double>(result.bt_total) /
                                    static_cast<double>(bt_baseline)),
           std::to_string(result.noc_stats.flits_injected),
           format_percent(static_cast<double>(result.noc_stats.flits_injected) /
                              static_cast<double>(flits_baseline) -
                          1.0)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
  }
  std::puts("Expected shape: in-band indices claw back part of O2's win via");
  std::puts("extra flits and their transitions; the sideband row is the paper's");
  std::puts("accounting.");
  return 0;
}
