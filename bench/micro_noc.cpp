// Micro-benchmarks (google-benchmark) for the NoC simulator: cycle
// throughput under load and end-to-end packet transport cost.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "noc/network.h"

using namespace nocbt;
using namespace nocbt::noc;

namespace {

std::vector<BitVec> random_payloads(unsigned bits, int flits, Rng& rng) {
  std::vector<BitVec> out;
  for (int i = 0; i < flits; ++i) {
    BitVec v(bits);
    for (unsigned w = 0; w < bits; w += 64)
      v.set_field(w, std::min(64u, bits - w), rng.bits64());
    out.push_back(std::move(v));
  }
  return out;
}

void BM_NetworkStepUnderLoad(benchmark::State& state) {
  NocConfig cfg;
  cfg.rows = static_cast<std::int32_t>(state.range(0));
  cfg.cols = static_cast<std::int32_t>(state.range(0));
  cfg.flit_payload_bits = 128;
  Network net(cfg);
  Rng rng(1);
  const std::int32_t n = cfg.node_count();
  for (std::int32_t node = 0; node < n; ++node)
    net.set_sink(node, [](Packet&&, std::uint64_t) {});

  std::uint64_t injected = 0;
  for (auto _ : state) {
    // Keep a steady backlog: one fresh packet per node every 8 cycles.
    if (net.cycle() % 8 == 0) {
      for (std::int32_t src = 0; src < n; ++src) {
        net.inject(src, static_cast<std::int32_t>(rng.uniform_int(0, n - 1)),
                   random_payloads(128, 4, rng));
        ++injected;
      }
    }
    net.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(net.stats().flits_delivered));
  state.counters["cycles"] = static_cast<double>(net.cycle());
}
BENCHMARK(BM_NetworkStepUnderLoad)->Arg(4)->Arg(8);

void BM_SinglePacketLatency(benchmark::State& state) {
  NocConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.flit_payload_bits = 512;
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Network net(cfg);
    net.set_sink(63, [](Packet&&, std::uint64_t) {});
    auto payloads = random_payloads(512, 8, rng);
    state.ResumeTiming();
    net.inject(0, 63, std::move(payloads));
    benchmark::DoNotOptimize(net.run_until_idle(10'000));
  }
}
BENCHMARK(BM_SinglePacketLatency);

void BM_BtRecorderObserve(benchmark::State& state) {
  BtRecorder recorder(BtScopeConfig{}, 512);
  const auto link = recorder.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  Rng rng(3);
  const auto payloads = random_payloads(512, 64, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    recorder.observe(link, payloads[i % payloads.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BtRecorderObserve);

}  // namespace

BENCHMARK_MAIN();
