// Micro-benchmarks (google-benchmark) for the NoC simulator: cycle
// throughput under load and end-to-end packet transport cost.
//
// Two modes:
//   $ ./micro_noc [--benchmark_* flags]     # google-benchmark harness
//   $ ./micro_noc --json BENCH_noc.json
//
// The --json mode is the machine-readable perf baseline for the simulation
// engine: it drives identical injection schedules through the active-set
// engine and the retained full-scan reference, verifies the two produce
// byte-identical results (BT, cycles, packets), self-times both step
// loops, and writes one JSON document (via common/json_writer) that CI
// uploads as an artifact and gates on: the active-set engine must be >= 2x
// the full scan on sparse 16x16 traffic, and the analytical zero-load
// backend must reproduce the active-set BT/packet totals exactly at
// >= 10x less wall-clock on the same sparse schedule (the congestion-free
// regime it exists for; cycle counts are excluded from that comparison
// because the step loop runs a fixed cycle budget past the drain point).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "noc/analytical_engine.h"
#include "noc/network.h"
#include "noc/sim_profiler.h"

using namespace nocbt;
using namespace nocbt::noc;

namespace {

std::vector<BitVec> random_payloads(unsigned bits, int flits, Rng& rng) {
  std::vector<BitVec> out;
  for (int i = 0; i < flits; ++i) {
    BitVec v(bits);
    for (unsigned w = 0; w < bits; w += 64)
      v.set_field(w, std::min(64u, bits - w), rng.bits64());
    out.push_back(std::move(v));
  }
  return out;
}

void BM_NetworkStepUnderLoad(benchmark::State& state) {
  NocConfig cfg;
  cfg.rows = static_cast<std::int32_t>(state.range(0));
  cfg.cols = static_cast<std::int32_t>(state.range(0));
  cfg.flit_payload_bits = 128;
  Network net(cfg);
  Rng rng(1);
  const std::int32_t n = cfg.node_count();
  for (std::int32_t node = 0; node < n; ++node)
    net.set_sink(node, [](Packet&&, std::uint64_t) {});

  std::uint64_t injected = 0;
  for (auto _ : state) {
    // Keep a steady backlog: one fresh packet per node every 8 cycles.
    if (net.cycle() % 8 == 0) {
      for (std::int32_t src = 0; src < n; ++src) {
        net.inject(src, static_cast<std::int32_t>(rng.uniform_int(0, n - 1)),
                   random_payloads(128, 4, rng));
        ++injected;
      }
    }
    net.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(net.stats().flits_delivered));
  state.counters["cycles"] = static_cast<double>(net.cycle());
}
BENCHMARK(BM_NetworkStepUnderLoad)->Arg(4)->Arg(8);

void BM_NetworkStepSparse(benchmark::State& state) {
  // One 4-flit packet every 64 cycles on a 16x16 mesh: the regime the
  // active-set engine (range(1) == 0) exists for, vs. the full scan (1).
  NocConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.flit_payload_bits = 128;
  cfg.engine = state.range(0) == 0 ? SimEngine::kActiveSet
                                   : SimEngine::kFullScan;
  Network net(cfg);
  Rng rng(2);
  const std::int32_t n = cfg.node_count();
  for (std::int32_t node = 0; node < n; ++node)
    net.set_sink(node, [](Packet&&, std::uint64_t) {});
  for (auto _ : state) {
    if (net.cycle() % 64 == 0) {
      const auto src = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      if (dst == src) dst = (dst + 1) % n;
      net.inject(src, dst, random_payloads(128, 4, rng));
    }
    net.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(net.cycle()));
}
BENCHMARK(BM_NetworkStepSparse)->Arg(0)->Arg(1);

void BM_SinglePacketLatency(benchmark::State& state) {
  NocConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.flit_payload_bits = 512;
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Network net(cfg);
    net.set_sink(63, [](Packet&&, std::uint64_t) {});
    auto payloads = random_payloads(512, 8, rng);
    state.ResumeTiming();
    net.inject(0, 63, std::move(payloads));
    benchmark::DoNotOptimize(net.run_until_idle(10'000));
  }
}
BENCHMARK(BM_SinglePacketLatency);

void BM_BtRecorderObserve(benchmark::State& state) {
  BtRecorder recorder(BtScopeConfig{}, 512);
  const auto link = recorder.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  Rng rng(3);
  const auto payloads = random_payloads(512, 64, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    recorder.observe(link, payloads[i % payloads.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BtRecorderObserve);

// ---------------------------------------------------------------------------
// --json mode: self-timed engine baseline written through JsonWriter.

/// Deterministic outcome + wall-clock of one scheduled run.
struct EngineRun {
  std::uint64_t bt = 0;
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  double skip_ratio = 0.0;
  double seconds = 0.0;
};

/// Drive `sim_cycles` step() calls injecting one `flits`-flit packet every
/// `gap` cycles (uniform-random endpoints), then drain. The schedule is a
/// pure function of `seed`, so two engines given the same seed see
/// byte-identical traffic.
EngineRun run_schedule(SimEngine engine, std::int32_t dim,
                       std::uint64_t sim_cycles, std::uint64_t gap, int flits,
                       std::uint64_t seed) {
  NocConfig cfg;
  cfg.rows = dim;
  cfg.cols = dim;
  cfg.flit_payload_bits = 128;
  cfg.engine = engine;
  Network net(cfg);
  const std::int32_t n = cfg.node_count();
  for (std::int32_t node = 0; node < n; ++node)
    net.set_sink(node, [](Packet&&, std::uint64_t) {});

  Rng rng(seed);
  const WallTimer timer;
  for (std::uint64_t c = 0; c < sim_cycles; ++c) {
    if (c % gap == 0) {
      const auto src = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      if (dst == src) dst = (dst + 1) % n;
      net.inject(src, dst, random_payloads(128, flits, rng));
    }
    net.step();
  }
  if (!net.run_until_idle(1'000'000)) {
    std::fprintf(stderr, "micro_noc: schedule failed to drain\n");
    std::exit(1);
  }

  EngineRun run;
  run.seconds = timer.seconds();
  run.bt = net.bt().total();
  run.cycles = net.cycle();
  run.packets = net.stats().packets_delivered;
  run.skip_ratio = net.stats().sim.skip_ratio();
  return run;
}

/// Repeat the schedule until ~150ms of wall-clock accumulates; returns the
/// last run's deterministic outcome with the averaged throughput and (via
/// `seconds`) the averaged wall-clock of one run.
EngineRun measure(SimEngine engine, std::int32_t dim, std::uint64_t sim_cycles,
                  std::uint64_t gap, int flits, std::uint64_t seed,
                  double* mcycles_per_s) {
  EngineRun last = run_schedule(engine, dim, sim_cycles, gap, flits, seed);
  double total_s = last.seconds;
  std::uint64_t total_cycles = last.cycles;
  std::uint64_t runs = 1;
  while (total_s < 0.15) {
    last = run_schedule(engine, dim, sim_cycles, gap, flits, seed);
    total_s += last.seconds;
    total_cycles += last.cycles;
    ++runs;
  }
  *mcycles_per_s = static_cast<double>(total_cycles) / total_s / 1e6;
  last.seconds = total_s / static_cast<double>(runs);
  return last;
}

/// Drive the same deterministic schedule through the analytical zero-load
/// backend: identical Rng draw order to run_schedule (src, dst, payloads
/// per injection), so both backends see byte-identical traffic. Exits the
/// process if the schedule turns out contended — the sparse scenario is
/// congestion-free by construction (drain <= hops + flits + 2 << gap), so
/// that would mean the schedule or the engine regressed.
EngineRun run_analytical_schedule(std::int32_t dim, std::uint64_t sim_cycles,
                                  std::uint64_t gap, int flits,
                                  std::uint64_t seed) {
  NocConfig cfg;
  cfg.rows = dim;
  cfg.cols = dim;
  cfg.flit_payload_bits = 128;
  cfg.engine = SimEngine::kAnalytical;
  const std::int32_t n = cfg.node_count();

  Rng rng(seed);
  const WallTimer timer;
  AnalyticalEngine engine(cfg);
  for (std::uint64_t c = 0; c < sim_cycles; ++c) {
    if (c % gap == 0) {
      const auto src = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      if (dst == src) dst = (dst + 1) % n;
      engine.inject(c, src, dst, random_payloads(128, flits, rng));
    }
  }
  if (!engine.run()) {
    std::fprintf(stderr, "micro_noc: analytical backend found contention: %s\n",
                 engine.contention_detail().c_str());
    std::exit(1);
  }

  EngineRun run;
  run.seconds = timer.seconds();
  run.bt = engine.bt().total();
  run.cycles = engine.cycle();
  run.packets = engine.stats().packets_delivered;
  run.skip_ratio = engine.stats().sim.skip_ratio();
  return run;
}

/// measure() for the analytical backend: repeat until ~150ms accumulates
/// (one analytical pass is microseconds, so this averages thousands of
/// runs); `seconds` carries the averaged wall-clock of one run.
EngineRun measure_analytical(std::int32_t dim, std::uint64_t sim_cycles,
                             std::uint64_t gap, int flits,
                             std::uint64_t seed) {
  EngineRun last = run_analytical_schedule(dim, sim_cycles, gap, flits, seed);
  double total_s = last.seconds;
  std::uint64_t runs = 1;
  while (total_s < 0.15) {
    last = run_analytical_schedule(dim, sim_cycles, gap, flits, seed);
    total_s += last.seconds;
    ++runs;
  }
  last.seconds = total_s / static_cast<double>(runs);
  return last;
}

struct JsonScenario {
  const char* name;
  std::int32_t dim;
  std::uint64_t sim_cycles;
  std::uint64_t gap;
  int flits;
  bool analytical;  ///< also time the zero-load backend (needs a
                    ///< congestion-free schedule to be meaningful)
};

int run_json_bench(const std::string& path) {
  // The gated scenario is the sparse 16x16 mesh (one short packet every 64
  // cycles — the paper-scale sweep regime where almost every component is
  // quiescent, and where the analytical backend is provably exact); the
  // dense 4x4 row documents the engine's behavior when skipping cannot
  // help (and where gap=1 traffic contends, so no analytical row).
  const JsonScenario scenarios[] = {
      {"sparse_16x16", 16, 20'000, 64, 4, true},
      {"dense_4x4", 4, 20'000, 1, 4, false},
  };

  JsonWriter json;
  json.begin_object().key("bench").value("micro_noc");
  json.key("scenarios").begin_array();
  double sparse_speedup = 0.0;
  double analytical_speedup = 0.0;
  bool analytical_bt_match = false;
  for (const JsonScenario& sc : scenarios) {
    double full_mcps = 0.0;
    double active_mcps = 0.0;
    const EngineRun full = measure(SimEngine::kFullScan, sc.dim, sc.sim_cycles,
                                   sc.gap, sc.flits, 11, &full_mcps);
    const EngineRun active =
        measure(SimEngine::kActiveSet, sc.dim, sc.sim_cycles, sc.gap,
                sc.flits, 11, &active_mcps);
    // Correctness gate before reporting: both engines must agree exactly
    // (the differential test suite pins this too, but a perf baseline over
    // diverging engines would be meaningless).
    if (full.bt != active.bt || full.cycles != active.cycles ||
        full.packets != active.packets) {
      std::fprintf(stderr,
                   "micro_noc: engine mismatch on %s (bt %llu/%llu, cycles "
                   "%llu/%llu, packets %llu/%llu)\n",
                   sc.name, static_cast<unsigned long long>(full.bt),
                   static_cast<unsigned long long>(active.bt),
                   static_cast<unsigned long long>(full.cycles),
                   static_cast<unsigned long long>(active.cycles),
                   static_cast<unsigned long long>(full.packets),
                   static_cast<unsigned long long>(active.packets));
      return 1;
    }
    const double speedup = active_mcps / full_mcps;
    if (std::string(sc.name) == "sparse_16x16") sparse_speedup = speedup;
    json.begin_object()
        .key("name").value(sc.name)
        .key("rows").value(static_cast<std::int64_t>(sc.dim))
        .key("cols").value(static_cast<std::int64_t>(sc.dim))
        .key("inject_gap_cycles").value(sc.gap)
        .key("flits_per_packet").value(static_cast<std::int64_t>(sc.flits))
        .key("cycles").value(active.cycles)
        .key("packets").value(active.packets)
        .key("bt").value(active.bt)
        .key("skip_ratio").value(active.skip_ratio)
        .key("fullscan_mcycles_per_s").value(full_mcps)
        .key("active_mcycles_per_s").value(active_mcps)
        .key("speedup").value(speedup);
    if (sc.analytical) {
      const EngineRun ana = measure_analytical(sc.dim, sc.sim_cycles, sc.gap,
                                               sc.flits, 11);
      // Equivalence gate: the analytical backend must reproduce the active
      // run's BT and packet totals exactly. Cycle counts are *expected* to
      // differ (the step loop burns the full sim_cycles budget; the
      // analytical drain cycle stops at the last delivery), so they stay
      // out of this comparison.
      const bool match = ana.bt == active.bt && ana.packets == active.packets;
      if (!match) {
        std::fprintf(stderr,
                     "micro_noc: analytical mismatch on %s (bt %llu/%llu, "
                     "packets %llu/%llu)\n",
                     sc.name, static_cast<unsigned long long>(ana.bt),
                     static_cast<unsigned long long>(active.bt),
                     static_cast<unsigned long long>(ana.packets),
                     static_cast<unsigned long long>(active.packets));
        return 1;
      }
      // Both .seconds are repeat-averaged wall-clock for one full schedule
      // (inject + evaluate), so the ratio is an end-to-end speedup.
      const double ana_speedup = active.seconds / ana.seconds;
      if (std::string(sc.name) == "sparse_16x16") {
        analytical_speedup = ana_speedup;
        analytical_bt_match = match;
      }
      json.key("active_seconds_per_run").value(active.seconds)
          .key("analytical_seconds_per_run").value(ana.seconds)
          .key("analytical_drain_cycle").value(ana.cycles)
          .key("analytical_bt_match").value(match)
          .key("analytical_speedup").value(ana_speedup);
    }
    json.end_object();
  }
  json.end_array();
  // The CI gates: active-set step-loop throughput vs. the full scan, and
  // the analytical backend's exact-equivalence + wall-clock advantage over
  // the active set, both on the sparse 16x16 scenario.
  json.key("active_speedup").value(sparse_speedup);
  json.key("analytical_speedup").value(analytical_speedup);
  json.key("analytical_bt_match").value(analytical_bt_match);
  json.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "micro_noc: cannot open %s\n", path.c_str());
    return 1;
  }
  out << json.take() << '\n';
  if (!out) {
    std::fprintf(stderr, "micro_noc: write failed for %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "wrote %s (sparse 16x16: active-set %.2fx vs full scan, analytical "
      "%.0fx vs active-set)\n",
      path.c_str(), sparse_speedup, analytical_speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      return run_json_bench(argv[i + 1]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
