// Regenerates paper Fig. 9: the '1'-bit-count grid of a window of flits
// before (left) and after (right) descending ordering. Each row is one
// flit of 8 float-32 LeNet weights; the number shown is each weight's
// popcount.

#include <cstdio>
#include <string>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "bench_util.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

void print_grid(const char* title, std::span<const std::uint32_t> patterns,
                unsigned values_per_flit, unsigned flits) {
  std::printf("%s\n", title);
  std::printf("flit |");
  for (unsigned v = 0; v < values_per_flit; ++v) std::printf(" w%-2u", v);
  std::printf("\n-----+%s\n", std::string(4 * values_per_flit, '-').c_str());
  for (unsigned f = 0; f < flits; ++f) {
    std::printf("%4u |", f);
    for (unsigned v = 0; v < values_per_flit; ++v) {
      const std::size_t idx = static_cast<std::size_t>(f) * values_per_flit + v;
      if (idx < patterns.size())
        std::printf(" %-3d", pattern_popcount(patterns[idx], DataFormat::kFloat32));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::puts("=== Fig. 9: data before ordering (left grid) vs after (right grid) ===\n");
  constexpr unsigned kValuesPerFlit = 8;
  constexpr unsigned kFlits = 21;  // the window shown in the paper's figure
  constexpr std::size_t kWindow = kValuesPerFlit * kFlits;

  auto lenet = benchutil::make_lenet_trained(42);
  const auto weights = lenet.weight_values();
  const auto stream = analysis::make_patterns(weights, DataFormat::kFloat32);
  const std::span<const std::uint32_t> window(stream.patterns.data(), kWindow);

  const auto ordered =
      ordering::order_stream_descending(window, DataFormat::kFloat32, kWindow);

  print_grid("Before ordering ('1'-bit count per weight):", window,
             kValuesPerFlit, kFlits);
  print_grid("After descending ordering:", ordered, kValuesPerFlit, kFlits);

  // Quantify the effect. A single float-32 window is statistically noisy
  // (and float-32 popcount ordering is weak in general — see EXPERIMENTS.md
  // E2); quote the fixed-8 view of the same weights alongside, where the
  // grouping is visible at a glance.
  const auto base_bt =
      analysis::pattern_stream_bt(window, DataFormat::kFloat32, kValuesPerFlit);
  const auto ord_bt =
      analysis::pattern_stream_bt(ordered, DataFormat::kFloat32, kValuesPerFlit);
  std::printf("Window BT (float-32): baseline %llu, ordered %llu\n",
              static_cast<unsigned long long>(base_bt.total_bt),
              static_cast<unsigned long long>(ord_bt.total_bt));

  const auto fx = analysis::make_patterns(weights, DataFormat::kFixed8);
  const std::span<const std::uint32_t> fx_window(fx.patterns.data(), kWindow);
  const auto fx_ordered =
      ordering::order_stream_descending(fx_window, DataFormat::kFixed8, kWindow);
  const auto fx_base =
      analysis::pattern_stream_bt(fx_window, DataFormat::kFixed8, kValuesPerFlit);
  const auto fx_ord =
      analysis::pattern_stream_bt(fx_ordered, DataFormat::kFixed8, kValuesPerFlit);
  std::printf("Window BT (fixed-8) : baseline %llu, ordered %llu (%.2f%% reduction)\n",
              static_cast<unsigned long long>(fx_base.total_bt),
              static_cast<unsigned long long>(fx_ord.total_bt),
              100.0 * (1.0 - static_cast<double>(fx_ord.total_bt) /
                                 static_cast<double>(fx_base.total_bt)));
  return 0;
}
