// Micro-benchmarks (google-benchmark) for the ordering primitives: the
// software cost of what the paper implements in 12.91 kGE of hardware.
//
// Two modes:
//   $ ./micro_ordering [--benchmark_* flags]    # google-benchmark harness
//   $ ./micro_ordering --json BENCH_ordering.json [--window 32]
//
// The --json mode is the machine-readable perf baseline: it self-times the
// word-packed BT-count kernel against the retained naive per-bit reference
// and every registered ordering strategy at the given window size, then
// writes one JSON document (via common/json_writer) that CI uploads as an
// artifact so future PRs have a regression trajectory to compare against.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "accel/flitization.h"
#include "accel/packet_builder.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "ordering/bt_kernel_backend.h"
#include "ordering/bt_kernels.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"
#include "ordering/strategy.h"

using namespace nocbt;

namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, unsigned bits,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & low_mask(bits)));
  return out;
}

void BM_PopcountDescendingOrder(benchmark::State& state) {
  const auto patterns =
      random_patterns(static_cast<std::size_t>(state.range(0)), 32, 1);
  for (auto _ : state) {
    auto perm = ordering::popcount_descending_order(patterns,
                                                    DataFormat::kFloat32);
    benchmark::DoNotOptimize(perm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PopcountDescendingOrder)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_GreedyMinXorChain(benchmark::State& state) {
  const auto patterns =
      random_patterns(static_cast<std::size_t>(state.range(0)), 32, 2);
  for (auto _ : state) {
    auto perm = ordering::greedy_min_xor_chain(patterns, DataFormat::kFloat32);
    benchmark::DoNotOptimize(perm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedyMinXorChain)->Arg(16)->Arg(64)->Arg(256);

void BM_OrderStream(benchmark::State& state) {
  const auto patterns = random_patterns(1 << 16, 8, 3);
  for (auto _ : state) {
    auto ordered = ordering::order_stream_descending(
        patterns, DataFormat::kFixed8,
        static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(ordered);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_OrderStream)->Arg(64)->Arg(256)->Arg(1024);

// The BT-count kernel pair the --json mode baselines: word-packed
// XOR+popcount vs the naive per-bit reference, per 32-value window.
void BM_SequenceBtPacked(benchmark::State& state) {
  const auto window =
      random_patterns(static_cast<std::size_t>(state.range(0)), 8, 7);
  for (auto _ : state) {
    auto bt = ordering::sequence_bt(window, DataFormat::kFixed8);
    benchmark::DoNotOptimize(bt);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequenceBtPacked)->Arg(32)->Arg(256)->Arg(4096);

void BM_SequenceBtReference(benchmark::State& state) {
  const auto window =
      random_patterns(static_cast<std::size_t>(state.range(0)), 8, 7);
  for (auto _ : state) {
    auto bt = ordering::sequence_bt_reference(window, DataFormat::kFixed8);
    benchmark::DoNotOptimize(bt);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequenceBtReference)->Arg(32)->Arg(256)->Arg(4096);

void BM_PairwiseHdMatrix(benchmark::State& state) {
  const auto window =
      random_patterns(static_cast<std::size_t>(state.range(0)), 32, 8);
  for (auto _ : state) {
    auto matrix = ordering::pairwise_hd_matrix(window, DataFormat::kFloat32);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairwiseHdMatrix)->Arg(32)->Arg(256);

// Every registered strategy at the paper-ish window sizes.
void BM_Strategy(benchmark::State& state, const char* name, DataFormat format) {
  const ordering::OrderingStrategy& strategy = ordering::get_strategy(name);
  const auto window = random_patterns(static_cast<std::size_t>(state.range(0)),
                                      value_bits(format), 9);
  for (auto _ : state) {
    auto perm = strategy.order(window, format);
    benchmark::DoNotOptimize(perm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PackHalfHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = random_patterns(n, 32, 4);
  const auto weights = random_patterns(n, 32, 5);
  const accel::FlitLayout layout{16, 32};
  for (auto _ : state) {
    auto flits = accel::pack_half_half(inputs, weights, 7u, layout);
    benchmark::DoNotOptimize(flits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackHalfHalf)->Arg(25)->Arg(150)->Arg(400);

void BM_BuildTaskPacketSeparated(benchmark::State& state) {
  Rng rng(6);
  accel::NeuronTask task;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    task.inputs.push_back(static_cast<float>(rng.uniform(-1, 1)));
    task.weights.push_back(static_cast<float>(rng.uniform(-1, 1)));
  }
  const accel::LayerCodecs codecs{
      accel::ValueCodec::fixed_calibrated(8, task.weights),
      accel::ValueCodec::fixed_calibrated(8, task.inputs),
      accel::ValueCodec::float32()};
  const accel::FlitLayout layout{16, 8};
  for (auto _ : state) {
    auto packet = accel::build_task_packet(
        task, codecs, ordering::OrderingMode::kSeparated, layout);
    benchmark::DoNotOptimize(packet);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildTaskPacketSeparated)->Arg(25)->Arg(150)->Arg(400);

// ---------------------------------------------------------------------------
// --json mode: self-timed perf baseline written through JsonWriter.

struct Measurement {
  double mvalues_per_s = 0.0;    ///< windowed values processed per second /1e6
  std::uint64_t checksum = 0;    ///< fold of results, defeats dead-code elim
};

/// Time `fn(window_index)` over consecutive windows until ~100ms elapsed.
template <typename Fn>
Measurement measure_windows(std::size_t window_values, std::size_t num_windows,
                            Fn&& fn) {
  using clock = std::chrono::steady_clock;
  Measurement m;
  // One untimed warm-up pass touches every window (faults pages, warms
  // caches) so the timed passes measure the kernel, not the allocator.
  for (std::size_t w = 0; w < num_windows; ++w) m.checksum += fn(w);

  std::size_t values = 0;
  const clock::time_point start = clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t w = 0; w < num_windows; ++w) m.checksum += fn(w);
    values += window_values * num_windows;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.1);
  m.mvalues_per_s = static_cast<double>(values) / elapsed / 1e6;
  return m;
}

int run_json_bench(const std::string& path, std::size_t window_values) {
  constexpr std::size_t kNumWindows = 512;
  JsonWriter json;
  json.begin_object()
      .key("bench").value("micro_ordering")
      .key("window_values").value(static_cast<std::uint64_t>(window_values))
      .key("windows_per_pass").value(static_cast<std::uint64_t>(kNumWindows));

  json.key("bt_kernel").begin_array();
  double worst_speedup = -1.0;
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    const auto patterns = random_patterns(window_values * kNumWindows,
                                          value_bits(format), 11);
    const auto window_of = [&](std::size_t w) {
      return std::span<const std::uint32_t>(patterns)
          .subspan(w * window_values, window_values);
    };
    // Correctness gate before timing: the two kernels must agree on every
    // window (the differential test suite pins this too, but a perf
    // baseline over diverging kernels would be meaningless).
    std::uint64_t window_bt_sum = 0;
    for (std::size_t w = 0; w < kNumWindows; ++w) {
      const std::uint64_t reference =
          ordering::sequence_bt_reference(window_of(w), format);
      if (reference != ordering::sequence_bt(window_of(w), format)) {
        std::fprintf(stderr,
                     "micro_ordering: packed/naive BT mismatch at window %zu\n",
                     w);
        return 1;
      }
      window_bt_sum += reference;
    }
    const Measurement naive = measure_windows(
        window_values, kNumWindows, [&](std::size_t w) {
          return ordering::sequence_bt_reference(window_of(w), format);
        });
    const Measurement packed = measure_windows(
        window_values, kNumWindows, [&](std::size_t w) {
          return ordering::sequence_bt(window_of(w), format);
        });
    const double speedup = packed.mvalues_per_s / naive.mvalues_per_s;
    if (worst_speedup < 0.0 || speedup < worst_speedup)
      worst_speedup = speedup;
    json.begin_object()
        .key("format").value(to_string(format))
        .key("naive_mvalues_per_s").value(naive.mvalues_per_s)
        .key("packed_mvalues_per_s").value(packed.mvalues_per_s)
        .key("speedup").value(speedup)
        .key("window_bt_sum").value(window_bt_sum)
        .end_object();
  }
  json.end_array();
  json.key("bt_kernel_min_speedup").value(worst_speedup);

  // Kernel tiers: every registered BtKernelBackend timed on fixed-8
  // windows, single-call and batched. The gate CI enforces is
  // tier_best_speedup — the best tier's *batched* throughput over the
  // scalar tier's single-call throughput, i.e. what the batched scenario
  // runner gains over the PR-3 per-window kernels. tier_bt_identical
  // asserts every tier's BT sum equals the naive reference's.
  json.key("kernel_tiers").begin_array();
  {
    const DataFormat format = DataFormat::kFixed8;
    const auto patterns =
        random_patterns(window_values * kNumWindows, value_bits(format), 17);
    const auto window_of = [&](std::size_t w) {
      return std::span<const std::uint32_t>(patterns)
          .subspan(w * window_values, window_values);
    };
    std::uint64_t reference_sum = 0;
    for (std::size_t w = 0; w < kNumWindows; ++w)
      reference_sum += ordering::sequence_bt_reference(window_of(w), format);

    double scalar_single = 0.0;
    double best_batched = 0.0;
    bool tiers_identical = true;
    for (const ordering::BtKernelBackend* backend :
         ordering::registered_kernel_backends()) {
      json.begin_object()
          .key("name").value(backend->name())
          .key("available").value(backend->available());
      if (!backend->available()) {
        json.end_object();
        continue;
      }
      std::vector<std::uint64_t> batch_out(kNumWindows);
      backend->sequence_bt_batch(patterns, format, window_values, batch_out);
      std::uint64_t bt_sum = 0;
      for (const std::uint64_t bt : batch_out) bt_sum += bt;
      if (bt_sum != reference_sum) tiers_identical = false;
      const Measurement single = measure_windows(
          window_values, kNumWindows, [&](std::size_t w) {
            return backend->sequence_bt(window_of(w), format);
          });
      const Measurement batched = measure_windows(
          window_values * kNumWindows, 1, [&](std::size_t) {
            backend->sequence_bt_batch(patterns, format, window_values,
                                       batch_out);
            std::uint64_t fold = 0;
            for (const std::uint64_t bt : batch_out) fold += bt;
            return fold;
          });
      if (backend->name() == "scalar") scalar_single = single.mvalues_per_s;
      if (batched.mvalues_per_s > best_batched)
        best_batched = batched.mvalues_per_s;
      json.key("single_mvalues_per_s").value(single.mvalues_per_s)
          .key("batched_mvalues_per_s").value(batched.mvalues_per_s)
          .key("window_bt_sum").value(bt_sum)
          .end_object();
    }
    json.end_array();
    json.key("tier_best_speedup")
        .value(scalar_single > 0.0 ? best_batched / scalar_single : 0.0);
    json.key("tier_bt_identical").value(tiers_identical);
    if (!tiers_identical) {
      std::fprintf(stderr,
                   "micro_ordering: kernel tiers disagree on the BT sum\n");
      return 1;
    }
  }

  json.key("strategies").begin_array();
  // One shared pattern buffer per format: the draw is seed-fixed, so
  // regenerating it per strategy would only burn setup time.
  const auto fx8_patterns = random_patterns(window_values * kNumWindows, 8, 13);
  const auto fp32_patterns =
      random_patterns(window_values * kNumWindows, 32, 13);
  for (const ordering::OrderingStrategy* strategy :
       ordering::registered_strategies()) {
    for (const DataFormat format :
         {DataFormat::kFixed8, DataFormat::kFloat32}) {
      const auto& patterns =
          format == DataFormat::kFixed8 ? fx8_patterns : fp32_patterns;
      const Measurement m = measure_windows(
          window_values, kNumWindows, [&](std::size_t w) {
            const auto window = std::span<const std::uint32_t>(patterns)
                                    .subspan(w * window_values, window_values);
            const auto perm = strategy->order(window, format);
            return static_cast<std::uint64_t>(perm.empty() ? 0 : perm[0]);
          });
      json.begin_object()
          .key("name").value(strategy->name())
          .key("format").value(to_string(format))
          .key("mvalues_per_s").value(m.mvalues_per_s)
          .end_object();
    }
  }
  json.end_array().end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "micro_ordering: cannot open %s\n", path.c_str());
    return 1;
  }
  out << json.take() << '\n';
  if (!out) {
    std::fprintf(stderr, "micro_ordering: write failed for %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (BT kernel min speedup %.2fx at %zu-value windows)\n",
              path.c_str(), worst_speedup, window_values);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t window_values = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 2 || parsed > 1'000'000) {
        std::fprintf(stderr, "micro_ordering: --window must be in [2, 1e6]\n");
        return 1;
      }
      window_values = static_cast<std::size_t>(parsed);
    }
  }
  if (!json_path.empty()) return run_json_bench(json_path, window_values);

  for (const ordering::OrderingStrategy* strategy :
       ordering::registered_strategies()) {
    const std::string name =
        "BM_Strategy/" + std::string(strategy->name()) + "/fx8";
    benchmark::RegisterBenchmark(name.c_str(), BM_Strategy,
                                 strategy->name().data(), DataFormat::kFixed8)
        ->Arg(32)
        ->Arg(256);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
