// Micro-benchmarks (google-benchmark) for the ordering primitives: the
// software cost of what the paper implements in 12.91 kGE of hardware.

#include <benchmark/benchmark.h>

#include <vector>

#include "accel/flitization.h"
#include "accel/packet_builder.h"
#include "common/rng.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"

using namespace nocbt;

namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, unsigned bits,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & low_mask(bits)));
  return out;
}

void BM_PopcountDescendingOrder(benchmark::State& state) {
  const auto patterns =
      random_patterns(static_cast<std::size_t>(state.range(0)), 32, 1);
  for (auto _ : state) {
    auto perm = ordering::popcount_descending_order(patterns,
                                                    DataFormat::kFloat32);
    benchmark::DoNotOptimize(perm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PopcountDescendingOrder)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_GreedyMinXorChain(benchmark::State& state) {
  const auto patterns =
      random_patterns(static_cast<std::size_t>(state.range(0)), 32, 2);
  for (auto _ : state) {
    auto perm = ordering::greedy_min_xor_chain(patterns, DataFormat::kFloat32);
    benchmark::DoNotOptimize(perm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedyMinXorChain)->Arg(16)->Arg(64)->Arg(256);

void BM_OrderStream(benchmark::State& state) {
  const auto patterns = random_patterns(1 << 16, 8, 3);
  for (auto _ : state) {
    auto ordered = ordering::order_stream_descending(
        patterns, DataFormat::kFixed8,
        static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(ordered);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_OrderStream)->Arg(64)->Arg(256)->Arg(1024);

void BM_PackHalfHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inputs = random_patterns(n, 32, 4);
  const auto weights = random_patterns(n, 32, 5);
  const accel::FlitLayout layout{16, 32};
  for (auto _ : state) {
    auto flits = accel::pack_half_half(inputs, weights, 7u, layout);
    benchmark::DoNotOptimize(flits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackHalfHalf)->Arg(25)->Arg(150)->Arg(400);

void BM_BuildTaskPacketSeparated(benchmark::State& state) {
  Rng rng(6);
  accel::NeuronTask task;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    task.inputs.push_back(static_cast<float>(rng.uniform(-1, 1)));
    task.weights.push_back(static_cast<float>(rng.uniform(-1, 1)));
  }
  const accel::LayerCodecs codecs{
      accel::ValueCodec::fixed_calibrated(8, task.weights),
      accel::ValueCodec::fixed_calibrated(8, task.inputs),
      accel::ValueCodec::float32()};
  const accel::FlitLayout layout{16, 8};
  for (auto _ : state) {
    auto packet = accel::build_task_packet(
        task, codecs, ordering::OrderingMode::kSeparated, layout);
    benchmark::DoNotOptimize(packet);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildTaskPacketSeparated)->Arg(25)->Arg(150)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
