// Tests pinning the hardware cost models to the paper's published numbers
// (Table II and the §V-C link-power arithmetic).

#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/gate_model.h"
#include "hw/link_energy.h"

namespace nocbt::hw {
namespace {

TEST(GateModel, DefaultUnitMatchesTableII) {
  // 16 lanes x 32-bit values @ 125 MHz / 1.0 V: the calibration anchor.
  OrderingUnitCostModel model(ordering::OrderingUnitConfig{16, 32, 1});
  const BlockCost cost = model.unit_cost();
  EXPECT_NEAR(cost.kilo_ge, table2::kUnitKiloGe, 0.01);
  EXPECT_NEAR(cost.power_mw, table2::kUnitPowerMw, 0.005);
}

TEST(GateModel, FourUnitsMatchTableII) {
  OrderingUnitCostModel model(ordering::OrderingUnitConfig{16, 32, 1});
  const BlockCost cost = model.units_cost(4);
  EXPECT_NEAR(cost.kilo_ge, table2::kFourUnitsKiloGe, 0.05);
  EXPECT_NEAR(cost.power_mw, table2::kFourUnitsPowerMw, 0.02);
}

TEST(GateModel, RouterReference) {
  EXPECT_NEAR(router_reference_cost(1).kilo_ge, 125.54, 1e-9);
  EXPECT_NEAR(router_reference_cost(64).kilo_ge, 8034.56, 1e-6);
  // Table II's 64-router figure (1083.18 mW) is not exactly 64x the
  // single-router figure (16.92 mW -> 1082.88) — the paper rounds the
  // per-router value. Allow that rounding slack.
  EXPECT_NEAR(router_reference_cost(64).power_mw, 1083.18, 0.5);
}

TEST(GateModel, OrderingUnitIsMuchCheaperThanRouter) {
  // The paper's headline overhead claim: one unit is ~10x smaller and ~7.6x
  // lower power than one router.
  OrderingUnitCostModel model(ordering::OrderingUnitConfig{16, 32, 1});
  const BlockCost unit = model.unit_cost();
  const BlockCost router = router_reference_cost(1);
  EXPECT_LT(unit.kilo_ge * 5, router.kilo_ge);
  EXPECT_LT(unit.power_mw * 5, router.power_mw);
}

TEST(GateModel, AreaScalesWithLanesAndWidth) {
  OrderingUnitCostModel small(ordering::OrderingUnitConfig{8, 8, 1});
  OrderingUnitCostModel base(ordering::OrderingUnitConfig{16, 32, 1});
  OrderingUnitCostModel wide(ordering::OrderingUnitConfig{32, 32, 1});
  EXPECT_LT(small.unit_cost().kilo_ge, base.unit_cost().kilo_ge);
  EXPECT_GT(wide.unit_cost().kilo_ge, base.unit_cost().kilo_ge);
  // Doubling lanes roughly doubles area (all components are per-lane).
  EXPECT_NEAR(wide.unit_cost().kilo_ge / base.unit_cost().kilo_ge, 2.0, 0.2);
}

TEST(GateModel, PowerScalesWithFrequencyAndVoltageSquared) {
  TechConfig fast;
  fast.frequency_mhz = 250.0;
  TechConfig high_v;
  high_v.voltage = 1.2;
  const ordering::OrderingUnitConfig unit{16, 32, 1};
  const double base = OrderingUnitCostModel(unit).unit_cost().power_mw;
  EXPECT_NEAR(OrderingUnitCostModel(unit, fast).unit_cost().power_mw, 2 * base,
              1e-9);
  EXPECT_NEAR(OrderingUnitCostModel(unit, high_v).unit_cost().power_mw,
              1.44 * base, 1e-9);
}

TEST(GateModel, StructuralBreakdownIsPositive) {
  OrderingUnitCostModel model(ordering::OrderingUnitConfig{16, 32, 1});
  EXPECT_GT(model.popcount_ge(), 0.0);
  EXPECT_GT(model.sorter_ge(), 0.0);
  EXPECT_GT(model.register_ge(), 0.0);
}

TEST(LinkEnergy, PaperNumbersReproduce) {
  // 0.173 pJ * 64 toggling bits * 112 links * 125 MHz = 155.008 mW.
  LinkPowerConfig cfg;  // defaults are the paper's
  EXPECT_NEAR(link_power_mw(cfg), 155.008, 1e-9);

  LinkPowerConfig banerjee = cfg;
  banerjee.energy_per_transition_pj = kBanerjeeEnergyPj;
  EXPECT_NEAR(link_power_mw(banerjee), 476.672, 1e-9);
}

TEST(LinkEnergy, ReductionScalesPower) {
  LinkPowerConfig cfg;
  EXPECT_NEAR(link_power_with_reduction_mw(cfg, 0.4085), 91.688, 0.01);
  LinkPowerConfig banerjee = cfg;
  banerjee.energy_per_transition_pj = kBanerjeeEnergyPj;
  EXPECT_NEAR(link_power_with_reduction_mw(banerjee, 0.4085), 281.951, 0.01);
}

TEST(LinkEnergy, MeshLinkCount) {
  // 8x8 mesh: 8*7 + 8*7 = 112 bidirectional links, the paper's count.
  EXPECT_EQ(mesh_bidirectional_links(8, 8), 112u);
  EXPECT_EQ(mesh_bidirectional_links(4, 4), 24u);
  EXPECT_EQ(mesh_bidirectional_links(1, 2), 1u);
}

TEST(LinkEnergy, MeshLinkCountDegenerateShapes) {
  // 1xN / Nx1 chains are legal (N-1 links); a 1x1 mesh has no links at
  // all. A 0 dimension used to underflow (cols - 1) in unsigned
  // arithmetic and report a huge link count — it must throw instead.
  EXPECT_EQ(mesh_bidirectional_links(1, 8), 7u);
  EXPECT_EQ(mesh_bidirectional_links(8, 1), 7u);
  EXPECT_EQ(mesh_bidirectional_links(1, 1), 0u);
  EXPECT_THROW(mesh_bidirectional_links(0, 8), std::invalid_argument);
  EXPECT_THROW(mesh_bidirectional_links(8, 0), std::invalid_argument);
  EXPECT_THROW(mesh_bidirectional_links(0, 0), std::invalid_argument);
}

TEST(LinkEnergy, TransitionsToJoules) {
  EXPECT_NEAR(transitions_to_joules(1'000'000, 0.173), 1e6 * 0.173e-12, 1e-18);
  EXPECT_DOUBLE_EQ(transitions_to_joules(0, 0.173), 0.0);
}

TEST(LinkEnergy, ZeroReductionKeepsPower) {
  LinkPowerConfig cfg;
  EXPECT_DOUBLE_EQ(link_power_with_reduction_mw(cfg, 0.0), link_power_mw(cfg));
  EXPECT_DOUBLE_EQ(link_power_with_reduction_mw(cfg, 1.0), 0.0);
}

}  // namespace
}  // namespace nocbt::hw
