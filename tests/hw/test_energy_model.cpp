// Tests for the measured link-energy model: configuration gates, the pJ
// point parser, the NocConfig-derived static estimate (pinned to the
// paper's §V-C anchors), and the recorder-to-report conversion checked
// against hand-computed per-link sums.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/bitvec.h"
#include "hw/energy_model.h"
#include "noc/bt_recorder.h"
#include "noc/noc_config.h"

namespace nocbt::hw {
namespace {

TEST(EnergyModelConfig, ValidatesKnobs) {
  EXPECT_NO_THROW(EnergyModelConfig{}.validate());
  EXPECT_THROW(EnergyModelConfig({0.0, 125.0}).validate(),
               std::invalid_argument);
  EXPECT_THROW(EnergyModelConfig({-0.1, 125.0}).validate(),
               std::invalid_argument);
  EXPECT_THROW(EnergyModelConfig({0.173, 0.0}).validate(),
               std::invalid_argument);
  EXPECT_THROW(EnergyModelConfig({0.173, -1.0}).validate(),
               std::invalid_argument);
  EXPECT_THROW(EnergyModelConfig({std::nan(""), 125.0}).validate(),
               std::invalid_argument);
  EXPECT_THROW(EnergyModelConfig({0.173, std::nan("")}).validate(),
               std::invalid_argument);
  // The model constructor enforces the same gate.
  EXPECT_THROW(EnergyModel(EnergyModelConfig{0.0, 125.0}),
               std::invalid_argument);
}

TEST(EnergyModel, ParseEnergyPoint) {
  EXPECT_DOUBLE_EQ(parse_energy_point("innovus"), 0.173);
  EXPECT_DOUBLE_EQ(parse_energy_point("paper"), 0.173);
  EXPECT_DOUBLE_EQ(parse_energy_point("banerjee"), 0.532);
  EXPECT_DOUBLE_EQ(parse_energy_point("0.25"), 0.25);
  EXPECT_THROW(parse_energy_point(""), std::invalid_argument);
  EXPECT_THROW(parse_energy_point("garbage"), std::invalid_argument);
  EXPECT_THROW(parse_energy_point("0.25pJ"), std::invalid_argument);
  EXPECT_THROW(parse_energy_point("-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_energy_point("0"), std::invalid_argument);
}

TEST(EnergyModel, EnergyArithmetic) {
  const EnergyModel model(EnergyModelConfig{0.173, 125.0});
  EXPECT_DOUBLE_EQ(model.energy_pj(0), 0.0);
  EXPECT_DOUBLE_EQ(model.energy_pj(1'000'000), 173'000.0);
  EXPECT_NEAR(model.energy_joules(1'000'000), 1e6 * 0.173e-12, 1e-18);
}

TEST(EnergyModel, PowerMatchesPaperAnchorForOneFullyToggledCycle) {
  // One cycle in which half of every 128-bit wire of the 8x8 mesh's 112
  // links toggles is 112 * 64 transitions — the static model's assumption
  // made concrete. The measured path must land on the same 155.008 mW.
  const EnergyModel model(EnergyModelConfig{kInnovusEnergyPj, 125.0});
  EXPECT_NEAR(model.power_mw(112 * 64, 1), 155.008, 1e-9);
  const EnergyModel banerjee(EnergyModelConfig{kBanerjeeEnergyPj, 125.0});
  EXPECT_NEAR(banerjee.power_mw(112 * 64, 1), 476.672, 1e-9);
  // Twice the cycles at the same transition count halves average power.
  EXPECT_NEAR(model.power_mw(112 * 64, 2), 155.008 / 2, 1e-9);
  EXPECT_DOUBLE_EQ(model.power_mw(12345, 0), 0.0);  // nothing ran
}

TEST(EnergyModel, FortyPointEightFivePercentReductionScalesPower) {
  // The paper's headline: 40.85% fewer transitions -> 40.85% less power.
  const EnergyModel model(EnergyModelConfig{kInnovusEnergyPj, 125.0});
  const std::uint64_t baseline = 112 * 64 * 1000;
  const auto reduced =
      static_cast<std::uint64_t>(std::llround(baseline * (1.0 - 0.4085)));
  const double ratio = model.power_mw(reduced, 1000) /
                       model.power_mw(baseline, 1000);
  EXPECT_NEAR(ratio, 1.0 - 0.4085, 1e-6);
  EXPECT_NEAR(model.power_mw(baseline, 1000), 155.008, 1e-9);
  EXPECT_NEAR(model.power_mw(reduced, 1000), 91.688, 1e-3);
}

TEST(EnergyModel, StaticEstimateDerivesLinksAndWidthFromNocConfig) {
  const EnergyModel model(EnergyModelConfig{kInnovusEnergyPj, 125.0});

  noc::NocConfig paper;  // 8x8 mesh of 128-bit links: the §V-C setup
  paper.rows = 8;
  paper.cols = 8;
  paper.flit_payload_bits = 128;
  const LinkPowerConfig cfg = model.static_estimate(paper);
  EXPECT_EQ(cfg.num_links, 112u);
  EXPECT_EQ(cfg.link_width_bits, 128u);
  EXPECT_NEAR(link_power_mw(cfg), 155.008, 1e-9);
  EXPECT_NEAR(link_power_with_reduction_mw(cfg, 0.4085), 91.688, 0.01);

  const EnergyModel banerjee(EnergyModelConfig{kBanerjeeEnergyPj, 125.0});
  EXPECT_NEAR(link_power_mw(banerjee.static_estimate(paper)), 476.672, 1e-9);

  // Not hardcoded: the default 4x4/512-bit NocConfig yields its own counts.
  const noc::NocConfig small;
  const LinkPowerConfig small_cfg = model.static_estimate(small);
  EXPECT_EQ(small_cfg.num_links, 24u);
  EXPECT_EQ(small_cfg.link_width_bits, 512u);

  // 1xN chains are legal meshes with N-1 links.
  noc::NocConfig chain;
  chain.rows = 1;
  chain.cols = 6;
  EXPECT_EQ(model.static_estimate(chain).num_links, 5u);

  noc::NocConfig bad;
  bad.rows = 0;
  EXPECT_THROW(model.static_estimate(bad), std::invalid_argument);
}

TEST(EnergyModel, MeasureMatchesHandComputedPerLinkSums) {
  // Three 8-bit links, one per class, fed hand-picked patterns:
  //   injection:    0x00 -> 0xFF -> 0x00      = 8 + 8 = 16 BT, 3 flits
  //   inter-router: 0x00 -> 0x0F              = 4 BT, 2 flits
  //   ejection:     0xAA                      = 4 BT (from idle 0), 1 flit
  noc::BtRecorder recorder(noc::BtScopeConfig{}, 8);
  const auto inj = recorder.register_link(
      noc::LinkInfo{noc::LinkKind::kInjection, 0, 1, -1});
  const auto mid = recorder.register_link(
      noc::LinkInfo{noc::LinkKind::kInterRouter, 1, 2, 3});
  const auto ej = recorder.register_link(
      noc::LinkInfo{noc::LinkKind::kEjection, 2, 2, -1});

  const auto pattern = [](std::uint8_t byte) {
    BitVec v(8);
    for (unsigned b = 0; b < 8; ++b)
      if (byte & (1u << b)) v.set_bit(b, true);
    return v;
  };
  recorder.observe(inj, pattern(0x00));
  recorder.observe(inj, pattern(0xFF));
  recorder.observe(inj, pattern(0x00));
  recorder.observe(mid, pattern(0x00));
  recorder.observe(mid, pattern(0x0F));
  recorder.observe(ej, pattern(0xAA));

  const EnergyModel model(EnergyModelConfig{0.5, 100.0});  // easy arithmetic
  const EnergyReport report = model.measure(recorder, 10);

  // Default scope counts inter-router + ejection: 4 + 4 = 8 transitions.
  EXPECT_EQ(report.transitions, 8u);
  EXPECT_EQ(report.cycles, 10u);
  EXPECT_DOUBLE_EQ(report.energy_pj, 8 * 0.5);
  // 4 pJ over 10 cycles at 100 MHz: 4e-12 J / 1e-7 s = 4e-5 W = 0.04 mW.
  EXPECT_NEAR(report.power_mw, 0.04, 1e-12);

  ASSERT_EQ(report.by_kind.size(), 3u);
  EXPECT_EQ(report.by_kind[0].kind, noc::LinkKind::kInjection);
  EXPECT_EQ(report.by_kind[0].transitions, 16u);
  EXPECT_EQ(report.by_kind[0].flits, 3u);
  EXPECT_DOUBLE_EQ(report.by_kind[0].energy_pj, 16 * 0.5);
  EXPECT_EQ(report.by_kind[1].transitions, 4u);
  EXPECT_EQ(report.by_kind[2].transitions, 4u);

  ASSERT_EQ(report.links.size(), 3u);
  EXPECT_EQ(report.links[0].link_id, inj);
  EXPECT_EQ(report.links[0].transitions, 16u);
  EXPECT_EQ(report.links[0].flits, 3u);
  EXPECT_EQ(report.links[1].link_id, mid);
  EXPECT_EQ(report.links[1].transitions, 4u);
  EXPECT_EQ(report.links[1].info.src_port, 3);
  EXPECT_EQ(report.links[2].link_id, ej);
  EXPECT_EQ(report.links[2].transitions, 4u);
  EXPECT_EQ(report.links[2].flits, 1u);

  // Per-link energies sum to the all-links energy; the in-scope subset
  // (inter-router + ejection) sums to the report total.
  double all_links = 0.0;
  double in_scope = 0.0;
  for (const LinkEnergyRow& link : report.links) {
    all_links += link.energy_pj;
    if (link.info.kind != noc::LinkKind::kInjection)
      in_scope += link.energy_pj;
  }
  EXPECT_DOUBLE_EQ(all_links, (16 + 4 + 4) * 0.5);
  EXPECT_DOUBLE_EQ(in_scope, report.energy_pj);
}

TEST(EnergyModel, AnnotateAttachesEnergyToSnapshots) {
  const EnergyModel model(EnergyModelConfig{2.0, 125.0});
  std::vector<noc::LinkObservation> observations{
      {0, noc::LinkInfo{noc::LinkKind::kInterRouter, 0, 1, 2}, 5, 100},
      {1, noc::LinkInfo{noc::LinkKind::kEjection, 1, 1, -1}, 2, 0},
  };
  const auto rows = model.annotate(observations);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].link_id, 0);
  EXPECT_EQ(rows[0].transitions, 100u);
  EXPECT_DOUBLE_EQ(rows[0].energy_pj, 200.0);
  EXPECT_EQ(rows[1].flits, 2u);
  EXPECT_DOUBLE_EQ(rows[1].energy_pj, 0.0);
}

TEST(EnergyModel, SnapshotOrderAndContentMatchAccessors) {
  noc::BtRecorder recorder(noc::BtScopeConfig{}, 4);
  const auto a = recorder.register_link(
      noc::LinkInfo{noc::LinkKind::kInterRouter, 0, 1, 1});
  const auto b = recorder.register_link(
      noc::LinkInfo{noc::LinkKind::kInterRouter, 1, 0, 2});
  BitVec v(4);
  v.set_bit(0, true);
  recorder.observe(b, v);
  const auto snap = recorder.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].link_id, a);
  EXPECT_EQ(snap[0].transitions, recorder.link_bt(a));
  EXPECT_EQ(snap[1].link_id, b);
  EXPECT_EQ(snap[1].transitions, 1u);
  EXPECT_EQ(snap[1].flits, 1u);
}

}  // namespace
}  // namespace nocbt::hw
