// Property suite over the whole optimizer registry x ordering-strategy
// cross-product: every registered Optimizer, searching a space containing
// every OrderingStrategy, must be (a) seed-deterministic — the identical
// trajectory and winner on a re-run — and (b) never worse than the best
// single-mode baseline sweep. The axes come from the registries, so a new
// optimizer or ordering strategy is covered without touching this file.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/config.h"
#include "opt/coopt.h"
#include "ordering/ordering.h"
#include "place/policy.h"
#include "sim/campaign.h"
#include "sim/campaign_config.h"

namespace nocbt::opt {
namespace {

/// Small placed-LeNet template: cheap enough that the full registry
/// cross-product stays within a unit-test budget.
sim::CampaignSpec lenet_template(ordering::OrderingMode mode) {
  Options opts;
  sim::CampaignSpec base = sim::campaign_from_options(opts);
  base.name = "prop-coopt";
  base.generators = {sim::GeneratorKind::kPlacement};
  base.meshes = {sim::parse_mesh_spec("4x4")};
  base.modes = {ordering::OrderingMode::kBaseline};
  if (mode != ordering::OrderingMode::kBaseline) base.modes.push_back(mode);
  base.windows = {32};
  base.formats = {DataFormat::kFixed8};
  base.base.model = "lenet";
  base.base.tiles_per_layer = 4;
  base.base.packets = 32;
  return base;
}

void expect_same_outcome(const CoOptResult& a, const CoOptResult& b) {
  EXPECT_TRUE(a.best == b.best)
      << to_string(a.best) << " vs " << to_string(b.best);
  EXPECT_EQ(a.best_power_mw, b.best_power_mw);
  EXPECT_TRUE(a.baseline == b.baseline);
  EXPECT_EQ(a.baseline_power_mw, b.baseline_power_mw);
  EXPECT_EQ(a.guard_applied, b.guard_applied);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_TRUE(a.steps[i].candidate == b.steps[i].candidate);
    EXPECT_EQ(a.steps[i].power_mw, b.steps[i].power_mw);
    EXPECT_EQ(a.steps[i].accepted, b.steps[i].accepted);
    EXPECT_EQ(a.steps[i].improved, b.steps[i].improved);
  }
}

TEST(OptPropertySuite, EveryOptimizerIsDeterministicAndGuardedOnEveryMode) {
  for (const std::string& optimizer : registered_optimizer_names()) {
    for (const ordering::OrderingMode mode : ordering::all_ordering_modes()) {
      SCOPED_TRACE("optimizer=" + optimizer +
                   " mode=" + ordering::short_mode_name(mode));
      const sim::CampaignSpec base = lenet_template(mode);
      const SearchSpace space =
          SearchSpace::from_campaign(base, place::registered_policy_names());

      CoOptConfig config;
      config.optimizer = optimizer;
      config.seed = 7;
      config.max_evals = 4;

      const CoOptResult a = run_coopt(base, space, config);
      const CoOptResult b = run_coopt(base, space, config);

      // (a) seed-determinism: the identical search, twice.
      expect_same_outcome(a, b);

      // (b) never worse than the best single-mode baseline row, and the
      // reported winner's measurement is the ranked score.
      EXPECT_LE(a.best_power_mw, a.baseline_power_mw);
      EXPECT_EQ(a.best_power_mw, a.best_result.power_mw);
      EXPECT_GT(a.best_power_mw, 0.0);
    }
  }
}

TEST(OptPropertySuite, DifferentSeedsMayDivergeButStayGuarded) {
  const sim::CampaignSpec base =
      lenet_template(ordering::OrderingMode::kSeparated);
  const SearchSpace space =
      SearchSpace::from_campaign(base, place::registered_policy_names());
  Evaluator eval(base);  // shared memo: seeds differ, measurements don't
  for (const std::string& optimizer : registered_optimizer_names()) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      SCOPED_TRACE("optimizer=" + optimizer + " seed=" +
                   std::to_string(seed));
      CoOptConfig config;
      config.optimizer = optimizer;
      config.seed = seed;
      config.max_evals = 4;
      const CoOptResult r = run_coopt(eval, space, config);
      EXPECT_LE(r.best_power_mw, r.baseline_power_mw);
    }
  }
}

TEST(OptPropertySuite, SinglePointSpaceReturnsTheIncumbent) {
  const sim::CampaignSpec base =
      lenet_template(ordering::OrderingMode::kBaseline);
  SearchSpace space;
  space.placements = {"rowmajor"};
  space.modes = {ordering::OrderingMode::kBaseline};
  space.windows = {32};
  space.formats = {DataFormat::kFixed8};
  for (const std::string& optimizer : registered_optimizer_names()) {
    SCOPED_TRACE("optimizer=" + optimizer);
    CoOptConfig config;
    config.optimizer = optimizer;
    config.seed = 1;
    config.max_evals = 4;
    const CoOptResult r = run_coopt(base, space, config);
    EXPECT_TRUE(r.best == r.baseline);
    EXPECT_EQ(r.best_power_mw, r.baseline_power_mw);
    EXPECT_FALSE(r.guard_applied);
  }
}

}  // namespace
}  // namespace nocbt::opt
