// Tests for the Evaluator x ScenarioCache seam: co-optimizer searches and
// campaign sweeps scoring through one content-addressed store must share
// hits both ways, the on_measure checkpoint hook must fire only for real
// simulations, and uncacheable templates must degrade to plain simulation
// with an empty content hash.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "opt/evaluator.h"
#include "opt/search_space.h"
#include "ordering/ordering.h"
#include "place/policy.h"
#include "sim/campaign.h"
#include "sim/campaign_config.h"
#include "sim/campaign_executor.h"
#include "sim/scenario_cache.h"

namespace nocbt::opt {
namespace {

std::string scratch_dir(const std::string& leaf) {
  const std::string path = testing::TempDir() + "nocbt_shared_" + leaf;
  std::filesystem::remove_all(path);
  return path;
}

/// Small placed-lenet template: fast to simulate, fully cacheable (the
/// placement generator derives its traffic from the zoo by model name, so
/// no hooks fingerprint is involved).
sim::CampaignSpec lenet_template() {
  Options opts;
  sim::CampaignSpec base = sim::campaign_from_options(opts);
  base.name = "shared-cache-unit";
  base.generators = {sim::GeneratorKind::kPlacement};
  base.meshes = {sim::parse_mesh_spec("4x4mc2")};
  base.modes = {ordering::OrderingMode::kBaseline,
                ordering::OrderingMode::kSeparated};
  base.windows = {16};
  base.formats = {DataFormat::kFixed8};
  base.base.model = "lenet";
  base.base.tiles_per_layer = 2;
  return base;
}

Candidate first_candidate(const sim::CampaignSpec& base) {
  return Candidate{place::registered_policy_names().front(),
                   base.modes.front(), base.windows.front(),
                   base.formats.front()};
}

TEST(SharedCache, SecondEvaluatorIsServedWithoutSimulating) {
  const sim::CampaignSpec base = lenet_template();
  const Candidate c = first_candidate(base);
  const std::string dir = scratch_dir("second_eval");

  Evaluator first(base, std::make_shared<sim::ScenarioCache>(dir));
  const sim::ScenarioResult cold = first.evaluate(c);
  EXPECT_EQ(first.runs(), 1u);
  EXPECT_EQ(first.shared_hits(), 0u);
  // Memoized revisit: no new simulation, no new cache traffic.
  (void)first.evaluate(c);
  EXPECT_EQ(first.lookups(), 2u);
  EXPECT_EQ(first.runs(), 1u);

  // A fresh evaluator (new process, same cache_dir) resumes for free.
  Evaluator second(base, std::make_shared<sim::ScenarioCache>(dir));
  const sim::ScenarioResult warm = second.evaluate(c);
  EXPECT_EQ(second.runs(), 0u) << "shared cache must serve the first visit";
  EXPECT_EQ(second.shared_hits(), 1u);
  EXPECT_TRUE(warm == cold);
}

TEST(SharedCache, SweepAndSearchShareHitsBothWays) {
  const sim::CampaignSpec base = lenet_template();
  const std::string dir = scratch_dir("cross_frontend");
  auto cache = std::make_shared<sim::ScenarioCache>(dir);
  Evaluator eval(base, cache);
  const Candidate c = first_candidate(base);

  // Sweep first: run_campaign over the exact single-point campaign the
  // evaluator would score, persisting into the shared store.
  sim::RunnerConfig runner;
  runner.exec.cache_dir = dir;
  const sim::CampaignResult sweep = run_campaign(eval.campaign_for(c), runner);
  ASSERT_EQ(sweep.rows.size(), 1u);
  EXPECT_EQ(sweep.stats.simulated, 1u);

  // Search second: the evaluator's first visit is a shared hit, and the
  // score is the sweep's row.
  const sim::ScenarioResult scored = eval.evaluate(c);
  EXPECT_EQ(eval.runs(), 0u);
  EXPECT_EQ(eval.shared_hits(), 1u);
  EXPECT_TRUE(scored == sweep.rows[0]);

  // And the other way: a candidate the search measured is a cache hit for
  // a later sweep.
  const Candidate c2{c.placement, base.modes.back(), c.window, c.format};
  (void)eval.evaluate(c2);
  EXPECT_EQ(eval.runs(), 1u);
  const sim::CampaignResult sweep2 =
      run_campaign(eval.campaign_for(c2), runner);
  EXPECT_EQ(sweep2.stats.simulated, 0u);
  EXPECT_EQ(sweep2.stats.cache_hits, 1u);
}

TEST(SharedCache, OnMeasureFiresOnlyForRealSimulations) {
  const sim::CampaignSpec base = lenet_template();
  const std::string dir = scratch_dir("on_measure");
  const Candidate c = first_candidate(base);

  std::vector<std::string> hashes;
  Evaluator first(base, std::make_shared<sim::ScenarioCache>(dir));
  first.on_measure = [&](const Candidate&, const std::string& hash,
                         const sim::ScenarioResult&) {
    hashes.push_back(hash);
  };
  (void)first.evaluate(c);
  (void)first.evaluate(c);  // memo hit — must not re-fire
  ASSERT_EQ(hashes.size(), 1u) << "one simulation, one checkpoint";
  EXPECT_EQ(hashes[0].size(), 32u);

  Evaluator second(base, std::make_shared<sim::ScenarioCache>(dir));
  std::size_t fired = 0;
  second.on_measure = [&](const Candidate&, const std::string&,
                          const sim::ScenarioResult&) { ++fired; };
  (void)second.evaluate(c);
  EXPECT_EQ(second.shared_hits(), 1u);
  EXPECT_EQ(fired, 0u)
      << "shared-cache hits are already persisted — no re-checkpoint";
}

TEST(SharedCache, UncacheableTemplateStillScoresWithoutCheckpoints) {
  // A model-inference template with no hooks fingerprint has no stable
  // identity: every visit simulates (beyond the local memo) and on_measure
  // never fires, so journals only ever hold replayable rows.
  sim::CampaignSpec base = lenet_template();
  base.generators = {sim::GeneratorKind::kModel};
  base.hooks.id.clear();

  const std::string dir = scratch_dir("uncacheable");
  Evaluator eval(base, std::make_shared<sim::ScenarioCache>(dir));
  std::size_t fired = 0;
  eval.on_measure = [&](const Candidate&, const std::string&,
                        const sim::ScenarioResult&) { ++fired; };
  const Candidate c = first_candidate(base);
  (void)eval.evaluate(c);
  EXPECT_EQ(eval.runs(), 1u);
  EXPECT_EQ(eval.shared_hits(), 0u);
  EXPECT_EQ(fired, 0u) << "an unidentifiable scenario must not checkpoint";
  EXPECT_TRUE(std::filesystem::is_empty(dir))
      << "nothing may be persisted under an unstable identity";
}

}  // namespace
}  // namespace nocbt::opt
