// Tests for the co-optimizer subsystem: registry semantics, the
// paper-scale acceptance run (fixed-seed anneal on the placed ResNet must
// end no worse than the classic single-mode sweep), and the emitted
// winning-spec byte-identity contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "opt/coopt.h"
#include "opt/evaluator.h"
#include "opt/optimizer.h"
#include "opt/search_space.h"
#include "ordering/ordering.h"
#include "place/policy.h"
#include "sim/campaign.h"
#include "sim/campaign_report.h"
#include "sim/scenario_runner.h"
#include "sim/campaign_config.h"

namespace nocbt::opt {
namespace {

sim::CampaignSpec resnet_template() {
  Options opts;
  sim::CampaignSpec base = sim::campaign_from_options(opts);
  base.name = "resnet-coopt";
  base.generators = {sim::GeneratorKind::kPlacement};
  base.meshes = {sim::parse_mesh_spec("8x8mc4")};
  base.modes = ordering::all_ordering_modes();
  base.windows = {64};
  base.formats = {DataFormat::kFixed8};
  base.base.model = "resnet";
  base.base.tiles_per_layer = 8;
  return base;
}

TEST(OptimizerRegistry, BuiltinsAreRegisteredInOrder) {
  const std::vector<std::string> names = registered_optimizer_names();
  ASSERT_GE(names.size(), 3u);
  for (const char* builtin : {"random", "greedy-coordinate", "anneal"})
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  for (const std::string& name : names)
    EXPECT_EQ(get_optimizer(name).name(), name);
}

TEST(OptimizerRegistry, UnknownNameThrowsListingRegistered) {
  EXPECT_EQ(find_optimizer("no-such-search"), nullptr);
  try {
    (void)get_optimizer("no-such-search");
    FAIL() << "expected get_optimizer to throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-search"), std::string::npos) << msg;
    EXPECT_NE(msg.find("anneal"), std::string::npos) << msg;
  }
}

TEST(OptimizerRegistry, RejectsNullAndDuplicate) {
  EXPECT_THROW(register_optimizer(nullptr), std::invalid_argument);

  class Dup final : public Optimizer {
   public:
    std::string_view name() const noexcept override { return "anneal"; }
    std::string_view description() const noexcept override { return "dup"; }
    SearchOutcome search(Evaluator&, const SearchSpace&, const CoOptConfig&,
                         const Candidate& incumbent,
                         double incumbent_power_mw) const override {
      return SearchOutcome{incumbent, incumbent_power_mw, {}};
    }
  };
  EXPECT_THROW(register_optimizer(std::make_unique<Dup>()),
               std::invalid_argument);
}

TEST(SearchSpaceChecks, ValidateRejectsBadAxes) {
  SearchSpace space = SearchSpace::full({64}, {DataFormat::kFixed8});
  EXPECT_GE(space.size(), 3u * 8u);
  space.placements.push_back("no-such-policy");
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space.placements.pop_back();
  space.windows.push_back(64);
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space.windows.pop_back();
  space.modes.clear();
  EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(CoOptResnet, AnnealBeatsOrMatchesTheSingleModeSweep) {
  // Acceptance gate: fixed-seed anneal on the placed ResNet (8x8 mesh)
  // must find a configuration whose measured power is <= the best row of
  // the classic single-mode sweep (rowmajor placement, window 64, fixed-8
  // — resnet_placed_sweep's 8x8 grid, every ordering mode).
  const sim::CampaignSpec base = resnet_template();
  Evaluator eval(base);

  double sweep_best = 0.0;
  bool first = true;
  for (const ordering::OrderingMode mode : ordering::all_ordering_modes()) {
    Candidate c;
    c.placement = "rowmajor";
    c.mode = mode;
    c.window = 64;
    c.format = DataFormat::kFixed8;
    const double power = eval.evaluate(c).power_mw;
    if (first || power < sweep_best) sweep_best = power;
    first = false;
  }

  const SearchSpace space =
      SearchSpace::from_campaign(base, place::registered_policy_names());
  CoOptConfig config;
  config.optimizer = "anneal";
  config.seed = 1;
  config.max_evals = 10;
  const CoOptResult result = run_coopt(eval, space, config);

  EXPECT_LE(result.best_power_mw, sweep_best);
  EXPECT_LE(result.best_power_mw, result.baseline_power_mw);
  EXPECT_EQ(result.best_power_mw, result.best_result.power_mw);
  EXPECT_FALSE(result.guard_applied);
  EXPECT_EQ(result.steps.size(), 10u);
  EXPECT_GE(result.evaluations, space.modes.size());
}

TEST(CoOptResnet, EmittedWinningSpecRerunsByteIdentically) {
  // The emitted spec file must reconstruct a campaign whose single
  // scenario measures the winner byte for byte — the contract that lets
  // `nocbt_campaign config=<spec>` reproduce the co-optimizer's result.
  const sim::CampaignSpec base = resnet_template();
  Evaluator eval(base);
  const SearchSpace space =
      SearchSpace::from_campaign(base, place::registered_policy_names());
  CoOptConfig config;
  config.optimizer = "anneal";
  config.seed = 1;
  config.max_evals = 6;
  const CoOptResult result = run_coopt(eval, space, config);

  const std::string path = testing::TempDir() + "nocbt_coopt_winning.conf";
  sim::write_campaign_config(path, result.winning);
  const sim::CampaignSpec reparsed =
      sim::campaign_from_options(Options::parse_file(path));
  const sim::ScenarioResult rerun = sim::run_single_scenario(reparsed);

  ASSERT_TRUE(rerun.error.empty()) << rerun.error;
  EXPECT_TRUE(rerun == result.best_result);
  EXPECT_EQ(rerun.power_mw, result.best_result.power_mw);
  EXPECT_EQ(rerun.energy_pj, result.best_result.energy_pj);
  EXPECT_EQ(rerun.bt_ordered, result.best_result.bt_ordered);

  // The campaign-level JSON reports agree byte for byte as well.
  sim::CampaignResult mine;
  mine.rows.push_back(result.best_result);
  sim::CampaignResult theirs;
  theirs.rows.push_back(rerun);
  EXPECT_EQ(sim::json_report(result.winning, mine),
            sim::json_report(reparsed, theirs));
}

}  // namespace
}  // namespace nocbt::opt
