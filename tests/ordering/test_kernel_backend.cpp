// Registry, dispatch, and differential suites for the BtKernelBackend
// kernel tier. The load-bearing invariant is byte-identity: every
// registered backend — scalar, batch64, avx2 where the host has it — must
// return exactly the sums of the naive per-bit reference, batched entry
// points must equal their looped counterparts, and forcing any tier via
// ScopedKernelTier must never change a result. The campaign golden suite
// leans on this when it replays reports under every tier.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "ordering/bt_kernel_backend.h"
#include "ordering/bt_kernels.h"

namespace nocbt::ordering {
namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, unsigned bits,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & low_mask(bits)));
  return out;
}

/// Windows drawn from a 3-value alphabet: long runs of equal values and
/// repeated distances stress the masked-tail and accumulator paths with
/// the degenerate sums random data never produces.
std::vector<std::uint32_t> tie_heavy_patterns(std::size_t n, unsigned bits,
                                              std::uint64_t seed) {
  const auto mask = static_cast<std::uint32_t>(low_mask(bits));
  const std::uint32_t alphabet[3] = {0u, mask, 0x55555555u & mask};
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(alphabet[rng.bits64() % 3]);
  return out;
}

/// Window sizes straddling every layout boundary: the 64-bit packed word
/// (8 fixed-8 / 2 float-32 values), the 32-byte AVX2 vector, and the
/// 128-word stack threshold of the scalar tier.
const std::size_t kWindowSizes[] = {0u,  1u,  2u,  7u,   8u,   9u,
                                    15u, 16u, 17u, 31u,  32u,  33u,
                                    63u, 64u, 65u, 255u, 256u, 257u};

const DataFormat kFormats[] = {DataFormat::kFixed8, DataFormat::kFloat32};

TEST(KernelRegistry, BuiltinsRegisteredInPriorityOrder) {
  const auto names = registered_kernel_backend_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "scalar");
  EXPECT_EQ(names[1], "batch64");
  for (const std::string& name : names) {
    const BtKernelBackend* backend = find_kernel_backend(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(&get_kernel_backend(name), backend);
    EXPECT_FALSE(backend->description().empty()) << name;
  }
  // scalar is the always-available floor the dispatcher can fall back to.
  EXPECT_TRUE(get_kernel_backend("scalar").available());
  EXPECT_EQ(get_kernel_backend("scalar").priority(), 0);
  EXPECT_GT(get_kernel_backend("batch64").priority(), 0);
  EXPECT_EQ(find_kernel_backend("no-such-tier"), nullptr);
}

TEST(KernelRegistry, GetUnknownThrowsListingRegisteredNames) {
  try {
    (void)get_kernel_backend("warp9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp9"), std::string::npos);
    EXPECT_NE(what.find("scalar"), std::string::npos);
    EXPECT_NE(what.find("batch64"), std::string::npos);
  }
}

TEST(KernelRegistry, RegisterRejectsNullAndDuplicateNames) {
  EXPECT_THROW(register_kernel_backend(nullptr), std::invalid_argument);

  class DuplicateScalar final : public BtKernelBackend {
   public:
    std::string_view name() const noexcept override { return "scalar"; }
    std::string_view description() const noexcept override { return "dup"; }
    int priority() const noexcept override { return -1; }
    std::uint64_t sequence_bt(std::span<const std::uint32_t>,
                              DataFormat) const override {
      return 0;
    }
  };
  EXPECT_THROW(register_kernel_backend(std::make_unique<DuplicateScalar>()),
               std::invalid_argument);
}

TEST(KernelDispatch, ActiveBackendHonorsEnvOrPicksBestAvailable) {
  const BtKernelBackend& active = active_kernel_backend();
  EXPECT_TRUE(active.available());
  if (const char* env = std::getenv("NOCBT_KERNEL_TIER"); env && *env) {
    // The forced-tier CI jobs run this whole binary under the override —
    // resolution must have obeyed it.
    EXPECT_EQ(active.name(), env);
  } else {
    for (const BtKernelBackend* backend : registered_kernel_backends())
      if (backend->available())
        EXPECT_GE(active.priority(), backend->priority()) << backend->name();
  }
}

TEST(KernelDispatch, ScopedTierForcesAndRestores) {
  const std::string before{active_kernel_backend().name()};
  {
    const ScopedKernelTier outer("scalar");
    EXPECT_EQ(active_kernel_backend().name(), "scalar");
    {
      const ScopedKernelTier inner("batch64");
      EXPECT_EQ(active_kernel_backend().name(), "batch64");
    }
    EXPECT_EQ(active_kernel_backend().name(), "scalar");
  }
  EXPECT_EQ(active_kernel_backend().name(), before);
}

TEST(KernelDispatch, ScopedTierRejectsUnknownNames) {
  EXPECT_THROW(ScopedKernelTier("no-such-tier"), std::invalid_argument);
}

TEST(KernelDifferential, EveryBackendMatchesNaiveReference) {
  for (const BtKernelBackend* backend : registered_kernel_backends()) {
    if (!backend->available()) continue;
    for (const DataFormat format : kFormats) {
      for (const std::size_t n : kWindowSizes) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          const auto window =
              random_patterns(n, value_bits(format), seed * 131 + n);
          EXPECT_EQ(backend->sequence_bt(window, format),
                    sequence_bt_reference(window, format))
              << backend->name() << " n=" << n << " seed=" << seed;
          const auto ties =
              tie_heavy_patterns(n, value_bits(format), seed * 17 + n);
          EXPECT_EQ(backend->sequence_bt(ties, format),
                    sequence_bt_reference(ties, format))
              << backend->name() << " tie-heavy n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

TEST(KernelDifferential, BatchEqualsLoopedSequenceBt) {
  for (const BtKernelBackend* backend : registered_kernel_backends()) {
    if (!backend->available()) continue;
    for (const DataFormat format : kFormats) {
      const auto patterns = random_patterns(257, value_bits(format), 4242);
      // Window sizes dividing 257 never evenly: every batch ends ragged.
      for (const std::size_t wv : {1u, 7u, 32u, 63u, 64u, 65u, 100u, 300u}) {
        const std::size_t windows = (patterns.size() + wv - 1) / wv;
        std::vector<std::uint64_t> batched(windows);
        backend->sequence_bt_batch(patterns, format, wv, batched);
        for (std::size_t w = 0; w < windows; ++w) {
          const std::size_t start = w * wv;
          const std::size_t len = std::min(wv, patterns.size() - start);
          EXPECT_EQ(batched[w],
                    backend->sequence_bt(
                        std::span(patterns).subspan(start, len), format))
              << backend->name() << " wv=" << wv << " window=" << w;
        }
      }
    }
  }
}

TEST(KernelDifferential, BatchValidatesWindowAndOutSizes) {
  const auto patterns = random_patterns(10, 8, 7);
  std::vector<std::uint64_t> out(4);  // 10 values at wv=3 form 4 windows
  for (const BtKernelBackend* backend : registered_kernel_backends()) {
    if (!backend->available()) continue;
    EXPECT_THROW(
        backend->sequence_bt_batch(patterns, DataFormat::kFixed8, 0, out),
        std::invalid_argument)
        << backend->name();
    std::vector<std::uint64_t> short_out(3);
    EXPECT_THROW(backend->sequence_bt_batch(patterns, DataFormat::kFixed8, 3,
                                            short_out),
                 std::invalid_argument)
        << backend->name();
    backend->sequence_bt_batch(patterns, DataFormat::kFixed8, 3, out);
  }
}

TEST(KernelDifferential, PairwiseHdMatrixMatchesDirectPopcount) {
  for (const BtKernelBackend* backend : registered_kernel_backends()) {
    if (!backend->available()) continue;
    for (const DataFormat format : kFormats) {
      // 150 spans two 128-wide tiles, so inter-tile mirroring is covered.
      for (const std::size_t n : {1u, 2u, 17u, 127u, 128u, 129u, 150u}) {
        const auto window = random_patterns(n, value_bits(format), 1000 + n);
        const auto mask =
            static_cast<std::uint32_t>(low_mask(value_bits(format)));
        std::vector<std::uint8_t> matrix(n * n, 0xEE);
        backend->pairwise_hd_matrix(window, format, matrix);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const auto expected = static_cast<std::uint8_t>(
                popcount32((window[i] & mask) ^ (window[j] & mask)));
            ASSERT_EQ(matrix[i * n + j], expected)
                << backend->name() << " n=" << n << " i=" << i << " j=" << j;
            ASSERT_EQ(matrix[i * n + j], matrix[j * n + i])
                << backend->name() << " asymmetric at " << i << "," << j;
          }
          ASSERT_EQ(matrix[i * n + i], 0u) << backend->name();
        }
      }
      std::vector<std::uint8_t> wrong(5);
      EXPECT_THROW(backend->pairwise_hd_matrix(random_patterns(3, 8, 1),
                                               format, wrong),
                   std::invalid_argument)
          << backend->name();
    }
  }
}

TEST(KernelFreeFunctions, DispatchedEntryPointsAreTierInvariant) {
  for (const DataFormat format : kFormats) {
    const auto patterns = random_patterns(300, value_bits(format), 31337);
    const std::uint64_t ref_bt = sequence_bt_reference(patterns, format);
    const auto ref_batch = [&] {
      const ScopedKernelTier force("scalar");
      return sequence_bt_batch(patterns, format, 32);
    }();
    const auto ref_matrix = [&] {
      const ScopedKernelTier force("scalar");
      return pairwise_hd_matrix(std::span(patterns).first(64), format);
    }();
    for (const BtKernelBackend* backend : registered_kernel_backends()) {
      if (!backend->available()) continue;
      const ScopedKernelTier force(backend->name());
      EXPECT_EQ(sequence_bt(patterns, format), ref_bt) << backend->name();
      EXPECT_EQ(sequence_bt_batch(patterns, format, 32), ref_batch)
          << backend->name();
      EXPECT_EQ(pairwise_hd_matrix(std::span(patterns).first(64), format),
                ref_matrix)
          << backend->name();
    }
  }
}

TEST(KernelFreeFunctions, BatchHelperSizesOutputAndValidates) {
  const auto patterns = random_patterns(65, 8, 5);
  const auto out = sequence_bt_batch(patterns, DataFormat::kFixed8, 32);
  ASSERT_EQ(out.size(), 3u);  // 32 + 32 + ragged 1
  EXPECT_EQ(out[2], 0u);      // single-value window has no transitions
  EXPECT_THROW(sequence_bt_batch(patterns, DataFormat::kFixed8, 0),
               std::invalid_argument);
  EXPECT_TRUE(sequence_bt_batch({}, DataFormat::kFixed8, 8).empty());
}

TEST(KernelFreeFunctions, PackPatternsIntoReusesCapacity) {
  PackedStream stream;
  const auto big = random_patterns(1024, 8, 9);
  pack_patterns_into(stream, big, DataFormat::kFixed8);
  EXPECT_EQ(stream.value_count, big.size());
  EXPECT_EQ(sequence_bt(stream), sequence_bt_reference(big, DataFormat::kFixed8));
  const std::uint64_t* before = stream.words.data();
  const std::size_t capacity = stream.words.capacity();
  // A smaller repack must reuse the buffer (zero-alloc steady state) and
  // still match a fresh pack bit for bit.
  const auto small = random_patterns(40, 32, 11);
  pack_patterns_into(stream, small, DataFormat::kFloat32);
  EXPECT_EQ(stream.words.data(), before);
  EXPECT_EQ(stream.words.capacity(), capacity);
  const PackedStream fresh = pack_patterns(small, DataFormat::kFloat32);
  EXPECT_EQ(stream.value_count, fresh.value_count);
  EXPECT_EQ(stream.bits_per_value, fresh.bits_per_value);
  EXPECT_EQ(stream.words, fresh.words);
}

}  // namespace
}  // namespace nocbt::ordering
