// Property tests for the two-flit optimality claim of §III-B: the
// descending interleaved ordering maximizes F = sum(x_i * y_i), verified
// against exhaustive search over all pairings.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ordering/two_flit.h"

namespace nocbt::ordering {
namespace {

TEST(TwoFlit, InterleaveProducesAlternatingDescendingCounts) {
  // popcounts: 0xFF=8, 0x7F=7, 0x3F=6, 0x1F=5, 0x0F=4, 0x07=3.
  const std::vector<std::uint32_t> values = {0x07, 0xFF, 0x1F, 0x3F, 0x0F, 0x7F};
  const auto a = interleave_descending(values, DataFormat::kFixed8);
  ASSERT_EQ(a.flit1.size(), 3u);
  ASSERT_EQ(a.flit2.size(), 3u);
  // x1 >= y1 >= x2 >= y2 >= x3 >= y3.
  EXPECT_EQ(a.flit1[0], 0xFFu);
  EXPECT_EQ(a.flit2[0], 0x7Fu);
  EXPECT_EQ(a.flit1[1], 0x3Fu);
  EXPECT_EQ(a.flit2[1], 0x1Fu);
  EXPECT_EQ(a.flit1[2], 0x0Fu);
  EXPECT_EQ(a.flit2[2], 0x07u);
}

TEST(TwoFlit, PairwiseProductSum) {
  TwoFlitAssignment a;
  a.flit1 = {0xFF, 0x0F};  // 8, 4
  a.flit2 = {0x7F, 0x03};  // 7, 2
  EXPECT_EQ(pairwise_product_sum(a, DataFormat::kFixed8), 8 * 7 + 4 * 2);
}

TEST(TwoFlit, RejectsOddCounts) {
  const std::vector<std::uint32_t> odd = {1, 2, 3};
  EXPECT_THROW(interleave_descending(odd, DataFormat::kFixed8),
               std::invalid_argument);
  EXPECT_THROW(exhaustive_best_f(odd, DataFormat::kFixed8),
               std::invalid_argument);
}

// The paper's core claim, checked exhaustively: for random multisets the
// count-based interleaved ordering achieves the maximal F over all
// pairings.
TEST(TwoFlit, InterleaveIsOptimalFixed8) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 * (1 + rng.uniform_int(0, 4));  // 2..10 values
    std::vector<std::uint32_t> values;
    for (std::size_t i = 0; i < n; ++i)
      values.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
    const auto assignment = interleave_descending(values, DataFormat::kFixed8);
    const auto f = pairwise_product_sum(assignment, DataFormat::kFixed8);
    const auto best = exhaustive_best_f(values, DataFormat::kFixed8);
    EXPECT_EQ(f, best) << "trial " << trial;
  }
}

TEST(TwoFlit, InterleaveIsOptimalFloat32) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint32_t> values;
    for (int i = 0; i < 8; ++i)
      values.push_back(static_cast<std::uint32_t>(rng.bits64()));
    const auto assignment =
        interleave_descending(values, DataFormat::kFloat32);
    EXPECT_EQ(pairwise_product_sum(assignment, DataFormat::kFloat32),
              exhaustive_best_f(values, DataFormat::kFloat32));
  }
}

// Maximizing F minimizes the expected transitions (Eq. 3): check that the
// interleaved ordering's expected BT is <= that of any random pairing.
TEST(TwoFlit, ExpectedTransitionsNotWorseThanRandomPairings) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> values;
    for (int i = 0; i < 12; ++i)
      values.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
    const auto optimal = interleave_descending(values, DataFormat::kFixed8);
    const double optimal_e = expected_transitions(optimal, DataFormat::kFixed8);

    // Random pairing: first half vs second half, unsorted.
    TwoFlitAssignment random;
    random.flit1.assign(values.begin(), values.begin() + 6);
    random.flit2.assign(values.begin() + 6, values.end());
    EXPECT_LE(optimal_e,
              expected_transitions(random, DataFormat::kFixed8) + 1e-9);
  }
}

TEST(TwoFlit, ExpectedTransitionsFormula) {
  TwoFlitAssignment a;
  a.flit1 = {0xFF};  // x = 8
  a.flit2 = {0x0F};  // y = 4
  // E = x + y - 2xy/W = 8 + 4 - 2*32/8 = 4.
  EXPECT_DOUBLE_EQ(expected_transitions(a, DataFormat::kFixed8), 4.0);
}

TEST(TwoFlit, PreservesValueMultiset) {
  Rng rng(43);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 10; ++i)
    values.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
  const auto a = interleave_descending(values, DataFormat::kFixed8);
  std::vector<std::uint32_t> combined = a.flit1;
  combined.insert(combined.end(), a.flit2.begin(), a.flit2.end());
  std::sort(combined.begin(), combined.end());
  std::vector<std::uint32_t> original = values;
  std::sort(original.begin(), original.end());
  EXPECT_EQ(combined, original);
}

}  // namespace
}  // namespace nocbt::ordering
