// Tests for the hardware ordering-unit model (paper Fig. 14): the
// behavioral sort network must agree bit-for-bit with the software
// popcount_descending_order reference, across the O0/O1/O2 transmission
// configurations, and the cycle model must match §IV-C3's latency shape.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "ordering/ordering.h"
#include "ordering/ordering_unit.h"

namespace nocbt::ordering {
namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, DataFormat format,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  const std::uint64_t mask = low_mask(value_bits(format));
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & mask));
  return out;
}

/// A unit whose pop-count stage is sized for the given format's values —
/// the configuration the platform instantiates per layer layout.
OrderingUnitModel unit_for(DataFormat format) {
  OrderingUnitConfig config;
  config.value_bits = value_bits(format);
  return OrderingUnitModel(config);
}

TEST(OrderingUnitModel, HardwareOrderMatchesSoftwareReference) {
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    const OrderingUnitModel unit = unit_for(format);
    for (const std::size_t n : {0u, 1u, 2u, 15u, 16u, 17u, 64u, 255u}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto window = random_patterns(n, format, seed * 131 + n);
        const auto hw = unit.hardware_order(window);
        const auto sw = popcount_descending_order(window, format);
        EXPECT_EQ(hw, sw) << "n=" << n << " seed=" << seed
                          << " format=" << to_string(format);
      }
    }
  }
}

TEST(OrderingUnitModel, HardwareOrderKeysOnConfiguredWidth) {
  // An 8-bit unit must ignore stray bits above its wire width, matching
  // the fixed-8 software reference even on dirty upper bits.
  const OrderingUnitModel unit = unit_for(DataFormat::kFixed8);
  const std::vector<std::uint32_t> dirty = {0xFFFFFF01u, 0x000000F0u,
                                            0xABCD00FFu, 0x00000000u};
  const auto hw = unit.hardware_order(dirty);
  EXPECT_EQ(hw, popcount_descending_order(dirty, DataFormat::kFixed8));
  EXPECT_EQ(dirty[hw[0]], 0xABCD00FFu);  // popcount8 == 8
}

TEST(OrderingUnitModel, ConvergesForEveryWindowSizeUpToCapacity) {
  // The odd-even-transposition network runs n passes for n values, which
  // is exactly the depth needed for convergence at the unit's lane
  // capacity. Check every window size up to `lanes`, with values drawn
  // from a tiny alphabet so duplicate popcounts (comparator ties) occur in
  // nearly every window — the stable network must still match the stable
  // software sort bit-for-bit.
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    const OrderingUnitModel unit = unit_for(format);
    // Popcounts over this alphabet: 0, 1, 1, 2, 2, 4 — heavy on ties.
    const std::uint32_t alphabet[] = {0x00, 0x01, 0x80, 0x03,
                                      0x81, 0x0F};
    for (std::uint32_t n = 0; n <= unit.config().lanes; ++n) {
      for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 997 + n);
        std::vector<std::uint32_t> window;
        window.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
          window.push_back(
              alphabet[static_cast<std::size_t>(rng.uniform_int(0, 5))]);
        const auto hw = unit.hardware_order(window);
        const auto sw = popcount_descending_order(window, format);
        ASSERT_EQ(hw, sw) << "n=" << n << " seed=" << seed
                          << " format=" << to_string(format);
      }
    }
  }
}

TEST(OrderingUnitModel, HardwareOrderIsStableOnTies) {
  // All-equal popcounts: the network's strict comparators must never move
  // anything, exactly like the stable software sort.
  const OrderingUnitModel unit = unit_for(DataFormat::kFixed8);
  const std::vector<std::uint32_t> ties = {0x0F, 0xF0, 0x33, 0xCC, 0x55};
  const auto hw = unit.hardware_order(ties);
  const std::vector<std::uint32_t> identity = {0, 1, 2, 3, 4};
  EXPECT_EQ(hw, identity);
}

TEST(OrderingUnitModel, BaselineModeNeedsNoSort) {
  // O0: values go out in natural task order — the unit is bypassed, so the
  // "ordering" is the identity permutation by definition.
  EXPECT_EQ(parse_ordering_mode("O0"), OrderingMode::kBaseline);
}

TEST(OrderingUnitModel, AffiliatedModePreservesPairing) {
  // O1: one hardware sort keyed on the weights reorders (weight, input)
  // pairs together, so the dot product is preserved with no recovery index.
  const OrderingUnitModel unit = unit_for(DataFormat::kFixed8);
  const auto weights = random_patterns(64, DataFormat::kFixed8, 21);
  const auto inputs = random_patterns(64, DataFormat::kFixed8, 22);

  std::uint64_t dot = 0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    dot += static_cast<std::uint64_t>(weights[i]) * inputs[i];

  const auto perm = unit.hardware_order(weights);
  const auto w_sorted = apply_permutation<std::uint32_t>(weights, perm);
  const auto in_sorted = apply_permutation<std::uint32_t>(inputs, perm);

  std::uint64_t dot_sorted = 0;
  for (std::size_t i = 0; i < w_sorted.size(); ++i)
    dot_sorted += static_cast<std::uint64_t>(w_sorted[i]) * in_sorted[i];
  EXPECT_EQ(dot_sorted, dot);
}

TEST(OrderingUnitModel, SeparatedModeRecoversPairingThroughIndex) {
  // O2: weights and inputs each hardware-sorted independently; the
  // minimal-bit-width pairing index re-pairs them at the PE.
  const OrderingUnitModel unit = unit_for(DataFormat::kFixed8);
  const auto weights = random_patterns(48, DataFormat::kFixed8, 31);
  const auto inputs = random_patterns(48, DataFormat::kFixed8, 32);

  std::uint64_t dot = 0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    dot += static_cast<std::uint64_t>(weights[i]) * inputs[i];

  const auto w_perm = unit.hardware_order(weights);
  const auto in_perm = unit.hardware_order(inputs);
  const auto w_sorted = apply_permutation<std::uint32_t>(weights, w_perm);
  const auto in_sorted = apply_permutation<std::uint32_t>(inputs, in_perm);
  const auto pair_index = separated_pairing_index(w_perm, in_perm);

  std::uint64_t dot_recovered = 0;
  for (std::size_t i = 0; i < w_sorted.size(); ++i)
    dot_recovered +=
        static_cast<std::uint64_t>(w_sorted[i]) * in_sorted[pair_index[i]];
  EXPECT_EQ(dot_recovered, dot);
}

TEST(OrderingUnitModel, CycleModelShape) {
  const OrderingUnitModel unit(
      OrderingUnitConfig{.lanes = 16, .value_bits = 32, .popcount_stages = 2});
  // <=1 value: just the pop-count pipeline.
  EXPECT_EQ(unit.cycles_to_order(0), 2u);
  EXPECT_EQ(unit.cycles_to_order(1), 2u);
  // n values: pipeline depth + one transposition pass each.
  EXPECT_EQ(unit.cycles_to_order(64), 2u + 64u);
  EXPECT_EQ(unit.affiliated_cycles(64), unit.cycles_to_order(64));
  // Separated ordering sorts twice (§V-C "double time consumption").
  EXPECT_EQ(unit.separated_cycles(64), 2 * unit.cycles_to_order(64));
  // Initiation: one flit-batch of `lanes` values per cycle.
  EXPECT_EQ(unit.initiation_interval(0), 1u);
  EXPECT_EQ(unit.initiation_interval(16), 1u);
  EXPECT_EQ(unit.initiation_interval(17), 2u);
  EXPECT_EQ(unit.separated_initiation_interval(17), 4u);
  EXPECT_EQ(unit.comparators(), 8u);
}

}  // namespace
}  // namespace nocbt::ordering
