// Tests for the greedy min-XOR chain ordering (ablation A4): permutation
// validity, the never-worse-than-natural-order property on random windows,
// and degenerate window sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"

namespace nocbt::ordering {
namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, DataFormat format,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  const std::uint64_t mask = low_mask(value_bits(format));
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & mask));
  return out;
}

/// Sum of bit transitions between consecutive values of a sequence — the
/// quantity the chain greedily minimizes within a window.
std::uint64_t adjacent_bt(const std::vector<std::uint32_t>& seq) {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < seq.size(); ++i)
    total += static_cast<std::uint64_t>(transitions(seq[i - 1], seq[i]));
  return total;
}

TEST(GreedyChain, EmptyWindow) {
  const std::vector<std::uint32_t> empty;
  EXPECT_TRUE(greedy_min_xor_chain(empty, DataFormat::kFixed8).empty());
  EXPECT_TRUE(chain_stream_greedy(empty, DataFormat::kFloat32, 16).empty());
}

TEST(GreedyChain, SingleElementWindow) {
  const std::vector<std::uint32_t> one = {0xA5};
  const auto perm = greedy_min_xor_chain(one, DataFormat::kFixed8);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0u);

  const auto stream = chain_stream_greedy(one, DataFormat::kFixed8, 4);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0], 0xA5u);
}

TEST(GreedyChain, ZeroWindowThrows) {
  const std::vector<std::uint32_t> patterns = {1, 2, 3};
  EXPECT_THROW(chain_stream_greedy(patterns, DataFormat::kFixed8, 0),
               std::invalid_argument);
}

TEST(GreedyChain, ReturnsValidPermutation) {
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    for (const std::size_t n : {2u, 3u, 16u, 64u, 257u}) {
      const auto patterns = random_patterns(n, format, 7 + n);
      const auto perm = greedy_min_xor_chain(patterns, format);
      EXPECT_TRUE(is_permutation(perm, n))
          << "n=" << n << " format=" << to_string(format);
    }
  }
}

TEST(GreedyChain, StartsFromHighestPopcount) {
  // Seed element is the max-popcount value (ties: lowest index), matching
  // the descending ordering's start.
  const std::vector<std::uint32_t> patterns = {0x0F, 0xFE, 0x01, 0xEF};
  const auto perm = greedy_min_xor_chain(patterns, DataFormat::kFixed8);
  ASSERT_FALSE(perm.empty());
  EXPECT_EQ(perm[0], 1u);  // 0xFE: first of the two 7-popcount values
}

TEST(GreedyChain, NeverWorseThanNaturalOrderOnRandomWindows) {
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto window = random_patterns(64, format, seed);
      const auto perm = greedy_min_xor_chain(window, format);
      std::vector<std::uint32_t> chained;
      for (const std::uint32_t idx : perm) chained.push_back(window[idx]);
      EXPECT_LE(adjacent_bt(chained), adjacent_bt(window))
          << "seed=" << seed << " format=" << to_string(format);
    }
  }
}

TEST(GreedyChain, NeverWorseThanPopcountOrderOnRandomWindows) {
  // The ablation's claim: true Hamming-distance chaining beats (or ties)
  // the popcount proxy within a window.
  for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32}) {
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
      const auto window = random_patterns(48, format, seed);
      const auto chain_perm = greedy_min_xor_chain(window, format);
      const auto sort_perm = popcount_descending_order(window, format);
      std::vector<std::uint32_t> chained, sorted;
      for (const std::uint32_t idx : chain_perm) chained.push_back(window[idx]);
      for (const std::uint32_t idx : sort_perm) sorted.push_back(window[idx]);
      EXPECT_LE(adjacent_bt(chained), adjacent_bt(sorted))
          << "seed=" << seed << " format=" << to_string(format);
    }
  }
}

TEST(GreedyChain, StreamChainsWindowByWindow) {
  const auto patterns = random_patterns(100, DataFormat::kFixed8, 11);
  const std::size_t window = 32;  // 100 = 32 + 32 + 32 + 4 (ragged tail)
  const auto out = chain_stream_greedy(patterns, DataFormat::kFixed8, window);
  ASSERT_EQ(out.size(), patterns.size());

  for (std::size_t start = 0; start < patterns.size(); start += window) {
    const std::size_t len = std::min(window, patterns.size() - start);
    // Each window of the output is a rearrangement of the same values...
    std::vector<std::uint32_t> in_window(patterns.begin() + start,
                                         patterns.begin() + start + len);
    std::vector<std::uint32_t> out_window(out.begin() + start,
                                          out.begin() + start + len);
    EXPECT_TRUE(std::is_permutation(in_window.begin(), in_window.end(),
                                    out_window.begin()));
    // ...and is exactly the per-window greedy chain.
    const auto perm = greedy_min_xor_chain(in_window, DataFormat::kFixed8);
    for (std::size_t i = 0; i < len; ++i)
      EXPECT_EQ(out_window[i], in_window[perm[i]]);
  }
}

}  // namespace
}  // namespace nocbt::ordering
