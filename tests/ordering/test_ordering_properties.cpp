// Property-based randomized suite over the ordering-strategy registry:
// invariants every registered strategy must satisfy, checked for random
// windows across both data formats.
//
//   P1  order() returns a valid permutation of [0, n) — bijective, and
//       applying it loses no value (multiset preserved).
//   P2  chain-class strategies (never_worse_than_arrival) never increase
//       the window's sequence BT versus arrival order.
//   P3  ordering is deterministic: the same window yields the same
//       permutation on every call (strategies are pure functions).
//
// The suite iterates registered_strategies(), so a strategy added to the
// registry — including ones registered by other tests in this binary — is
// covered automatically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "ordering/bt_kernels.h"
#include "ordering/ordering.h"
#include "ordering/strategy.h"

namespace nocbt::ordering {
namespace {

std::vector<std::uint32_t> random_window(std::size_t n, DataFormat format,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask = low_mask(value_bits(format));
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & mask));
  return out;
}

/// Windows that exercise empties, singletons, odd sizes, powers of two and
/// off-by-ones around the packing word size.
constexpr std::size_t kWindowSizes[] = {0, 1, 2, 3, 5, 8, 15, 16,
                                        17, 31, 32, 33, 64, 100};
constexpr std::uint64_t kSeeds[] = {1, 42, 977};

TEST(OrderingStrategyProperties, OrderIsAValidPermutation) {
  for (const OrderingStrategy* strategy : registered_strategies()) {
    for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
      for (const std::size_t n : kWindowSizes) {
        for (const std::uint64_t seed : kSeeds) {
          const auto window = random_window(n, format, seed * 7919 + n);
          const auto perm = strategy->order(window, format);
          ASSERT_TRUE(is_permutation(perm, n))
              << strategy->name() << " n=" << n << " seed=" << seed;
          // No value is lost or duplicated by applying the permutation.
          auto applied = apply_permutation(
              std::span<const std::uint32_t>(window),
              std::span<const std::uint32_t>(perm));
          auto original = window;
          std::sort(applied.begin(), applied.end());
          std::sort(original.begin(), original.end());
          ASSERT_EQ(applied, original)
              << strategy->name() << " n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

TEST(OrderingStrategyProperties, ChainClassNeverIncreasesWindowBt) {
  for (const OrderingStrategy* strategy : registered_strategies()) {
    if (!strategy->never_worse_than_arrival()) continue;
    for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
      for (const std::size_t n : kWindowSizes) {
        for (const std::uint64_t seed : kSeeds) {
          const auto window = random_window(n, format, seed * 104729 + n);
          const auto perm = strategy->order(window, format);
          EXPECT_LE(permuted_sequence_bt(window, perm, format),
                    sequence_bt_reference(window, format))
              << strategy->name() << " n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

TEST(OrderingStrategyProperties, AdversarialWindowsRespectTheChainGuard) {
  // Windows crafted so arrival order is already a minimal-BT gray-code
  // walk: a greedy chain seeded at the highest popcount would reorder and
  // lose — the guard must kick in (or the chain genuinely tie).
  const std::vector<std::uint32_t> gray = {0x00, 0x01, 0x03, 0x02,
                                           0x06, 0x07, 0x05, 0x04};
  for (const OrderingStrategy* strategy : registered_strategies()) {
    if (!strategy->never_worse_than_arrival()) continue;
    const auto perm = strategy->order(gray, DataFormat::kFixed8);
    EXPECT_LE(permuted_sequence_bt(gray, perm, DataFormat::kFixed8),
              sequence_bt_reference(gray, DataFormat::kFixed8))
        << strategy->name();
  }
}

TEST(OrderingStrategyProperties, OrderIsDeterministicForAFixedWindow) {
  for (const OrderingStrategy* strategy : registered_strategies()) {
    for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
      for (const std::size_t n : {std::size_t{16}, std::size_t{33}}) {
        const auto window = random_window(n, format, 1234 + n);
        const auto first = strategy->order(window, format);
        const auto second = strategy->order(window, format);
        EXPECT_EQ(first, second) << strategy->name() << " n=" << n;
      }
    }
  }
}

TEST(OrderingStrategyProperties, StreamOrderingPreservesEveryWindowsValues) {
  // order_stream_with must chunk exactly like the legacy stream functions:
  // whole stream re-emitted, window boundaries intact.
  const DataFormat format = DataFormat::kFixed8;
  const auto stream = random_window(101, format, 5);  // ragged tail window
  for (const OrderingStrategy* strategy : registered_strategies()) {
    const auto ordered = order_stream_with(*strategy, stream, format, 16);
    ASSERT_EQ(ordered.size(), stream.size()) << strategy->name();
    for (std::size_t start = 0; start < stream.size(); start += 16) {
      const std::size_t len = std::min<std::size_t>(16, stream.size() - start);
      std::vector<std::uint32_t> in(stream.begin() + start,
                                    stream.begin() + start + len);
      std::vector<std::uint32_t> out(ordered.begin() + start,
                                     ordered.begin() + start + len);
      std::sort(in.begin(), in.end());
      std::sort(out.begin(), out.end());
      EXPECT_EQ(in, out) << strategy->name() << " window at " << start;
    }
  }
}

}  // namespace
}  // namespace nocbt::ordering
