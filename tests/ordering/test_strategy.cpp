// Tests for the ordering-strategy registry: built-in presence, mode ->
// strategy resolution, differential equivalences between the new
// strategies and their reference implementations, and registry extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "ordering/bt_kernels.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"
#include "ordering/strategy.h"
#include "ordering/two_flit.h"

namespace nocbt::ordering {
namespace {

std::vector<std::uint32_t> random_window(std::size_t n, DataFormat format,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask = low_mask(value_bits(format));
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & mask));
  return out;
}

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  std::set<std::string> names;
  for (const OrderingStrategy* s : registered_strategies())
    names.insert(std::string(s->name()));
  for (const char* expected : {"arrival", "popcount", "bucket", "chain",
                               "hdchain", "hybrid", "twoflit"})
    EXPECT_TRUE(names.count(expected)) << "missing strategy " << expected;
}

TEST(StrategyRegistry, LookupAndErrors) {
  EXPECT_EQ(find_strategy("popcount"), &get_strategy("popcount"));
  EXPECT_EQ(find_strategy("no-such-strategy"), nullptr);
  EXPECT_THROW((void)get_strategy("no-such-strategy"), std::invalid_argument);
  EXPECT_THROW(register_strategy(nullptr), std::invalid_argument);
}

TEST(StrategyRegistry, HardwareCostMetadataIsPopulated) {
  for (const OrderingStrategy* s : registered_strategies()) {
    EXPECT_FALSE(s->hardware_cost().summary.empty()) << s->name();
    EXPECT_GE(s->hardware_cost().relative_area, 0.0) << s->name();
    EXPECT_FALSE(s->description().empty()) << s->name();
  }
}

TEST(StrategyRegistry, EveryModeResolvesToARegisteredStrategy) {
  for (const OrderingMode mode : all_ordering_modes()) {
    const OrderingStrategy& s = mode_strategy(mode);
    EXPECT_EQ(s.name(), mode_strategy_name(mode)) << to_string(mode);
    // The short mode key must be accepted back by the parser (the campaign
    // README documents `modes=<key>`).
    EXPECT_EQ(parse_ordering_mode(short_mode_name(mode)), mode)
        << to_string(mode);
  }
  EXPECT_EQ(mode_strategy(OrderingMode::kBaseline).name(), "arrival");
  EXPECT_EQ(mode_strategy(OrderingMode::kAffiliated).name(), "popcount");
  EXPECT_EQ(mode_strategy(OrderingMode::kSeparated).name(), "popcount");
  EXPECT_EQ(mode_strategy(OrderingMode::kHybrid).name(), "hybrid");
}

TEST(StrategyRegistry, NewModeNamesRoundTripThroughParser) {
  EXPECT_EQ(parse_ordering_mode("chain"), OrderingMode::kChain);
  EXPECT_EQ(parse_ordering_mode("hdchain"), OrderingMode::kHdChain);
  EXPECT_EQ(parse_ordering_mode("hd-chain"), OrderingMode::kHdChain);
  EXPECT_EQ(parse_ordering_mode("bucket"), OrderingMode::kBucket);
  EXPECT_EQ(parse_ordering_mode("hybrid"), OrderingMode::kHybrid);
  EXPECT_EQ(parse_ordering_mode("twoflit"), OrderingMode::kTwoFlit);
  EXPECT_THROW((void)parse_ordering_mode("O3"), std::invalid_argument);
}

TEST(StrategyRegistry, ModeListParserHandlesSweepArguments) {
  const auto modes = parse_ordering_mode_list("O0,O2,hybrid");
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0], OrderingMode::kBaseline);
  EXPECT_EQ(modes[1], OrderingMode::kSeparated);
  EXPECT_EQ(modes[2], OrderingMode::kHybrid);
  EXPECT_EQ(parse_ordering_mode_list("chain").size(), 1u);
  EXPECT_THROW((void)parse_ordering_mode_list(""), std::invalid_argument);
  EXPECT_THROW((void)parse_ordering_mode_list("O1,,O2"), std::invalid_argument);
  EXPECT_THROW((void)parse_ordering_mode_list("O1,bogus"),
               std::invalid_argument);
}

TEST(StrategyDifferential, BucketSortMatchesPopcountSortExactly) {
  // The '1'-count bucket sort is a stable counting sort on the same key:
  // the permutation must be identical to the comparison sort's, including
  // tie handling, on every window.
  const OrderingStrategy& bucket = get_strategy("bucket");
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    for (const std::size_t n : {0u, 1u, 2u, 7u, 16u, 33u, 64u, 257u}) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto window = random_window(n, format, seed * 31 + n);
        EXPECT_EQ(bucket.order(window, format),
                  popcount_descending_order(window, format))
            << "n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(StrategyDifferential, HdChainMatchesNaiveChainExactly) {
  // hdchain re-implements the greedy chain over a precomputed HD matrix;
  // both run through the same never-worse guard, so the permutations must
  // agree on every window.
  const OrderingStrategy& chain = get_strategy("chain");
  const OrderingStrategy& hdchain = get_strategy("hdchain");
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    for (const std::size_t n : {0u, 1u, 2u, 7u, 16u, 33u, 64u, 129u}) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto window = random_window(n, format, seed * 131 + n);
        EXPECT_EQ(hdchain.order(window, format), chain.order(window, format))
            << "n=" << n << " seed=" << seed;
      }
    }
  }
  // Both chains mask stray bits above the format width the same way, so
  // dirty fixed-8 patterns in uint32 slots cannot make them diverge.
  const std::vector<std::uint32_t> dirty = {0x0000FF01u, 0x02u, 0x03u,
                                            0xABCD0081u, 0x00FF0000u};
  EXPECT_EQ(hdchain.order(dirty, DataFormat::kFixed8),
            chain.order(dirty, DataFormat::kFixed8));
}

TEST(StrategyDifferential, HdChainMatrixFallbackMatchesBeyondThreshold) {
  // Windows too large for the N^2 matrix use on-the-fly distances; the
  // permutation must not change across the internal threshold (4096).
  const DataFormat format = DataFormat::kFixed8;
  const auto window = random_window(4200, format, 77);
  const OrderingStrategy& hdchain = get_strategy("hdchain");
  const auto perm = hdchain.order(window, format);
  EXPECT_TRUE(is_permutation(perm, window.size()));
  EXPECT_EQ(perm, greedy_min_xor_chain(window, format));
}

TEST(StrategyDifferential, TwoFlitMatchesInterleaveAssignment) {
  // The twoflit permutation transmits flit 1 then flit 2 of the SIII
  // interleaved assignment: applying it must reproduce interleave_descending.
  const OrderingStrategy& twoflit = get_strategy("twoflit");
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    for (const std::size_t n : {2u, 4u, 8u, 12u, 16u}) {  // even: 2N values
      const auto window = random_window(n, format, 17 + n);
      const auto perm = twoflit.order(window, format);
      const auto applied = apply_permutation(
          std::span<const std::uint32_t>(window),
          std::span<const std::uint32_t>(perm));
      const TwoFlitAssignment assignment = interleave_descending(window, format);
      ASSERT_EQ(assignment.flit1.size() + assignment.flit2.size(), n);
      const std::vector<std::uint32_t> flit1(applied.begin(),
                                             applied.begin() + n / 2);
      const std::vector<std::uint32_t> flit2(applied.begin() + n / 2,
                                             applied.end());
      EXPECT_EQ(flit1, assignment.flit1) << "n=" << n;
      EXPECT_EQ(flit2, assignment.flit2) << "n=" << n;
    }
  }
}

TEST(StrategyDifferential, HybridPicksTheCheapestCandidatePerWindow) {
  const OrderingStrategy& hybrid = get_strategy("hybrid");
  const OrderingStrategy& chain = get_strategy("chain");
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto window = random_window(32, format, seed * 7 + 3);
      const auto perm = hybrid.order(window, format);
      const std::uint64_t bt = permuted_sequence_bt(window, perm, format);
      EXPECT_LE(bt, sequence_bt(window, format)) << "vs arrival, seed=" << seed;
      EXPECT_LE(bt, permuted_sequence_bt(
                        window, popcount_descending_order(window, format),
                        format))
          << "vs popcount, seed=" << seed;
      EXPECT_LE(bt, permuted_sequence_bt(window, chain.order(window, format),
                                         format))
          << "vs chain, seed=" << seed;
    }
  }
}

TEST(StrategyDifferential, OrderStreamWithPopcountMatchesLegacyStreamSort) {
  const auto stream = random_window(1000, DataFormat::kFixed8, 91);
  EXPECT_EQ(order_stream_with(get_strategy("popcount"), stream,
                              DataFormat::kFixed8, 64),
            order_stream_descending(stream, DataFormat::kFixed8, 64));
  EXPECT_THROW((void)order_stream_with(get_strategy("popcount"), stream,
                                       DataFormat::kFixed8, 0),
               std::invalid_argument);
}

TEST(StrategyBatch, OrderBatchEqualsLoopedOrderForEveryStrategy) {
  // order_batch is the seam the scenario runner flitizes through: for
  // every registered strategy the concatenated window-local permutations
  // must equal looping order() window by window — including the ragged
  // tail, with and without the arrival-BT hint, on tie-heavy data where a
  // scoring discrepancy would flip the chosen candidate.
  for (const OrderingStrategy* strategy : registered_strategies()) {
    for (const DataFormat format :
         {DataFormat::kFixed8, DataFormat::kFloat32}) {
      for (const std::uint64_t seed : {5ull, 6ull}) {
        auto stream = random_window(135, format, seed);  // 4 windows + 7
        if (seed == 6) {  // collapse to a tiny alphabet: maximal ties
          const auto mask =
              static_cast<std::uint32_t>(low_mask(value_bits(format)));
          for (auto& v : stream) v = (v % 2 == 0) ? (0x0F0F0F0Fu & mask) : 0u;
        }
        const std::size_t wv = 32;
        const auto flat = strategy->order_batch(stream, format, wv);
        ASSERT_EQ(flat.size(), stream.size()) << strategy->name();
        const auto hints = sequence_bt_batch(stream, format, wv);
        EXPECT_EQ(strategy->order_batch(stream, format, wv, hints), flat)
            << strategy->name() << ": arrival-BT hint changed the result";
        for (std::size_t start = 0; start < stream.size(); start += wv) {
          const std::size_t len = std::min(wv, stream.size() - start);
          const auto window = std::span(stream).subspan(start, len);
          const auto expected = strategy->order(window, format);
          const std::vector<std::uint32_t> got(
              flat.begin() + static_cast<std::ptrdiff_t>(start),
              flat.begin() + static_cast<std::ptrdiff_t>(start + len));
          EXPECT_EQ(got, expected)
              << strategy->name() << " format=" << to_string(format)
              << " seed=" << seed << " window at " << start;
        }
      }
    }
  }
}

TEST(StrategyBatch, OrderBatchValidatesArguments) {
  const auto stream = random_window(64, DataFormat::kFixed8, 3);
  const OrderingStrategy& strategy = get_strategy("hybrid");
  EXPECT_THROW((void)strategy.order_batch(stream, DataFormat::kFixed8, 0),
               std::invalid_argument);
  const std::vector<std::uint64_t> bad_hint(3);  // 64 values @ 32 = 2 windows
  EXPECT_THROW((void)strategy.order_batch(stream, DataFormat::kFixed8, 32,
                                          bad_hint),
               std::invalid_argument);
  EXPECT_TRUE(strategy.order_batch({}, DataFormat::kFixed8, 32).empty());
}

/// Registry extension: user strategies slot in next to the built-ins.
class ReverseStrategy final : public OrderingStrategy {
 public:
  std::string_view name() const noexcept override { return "test-reverse"; }
  std::string_view description() const noexcept override {
    return "reversed arrival order (test fixture)";
  }
  HardwareCost hardware_cost() const override {
    return {.summary = "a LIFO buffer", .relative_area = 0.1};
  }
  std::vector<std::uint32_t> order(std::span<const std::uint32_t> patterns,
                                   DataFormat) const override {
    std::vector<std::uint32_t> perm(patterns.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
      perm[i] = static_cast<std::uint32_t>(perm.size() - 1 - i);
    return perm;
  }
};

TEST(StrategyRegistry, CustomStrategiesCanBeRegistered) {
  if (find_strategy("test-reverse") == nullptr)
    register_strategy(std::make_unique<ReverseStrategy>());
  const OrderingStrategy& reverse = get_strategy("test-reverse");
  const std::vector<std::uint32_t> window = {10, 20, 30};
  EXPECT_EQ(reverse.order(window, DataFormat::kFixed8),
            (std::vector<std::uint32_t>{2, 1, 0}));
  // Duplicate names are rejected.
  EXPECT_THROW(register_strategy(std::make_unique<ReverseStrategy>()),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::ordering
