// Tests for the related-work encoder baselines (bus-invert, XOR-delta), the
// greedy min-XOR chain ablation, and the ordering-unit timing model.

#include <gtest/gtest.h>

#include "analysis/bt_count.h"
#include "common/rng.h"
#include "ordering/encoders.h"
#include "ordering/greedy_chain.h"
#include "ordering/ordering.h"
#include "ordering/ordering_unit.h"

namespace nocbt::ordering {
namespace {

BitVec pattern(unsigned width, std::uint64_t bits) {
  BitVec v(width);
  v.set_field(0, std::min(width, 64u), bits);
  return v;
}

TEST(BusInvert, InvertsWhenMoreThanHalfWouldFlip) {
  // Wire state starts at 0; sending 0xFF over an 8-bit bus would flip all
  // 8 wires, so bus-invert transmits 0x00 with the invert line set.
  const std::vector<BitVec> flits = {pattern(8, 0xFF)};
  const auto encoded = bus_invert_encode(flits, 1);
  ASSERT_EQ(encoded.payloads.size(), 1u);
  EXPECT_EQ(encoded.payloads[0].get_field(0, 8), 0x00u);
  EXPECT_EQ(encoded.extra_wires_per_link, 1u);
  EXPECT_EQ(encoded.extra_wire_transitions, 1u);  // invert line 0 -> 1
}

TEST(BusInvert, KeepsDataWhenFewFlip) {
  const std::vector<BitVec> flits = {pattern(8, 0x01)};
  const auto encoded = bus_invert_encode(flits, 1);
  EXPECT_EQ(encoded.payloads[0].get_field(0, 8), 0x01u);
  EXPECT_EQ(encoded.extra_wire_transitions, 0u);
}

TEST(BusInvert, NeverFlipsMoreThanHalfPerSegment) {
  Rng rng(3);
  std::vector<BitVec> flits;
  for (int i = 0; i < 200; ++i) flits.push_back(pattern(64, rng.bits64()));
  const auto encoded = bus_invert_encode(flits, 1);

  BitVec wire(64);
  for (const auto& f : encoded.payloads) {
    EXPECT_LE(wire.transitions_to(f), 32);  // at most width/2
    wire = f;
  }
}

TEST(BusInvert, SegmentedBeatsOrMatchesWhole) {
  Rng rng(4);
  std::vector<BitVec> flits;
  for (int i = 0; i < 500; ++i) flits.push_back(pattern(64, rng.bits64()));
  const auto whole = bus_invert_encode(flits, 1);
  const auto seg = bus_invert_encode(flits, 8);
  const auto bt_whole = nocbt::analysis::stream_bt(whole.payloads).total_bt +
                        whole.extra_wire_transitions;
  const auto bt_seg = nocbt::analysis::stream_bt(seg.payloads).total_bt +
                      seg.extra_wire_transitions;
  EXPECT_LE(bt_seg, bt_whole);
  EXPECT_EQ(seg.extra_wires_per_link, 8u);
}

TEST(BusInvert, RejectsBadSegmentCount) {
  const std::vector<BitVec> flits = {pattern(64, 1)};
  EXPECT_THROW(bus_invert_encode(flits, 3), std::invalid_argument);
  EXPECT_THROW(bus_invert_encode(flits, 0), std::invalid_argument);
}

TEST(XorDelta, RoundTrips) {
  Rng rng(5);
  std::vector<BitVec> flits;
  for (int i = 0; i < 50; ++i) flits.push_back(pattern(128, rng.bits64()));
  const auto encoded = xor_delta_encode(flits);
  const auto decoded = xor_delta_decode(encoded.payloads);
  ASSERT_EQ(decoded.size(), flits.size());
  for (std::size_t i = 0; i < flits.size(); ++i)
    EXPECT_EQ(decoded[i], flits[i]) << "flit " << i;
}

TEST(XorDelta, CorrelatedStreamEncodesToNearZero) {
  // Slowly changing payloads: deltas are tiny, so consecutive encoded flits
  // are both near zero and the encoded BT collapses.
  std::vector<BitVec> flits;
  for (int i = 0; i < 100; ++i)
    flits.push_back(pattern(64, 0xABCD0000ull + static_cast<unsigned>(i % 2)));
  const auto encoded = xor_delta_encode(flits);
  const auto bt_raw = nocbt::analysis::stream_bt(flits).total_bt;
  const auto bt_enc = nocbt::analysis::stream_bt(encoded.payloads).total_bt;
  EXPECT_LT(bt_enc, bt_raw);
}

TEST(GreedyChain, PermutationAndCoverage) {
  Rng rng(6);
  std::vector<std::uint32_t> patterns;
  for (int i = 0; i < 40; ++i)
    patterns.push_back(static_cast<std::uint32_t>(rng.bits64()));
  const auto perm = greedy_min_xor_chain(patterns, DataFormat::kFloat32);
  EXPECT_TRUE(is_permutation(perm, patterns.size()));
}

TEST(GreedyChain, NeverWorseThanPopcountSortOnIntraWindowBt) {
  // Greedy directly minimizes each step's Hamming distance; over many random
  // windows its *within-window* BT should on average beat popcount sorting.
  Rng rng(7);
  std::uint64_t greedy_bt = 0;
  std::uint64_t sorted_bt = 0;
  for (int window = 0; window < 50; ++window) {
    std::vector<std::uint32_t> patterns;
    for (int i = 0; i < 32; ++i)
      patterns.push_back(static_cast<std::uint32_t>(rng.bits64()));
    const auto gperm = greedy_min_xor_chain(patterns, DataFormat::kFloat32);
    const auto sperm = popcount_descending_order(patterns, DataFormat::kFloat32);
    auto chain_bt = [&](const std::vector<std::uint32_t>& perm) {
      std::uint64_t bt = 0;
      for (std::size_t i = 1; i < perm.size(); ++i)
        bt += static_cast<std::uint64_t>(
            popcount32(patterns[perm[i - 1]] ^ patterns[perm[i]]));
      return bt;
    };
    greedy_bt += chain_bt(gperm);
    sorted_bt += chain_bt(sperm);
  }
  EXPECT_LT(greedy_bt, sorted_bt);
}

TEST(GreedyChain, EmptyAndSingle) {
  const std::vector<std::uint32_t> empty;
  EXPECT_TRUE(greedy_min_xor_chain(empty, DataFormat::kFixed8).empty());
  const std::vector<std::uint32_t> single = {42};
  const auto perm = greedy_min_xor_chain(single, DataFormat::kFixed8);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0u);
}

TEST(OrderingUnit, LatencyIsLinearInValues) {
  OrderingUnitModel unit(OrderingUnitConfig{16, 32, 1});
  EXPECT_EQ(unit.cycles_to_order(0), 1u);
  EXPECT_EQ(unit.cycles_to_order(1), 1u);
  EXPECT_EQ(unit.cycles_to_order(8), 1u + 8u);
  EXPECT_EQ(unit.cycles_to_order(16), 1u + 16u);
  EXPECT_EQ(unit.cycles_to_order(400), 1u + 400u);
}

TEST(OrderingUnit, InitiationIntervalIsOneCyclePerBatch) {
  // The pipelined network ingests one 16-lane batch per cycle, so back-to-
  // back packets are accepted far faster than the end-to-end sort latency —
  // this is what makes the §IV-C3 latency hiding work.
  OrderingUnitModel unit(OrderingUnitConfig{16, 32, 1});
  EXPECT_EQ(unit.initiation_interval(1), 1u);
  EXPECT_EQ(unit.initiation_interval(16), 1u);
  EXPECT_EQ(unit.initiation_interval(17), 2u);
  EXPECT_EQ(unit.initiation_interval(150), 10u);
  EXPECT_EQ(unit.initiation_interval(400), 25u);
  EXPECT_EQ(unit.separated_initiation_interval(150), 20u);
  EXPECT_LT(unit.initiation_interval(400), unit.cycles_to_order(400));
}

TEST(OrderingUnit, SeparatedDoublesAffiliated) {
  // §V-C: the affiliated unit "can be used for separated-ordering with
  // double time consumption".
  OrderingUnitModel unit(OrderingUnitConfig{16, 32, 1});
  for (std::uint32_t n : {4u, 16u, 25u, 150u})
    EXPECT_EQ(unit.separated_cycles(n), 2 * unit.affiliated_cycles(n));
}

TEST(OrderingUnit, ComparatorCount) {
  EXPECT_EQ(OrderingUnitModel(OrderingUnitConfig{16, 32, 1}).comparators(), 8u);
  EXPECT_EQ(OrderingUnitModel(OrderingUnitConfig{8, 8, 1}).comparators(), 4u);
}

}  // namespace
}  // namespace nocbt::ordering
