// Unit and property tests for the '1'-bit-count ordering primitives.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "ordering/ordering.h"

namespace nocbt::ordering {
namespace {

TEST(OrderingMode, RoundTripNames) {
  EXPECT_EQ(parse_ordering_mode("O0"), OrderingMode::kBaseline);
  EXPECT_EQ(parse_ordering_mode("O1"), OrderingMode::kAffiliated);
  EXPECT_EQ(parse_ordering_mode("O2"), OrderingMode::kSeparated);
  EXPECT_EQ(parse_ordering_mode("affiliated"), OrderingMode::kAffiliated);
  EXPECT_THROW(parse_ordering_mode("O9"), std::invalid_argument);
  EXPECT_EQ(to_string(OrderingMode::kSeparated), "O2-separated");
}

TEST(PopcountOrder, SortsDescending) {
  const std::vector<std::uint32_t> patterns = {0x0F, 0x01, 0xFF, 0x00, 0x33};
  const auto perm = popcount_descending_order(patterns, DataFormat::kFixed8);
  ASSERT_EQ(perm.size(), 5u);
  EXPECT_EQ(patterns[perm[0]], 0xFFu);  // 8 ones
  EXPECT_EQ(patterns[perm[1]], 0x0Fu);  // 4 ones
  EXPECT_EQ(patterns[perm[2]], 0x33u);  // 4 ones (stable: after 0x0F)
  EXPECT_EQ(patterns[perm[3]], 0x01u);  // 1 one
  EXPECT_EQ(patterns[perm[4]], 0x00u);  // 0 ones
}

TEST(PopcountOrder, StableForEqualCounts) {
  // All have popcount 1; stable sort must preserve original order.
  const std::vector<std::uint32_t> patterns = {0x01, 0x02, 0x04, 0x08};
  const auto perm = popcount_descending_order(patterns, DataFormat::kFixed8);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(perm[i], i);
}

TEST(PopcountOrder, IsAlwaysAPermutation) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> patterns;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 63));
    for (int i = 0; i < n; ++i)
      patterns.push_back(static_cast<std::uint32_t>(rng.bits64()));
    const auto perm = popcount_descending_order(patterns, DataFormat::kFloat32);
    EXPECT_TRUE(is_permutation(perm, patterns.size()));
    // Verify monotone non-increasing popcounts.
    for (std::size_t i = 1; i < perm.size(); ++i)
      EXPECT_GE(popcount32(patterns[perm[i - 1]]),
                popcount32(patterns[perm[i]]));
  }
}

TEST(ApplyPermutation, Reorders) {
  const std::vector<int> values = {10, 20, 30};
  const std::vector<std::uint32_t> perm = {2, 0, 1};
  const auto out = apply_permutation(std::span<const int>(values),
                                     std::span<const std::uint32_t>(perm));
  EXPECT_EQ(out, (std::vector<int>{30, 10, 20}));
}

TEST(InversePermutation, RoundTrips) {
  const std::vector<std::uint32_t> perm = {3, 1, 0, 2};
  const auto inv = inverse_permutation(perm);
  EXPECT_EQ(inv, (std::vector<std::uint32_t>{2, 1, 3, 0}));
  for (std::uint32_t i = 0; i < perm.size(); ++i) EXPECT_EQ(inv[perm[i]], i);
}

TEST(IsPermutation, DetectsBadInputs) {
  EXPECT_TRUE(is_permutation(std::vector<std::uint32_t>{0, 1, 2}, 3));
  EXPECT_FALSE(is_permutation(std::vector<std::uint32_t>{0, 1, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<std::uint32_t>{0, 1, 3}, 3));
  EXPECT_FALSE(is_permutation(std::vector<std::uint32_t>{0, 1}, 3));
}

TEST(SeparatedPairingIndex, RecoversOriginalPairs) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 30));
    std::vector<std::uint32_t> weights;
    std::vector<std::uint32_t> inputs;
    for (int i = 0; i < n; ++i) {
      weights.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
      inputs.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
    }
    const auto wp = popcount_descending_order(weights, DataFormat::kFixed8);
    const auto ip = popcount_descending_order(inputs, DataFormat::kFixed8);
    const auto pair_index = separated_pairing_index(wp, ip);

    const auto sorted_w = apply_permutation(
        std::span<const std::uint32_t>(weights), wp);
    const auto sorted_i = apply_permutation(
        std::span<const std::uint32_t>(inputs), ip);

    // The re-paired dot product over pattern values must equal the original.
    std::int64_t original = 0;
    for (int i = 0; i < n; ++i)
      original += static_cast<std::int64_t>(weights[static_cast<std::size_t>(i)]) *
                  inputs[static_cast<std::size_t>(i)];
    std::int64_t recovered = 0;
    for (int i = 0; i < n; ++i)
      recovered += static_cast<std::int64_t>(sorted_w[static_cast<std::size_t>(i)]) *
                   sorted_i[pair_index[static_cast<std::size_t>(i)]];
    EXPECT_EQ(recovered, original);
  }
}

TEST(OrderStream, PreservesMultisetPerWindow) {
  Rng rng(23);
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 256; ++i)
    stream.push_back(static_cast<std::uint32_t>(rng.bits64() & 0xFF));
  const auto ordered =
      order_stream_descending(stream, DataFormat::kFixed8, 64);
  ASSERT_EQ(ordered.size(), stream.size());
  for (std::size_t start = 0; start < stream.size(); start += 64) {
    std::vector<std::uint32_t> a(stream.begin() + static_cast<std::ptrdiff_t>(start),
                                 stream.begin() + static_cast<std::ptrdiff_t>(start + 64));
    std::vector<std::uint32_t> b(ordered.begin() + static_cast<std::ptrdiff_t>(start),
                                 ordered.begin() + static_cast<std::ptrdiff_t>(start + 64));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "window at " << start;
  }
}

TEST(OrderStream, DescendingWithinEachWindow) {
  Rng rng(29);
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 100; ++i)
    stream.push_back(static_cast<std::uint32_t>(rng.bits64()));
  const auto ordered =
      order_stream_descending(stream, DataFormat::kFloat32, 32);
  for (std::size_t start = 0; start < stream.size(); start += 32) {
    const std::size_t end = std::min(start + 32, stream.size());
    for (std::size_t i = start + 1; i < end; ++i)
      EXPECT_GE(popcount32(ordered[i - 1]), popcount32(ordered[i]));
  }
}

TEST(OrderStream, HandlesRaggedTailAndRejectsZeroWindow) {
  const std::vector<std::uint32_t> stream = {1, 2, 3, 4, 5};
  const auto ordered = order_stream_descending(stream, DataFormat::kFixed8, 2);
  EXPECT_EQ(ordered.size(), 5u);
  EXPECT_THROW(order_stream_descending(stream, DataFormat::kFixed8, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::ordering
