// Tests for place_model: unit tiling, policy-driven PE choice, nearest-MC
// binding, fusion of non-weighted layers, residual flattening with skip
// edges, and the error surface.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/pooling.h"
#include "dnn/residual.h"
#include "place/placement.h"

namespace nocbt::place {
namespace {

using dnn::Conv2d;
using dnn::Linear;
using dnn::MaxPool2d;
using dnn::Relu;
using dnn::Residual;
using dnn::Sequential;
using dnn::Shape;

struct Mesh4x4 {
  noc::MeshShape shape{4, 4};
  accel::NodeRoles roles = accel::assign_roles(shape, 2);
};

Placement place(const Sequential& model, Shape input, std::int32_t tiles,
                const Mesh4x4& m = Mesh4x4{},
                const char* policy = "rowmajor") {
  return place_model(model, input, m.shape, m.roles, get_policy(policy),
                     tiles);
}

TEST(Placement, TilesUnitRangesNearEvenlyOnPolicyPes) {
  Sequential model;
  model.emplace<Conv2d>(3, 10, 3, 1, 1);
  const Mesh4x4 m;
  const Placement p = place(model, Shape{1, 3, 4, 4}, 4, m);
  ASSERT_EQ(p.ops.size(), 1u);
  const PlacedOp& op = p.ops[0];
  EXPECT_EQ(op.units, 10);
  EXPECT_EQ(op.weights_per_unit, 3 * 3 * 3 + 1);
  ASSERT_EQ(op.tiles.size(), 4u);
  // Contiguous near-even ranges covering [0, 10): floor(t * 10 / 4).
  const std::vector<std::int32_t> begins{0, 2, 5, 7};
  const std::vector<std::int32_t> ends{2, 5, 7, 10};
  const auto nearest = accel::nearest_mc_index(m.shape, m.roles);
  for (std::size_t t = 0; t < op.tiles.size(); ++t) {
    EXPECT_EQ(op.tiles[t].unit_begin, begins[t]);
    EXPECT_EQ(op.tiles[t].unit_end, ends[t]);
    // rowmajor starts at offset 0: the first four PEs in node-id order.
    EXPECT_EQ(op.tiles[t].pe, m.roles.pes[t]);
    EXPECT_EQ(op.tiles[t].mc,
              nearest[static_cast<std::size_t>(op.tiles[t].pe)]);
  }
  EXPECT_EQ(p.total_tiles, 4);
}

TEST(Placement, TileCountIsCappedByUnitsAndOffsetsContinue) {
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1);   // 2 units -> at most 2 tiles
  model.emplace<Conv2d>(2, 6, 3, 1, 1);   // 6 units -> full 4 tiles
  const Mesh4x4 m;
  const Placement p = place(model, Shape{1, 1, 4, 4}, 4, m);
  ASSERT_EQ(p.ops.size(), 2u);
  ASSERT_EQ(p.ops[0].tiles.size(), 2u);
  ASSERT_EQ(p.ops[1].tiles.size(), 4u);
  // The second op's tiles continue the PE cycle where the first stopped,
  // so layers spread across the mesh instead of piling on the same PEs.
  EXPECT_EQ(p.ops[0].tiles[0].pe, m.roles.pes[0]);
  EXPECT_EQ(p.ops[0].tiles[1].pe, m.roles.pes[1]);
  EXPECT_EQ(p.ops[1].tiles[0].pe, m.roles.pes[2]);
  EXPECT_EQ(p.ops[1].tiles[3].pe, m.roles.pes[5]);
  EXPECT_EQ(p.total_tiles, 6);
}

TEST(Placement, FusesNonWeightedLayersIntoTheProducer) {
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1);  // {1,1,8,8} -> {1,4,8,8}
  model.emplace<Relu>();
  model.emplace<MaxPool2d>(2);           // -> {1,4,4,4}
  model.emplace<Linear>(4 * 4 * 4, 10);
  const Placement p = place(model, Shape{1, 1, 8, 8}, 2);
  // Relu and pooling create no ops of their own ...
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[0].kind, dnn::LayerKind::kConv2d);
  EXPECT_EQ(p.ops[1].kind, dnn::LayerKind::kLinear);
  // ... but reshape what the consumer sees: the linear op consumes the
  // pooled volume, not the conv's raw output.
  EXPECT_EQ(p.ops[1].in_shape.numel(), 4 * 4 * 4);
  EXPECT_EQ(p.ops[0].out_shape.numel(), 4 * 8 * 8);
  ASSERT_EQ(p.ops[1].inputs.size(), 1u);
  EXPECT_EQ(p.ops[1].inputs[0].producer, 0);
  EXPECT_FALSE(p.ops[1].inputs[0].elementwise);
  // The model input itself is a dense MC-served edge.
  ASSERT_EQ(p.ops[0].inputs.size(), 1u);
  EXPECT_EQ(p.ops[0].inputs[0].producer, -1);
}

TEST(Placement, ResidualFlattensToProjectionPlusBodyWithSkipEdge) {
  Sequential body;
  body.emplace<Conv2d>(4, 8, 3, 2, 1);
  body.emplace<Relu>();
  Sequential model;
  model.emplace<Conv2d>(3, 4, 3, 1, 1);
  model.emplace<Residual>(std::move(body),
                          std::make_unique<Conv2d>(4, 8, 1, 2, 0));
  const Placement p = place(model, Shape{1, 3, 8, 8}, 2);
  // Flattened ops: entry conv, then the projection (emitted first so the
  // body can reference it), then the body conv.
  ASSERT_EQ(p.ops.size(), 3u);
  EXPECT_EQ(p.ops[1].units, 8);  // projection: 1x1 stride-2, 4 -> 8
  EXPECT_EQ(p.ops[1].weights_per_unit, 4 * 1 * 1 + 1);
  ASSERT_EQ(p.ops[1].inputs.size(), 1u);
  EXPECT_EQ(p.ops[1].inputs[0].producer, 0);
  // The body's last op carries the dense edge from the entry conv plus the
  // elementwise skip edge from the projection.
  ASSERT_EQ(p.ops[2].inputs.size(), 2u);
  EXPECT_EQ(p.ops[2].inputs[0].producer, 0);
  EXPECT_FALSE(p.ops[2].inputs[0].elementwise);
  EXPECT_EQ(p.ops[2].inputs[1].producer, 1);
  EXPECT_TRUE(p.ops[2].inputs[1].elementwise);
  // Projection and body agree on the output geometry.
  EXPECT_EQ(p.ops[1].out_shape.numel(), p.ops[2].out_shape.numel());
}

TEST(Placement, IdentityResidualSkipsFromTheEntryProducer) {
  Sequential body;
  body.emplace<Conv2d>(4, 4, 3, 1, 1);
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1);
  model.emplace<Residual>(std::move(body));
  const Placement p = place(model, Shape{1, 1, 8, 8}, 2);
  ASSERT_EQ(p.ops.size(), 2u);
  ASSERT_EQ(p.ops[1].inputs.size(), 2u);
  EXPECT_EQ(p.ops[1].inputs[1].producer, 0);  // identity shortcut
  EXPECT_TRUE(p.ops[1].inputs[1].elementwise);
}

TEST(Placement, WeightsAreUnitMajorSlicesWithTrailingBias) {
  Sequential model;
  auto conv = std::make_unique<Conv2d>(2, 3, 3, 1, 1);
  // Recognizable values: weights count up from 0, biases from 100.
  std::iota(conv->weight().data().begin(), conv->weight().data().end(), 0.0f);
  std::iota(conv->bias().data().begin(), conv->bias().data().end(), 100.0f);
  model.add(std::move(conv));
  const Placement p = place(model, Shape{1, 2, 4, 4}, 1);
  const PlacedOp& op = p.ops[0];
  const auto wpu = static_cast<std::size_t>(op.weights_per_unit);
  ASSERT_EQ(wpu, static_cast<std::size_t>(2 * 3 * 3 + 1));
  ASSERT_EQ(op.weights.size(), 3 * wpu);
  for (std::size_t u = 0; u < 3; ++u) {
    // Unit u's slice: its contiguous kernel values, then its bias.
    EXPECT_EQ(op.weights[u * wpu], static_cast<float>(u * (wpu - 1)));
    EXPECT_EQ(op.weights[u * wpu + wpu - 2],
              static_cast<float>(u * (wpu - 1) + wpu - 2));
    EXPECT_EQ(op.weights[u * wpu + wpu - 1], 100.0f + static_cast<float>(u));
  }
}

TEST(Placement, ErrorSurface) {
  const Mesh4x4 m;
  Sequential weighted;
  weighted.emplace<Conv2d>(1, 2, 3, 1, 1);

  Sequential empty;
  EXPECT_THROW((void)place(empty, Shape{1, 1, 4, 4}, 2, m),
               std::invalid_argument);
  Sequential unweighted;
  unweighted.emplace<Relu>();
  EXPECT_THROW((void)place(unweighted, Shape{1, 1, 4, 4}, 2, m),
               std::invalid_argument);
  // Batched inputs are not placeable (per-sample dataflow only).
  EXPECT_THROW((void)place(weighted, Shape{2, 1, 4, 4}, 2, m),
               std::invalid_argument);
  EXPECT_THROW((void)place(weighted, Shape{1, 1, 4, 4}, 0, m),
               std::invalid_argument);
  // Channel mismatch between the input and the first conv.
  EXPECT_THROW((void)place(weighted, Shape{1, 3, 4, 4}, 2, m),
               std::invalid_argument);
  // A mesh without PEs cannot host tiles.
  accel::NodeRoles no_pes;
  no_pes.mcs = m.roles.mcs;
  EXPECT_THROW((void)place_model(weighted, Shape{1, 1, 4, 4}, m.shape, no_pes,
                                 get_policy("rowmajor"), 2),
               std::invalid_argument);
  // A residual whose body has no weighted layers is unplaceable.
  Sequential relu_body;
  relu_body.emplace<Relu>();
  Sequential res_model;
  res_model.emplace<Conv2d>(1, 4, 3, 1, 1);
  res_model.emplace<Residual>(std::move(relu_body));
  EXPECT_THROW((void)place(res_model, Shape{1, 1, 4, 4}, 2, m),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::place
