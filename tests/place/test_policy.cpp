// Tests for the placement-policy registry and the built-in PE orders.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "place/policy.h"

namespace nocbt::place {
namespace {

accel::NodeRoles roles_4x4mc2() {
  return accel::assign_roles(noc::MeshShape(4, 4), 2);
}

TEST(PolicyRegistry, BuiltinsAreRegisteredInOrder) {
  const auto policies = registered_policies();
  ASSERT_GE(policies.size(), 3u);
  EXPECT_EQ(policies[0]->name(), "rowmajor");
  EXPECT_EQ(policies[1]->name(), "snake");
  EXPECT_EQ(policies[2]->name(), "nearmc");
  for (const auto* p : policies) {
    EXPECT_FALSE(p->description().empty()) << p->name();
    EXPECT_EQ(find_policy(p->name()), p);
    EXPECT_EQ(&get_policy(p->name()), p);
  }
}

TEST(PolicyRegistry, UnknownNameThrowsListingRegistered) {
  EXPECT_EQ(find_policy("zigzag"), nullptr);
  try {
    (void)get_policy("zigzag");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rowmajor"), std::string::npos);
    EXPECT_NE(what.find("snake"), std::string::npos);
    EXPECT_NE(what.find("nearmc"), std::string::npos);
  }
}

TEST(PolicyRegistry, RejectsDuplicatesAndNull) {
  class Fake final : public PlacementPolicy {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "rowmajor";  // collides with the built-in
    }
    [[nodiscard]] std::string_view description() const noexcept override {
      return "dup";
    }
    [[nodiscard]] std::vector<std::int32_t> assign(
        const noc::MeshShape&, const accel::NodeRoles& roles, std::int32_t n,
        std::int64_t) const override {
      return std::vector<std::int32_t>(static_cast<std::size_t>(n),
                                       roles.pes.front());
    }
  };
  EXPECT_THROW(register_policy(nullptr), std::invalid_argument);
  EXPECT_THROW(register_policy(std::make_unique<Fake>()),
               std::invalid_argument);
}

TEST(Policies, AssignReturnsOnlyPeNodesAndWrapsModularly) {
  const noc::MeshShape shape(4, 4);
  const accel::NodeRoles roles = roles_4x4mc2();
  const std::set<std::int32_t> pe_set(roles.pes.begin(), roles.pes.end());
  for (const auto* policy : registered_policies()) {
    const auto n_pes = static_cast<std::int32_t>(roles.pes.size());
    const auto tiles = policy->assign(shape, roles, n_pes + 3, 0);
    ASSERT_EQ(tiles.size(), static_cast<std::size_t>(n_pes) + 3)
        << policy->name();
    for (const auto pe : tiles)
      EXPECT_TRUE(pe_set.count(pe)) << policy->name() << " emitted " << pe;
    // Wrap-around: tile i and tile i + |PEs| share a PE ...
    for (std::int32_t i = 0; i + n_pes < static_cast<std::int32_t>(tiles.size());
         ++i)
      EXPECT_EQ(tiles[static_cast<std::size_t>(i)],
                tiles[static_cast<std::size_t>(i + n_pes)])
          << policy->name();
    // ... and an offset continues the same cycle where the last op stopped.
    const auto offset = policy->assign(shape, roles, 2, 5);
    EXPECT_EQ(offset[0], tiles[5]) << policy->name();
    EXPECT_EQ(offset[1], tiles[6]) << policy->name();
    // One full cycle covers every PE exactly once.
    const std::set<std::int32_t> covered(tiles.begin(),
                                         tiles.begin() + n_pes);
    EXPECT_EQ(covered, pe_set) << policy->name();
  }
}

TEST(Policies, RowMajorFollowsNodeIdOrder) {
  const accel::NodeRoles roles = roles_4x4mc2();
  const auto tiles = get_policy("rowmajor")
                         .assign(noc::MeshShape(4, 4), roles,
                                 static_cast<std::int32_t>(roles.pes.size()),
                                 0);
  EXPECT_EQ(tiles, roles.pes);
}

TEST(Policies, SnakeReversesOddRows) {
  // 4x4 with MCs at nodes 8 and 11: row 0 runs west->east (0,1,2,3), row 1
  // east->west (7,6,5,4), row 2 keeps only the PE nodes 9 and 10, row 3
  // east->west again (15,14,13,12).
  const accel::NodeRoles roles = roles_4x4mc2();
  ASSERT_EQ(roles.mcs, (std::vector<std::int32_t>{8, 11}));
  const auto tiles = get_policy("snake").assign(
      noc::MeshShape(4, 4), roles,
      static_cast<std::int32_t>(roles.pes.size()), 0);
  EXPECT_EQ(tiles, (std::vector<std::int32_t>{0, 1, 2, 3, 7, 6, 5, 4, 9, 10,
                                              15, 14, 13, 12}));
}

TEST(Policies, NearMcFrontLoadsPesNextToControllers) {
  const noc::MeshShape shape(4, 4);
  const accel::NodeRoles roles = roles_4x4mc2();
  const auto tiles = get_policy("nearmc").assign(
      shape, roles, static_cast<std::int32_t>(roles.pes.size()), 0);
  const auto nearest = nearest_mc_index(shape, roles);
  const auto dist_to_mc = [&](std::int32_t pe) {
    return shape.manhattan(pe,
                           roles.mcs[nearest[static_cast<std::size_t>(pe)]]);
  };
  for (std::size_t i = 1; i < tiles.size(); ++i)
    EXPECT_LE(dist_to_mc(tiles[i - 1]), dist_to_mc(tiles[i]))
        << "nearmc order must be non-decreasing in MC distance";
}

TEST(Policies, RejectBadTileCounts) {
  const accel::NodeRoles roles = roles_4x4mc2();
  EXPECT_THROW((void)get_policy("rowmajor")
                   .assign(noc::MeshShape(4, 4), roles, 0, 0),
               std::invalid_argument);
  accel::NodeRoles no_pes;
  no_pes.mcs = roles.mcs;
  EXPECT_THROW((void)get_policy("rowmajor")
                   .assign(noc::MeshShape(4, 4), no_pes, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::place
