// Tests for build_schedule / to_trace: hand-computed traffic accounting,
// per-source serialization, on-PE locality, payload derivation from real
// model weights, and the payload-carrying trace round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "place/schedule.h"

namespace nocbt::place {
namespace {

using dnn::Conv2d;
using dnn::Relu;
using dnn::Sequential;
using dnn::Shape;

/// Deterministic activation source: 0, 1, 2, ... in draw order.
TrafficConfig counting_config() {
  TrafficConfig cfg;
  auto counter = std::make_shared<std::uint32_t>(0);
  cfg.draw_activation = [counter] { return (*counter)++; };
  return cfg;
}

/// Single-PE placement: 1x2 mesh, MC at node 0, the only PE at node 1.
struct Chain1x2 {
  noc::MeshShape shape{1, 2};
  accel::NodeRoles roles = accel::assign_roles(shape, 1);
};

TEST(Schedule, HandComputedAccountingOnASingleConv) {
  Sequential model;
  auto conv = std::make_unique<Conv2d>(1, 2, 3, 1, 1);
  std::iota(conv->weight().data().begin(), conv->weight().data().end(), 1.0f);
  std::iota(conv->bias().data().begin(), conv->bias().data().end(), 100.0f);
  model.add(std::move(conv));
  const Chain1x2 m;
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, m.shape, m.roles,
                                  get_policy("rowmajor"), 1);
  const TrafficConfig cfg = counting_config();
  const PlacedSchedule s = build_schedule(p, cfg);

  // One conv (2 units x 10 weights) fed a 4x4 ifmap, then the drain phase.
  EXPECT_EQ(s.phases, 2u);
  EXPECT_EQ(s.mc_to_pe_values, 20u + 16u);
  EXPECT_EQ(s.pe_to_pe_values, 0u);
  EXPECT_EQ(s.pe_to_mc_values, 2u * 16u);
  EXPECT_EQ(s.local_values, 0u);

  // Default pairs_per_packet (64) holds each transfer in one packet.
  ASSERT_EQ(s.packets.size(), 2u);
  const FlowPacket& feed = s.packets[0];
  EXPECT_EQ(feed.src, 0);
  EXPECT_EQ(feed.dst, 1);
  EXPECT_EQ(feed.cycle, 0u);
  // Two streams zip to max(20, 16) pairs; the shorter (acts) cycles.
  ASSERT_EQ(feed.weights.size(), 20u);
  ASSERT_EQ(feed.inputs.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(feed.weights[i], cfg.weight_codec.encode(p.ops[0].weights[i]))
        << i;
    EXPECT_EQ(feed.inputs[i], static_cast<std::uint32_t>(i % 16)) << i;
  }

  // Drain starts after the feed's 3 flits (20 pairs, 8 per flit) and splits
  // its single 32-value stream alternately across the two halves.
  const FlowPacket& drain = s.packets[1];
  EXPECT_EQ(drain.src, 1);
  EXPECT_EQ(drain.dst, 0);
  EXPECT_EQ(drain.cycle, 3u);
  ASSERT_EQ(drain.weights.size(), 16u);
  ASSERT_EQ(drain.inputs.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(drain.weights[i], static_cast<std::uint32_t>(16 + 2 * i));
    EXPECT_EQ(drain.inputs[i], static_cast<std::uint32_t>(16 + 2 * i + 1));
  }
}

TEST(Schedule, HandComputedAccountingOnATiledTwoConvModel) {
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1);  // {1,1,4,4} -> {1,4,4,4}
  model.emplace<Conv2d>(4, 6, 3, 1, 1);  // -> {1,6,4,4}
  const noc::MeshShape shape(4, 4);
  const accel::NodeRoles roles = accel::assign_roles(shape, 2);
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, shape, roles,
                                  get_policy("rowmajor"), 3);
  const PlacedSchedule s = build_schedule(p, counting_config());

  // op0: 3 tiles x (unit-slice weights + full 16-value ifmap each):
  //   (1 + 1 + 2) * 10 weights + 3 * 16 acts = 88.
  // op1: 6 units * 37 weights, no model-input edge: 222. Total 310.
  EXPECT_EQ(s.mc_to_pe_values, 310u);
  // op1's 3 consumer tiles each read all of op0's tile shares of the
  // 64-value activation volume (16 + 16 + 32); disjoint PEs, so nothing
  // stays local.
  EXPECT_EQ(s.pe_to_pe_values, 3u * 64u);
  EXPECT_EQ(s.local_values, 0u);
  // Drain: 6 output channels x 16 pixels.
  EXPECT_EQ(s.pe_to_mc_values, 96u);
  EXPECT_EQ(s.phases, 3u);
}

TEST(Schedule, PacketsAreSortedAndEachSourceSerializesItsFlits) {
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1);
  model.emplace<Conv2d>(4, 6, 3, 1, 1);
  const noc::MeshShape shape(4, 4);
  const accel::NodeRoles roles = accel::assign_roles(shape, 2);
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, shape, roles,
                                  get_policy("rowmajor"), 3);
  TrafficConfig cfg = counting_config();
  cfg.pairs_per_packet = 4;  // force multi-packet transfers
  const PlacedSchedule s = build_schedule(p, cfg);

  ASSERT_GT(s.packets.size(), 2u);
  std::map<std::int32_t, std::uint64_t> next_free;
  for (std::size_t i = 0; i < s.packets.size(); ++i) {
    const FlowPacket& pkt = s.packets[i];
    if (i > 0) {
      EXPECT_GE(pkt.cycle, s.packets[i - 1].cycle) << "unsorted at " << i;
    }
    ASSERT_EQ(pkt.weights.size(), pkt.inputs.size());
    ASSERT_GE(pkt.weights.size(), 1u);
    ASSERT_LE(pkt.weights.size(), cfg.pairs_per_packet);
    EXPECT_NE(pkt.src, pkt.dst);
    // A source NI never overlaps its own packets: each injection waits for
    // the previous packet's flits to leave.
    const auto it = next_free.find(pkt.src);
    if (it != next_free.end()) {
      EXPECT_GE(pkt.cycle, it->second) << "source " << pkt.src << " overlaps";
    }
    next_free[pkt.src] =
        pkt.cycle + accel::flits_needed(
                        static_cast<std::uint32_t>(pkt.weights.size()),
                        /*has_bias=*/false, cfg.layout);
  }
}

TEST(Schedule, CoLocatedProducerConsumerFlowsStayOnThePe) {
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1);
  model.emplace<Relu>();
  model.emplace<Conv2d>(2, 2, 3, 1, 1);
  const Chain1x2 m;
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, m.shape, m.roles,
                                  get_policy("rowmajor"), 1);
  const PlacedSchedule s = build_schedule(p, counting_config());

  // Both convs live on the single PE, so the inter-layer activations
  // (2 channels x 16 pixels) never touch the NoC.
  EXPECT_EQ(s.local_values, 32u);
  EXPECT_EQ(s.pe_to_pe_values, 0u);
  for (const FlowPacket& pkt : s.packets) {
    EXPECT_TRUE(pkt.src == 0 || pkt.dst == 0)
        << "unexpected PE-to-PE packet " << pkt.src << "->" << pkt.dst;
  }
}

TEST(Schedule, ToTraceRoundTripsThroughCsvWithPayloads) {
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1);
  model.emplace<Conv2d>(4, 6, 3, 1, 1);
  const noc::MeshShape shape(4, 4);
  const accel::NodeRoles roles = accel::assign_roles(shape, 2);
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, shape, roles,
                                  get_policy("rowmajor"), 3);
  TrafficConfig cfg = counting_config();
  cfg.pairs_per_packet = 8;
  const PlacedSchedule s = build_schedule(p, cfg);

  const noc::PacketTrace trace = to_trace(s, cfg.layout, shape);
  ASSERT_EQ(trace.size(), s.packets.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const noc::TraceEvent& e = trace.events()[i];
    const FlowPacket& pkt = s.packets[i];
    EXPECT_TRUE(e.has_payload());
    EXPECT_EQ(e.inject_cycle, pkt.cycle);
    EXPECT_EQ(e.num_flits,
              accel::flits_needed(
                  static_cast<std::uint32_t>(pkt.weights.size()),
                  /*has_bias=*/false, cfg.layout));
    EXPECT_EQ(e.hops, shape.manhattan(pkt.src, pkt.dst));
    EXPECT_EQ(e.eject_cycle, e.inject_cycle + e.hops + e.num_flits);
  }

  const std::string path = testing::TempDir() + "nocbt_placed_schedule.csv";
  ASSERT_EQ(trace.dump_csv(path), trace.size());
  const noc::PacketTrace loaded = noc::PacketTrace::load_csv(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const noc::TraceEvent& a = trace.events()[i];
    const noc::TraceEvent& b = loaded.events()[i];
    EXPECT_EQ(a.packet_id, b.packet_id);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.num_flits, b.num_flits);
    EXPECT_EQ(a.inject_cycle, b.inject_cycle);
    EXPECT_EQ(a.eject_cycle, b.eject_cycle);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.inputs, b.inputs);
  }
}

TEST(Schedule, RejectsBadConfig) {
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1);
  const Chain1x2 m;
  const Placement p = place_model(model, Shape{1, 1, 4, 4}, m.shape, m.roles,
                                  get_policy("rowmajor"), 1);

  TrafficConfig no_source;  // draw_activation left empty
  EXPECT_THROW((void)build_schedule(p, no_source), std::invalid_argument);

  TrafficConfig tiny = counting_config();
  tiny.layout.values_per_flit = 0;  // cannot hold a (weight, input) pair
  EXPECT_THROW((void)build_schedule(p, tiny), std::invalid_argument);

  TrafficConfig zero_window = counting_config();
  zero_window.pairs_per_packet = 0;
  EXPECT_THROW((void)build_schedule(p, zero_window), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::place
