// Property suite over the whole placement registry x model zoo
// cross-product: every registered PlacementPolicy placing every zoo model
// must produce tilings that cover each op's output units exactly once,
// land every tile on an in-mesh PE node, bind every tile to a real memory
// controller, and reproduce the identical assignment on a re-run. New
// policies and new zoo models are covered automatically — the axes come
// from the registries, not from hand-kept lists.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/mapping.h"
#include "common/rng.h"
#include "dnn/zoo.h"
#include "noc/routing.h"
#include "place/placement.h"
#include "place/policy.h"

namespace nocbt::place {
namespace {

constexpr std::int32_t kRows = 8;
constexpr std::int32_t kCols = 8;
constexpr std::int32_t kMcs = 4;
constexpr std::int32_t kTilesPerLayer = 8;
constexpr std::uint64_t kModelSeed = 42;

Placement place_zoo_model(const std::string& model_name,
                          const std::string& policy_name) {
  Rng rng(kModelSeed);
  const dnn::Sequential model = dnn::build_zoo_model(model_name, rng);
  const noc::MeshShape mesh(kRows, kCols);
  const accel::NodeRoles roles = accel::assign_roles(mesh, kMcs);
  return place_model(model, dnn::zoo_model_spec(model_name).input, mesh,
                     roles, get_policy(policy_name), kTilesPerLayer);
}

TEST(PlacePropertySuite, RegistryEnumerationMatchesLookup) {
  const std::vector<std::string> names = registered_policy_names();
  ASSERT_FALSE(names.empty());
  // Every enumerated name resolves, and the built-ins are present.
  for (const std::string& name : names) EXPECT_EQ(get_policy(name).name(), name);
  for (const char* builtin : {"rowmajor", "snake", "nearmc"})
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << "built-in policy missing: " << builtin;
}

TEST(PlacePropertySuite, EveryPolicyTilesEveryZooModelExactly) {
  for (const std::string& policy : registered_policy_names()) {
    for (const std::string& model : dnn::zoo_model_names()) {
      SCOPED_TRACE("policy=" + policy + " model=" + model);
      const Placement placed = place_zoo_model(model, policy);
      ASSERT_FALSE(placed.ops.empty());

      std::int64_t tiles_seen = 0;
      for (const PlacedOp& op : placed.ops) {
        SCOPED_TRACE("op=" + op.name);
        ASSERT_FALSE(op.tiles.empty());
        ASSERT_GT(op.units, 0);
        EXPECT_LE(static_cast<std::int32_t>(op.tiles.size()),
                  std::min(kTilesPerLayer, op.units));

        // Unit coverage: tiles are contiguous, non-empty, non-overlapping
        // ranges that jointly cover [0, units) exactly once.
        EXPECT_EQ(op.tiles.front().unit_begin, 0);
        for (std::size_t t = 0; t < op.tiles.size(); ++t) {
          const TileAssignment& tile = op.tiles[t];
          EXPECT_GE(tile.units(), 1);
          if (t > 0) EXPECT_EQ(tile.unit_begin, op.tiles[t - 1].unit_end);
          // PE is a real compute node of this mesh: in range and not a MC.
          EXPECT_GE(tile.pe, 0);
          EXPECT_LT(tile.pe, kRows * kCols);
          EXPECT_NE(std::find(placed.roles.pes.begin(),
                              placed.roles.pes.end(), tile.pe),
                    placed.roles.pes.end())
              << "tile PE " << tile.pe << " is not a PE node";
          EXPECT_LT(tile.mc, placed.roles.mcs.size());
        }
        EXPECT_EQ(op.tiles.back().unit_end, op.units);
        tiles_seen += static_cast<std::int64_t>(op.tiles.size());
      }
      EXPECT_EQ(placed.total_tiles, tiles_seen);
    }
  }
}

TEST(PlacePropertySuite, PlacementIsStableUnderRerun) {
  // Same model seed, same mesh, same policy -> bitwise-identical tile
  // assignment (PE and MC binding included). The campaign engine relies on
  // this: scenario results are reproducible only if placement is.
  for (const std::string& policy : registered_policy_names()) {
    for (const std::string& model : dnn::zoo_model_names()) {
      SCOPED_TRACE("policy=" + policy + " model=" + model);
      const Placement a = place_zoo_model(model, policy);
      const Placement b = place_zoo_model(model, policy);
      ASSERT_EQ(a.ops.size(), b.ops.size());
      for (std::size_t i = 0; i < a.ops.size(); ++i) {
        ASSERT_EQ(a.ops[i].tiles.size(), b.ops[i].tiles.size());
        for (std::size_t t = 0; t < a.ops[i].tiles.size(); ++t) {
          const TileAssignment& ta = a.ops[i].tiles[t];
          const TileAssignment& tb = b.ops[i].tiles[t];
          EXPECT_EQ(ta.unit_begin, tb.unit_begin);
          EXPECT_EQ(ta.unit_end, tb.unit_end);
          EXPECT_EQ(ta.pe, tb.pe);
          EXPECT_EQ(ta.mc, tb.mc);
        }
      }
    }
  }
}

TEST(PlacePropertySuite, ConsecutiveLayersAvoidPeReuseWhenMeshAllows) {
  // The wrap-around contract: while the running tile offset stays below
  // the PE count, consecutive ops occupy disjoint PEs.
  for (const std::string& policy : registered_policy_names()) {
    const Placement placed = place_zoo_model("lenet", policy);
    const std::size_t pe_count = placed.roles.pes.size();
    std::int64_t offset = 0;
    for (std::size_t i = 0; i + 1 < placed.ops.size(); ++i) {
      offset += static_cast<std::int64_t>(placed.ops[i].tiles.size());
      const std::int64_t next =
          offset + static_cast<std::int64_t>(placed.ops[i + 1].tiles.size());
      if (next > static_cast<std::int64_t>(pe_count)) break;
      for (const TileAssignment& ta : placed.ops[i].tiles)
        for (const TileAssignment& tb : placed.ops[i + 1].tiles)
          EXPECT_NE(ta.pe, tb.pe)
              << "policy " << policy << ": ops " << i << " and " << i + 1
              << " share PE " << ta.pe;
    }
  }
}

}  // namespace
}  // namespace nocbt::place
