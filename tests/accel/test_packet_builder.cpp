// Tests for task extraction, value codecs, and ordered packet building /
// decoding — including the order-invariance property of Fig. 5.

#include <gtest/gtest.h>

#include <cmath>

#include "accel/packet_builder.h"
#include "accel/task.h"
#include "common/rng.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"

namespace nocbt::accel {
namespace {

using ordering::OrderingMode;

NeuronTask make_random_task(Rng& rng, std::size_t n) {
  NeuronTask task;
  task.layer_index = 1;
  task.output_index = 7;
  task.bias = static_cast<float>(rng.uniform(-0.5, 0.5));
  for (std::size_t i = 0; i < n; ++i) {
    task.inputs.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    task.weights.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return task;
}

LayerCodecs float_codecs() {
  return LayerCodecs{ValueCodec::float32(), ValueCodec::float32(),
                     ValueCodec::float32()};
}

LayerCodecs fixed_codecs(const NeuronTask& task) {
  std::vector<float> bias = {task.bias};
  return LayerCodecs{ValueCodec::fixed_calibrated(8, task.weights),
                     ValueCodec::fixed_calibrated(8, task.inputs),
                     ValueCodec::fixed_calibrated(8, bias)};
}

TEST(ValueCodec, Float32RoundTripsExactly) {
  const ValueCodec codec = ValueCodec::float32();
  for (float v : {0.0f, 1.5f, -3.25f, 1e-20f, -1e20f})
    EXPECT_EQ(codec.decode(codec.encode(v)), v);
  EXPECT_EQ(codec.bits(), 32u);
  EXPECT_EQ(codec.format(), DataFormat::kFloat32);
}

TEST(ValueCodec, FixedQuantizesWithinHalfStep) {
  std::vector<float> calib = {1.0f, -1.0f};
  const ValueCodec codec = ValueCodec::fixed_calibrated(8, calib);
  EXPECT_EQ(codec.bits(), 8u);
  for (float v = -1.0f; v <= 1.0f; v += 0.07f) {
    const float recovered = codec.decode(codec.encode(v));
    EXPECT_NEAR(recovered, v, codec.scale() / 2 + 1e-6);
  }
}

TEST(TaskExtraction, ConvCountsAndWindow) {
  dnn::Conv2d conv(2, 3, 3, 1, 1);
  Rng rng(1);
  conv.init_kaiming(rng);
  dnn::Tensor input(dnn::Shape{1, 2, 4, 4});
  for (auto& v : input.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const auto tasks = extract_conv_tasks(conv, input, 0);
  ASSERT_EQ(tasks.size(), 3u * 4u * 4u);
  for (const auto& task : tasks) {
    EXPECT_EQ(task.inputs.size(), 2u * 3u * 3u);
    EXPECT_EQ(task.weights.size(), 2u * 3u * 3u);
  }
  // Task results must reproduce the layer's forward pass exactly (float
  // accumulation tolerance).
  dnn::Tensor expected = conv.forward(input);
  for (const auto& task : tasks) {
    EXPECT_NEAR(task_reference_result(task),
                expected.data()[static_cast<std::size_t>(task.output_index)],
                1e-4)
        << "task " << task.output_index;
  }
}

TEST(TaskExtraction, ConvPaddingGivesZeroInputs) {
  dnn::Conv2d conv(1, 1, 3, 1, 1);
  conv.weight().fill(1.0f);
  dnn::Tensor input = dnn::Tensor::full(dnn::Shape{1, 1, 3, 3}, 1.0f);
  const auto tasks = extract_conv_tasks(conv, input, 0);
  // Corner neuron (0,0): 4 in-bounds values, 5 padded zeros.
  int zeros = 0;
  for (float v : tasks[0].inputs) zeros += v == 0.0f;
  EXPECT_EQ(zeros, 5);
}

TEST(TaskExtraction, LinearMatchesForward) {
  dnn::Linear fc(6, 4);
  Rng rng(2);
  fc.init_kaiming(rng);
  dnn::Tensor input(dnn::Shape{1, 6, 1, 1});
  for (auto& v : input.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const auto tasks = extract_linear_tasks(fc, input, 3);
  ASSERT_EQ(tasks.size(), 4u);
  dnn::Tensor expected = fc.forward(input);
  for (const auto& task : tasks) {
    EXPECT_EQ(task.layer_index, 3);
    EXPECT_NEAR(task_reference_result(task),
                expected.data()[static_cast<std::size_t>(task.output_index)],
                1e-5);
  }
}

TEST(TaskExtraction, RejectsBatchedInput) {
  dnn::Conv2d conv(1, 1, 3);
  dnn::Tensor batched(dnn::Shape{2, 1, 8, 8});
  EXPECT_THROW(extract_conv_tasks(conv, batched, 0), std::invalid_argument);
  dnn::Linear fc(4, 2);
  dnn::Tensor batched_fc(dnn::Shape{2, 4, 1, 1});
  EXPECT_THROW(extract_linear_tasks(fc, batched_fc, 0),
               std::invalid_argument);
}

class PacketBuilderModes
    : public ::testing::TestWithParam<OrderingMode> {};

TEST_P(PacketBuilderModes, Float32ComputeMatchesReference) {
  Rng rng(10);
  const FlitLayout layout{16, 32};
  for (int trial = 0; trial < 20; ++trial) {
    const auto task = make_random_task(rng, 1 + static_cast<std::size_t>(
                                                    rng.uniform_int(0, 40)));
    const LayerCodecs codecs = float_codecs();
    const BuiltPacket packet =
        build_task_packet(task, codecs, GetParam(), layout);
    std::vector<std::uint32_t> pair_index;
    const UnpackedTask decoded =
        decode_task_packet(packet.payloads, packet.meta, layout, &pair_index);
    const double computed =
        compute_task_output(decoded, pair_index, codecs, GetParam());
    EXPECT_NEAR(computed, task_reference_result(task), 1e-5);
  }
}

TEST_P(PacketBuilderModes, Fixed8ComputeIsOrderInvariantExactly) {
  Rng rng(11);
  const FlitLayout layout{16, 8};
  for (int trial = 0; trial < 20; ++trial) {
    const auto task = make_random_task(rng, 1 + static_cast<std::size_t>(
                                                    rng.uniform_int(0, 60)));
    const LayerCodecs codecs = fixed_codecs(task);

    // Baseline result (O0) is the reference the ordered variants must hit
    // bit-exactly thanks to the int64 MAC.
    const BuiltPacket base = build_task_packet(task, codecs,
                                               OrderingMode::kBaseline, layout);
    std::vector<std::uint32_t> no_index;
    const double reference = compute_task_output(
        decode_task_packet(base.payloads, base.meta, layout, &no_index),
        no_index, codecs, OrderingMode::kBaseline);

    const BuiltPacket packet =
        build_task_packet(task, codecs, GetParam(), layout);
    std::vector<std::uint32_t> pair_index;
    const UnpackedTask decoded =
        decode_task_packet(packet.payloads, packet.meta, layout, &pair_index);
    const double computed =
        compute_task_output(decoded, pair_index, codecs, GetParam());
    EXPECT_EQ(computed, reference) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, PacketBuilderModes,
                         ::testing::Values(OrderingMode::kBaseline,
                                           OrderingMode::kAffiliated,
                                           OrderingMode::kSeparated),
                         [](const ::testing::TestParamInfo<OrderingMode>& info) {
                           return std::string(
                                      ordering::to_string(info.param))
                               .substr(0, 2);
                         });

TEST(PacketBuilder, AffiliatedSortsWeightsDescendingKeepingPairs) {
  Rng rng(12);
  const FlitLayout layout{16, 8};
  const auto task = make_random_task(rng, 25);
  const LayerCodecs codecs = fixed_codecs(task);
  const BuiltPacket packet = build_task_packet(
      task, codecs, OrderingMode::kAffiliated, layout);
  std::vector<std::uint32_t> unused;
  const UnpackedTask decoded =
      decode_task_packet(packet.payloads, packet.meta, layout, &unused);

  // Weights non-increasing in popcount.
  for (std::size_t i = 1; i < decoded.weights.size(); ++i)
    EXPECT_GE(popcount8(static_cast<std::uint8_t>(decoded.weights[i - 1])),
              popcount8(static_cast<std::uint8_t>(decoded.weights[i])));

  // Pairing preserved: the multiset of (weight, input) couples matches.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> original;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> transmitted;
  for (std::size_t i = 0; i < task.weights.size(); ++i) {
    original.emplace_back(codecs.weights.encode(task.weights[i]),
                          codecs.inputs.encode(task.inputs[i]));
    transmitted.emplace_back(decoded.weights[i], decoded.inputs[i]);
  }
  std::sort(original.begin(), original.end());
  std::sort(transmitted.begin(), transmitted.end());
  EXPECT_EQ(original, transmitted);
}

TEST(PacketBuilder, SeparatedSortsBothStreams) {
  Rng rng(13);
  const FlitLayout layout{16, 8};
  const auto task = make_random_task(rng, 30);
  const LayerCodecs codecs = fixed_codecs(task);
  const BuiltPacket packet = build_task_packet(
      task, codecs, OrderingMode::kSeparated, layout);
  std::vector<std::uint32_t> pair_index;
  const UnpackedTask decoded =
      decode_task_packet(packet.payloads, packet.meta, layout, &pair_index);
  for (std::size_t i = 1; i < decoded.weights.size(); ++i) {
    EXPECT_GE(popcount8(static_cast<std::uint8_t>(decoded.weights[i - 1])),
              popcount8(static_cast<std::uint8_t>(decoded.weights[i])));
    EXPECT_GE(popcount8(static_cast<std::uint8_t>(decoded.inputs[i - 1])),
              popcount8(static_cast<std::uint8_t>(decoded.inputs[i])));
  }
  EXPECT_TRUE(ordering::is_permutation(pair_index, 30));
}

TEST(PacketBuilder, EmbeddedIndexAddsFlitsAndRoundTrips) {
  Rng rng(14);
  const FlitLayout layout{16, 8};
  const auto task = make_random_task(rng, 25);
  const LayerCodecs codecs = fixed_codecs(task);
  const BuiltPacket sideband = build_task_packet(
      task, codecs, OrderingMode::kSeparated, layout, false);
  const BuiltPacket embedded = build_task_packet(
      task, codecs, OrderingMode::kSeparated, layout, true);
  EXPECT_GT(embedded.payloads.size(), sideband.payloads.size());
  EXPECT_EQ(embedded.meta.index_flits,
            embedded.payloads.size() - sideband.payloads.size());

  std::vector<std::uint32_t> pair_index;
  const UnpackedTask decoded = decode_task_packet(
      embedded.payloads, embedded.meta, layout, &pair_index);
  const double computed = compute_task_output(decoded, pair_index, codecs,
                                              OrderingMode::kSeparated);
  // Must still match the baseline exactly.
  const BuiltPacket base = build_task_packet(task, codecs,
                                             OrderingMode::kBaseline, layout);
  std::vector<std::uint32_t> none;
  const double reference = compute_task_output(
      decode_task_packet(base.payloads, base.meta, layout, &none), none,
      codecs, OrderingMode::kBaseline);
  EXPECT_EQ(computed, reference);
}

TEST(PacketBuilder, BaselineKeepsNaturalOrder) {
  Rng rng(15);
  const FlitLayout layout{16, 8};
  const auto task = make_random_task(rng, 10);
  const LayerCodecs codecs = fixed_codecs(task);
  const BuiltPacket packet = build_task_packet(
      task, codecs, OrderingMode::kBaseline, layout);
  std::vector<std::uint32_t> unused;
  const UnpackedTask decoded =
      decode_task_packet(packet.payloads, packet.meta, layout, &unused);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(decoded.weights[i], codecs.weights.encode(task.weights[i]));
    EXPECT_EQ(decoded.inputs[i], codecs.inputs.encode(task.inputs[i]));
  }
}

}  // namespace
}  // namespace nocbt::accel
