// Tests for half-half flitization, pinned to the worked example of paper
// Fig. 2 (k=5 conv task: 25 inputs + 25 weights + 1 bias over 16-slot
// flits -> "8i+8w | 8i+8w | 8i+8w | 1i+1w+1b+13 zeros").

#include <gtest/gtest.h>

#include <numeric>

#include "accel/flitization.h"

namespace nocbt::accel {
namespace {

FlitLayout layout16x32() { return FlitLayout{16, 32}; }

TEST(FlitLayout, Geometry) {
  const FlitLayout layout{16, 32};
  EXPECT_EQ(layout.half(), 8u);
  EXPECT_EQ(layout.flit_bits(), 512u);
  EXPECT_EQ(layout.slot_offset(3), 96u);
}

TEST(Flitization, Fig2ExampleLayout) {
  // 25 pairs, 16 slots: 4 flits, bias in flit 3's left half slot 1.
  const FlitLayout layout = layout16x32();
  EXPECT_EQ(flits_needed(25, true, layout), 4u);
  const BiasSlot pos = bias_position(25, layout);
  EXPECT_EQ(pos.flit, 3u);
  EXPECT_EQ(pos.slot, 1u);

  std::vector<std::uint32_t> inputs(25);
  std::vector<std::uint32_t> weights(25);
  std::iota(inputs.begin(), inputs.end(), 100u);    // inputs 100..124
  std::iota(weights.begin(), weights.end(), 200u);  // weights 200..224
  const auto flits = pack_half_half(inputs, weights, 999u, layout);
  ASSERT_EQ(flits.size(), 4u);

  // Flit 0: inputs 0..7 left, weights 0..7 right.
  for (unsigned s = 0; s < 8; ++s) {
    EXPECT_EQ(flits[0].get_field(layout.slot_offset(s), 32), 100u + s);
    EXPECT_EQ(flits[0].get_field(layout.slot_offset(8 + s), 32), 200u + s);
  }
  // Flit 3: input 24, bias, weight 24, rest zero.
  EXPECT_EQ(flits[3].get_field(layout.slot_offset(0), 32), 124u);
  EXPECT_EQ(flits[3].get_field(layout.slot_offset(1), 32), 999u);
  EXPECT_EQ(flits[3].get_field(layout.slot_offset(8), 32), 224u);
  for (unsigned s = 2; s < 8; ++s)
    EXPECT_EQ(flits[3].get_field(layout.slot_offset(s), 32), 0u);
  for (unsigned s = 9; s < 16; ++s)
    EXPECT_EQ(flits[3].get_field(layout.slot_offset(s), 32), 0u);
}

TEST(Flitization, RoundTrip) {
  const FlitLayout layout = layout16x32();
  std::vector<std::uint32_t> inputs(25);
  std::vector<std::uint32_t> weights(25);
  std::iota(inputs.begin(), inputs.end(), 1u);
  std::iota(weights.begin(), weights.end(), 1000u);
  const auto flits = pack_half_half(inputs, weights, 0xDEADu, layout);
  const UnpackedTask task = unpack_half_half(flits, 25, true, layout);
  EXPECT_EQ(task.inputs, inputs);
  EXPECT_EQ(task.weights, weights);
  ASSERT_TRUE(task.bias.has_value());
  EXPECT_EQ(*task.bias, 0xDEADu);
}

TEST(Flitization, ExactMultipleOpensNewFlitForBias) {
  // 16 pairs on 16 slots: both halves of both flits full -> bias flit 2.
  const FlitLayout layout = layout16x32();
  EXPECT_EQ(flits_needed(16, false, layout), 2u);
  EXPECT_EQ(flits_needed(16, true, layout), 3u);
  const BiasSlot pos = bias_position(16, layout);
  EXPECT_EQ(pos.flit, 2u);
  EXPECT_EQ(pos.slot, 0u);

  std::vector<std::uint32_t> vals(16, 7u);
  const auto flits = pack_half_half(vals, vals, 42u, layout);
  ASSERT_EQ(flits.size(), 3u);
  EXPECT_EQ(flits[2].get_field(0, 32), 42u);
}

TEST(Flitization, SinglePairPacket) {
  const FlitLayout layout = layout16x32();
  const std::vector<std::uint32_t> one = {5u};
  const auto flits = pack_half_half(one, one, 6u, layout);
  ASSERT_EQ(flits.size(), 1u);
  const UnpackedTask task = unpack_half_half(flits, 1, true, layout);
  EXPECT_EQ(task.inputs[0], 5u);
  EXPECT_EQ(task.weights[0], 5u);
  EXPECT_EQ(*task.bias, 6u);
}

TEST(Flitization, Fixed8Layout) {
  // 128-bit link, 16 fixed-8 slots.
  const FlitLayout layout{16, 8};
  EXPECT_EQ(layout.flit_bits(), 128u);
  std::vector<std::uint32_t> inputs = {0xAA, 0xBB, 0xCC};
  std::vector<std::uint32_t> weights = {0x11, 0x22, 0x33};
  const auto flits = pack_half_half(inputs, weights, 0xFF, layout);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].get_field(0, 8), 0xAAu);
  EXPECT_EQ(flits[0].get_field(8 * 8, 8), 0x11u);   // right half starts slot 8
  EXPECT_EQ(flits[0].get_field(3 * 8, 8), 0xFFu);   // bias after 3 inputs
}

TEST(Flitization, Validation) {
  const FlitLayout layout = layout16x32();
  const std::vector<std::uint32_t> two = {1, 2};
  const std::vector<std::uint32_t> three = {1, 2, 3};
  EXPECT_THROW(pack_half_half(two, three, 0u, layout), std::invalid_argument);
  EXPECT_THROW(pack_half_half({}, {}, std::nullopt, layout),
               std::invalid_argument);
  const FlitLayout odd{15, 32};
  EXPECT_THROW(pack_half_half(two, two, 0u, odd), std::invalid_argument);
}

TEST(IndexFlits, PackUnpackRoundTrip) {
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i = 0; i < 25; ++i) indices.push_back((i * 7) % 25);
  const auto flits = pack_index_flits(indices, 5, 128);
  // 128 / 5 = 25 indices per flit -> exactly one flit.
  ASSERT_EQ(flits.size(), 1u);
  const auto recovered = unpack_index_flits(flits, 25, 5);
  EXPECT_EQ(recovered, indices);
}

TEST(IndexFlits, MultiFlit) {
  std::vector<std::uint32_t> indices(100);
  std::iota(indices.begin(), indices.end(), 0u);
  const auto flits = pack_index_flits(indices, 7, 64);  // 9 per flit
  EXPECT_EQ(flits.size(), 12u);
  EXPECT_EQ(unpack_index_flits(flits, 100, 7), indices);
}

TEST(IndexFlits, Validation) {
  const std::vector<std::uint32_t> indices = {1, 2};
  EXPECT_THROW(pack_index_flits(indices, 0, 64), std::invalid_argument);
  EXPECT_THROW(pack_index_flits(indices, 33, 64), std::invalid_argument);
  EXPECT_THROW(pack_index_flits(indices, 40, 32), std::invalid_argument);
  EXPECT_THROW(unpack_index_flits({}, 2, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::accel
