// End-to-end platform tests: full DNN inference over the simulated NoC.
//
// The decisive properties:
//  * the NoC-computed output equals host inference (the network really
//    transports and computes the model, bit-for-bit through flit payloads);
//  * O0/O1/O2 produce identical outputs (order invariance, Fig. 5) while
//    ordered runs produce strictly fewer bit transitions;
//  * separated-ordering (O2) reduces BT at least as much as affiliated (O1).

#include <gtest/gtest.h>

#include <cmath>

#include "accel/platform.h"
#include "common/rng.h"
#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/models.h"
#include "dnn/pooling.h"
#include "dnn/synthetic_data.h"

namespace nocbt::accel {
namespace {

using ordering::OrderingMode;

// A small but representative model: conv -> relu -> pool -> fc. The 5x5
// two-channel kernel gives 50-pair tasks (7 flits per packet), enough of an
// ordering window for the BT mechanism to act; weights are "trained-like"
// (zero-concentrated Laplace), the distribution the paper's technique
// targets.
dnn::Sequential make_tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(2, 4, 5, 1, 2);  // 4 @ 8x8, 50-value windows
  model.emplace<dnn::Relu>();
  model.emplace<dnn::MaxPool2d>(2);           // 4 @ 4x4
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(64, 10);
  dnn::fill_weights_trained_like(model, rng, 0.05);
  return model;
}

dnn::Tensor make_input(std::uint64_t seed) {
  Rng rng(seed);
  dnn::Tensor input(dnn::Shape{1, 2, 8, 8});
  for (auto& v : input.data())
    v = static_cast<float>(rng.flip(0.7) ? rng.laplace(0.2)
                                         : rng.uniform(-1.0, 1.0));
  return input;
}

TEST(Platform, Float32MatchesHostInference) {
  dnn::Sequential model = make_tiny_model(1);
  const dnn::Tensor input = make_input(2);
  const dnn::Tensor host = model.forward(input);

  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFloat32,
                                          OrderingMode::kBaseline, 4, 4, 2);
  NocDnaPlatform platform(cfg, model);
  const InferenceResult result = platform.run(input);

  ASSERT_EQ(result.output.shape(), host.shape());
  for (std::int64_t i = 0; i < host.numel(); ++i)
    EXPECT_NEAR(result.output.data()[static_cast<std::size_t>(i)],
                host.data()[static_cast<std::size_t>(i)], 1e-4)
        << "logit " << i;
  EXPECT_GT(result.total_cycles, 0u);
  EXPECT_GT(result.bt_total, 0u);
  EXPECT_GT(result.data_packets, 0u);
  EXPECT_EQ(result.data_packets, result.result_packets);
}

TEST(Platform, OrderingModesProduceIdenticalOutputsFloat32) {
  const dnn::Tensor input = make_input(3);
  dnn::Tensor outputs[3];
  std::uint64_t bts[3];
  const OrderingMode modes[] = {OrderingMode::kBaseline,
                                OrderingMode::kAffiliated,
                                OrderingMode::kSeparated};
  for (int m = 0; m < 3; ++m) {
    dnn::Sequential model = make_tiny_model(1);
    AccelConfig cfg = AccelConfig::defaults(DataFormat::kFloat32, modes[m],
                                            4, 4, 2);
    NocDnaPlatform platform(cfg, model);
    const InferenceResult result = platform.run(input);
    outputs[m] = result.output;
    bts[m] = result.bt_total;
  }
  for (std::int64_t i = 0; i < outputs[0].numel(); ++i) {
    EXPECT_NEAR(outputs[1].data()[static_cast<std::size_t>(i)],
                outputs[0].data()[static_cast<std::size_t>(i)], 1e-4);
    EXPECT_NEAR(outputs[2].data()[static_cast<std::size_t>(i)],
                outputs[0].data()[static_cast<std::size_t>(i)], 1e-4);
  }
  // Both orderings must reduce BT on this workload.
  EXPECT_LT(bts[1], bts[0]);
  EXPECT_LT(bts[2], bts[0]);
}

TEST(Platform, OrderingModesBitExactForFixed8) {
  const dnn::Tensor input = make_input(4);
  dnn::Tensor outputs[3];
  std::uint64_t bts[3];
  const OrderingMode modes[] = {OrderingMode::kBaseline,
                                OrderingMode::kAffiliated,
                                OrderingMode::kSeparated};
  for (int m = 0; m < 3; ++m) {
    dnn::Sequential model = make_tiny_model(1);
    AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8, modes[m],
                                            4, 4, 2);
    NocDnaPlatform platform(cfg, model);
    const InferenceResult result = platform.run(input);
    outputs[m] = result.output;
    bts[m] = result.bt_total;
  }
  // Fixed-8 with int64 MACs: bit-exact equality across orderings.
  for (std::int64_t i = 0; i < outputs[0].numel(); ++i) {
    EXPECT_EQ(outputs[1].data()[static_cast<std::size_t>(i)],
              outputs[0].data()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(outputs[2].data()[static_cast<std::size_t>(i)],
              outputs[0].data()[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(bts[1], bts[0]);
  EXPECT_LT(bts[2], bts[0]);
  // Separated reduces at least as much as affiliated (it additionally
  // orders the input half).
  EXPECT_LE(bts[2], bts[1]);
}

TEST(Platform, LayerStatsAccount) {
  dnn::Sequential model = make_tiny_model(5);
  const dnn::Tensor input = make_input(6);
  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                          OrderingMode::kBaseline, 4, 4, 2);
  NocDnaPlatform platform(cfg, model);
  const InferenceResult result = platform.run(input);

  // Two weighted layers: conv (4*8*8 = 256 tasks) and fc (10 tasks).
  ASSERT_EQ(result.layers.size(), 2u);
  EXPECT_EQ(result.layers[0].tasks, 256u);
  EXPECT_EQ(result.layers[1].tasks, 10u);
  EXPECT_EQ(result.layers[0].data_packets, 256u);
  EXPECT_EQ(result.data_packets, 266u);
  std::uint64_t bt_sum = 0;
  for (const auto& l : result.layers) bt_sum += l.bt;
  EXPECT_LE(bt_sum, result.bt_total);
  EXPECT_GE(result.trace.size(), 2u * 266u);  // data + result packets
}

TEST(Platform, EmbeddedIndexCostsMoreBt) {
  const dnn::Tensor input = make_input(7);
  std::uint64_t bt_sideband;
  std::uint64_t bt_embedded;
  {
    dnn::Sequential model = make_tiny_model(8);
    AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                            OrderingMode::kSeparated, 4, 4, 2);
    NocDnaPlatform platform(cfg, model);
    bt_sideband = platform.run(input).bt_total;
  }
  {
    dnn::Sequential model = make_tiny_model(8);
    AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                            OrderingMode::kSeparated, 4, 4, 2);
    cfg.embed_pairing_index = true;
    NocDnaPlatform platform(cfg, model);
    const InferenceResult result = platform.run(input);
    bt_embedded = result.bt_total;
    // Outputs must still be correct with the in-band index.
    dnn::Sequential host_model = make_tiny_model(8);
    const dnn::Tensor host = host_model.forward(input);
    for (std::int64_t i = 0; i < host.numel(); ++i)
      EXPECT_NEAR(result.output.data()[static_cast<std::size_t>(i)],
                  host.data()[static_cast<std::size_t>(i)], 0.2);
  }
  EXPECT_GT(bt_embedded, bt_sideband);
}

TEST(Platform, OrderingLatencyModelStillCompletes) {
  dnn::Sequential model = make_tiny_model(9);
  const dnn::Tensor input = make_input(10);
  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                          OrderingMode::kSeparated, 4, 4, 2);
  cfg.model_ordering_latency = true;
  NocDnaPlatform platform(cfg, model);
  const InferenceResult result = platform.run(input);
  EXPECT_GT(result.total_cycles, 0u);
  // Output correctness is unaffected by timing.
  dnn::Sequential host_model = make_tiny_model(9);
  const dnn::Tensor host = host_model.forward(input);
  for (std::int64_t i = 0; i < host.numel(); ++i)
    EXPECT_NEAR(result.output.data()[static_cast<std::size_t>(i)],
                host.data()[static_cast<std::size_t>(i)], 0.2);
}

TEST(Platform, RunsOn8x8WithMoreMcs) {
  dnn::Sequential model = make_tiny_model(11);
  const dnn::Tensor input = make_input(12);
  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                          OrderingMode::kAffiliated, 8, 8, 4);
  NocDnaPlatform platform(cfg, model);
  const InferenceResult result = platform.run(input);
  EXPECT_GT(result.bt_total, 0u);
  EXPECT_EQ(result.data_packets, 266u);
}

TEST(Platform, RejectsBatchedInput) {
  dnn::Sequential model = make_tiny_model(13);
  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFloat32,
                                          OrderingMode::kBaseline, 4, 4, 2);
  NocDnaPlatform platform(cfg, model);
  dnn::Tensor batched(dnn::Shape{2, 1, 8, 8});
  EXPECT_THROW((void)platform.run(batched), std::invalid_argument);
}

TEST(Platform, ConfigValidation) {
  EXPECT_THROW(AccelConfig::defaults(DataFormat::kFloat32,
                                     OrderingMode::kBaseline, 4, 4, 16),
               std::invalid_argument);
  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFloat32,
                                          OrderingMode::kBaseline, 4, 4, 2);
  cfg.noc.flit_payload_bits = 48;  // not a multiple of 32... actually 48 is not
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  AccelConfig drain_cfg = AccelConfig::defaults(DataFormat::kFloat32,
                                                OrderingMode::kBaseline, 4, 4, 2);
  drain_cfg.drain_max_cycles = 0;
  EXPECT_THROW(drain_cfg.validate(), std::invalid_argument);
}

TEST(Platform, FinalDrainBudgetIsConfigurableAndThrowsOnNonDrain) {
  // The last layer's result credits are still in flight when the layer
  // loop exits; a 1-cycle drain budget cannot absorb them, and that must
  // be a loud error (the old behavior silently discarded the returned
  // bool), while the default budget drains the same run cleanly.
  dnn::Sequential model = make_tiny_model(17);
  const dnn::Tensor input = make_input(18);

  AccelConfig cfg = AccelConfig::defaults(DataFormat::kFixed8,
                                          OrderingMode::kSeparated, 4, 4, 2);
  // 2-cycle links: the credit returned for the last delivered result flit
  // is pushed the cycle the layer loop exits and lands 2 cycles later, so
  // a 1-cycle budget deterministically cannot reach idle.
  cfg.noc.channel_latency = 2;
  cfg.drain_max_cycles = 1;
  NocDnaPlatform strict(cfg, model);
  try {
    (void)strict.run(input);
    FAIL() << "expected the 1-cycle drain budget to overflow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("failed to drain"),
              std::string::npos)
        << e.what();
  }

  cfg.drain_max_cycles = 100'000;
  NocDnaPlatform relaxed(cfg, model);
  const InferenceResult result = relaxed.run(input);
  EXPECT_GT(result.total_cycles, 0u);
}

}  // namespace
}  // namespace nocbt::accel
