// Tests for memory-controller placement (paper Fig. 6) and node roles.

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/mapping.h"

namespace nocbt::accel {
namespace {

TEST(Mapping, Fig6PlacementFor4x4Mc2) {
  // The paper's 4x4 example places the two MCs at R8 and R11 (west/east
  // edges, row 2).
  const noc::MeshShape shape(4, 4);
  const auto mcs = memory_controller_nodes(shape, 2);
  EXPECT_EQ(mcs, (std::vector<std::int32_t>{8, 11}));
}

TEST(Mapping, EightByEightMc4OnEdges) {
  const noc::MeshShape shape(8, 8);
  const auto mcs = memory_controller_nodes(shape, 4);
  ASSERT_EQ(mcs.size(), 4u);
  for (const auto node : mcs) {
    const auto coord = shape.coord_of(node);
    EXPECT_TRUE(coord.x == 0 || coord.x == 7) << "node " << node;
  }
  // Two per side.
  const auto west = std::count_if(mcs.begin(), mcs.end(), [&](auto n) {
    return shape.coord_of(n).x == 0;
  });
  EXPECT_EQ(west, 2);
}

TEST(Mapping, EightByEightMc8RowsSpread) {
  const noc::MeshShape shape(8, 8);
  const auto mcs = memory_controller_nodes(shape, 8);
  ASSERT_EQ(mcs.size(), 8u);
  std::vector<std::int32_t> west_rows;
  for (const auto node : mcs)
    if (shape.coord_of(node).x == 0) west_rows.push_back(shape.coord_of(node).y);
  EXPECT_EQ(west_rows, (std::vector<std::int32_t>{1, 3, 5, 7}));
}

TEST(Mapping, RolesPartitionAllNodes) {
  const noc::MeshShape shape(4, 4);
  const NodeRoles roles = assign_roles(shape, 2);
  EXPECT_EQ(roles.mcs.size(), 2u);
  EXPECT_EQ(roles.pes.size(), 14u);
  std::vector<std::int32_t> all = roles.mcs;
  all.insert(all.end(), roles.pes.begin(), roles.pes.end());
  std::sort(all.begin(), all.end());
  for (std::int32_t node = 0; node < 16; ++node)
    EXPECT_EQ(all[static_cast<std::size_t>(node)], node);
}

TEST(Mapping, SingleMc) {
  const noc::MeshShape shape(2, 2);
  const auto mcs = memory_controller_nodes(shape, 1);
  ASSERT_EQ(mcs.size(), 1u);
  EXPECT_EQ(shape.coord_of(mcs[0]).x, 0);
}

TEST(Mapping, RejectsBadCounts) {
  const noc::MeshShape shape(4, 4);
  EXPECT_THROW(memory_controller_nodes(shape, 0), std::invalid_argument);
  EXPECT_THROW(memory_controller_nodes(shape, 16), std::invalid_argument);
  // Single-column mesh: west and east edges coincide, so two MCs collide
  // on the same node.
  EXPECT_THROW(memory_controller_nodes(noc::MeshShape(2, 1), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::accel
