// Tests for memory-controller placement (paper Fig. 6) and node roles.

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/mapping.h"

namespace nocbt::accel {
namespace {

TEST(Mapping, Fig6PlacementFor4x4Mc2) {
  // The paper's 4x4 example places the two MCs at R8 and R11 (west/east
  // edges, row 2).
  const noc::MeshShape shape(4, 4);
  const auto mcs = memory_controller_nodes(shape, 2);
  EXPECT_EQ(mcs, (std::vector<std::int32_t>{8, 11}));
}

TEST(Mapping, EightByEightMc4OnEdges) {
  const noc::MeshShape shape(8, 8);
  const auto mcs = memory_controller_nodes(shape, 4);
  ASSERT_EQ(mcs.size(), 4u);
  for (const auto node : mcs) {
    const auto coord = shape.coord_of(node);
    EXPECT_TRUE(coord.x == 0 || coord.x == 7) << "node " << node;
  }
  // Two per side.
  const auto west = std::count_if(mcs.begin(), mcs.end(), [&](auto n) {
    return shape.coord_of(n).x == 0;
  });
  EXPECT_EQ(west, 2);
}

TEST(Mapping, EightByEightMc8RowsSpread) {
  const noc::MeshShape shape(8, 8);
  const auto mcs = memory_controller_nodes(shape, 8);
  ASSERT_EQ(mcs.size(), 8u);
  std::vector<std::int32_t> west_rows;
  for (const auto node : mcs)
    if (shape.coord_of(node).x == 0) west_rows.push_back(shape.coord_of(node).y);
  EXPECT_EQ(west_rows, (std::vector<std::int32_t>{1, 3, 5, 7}));
}

TEST(Mapping, RolesPartitionAllNodes) {
  const noc::MeshShape shape(4, 4);
  const NodeRoles roles = assign_roles(shape, 2);
  EXPECT_EQ(roles.mcs.size(), 2u);
  EXPECT_EQ(roles.pes.size(), 14u);
  std::vector<std::int32_t> all = roles.mcs;
  all.insert(all.end(), roles.pes.begin(), roles.pes.end());
  std::sort(all.begin(), all.end());
  for (std::int32_t node = 0; node < 16; ++node)
    EXPECT_EQ(all[static_cast<std::size_t>(node)], node);
}

TEST(Mapping, SingleMc) {
  const noc::MeshShape shape(2, 2);
  const auto mcs = memory_controller_nodes(shape, 1);
  ASSERT_EQ(mcs.size(), 1u);
  EXPECT_EQ(shape.coord_of(mcs[0]).x, 0);
}

TEST(Mapping, RejectsBadCounts) {
  const noc::MeshShape shape(4, 4);
  EXPECT_THROW(memory_controller_nodes(shape, 0), std::invalid_argument);
  EXPECT_THROW(memory_controller_nodes(shape, 16), std::invalid_argument);
  // Single-column mesh: west and east edges coincide, so two MCs collide
  // on the same node.
  EXPECT_THROW(memory_controller_nodes(noc::MeshShape(2, 1), 2),
               std::invalid_argument);
}


TEST(Mapping, NearestMcTieBreaksWestOnChainMesh) {
  // 1x5 chain with an MC at each end (west node 0, east node 4): the exact
  // middle node is equidistant from both and must resolve to the lower MC
  // index — the west controller (memory_controller_nodes lists west-edge
  // controllers first).
  const noc::MeshShape shape(1, 5);
  const NodeRoles roles = assign_roles(shape, 2);
  ASSERT_EQ(roles.mcs, (std::vector<std::int32_t>{0, 4}));
  const auto nearest = nearest_mc_index(shape, roles);
  EXPECT_EQ(nearest[2], 0u);  // 2 hops to either end: tie -> west
  EXPECT_EQ(nearest[1], 0u);  // strictly closer to the west MC
  EXPECT_EQ(nearest[3], 1u);  // strictly closer to the east MC
  EXPECT_EQ(nearest[0], 0u);  // an MC is its own nearest controller
  EXPECT_EQ(nearest[4], 1u);
}

TEST(Mapping, NearestMcTieBreaksWestOnTwoRowMesh) {
  // 2x5 with one MC per edge: both land on row 1 (floor((0 + 0.5) * 2 / 1)),
  // west node 5 and east node 9. Center-column nodes are equidistant from
  // the two controllers on both rows; ties go to the lower MC index (west).
  const noc::MeshShape shape(2, 5);
  const NodeRoles roles = assign_roles(shape, 2);
  ASSERT_EQ(roles.mcs, (std::vector<std::int32_t>{5, 9}));
  const auto nearest = nearest_mc_index(shape, roles);
  EXPECT_EQ(nearest[2], 0u);  // row 0 center: 3-hop tie -> west
  EXPECT_EQ(nearest[7], 0u);  // row 1 center: 2-hop tie -> west
  EXPECT_EQ(nearest[3], 1u);  // strictly closer to the east MC
  EXPECT_EQ(nearest[8], 1u);
}

TEST(Mapping, NearestMcSameEdgeTieBreaksLowerRow) {
  // 4x2 with 4 MCs: each edge gets controllers at rows 1 and 3, so
  // roles.mcs = {2, 3, 6, 7}. West node 4 (row 2) is 1 hop from both
  // west-edge MCs (rows 1 and 3) — the tie resolves to the first-listed,
  // lower-row controller; likewise node 5 on the east edge.
  const noc::MeshShape shape(4, 2);
  const NodeRoles roles = assign_roles(shape, 4);
  ASSERT_EQ(roles.mcs, (std::vector<std::int32_t>{2, 3, 6, 7}));
  const auto nearest = nearest_mc_index(shape, roles);
  EXPECT_EQ(nearest[4], 0u);  // tie between nodes 2 and 6 -> lower row
  EXPECT_EQ(nearest[5], 1u);  // tie between nodes 3 and 7 -> lower row
  EXPECT_EQ(nearest[0], 0u);  // strictly nearest: west row 1
  EXPECT_EQ(nearest[7], 3u);  // an MC maps to itself
}

}  // namespace
}  // namespace nocbt::accel
