// Tests for nearest-MC locality assignment and its Fig. 12 consequence:
// fewer controllers per mesh means longer average routes.

#include <gtest/gtest.h>

#include <numeric>

#include "accel/mapping.h"

namespace nocbt::accel {
namespace {

TEST(NearestMc, EveryNodeGetsAValidIndex) {
  const noc::MeshShape shape(8, 8);
  const NodeRoles roles = assign_roles(shape, 4);
  const auto nearest = nearest_mc_index(shape, roles);
  ASSERT_EQ(nearest.size(), 64u);
  for (const auto idx : nearest) EXPECT_LT(idx, roles.mcs.size());
}

TEST(NearestMc, McNodesMapToThemselves) {
  const noc::MeshShape shape(8, 8);
  const NodeRoles roles = assign_roles(shape, 8);
  const auto nearest = nearest_mc_index(shape, roles);
  for (std::size_t m = 0; m < roles.mcs.size(); ++m)
    EXPECT_EQ(nearest[static_cast<std::size_t>(roles.mcs[m])], m);
}

TEST(NearestMc, PicksTheCloserController) {
  // 4x4 MC2: MCs at node 8 (west, row 2) and 11 (east, row 2). Node 4
  // (west, row 1) must map to the west MC, node 7 (east, row 1) to the east.
  const noc::MeshShape shape(4, 4);
  const NodeRoles roles = assign_roles(shape, 2);
  const auto nearest = nearest_mc_index(shape, roles);
  EXPECT_EQ(roles.mcs[nearest[4]], 8);
  EXPECT_EQ(roles.mcs[nearest[7]], 11);
}

TEST(NearestMc, TiesGoToLowerMcIndex) {
  const noc::MeshShape shape(4, 4);
  const NodeRoles roles = assign_roles(shape, 2);
  const auto nearest = nearest_mc_index(shape, roles);
  // Nodes equidistant from both MCs (columns 1-2 on row 2: nodes 9, 10 are
  // at distance 1/2 and 2/1 — node 9 closer to MC 8; a genuinely tied node
  // like 1 (distances 3 and 3) resolves to the first MC).
  EXPECT_EQ(roles.mcs[nearest[1]], 8);
}

TEST(NearestMc, MoreControllersShortenAverageRoutes) {
  // The Fig. 12 effect, checked directly on the geometry: mean distance to
  // the serving MC strictly drops from 4 to 8 controllers on an 8x8 mesh.
  const noc::MeshShape shape(8, 8);
  auto mean_distance = [&](std::int32_t mcs) {
    const NodeRoles roles = assign_roles(shape, mcs);
    const auto nearest = nearest_mc_index(shape, roles);
    double total = 0.0;
    for (const auto pe : roles.pes)
      total += shape.manhattan(
          pe, roles.mcs[nearest[static_cast<std::size_t>(pe)]]);
    return total / static_cast<double>(roles.pes.size());
  };
  EXPECT_GT(mean_distance(4), mean_distance(8));
  EXPECT_GT(mean_distance(2), mean_distance(4));
}

}  // namespace
}  // namespace nocbt::accel
