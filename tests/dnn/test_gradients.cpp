// Numerical gradient checks: every layer's backward pass is validated
// against central finite differences on small configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/pooling.h"

namespace nocbt::dnn {
namespace {

// Scalar objective: L = sum(out * projection) for a fixed random projection,
// so dL/d(out) = projection.
class GradientChecker {
 public:
  GradientChecker(Layer& layer, Shape in_shape, std::uint64_t seed)
      : layer_(layer), in_shape_(in_shape), rng_(seed) {
    input_ = Tensor(in_shape);
    for (auto& v : input_.data())
      v = static_cast<float>(rng_.uniform(-1.0, 1.0));
    const Shape out_shape = layer.output_shape(in_shape);
    projection_ = Tensor(out_shape);
    for (auto& v : projection_.data())
      v = static_cast<float>(rng_.uniform(-1.0, 1.0));
  }

  [[nodiscard]] double loss() {
    const Tensor out = layer_.forward(input_);
    double l = 0.0;
    auto o = out.data();
    auto p = projection_.data();
    for (std::size_t i = 0; i < o.size(); ++i)
      l += static_cast<double>(o[i]) * p[i];
    return l;
  }

  /// Analytic input gradient (also populates parameter grads).
  [[nodiscard]] Tensor analytic_input_grad() {
    (void)layer_.forward(input_);
    return layer_.backward(projection_);
  }

  /// Numerical gradient of one scalar location.
  [[nodiscard]] double numeric_grad(float* location, double eps = 1e-3) {
    const float saved = *location;
    *location = saved + static_cast<float>(eps);
    const double up = loss();
    *location = saved - static_cast<float>(eps);
    const double down = loss();
    *location = saved;
    return (up - down) / (2.0 * eps);
  }

  [[nodiscard]] Tensor& input() { return input_; }

 private:
  Layer& layer_;
  Shape in_shape_;
  Rng rng_;
  Tensor input_;
  Tensor projection_;
};

void check_input_gradient(Layer& layer, Shape in_shape, std::uint64_t seed,
                          double tol = 2e-2) {
  GradientChecker checker(layer, in_shape, seed);
  const Tensor analytic = checker.analytic_input_grad();
  auto input = checker.input().data();
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double numeric = checker.numeric_grad(&input[i]);
    EXPECT_NEAR(analytic.data()[i], numeric, tol) << "input element " << i;
  }
}

void check_param_gradients(Layer& layer, Shape in_shape, std::uint64_t seed,
                           double tol = 2e-2) {
  GradientChecker checker(layer, in_shape, seed);
  for (auto& p : layer.params()) p.grad->zero();
  (void)checker.analytic_input_grad();  // fills parameter grads
  for (auto& p : layer.params()) {
    // Copy the analytic grads before probing (forward() reuse is fine; the
    // probe only calls forward).
    const Tensor analytic = *p.grad;
    auto values = p.value->data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double numeric = checker.numeric_grad(&values[i]);
      EXPECT_NEAR(analytic.data()[i], numeric, tol)
          << p.name << " element " << i;
    }
  }
}

TEST(Gradients, Conv2dInput) {
  Conv2d conv(2, 3, 3, 1, 1);
  Rng rng(11);
  conv.init_kaiming(rng);
  check_input_gradient(conv, Shape{1, 2, 4, 4}, 21);
}

TEST(Gradients, Conv2dParams) {
  Conv2d conv(2, 2, 2);
  Rng rng(12);
  conv.init_kaiming(rng);
  check_param_gradients(conv, Shape{1, 2, 3, 3}, 22);
}

TEST(Gradients, Conv2dStridedParams) {
  Conv2d conv(1, 2, 2, 2, 1);
  Rng rng(13);
  conv.init_kaiming(rng);
  check_param_gradients(conv, Shape{1, 1, 5, 5}, 23);
}

TEST(Gradients, LinearInputAndParams) {
  Linear fc(6, 4);
  Rng rng(14);
  fc.init_kaiming(rng);
  check_input_gradient(fc, Shape{2, 6, 1, 1}, 24);
  Linear fc2(5, 3);
  fc2.init_kaiming(rng);
  check_param_gradients(fc2, Shape{2, 5, 1, 1}, 25);
}

TEST(Gradients, ReluInput) {
  Relu relu;
  check_input_gradient(relu, Shape{1, 2, 3, 3}, 26);
}

TEST(Gradients, LeakyReluInput) {
  LeakyRelu leaky(0.1f);
  check_input_gradient(leaky, Shape{1, 2, 3, 3}, 27);
}

TEST(Gradients, TanhInput) {
  Tanh tanh_layer;
  check_input_gradient(tanh_layer, Shape{1, 2, 3, 3}, 28, 5e-2);
}

TEST(Gradients, AvgPoolInput) {
  AvgPool2d pool(2);
  check_input_gradient(pool, Shape{1, 2, 4, 4}, 29);
}

TEST(Gradients, GlobalAvgPoolInput) {
  GlobalAvgPool pool;
  check_input_gradient(pool, Shape{1, 3, 4, 4}, 30);
}

TEST(Gradients, MaxPoolRoutesToArgmax) {
  // Finite differences at the argmax: gradient 1, elsewhere 0. Use a
  // deterministic input with a strict max per window to avoid ties.
  MaxPool2d pool(2);
  Tensor in = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 4, 3});
  (void)pool.forward(in);
  Tensor g(Shape{1, 1, 1, 1});
  g.at(0, 0, 0, 0) = 7.0f;
  const Tensor gin = pool.backward(g);
  EXPECT_EQ(gin.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(gin.at(0, 0, 0, 1), 0.0f);
  EXPECT_EQ(gin.at(0, 0, 1, 0), 7.0f);  // argmax position (value 4)
  EXPECT_EQ(gin.at(0, 0, 1, 1), 0.0f);
}

}  // namespace
}  // namespace nocbt::dnn
