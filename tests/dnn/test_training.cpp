// Training-substrate tests: loss, optimizer, dataset, and end-to-end
// learning on a small problem (the mechanism that produces the paper's
// "trained LeNet weights").

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/loss.h"
#include "dnn/models.h"
#include "dnn/pooling.h"
#include "dnn/sgd.h"
#include "dnn/synthetic_data.h"
#include "dnn/trainer.h"

namespace nocbt::dnn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 10, 1, 1});
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits(Shape{1, 3, 1, 1});
  logits.at(0, 1, 0, 0) = 10.0f;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 1);
}

TEST(Loss, GradientSumsToZeroPerSample) {
  Tensor logits = Tensor::from_vector(Shape{1, 4, 1, 1}, {0.1f, 2.0f, -1.0f, 0.5f});
  const LossResult r = softmax_cross_entropy(logits, {2});
  double sum = 0.0;
  for (float g : r.grad.data()) sum += g;
  EXPECT_NEAR(sum, 0.0, 1e-6);
  // Gradient at the target is negative (probability < 1).
  EXPECT_LT(r.grad.at(0, 2, 0, 0), 0.0f);
}

TEST(Loss, GradMatchesFiniteDifference) {
  Tensor logits = Tensor::from_vector(Shape{1, 3, 1, 1}, {0.3f, -0.2f, 1.1f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  const double eps = 1e-3;
  for (int c = 0; c < 3; ++c) {
    Tensor up = logits;
    up.at(0, c, 0, 0) += static_cast<float>(eps);
    Tensor down = logits;
    down.at(0, c, 0, 0) -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy(up, {0}).loss -
                            softmax_cross_entropy(down, {0}).loss) /
                           (2 * eps);
    EXPECT_NEAR(r.grad.at(0, c, 0, 0), numeric, 1e-4);
  }
}

TEST(Loss, ValidatesArguments) {
  Tensor logits(Shape{1, 3, 1, 1});
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), std::invalid_argument);
}

TEST(Argmax, PicksLargestClass) {
  Tensor logits(Shape{2, 3, 1, 1});
  logits.at(0, 2, 0, 0) = 1.0f;
  logits.at(1, 0, 0, 0) = 0.5f;
  const auto picks = argmax_classes(logits);
  EXPECT_EQ(picks[0], 2);
  EXPECT_EQ(picks[1], 0);
}

TEST(Sgd, GradientStepAndWeightDecay) {
  Linear fc(1, 1);
  fc.weight().at(0, 0, 0, 0) = 1.0f;
  auto params = fc.params();
  params[0].grad->at(0, 0, 0, 0) = 0.5f;
  Sgd opt(params, Sgd::Config{0.1f, 0.0f, 0.2f});
  opt.step();
  // w -= lr * (g + wd * w) = 1 - 0.1 * (0.5 + 0.2) = 0.93.
  EXPECT_NEAR(fc.weight().at(0, 0, 0, 0), 0.93f, 1e-6);
  // Gradients were cleared by the step.
  EXPECT_EQ(params[0].grad->at(0, 0, 0, 0), 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Linear fc(1, 1);
  fc.weight().at(0, 0, 0, 0) = 0.0f;
  auto params = fc.params();
  Sgd opt(params, Sgd::Config{1.0f, 0.5f, 0.0f});
  params[0].grad->at(0, 0, 0, 0) = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(fc.weight().at(0, 0, 0, 0), -1.0f, 1e-6);
  params[0].grad->at(0, 0, 0, 0) = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(fc.weight().at(0, 0, 0, 0), -2.5f, 1e-6);
}

TEST(SyntheticData, DeterministicForSameSeed) {
  SyntheticDataset a(SyntheticDataset::Config{}, 42);
  SyntheticDataset b(SyntheticDataset::Config{}, 42);
  const Batch ba = a.sample(4);
  const Batch bb = b.sample(4);
  EXPECT_EQ(ba.labels, bb.labels);
  for (std::size_t i = 0; i < ba.images.data().size(); ++i)
    EXPECT_EQ(ba.images.data()[i], bb.images.data()[i]);
}

TEST(SyntheticData, ExemplarsDifferAcrossClasses) {
  SyntheticDataset data(SyntheticDataset::Config{}, 1);
  const Tensor e0 = data.exemplar(0);
  const Tensor e5 = data.exemplar(5);
  double diff = 0.0;
  for (std::size_t i = 0; i < e0.data().size(); ++i)
    diff += std::fabs(e0.data()[i] - e5.data()[i]);
  EXPECT_GT(diff / e0.data().size(), 0.1);
}

TEST(SyntheticData, ValuesBounded) {
  SyntheticDataset data(SyntheticDataset::Config{}, 2);
  const Batch batch = data.sample(8);
  for (float v : batch.images.data()) {
    EXPECT_GT(v, -3.0f);
    EXPECT_LT(v, 3.0f);
  }
  for (auto label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

// A small conv net learns the stroke-orientation task well above chance in a few
// hundred steps — the substrate behind "trained LeNet weights".
TEST(Training, SmallConvNetLearnsGratings) {
  Rng rng(7);
  Sequential model;
  model.emplace<Conv2d>(1, 4, 5, 2, 0);  // 4 @ 14x14
  model.emplace<Relu>();
  model.emplace<AvgPool2d>(2);           // 4 @ 7x7
  model.emplace<Flatten>();
  model.emplace<Linear>(4 * 7 * 7, 10);
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (model.layer(i).kind() == LayerKind::kConv2d)
      static_cast<Conv2d&>(model.layer(i)).init_kaiming(rng);
    if (model.layer(i).kind() == LayerKind::kLinear)
      static_cast<Linear&>(model.layer(i)).init_kaiming(rng);
  }

  SyntheticDataset data(SyntheticDataset::Config{}, 99);
  Trainer::Config cfg;
  cfg.epochs = 3;
  cfg.steps_per_epoch = 40;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.05f;
  Trainer trainer(model, data, cfg);
  const auto history = trainer.train();

  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  const double accuracy = trainer.evaluate(200);
  EXPECT_GT(accuracy, 0.5);  // chance is 0.1
}

TEST(Weights, SaveLoadRoundTrip) {
  Rng rng(21);
  Sequential a = build_lenet(rng);
  const std::string path = "/tmp/nocbt_test_weights.bin";
  a.save_weights(path);

  Rng rng2(99);  // different init
  Sequential b = build_lenet(rng2);
  b.load_weights(path);
  const auto wa = a.weight_values();
  const auto wb = b.weight_values();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) ASSERT_EQ(wa[i], wb[i]);
  std::remove(path.c_str());
}

TEST(Weights, LoadRejectsMismatchedModel) {
  Rng rng(22);
  Sequential lenet = build_lenet(rng);
  const std::string path = "/tmp/nocbt_test_weights2.bin";
  lenet.save_weights(path);
  Sequential other;
  other.emplace<Linear>(4, 2);
  EXPECT_THROW(other.load_weights(path), std::runtime_error);
  EXPECT_THROW(lenet.load_weights("/nonexistent/w.bin"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Training, LossDecreasesOnLeNet) {
  Rng rng(8);
  Sequential lenet = build_lenet(rng);
  SyntheticDataset data(SyntheticDataset::Config{}, 100);
  Trainer::Config cfg;
  cfg.epochs = 2;
  cfg.steps_per_epoch = 12;
  cfg.batch_size = 8;
  cfg.sgd.lr = 0.02f;
  Trainer trainer(lenet, data, cfg);
  const auto history = trainer.train();
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss * 1.05);
}

}  // namespace
}  // namespace nocbt::dnn
