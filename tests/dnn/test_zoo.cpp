// Tests for the model zoo: named builders, shape inference through
// residual / depthwise / attention graphs, build determinism under a fixed
// seed, and trained-like weight filling across every zoo model.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/depthwise_conv2d.h"
#include "dnn/residual.h"
#include "dnn/zoo.h"

namespace nocbt::dnn {
namespace {

Tensor random_input(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Zoo, NamesAndSpecs) {
  const auto names = zoo_model_names();
  ASSERT_EQ(names, (std::vector<std::string>{"lenet", "darknet", "resnet",
                                             "mobile", "attention"}));
  for (const auto& name : names) {
    const ModelSpec spec = zoo_model_spec(name);
    EXPECT_EQ(spec.input.n, 1) << name;
    EXPECT_EQ(spec.classes, 10) << name;
  }
  EXPECT_THROW((void)zoo_model_spec("vgg"), std::invalid_argument);
  try {
    (void)zoo_model_spec("vgg");
  } catch (const std::invalid_argument& e) {
    // The error must list the valid names so CLI typos are self-explaining.
    EXPECT_NE(std::string(e.what()).find("resnet"), std::string::npos);
  }
  Rng rng(1);
  EXPECT_THROW((void)build_zoo_model("vgg", rng), std::invalid_argument);
}

TEST(Zoo, ShapeInferenceMatchesForwardForEveryModel) {
  for (const auto& name : zoo_model_names()) {
    Rng rng(7);
    Sequential model = build_zoo_model(name, rng);
    const ModelSpec spec = zoo_model_spec(name);
    const Shape inferred = model.output_shape(spec.input);
    const Tensor out = model.forward(random_input(spec.input, 11));
    EXPECT_EQ(out.shape().n, inferred.n) << name;
    EXPECT_EQ(out.shape().c, inferred.c) << name;
    EXPECT_EQ(out.shape().h, inferred.h) << name;
    EXPECT_EQ(out.shape().w, inferred.w) << name;
    EXPECT_EQ(out.shape().numel(), spec.classes)
        << name << ": classifier head must emit one logit per class";
  }
}

TEST(Zoo, ResnetCarriesResidualBlocksThatInferShapes) {
  Rng rng(3);
  Sequential model = build_zoo_model("resnet", rng);
  std::size_t residuals = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (model.layer(i).kind() != LayerKind::kResidual) continue;
    ++residuals;
    auto& res = static_cast<Residual&>(model.layer(i));
    // The identity-skip block preserves its input shape; the projection
    // block halves the spatial dims while doubling channels, and its
    // shortcut projection must agree with the body on the output shape.
    if (res.projection() == nullptr) {
      const Shape in{1, 16, 32, 32};
      const Shape out = res.output_shape(in);
      EXPECT_EQ(out.c, in.c);
      EXPECT_EQ(out.h, in.h);
      EXPECT_EQ(out.w, in.w);
    } else {
      const Shape in{1, 16, 32, 32};
      const Shape out = res.output_shape(in);
      EXPECT_EQ(out.c, 32);
      EXPECT_EQ(out.h, 16);
      EXPECT_EQ(out.w, 16);
    }
  }
  EXPECT_EQ(residuals, 2u);
}

TEST(Zoo, MobileUsesDepthwiseSeparableStages) {
  Rng rng(3);
  Sequential model = build_zoo_model("mobile", rng);
  std::size_t depthwise = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (model.layer(i).kind() != LayerKind::kDepthwiseConv2d) continue;
    ++depthwise;
    auto& dw = static_cast<DepthwiseConv2d&>(model.layer(i));
    // Depthwise preserves the channel count by construction.
    const Shape in{1, dw.channels(), 16, 16};
    EXPECT_EQ(dw.output_shape(in).c, dw.channels());
    // Channel mismatch is a wiring bug and must throw.
    Tensor mismatched(Shape{1, dw.channels() + 1, 16, 16});
    EXPECT_THROW((void)dw.forward(mismatched), std::invalid_argument);
  }
  EXPECT_EQ(depthwise, 3u);
}

TEST(Zoo, BuildsAreDeterministicUnderAFixedSeed) {
  for (const auto& name : zoo_model_names()) {
    Rng rng_a(123);
    Rng rng_b(123);
    Rng rng_c(124);
    Sequential a = build_zoo_model(name, rng_a);
    Sequential b = build_zoo_model(name, rng_b);
    Sequential c = build_zoo_model(name, rng_c);
    EXPECT_EQ(a.weight_values(), b.weight_values())
        << name << ": same seed must build identical weights";
    EXPECT_NE(a.weight_values(), c.weight_values())
        << name << ": different seeds must differ";
  }
}

TEST(Zoo, FillWeightsTrainedLikeReachesEveryParameter) {
  for (const auto& name : zoo_model_names()) {
    Rng rng(9);
    Sequential model = build_zoo_model(name, rng);
    const std::vector<float> before = model.weight_values();
    Rng fill_rng(10);
    fill_weights_trained_like(model, fill_rng);
    const std::vector<float> after = model.weight_values();
    ASSERT_EQ(before.size(), after.size()) << name;
    // Every weight must have been overwritten — including those inside
    // residual bodies, shortcut projections and depthwise stages.
    std::size_t changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i)
      if (before[i] != after[i]) ++changed;
    EXPECT_EQ(changed, before.size())
        << name << ": trained-like fill skipped some weights";
  }
}

TEST(Zoo, WeightValuesCoverResidualAndDepthwiseParams) {
  // weight_values() must enumerate the same weight count params() reports,
  // so calibration (fx8 codec ranges) sees the whole model.
  for (const auto& name : zoo_model_names()) {
    Rng rng(5);
    Sequential model = build_zoo_model(name, rng);
    std::int64_t expected = 0;
    for (const auto& p : model.params())
      if (p.name.ends_with(".weight")) expected += p.value->shape().numel();
    EXPECT_EQ(static_cast<std::int64_t>(model.weight_values().size()),
              expected)
        << name;
  }
}

}  // namespace
}  // namespace nocbt::dnn
