// Forward-pass correctness for every layer type, verified against
// hand-computed references, plus shape inference.

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/models.h"
#include "dnn/pooling.h"
#include "dnn/sequential.h"

namespace nocbt::dnn {
namespace {

TEST(Conv2d, IdentityKernel) {
  // 1x1 kernel with weight 1 must copy the input.
  Conv2d conv(1, 1, 1);
  conv.weight().at(0, 0, 0, 0) = 1.0f;
  Tensor in = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out = conv.forward(in);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(out.data()[static_cast<std::size_t>(i)], in.data()[static_cast<std::size_t>(i)]);
}

TEST(Conv2d, HandComputed3x3) {
  // 3x3 input, 2x2 all-ones kernel, bias 1: each output = window sum + 1.
  Conv2d conv(1, 1, 2);
  conv.weight().fill(1.0f);
  conv.bias().fill(1.0f);
  Tensor in = Tensor::from_vector(Shape{1, 1, 3, 3},
                                  {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out = conv.forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 1 + 2 + 4 + 5 + 1);
  EXPECT_EQ(out.at(0, 0, 0, 1), 2 + 3 + 5 + 6 + 1);
  EXPECT_EQ(out.at(0, 0, 1, 0), 4 + 5 + 7 + 8 + 1);
  EXPECT_EQ(out.at(0, 0, 1, 1), 5 + 6 + 8 + 9 + 1);
}

TEST(Conv2d, PaddingProducesSameSize) {
  Conv2d conv(1, 1, 3, 1, 1);
  conv.weight().fill(0.0f);
  conv.weight().at(0, 0, 1, 1) = 1.0f;  // center tap: identity with pad
  Tensor in = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out = conv.forward(in);
  ASSERT_EQ(out.shape(), in.shape());
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(out.data()[static_cast<std::size_t>(i)], in.data()[static_cast<std::size_t>(i)]);
}

TEST(Conv2d, StrideTwo) {
  Conv2d conv(1, 1, 1, 2, 0);
  conv.weight().at(0, 0, 0, 0) = 2.0f;
  Tensor in = Tensor::from_vector(Shape{1, 1, 4, 4},
                                  {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15});
  Tensor out = conv.forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(out.at(0, 0, 0, 1), 4.0f);
  EXPECT_EQ(out.at(0, 0, 1, 0), 16.0f);
  EXPECT_EQ(out.at(0, 0, 1, 1), 20.0f);
}

TEST(Conv2d, MultiChannelAccumulates) {
  Conv2d conv(2, 1, 1);
  conv.weight().at(0, 0, 0, 0) = 1.0f;
  conv.weight().at(0, 1, 0, 0) = 10.0f;
  Tensor in(Shape{1, 2, 1, 1});
  in.at(0, 0, 0, 0) = 3.0f;
  in.at(0, 1, 0, 0) = 4.0f;
  Tensor out = conv.forward(in);
  EXPECT_EQ(out.at(0, 0, 0, 0), 3.0f + 40.0f);
}

TEST(Conv2d, RejectsBadGeometry) {
  EXPECT_THROW(Conv2d(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 0), std::invalid_argument);
  Conv2d conv(2, 1, 3);
  Tensor wrong(Shape{1, 3, 8, 8});
  EXPECT_THROW(conv.forward(wrong), std::invalid_argument);
}

TEST(Linear, HandComputed) {
  Linear fc(3, 2);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -1].
  for (int i = 0; i < 3; ++i) {
    fc.weight().at(0, i, 0, 0) = static_cast<float>(i + 1);
    fc.weight().at(1, i, 0, 0) = static_cast<float>(i + 4);
  }
  fc.bias().at(0, 0, 0, 0) = 0.5f;
  fc.bias().at(1, 0, 0, 0) = -1.0f;
  Tensor in = Tensor::from_vector(Shape{1, 3, 1, 1}, {1, 1, 2});
  Tensor out = fc.forward(in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 + 2 + 6 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 4 + 5 + 12 - 1.0f);
}

TEST(Linear, AcceptsSpatialInput) {
  // {1, 2, 2, 2} flattens to 8 features.
  Linear fc(8, 1);
  fc.weight().fill(1.0f);
  Tensor in = Tensor::full(Shape{1, 2, 2, 2}, 1.0f);
  Tensor out = fc.forward(in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 8.0f);
}

TEST(MaxPool, PicksWindowMax) {
  MaxPool2d pool(2);
  Tensor in = Tensor::from_vector(Shape{1, 1, 4, 4},
                                  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                   14, 15, 16});
  Tensor out = pool.forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 6.0f);
  EXPECT_EQ(out.at(0, 0, 0, 1), 8.0f);
  EXPECT_EQ(out.at(0, 0, 1, 0), 14.0f);
  EXPECT_EQ(out.at(0, 0, 1, 1), 16.0f);
}

TEST(AvgPool, AveragesWindow) {
  AvgPool2d pool(2);
  Tensor in = Tensor::from_vector(Shape{1, 1, 2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out = pool.forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), (1 + 2 + 5 + 6) / 4.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), (3 + 4 + 7 + 8) / 4.0f);
}

TEST(GlobalAvgPool, AveragesEverything) {
  GlobalAvgPool pool;
  Tensor in = Tensor::from_vector(Shape{1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor out = pool.forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 15.0f);
}

TEST(Activations, Relu) {
  Relu relu;
  Tensor in = Tensor::from_vector(Shape{1, 1, 1, 4}, {-2, -0.5f, 0, 3});
  Tensor out = relu.forward(in);
  EXPECT_EQ(out.data()[0], 0.0f);
  EXPECT_EQ(out.data()[1], 0.0f);
  EXPECT_EQ(out.data()[2], 0.0f);
  EXPECT_EQ(out.data()[3], 3.0f);
}

TEST(Activations, LeakyRelu) {
  LeakyRelu leaky(0.1f);
  Tensor in = Tensor::from_vector(Shape{1, 1, 1, 2}, {-2, 4});
  Tensor out = leaky.forward(in);
  EXPECT_FLOAT_EQ(out.data()[0], -0.2f);
  EXPECT_FLOAT_EQ(out.data()[1], 4.0f);
}

TEST(Activations, TanhValues) {
  Tanh tanh_layer;
  Tensor in = Tensor::from_vector(Shape{1, 1, 1, 3}, {-1, 0, 1});
  Tensor out = tanh_layer.forward(in);
  EXPECT_NEAR(out.data()[0], std::tanh(-1.0f), 1e-6);
  EXPECT_EQ(out.data()[1], 0.0f);
  EXPECT_NEAR(out.data()[2], std::tanh(1.0f), 1e-6);
}

TEST(Flatten, ReshapesAndRestores) {
  Flatten flat;
  Tensor in = Tensor::full(Shape{2, 3, 4, 5}, 1.0f);
  Tensor out = flat.forward(in);
  EXPECT_EQ(out.shape(), (Shape{2, 60, 1, 1}));
  Tensor back = flat.backward(out);
  EXPECT_EQ(back.shape(), in.shape());
}

TEST(Sequential, ShapeInferenceMatchesForward) {
  Rng rng(1);
  Sequential lenet = build_lenet(rng);
  const Shape in_shape = lenet_spec().input;
  EXPECT_EQ(lenet.output_shape(in_shape), (Shape{1, 10, 1, 1}));
  Tensor in(in_shape);
  Tensor out = lenet.forward(in);
  EXPECT_EQ(out.shape(), (Shape{1, 10, 1, 1}));
}

TEST(Models, LeNetParamCount) {
  Rng rng(2);
  Sequential lenet = build_lenet(rng);
  // Classic LeNet-5: 61,706 parameters.
  EXPECT_EQ(lenet.param_count(), 61706);
}

TEST(Models, DarkNetSmallShapes) {
  Rng rng(3);
  Sequential net = build_darknet_small(rng);
  const Shape in_shape = darknet_small_spec().input;
  EXPECT_EQ(net.output_shape(in_shape), (Shape{1, 10, 1, 1}));
  Tensor out = net.forward(Tensor(in_shape));
  EXPECT_EQ(out.shape(), (Shape{1, 10, 1, 1}));
}

TEST(Models, WeightValuesStreamsAllConvAndLinearWeights) {
  Rng rng(4);
  Sequential lenet = build_lenet(rng);
  const auto values = lenet.weight_values();
  // conv1 150 + conv2 2400 + fc 48000 + 10080 + 840 = 61470 (biases excluded).
  EXPECT_EQ(values.size(), 61470u);
}

TEST(Models, TrainedLikeWeightsAreZeroConcentrated) {
  Rng rng(5);
  Sequential net = build_lenet(rng);
  fill_weights_trained_like(net, rng, 0.04);
  const auto values = net.weight_values();
  int small = 0;
  for (float v : values)
    if (std::fabs(v) < 0.1f) ++small;
  // Laplace(0, 0.04): |v| < 0.1 with probability 1 - e^{-2.5} ~ 0.918.
  EXPECT_GT(static_cast<double>(small) / values.size(), 0.85);
}

}  // namespace
}  // namespace nocbt::dnn
