// Tests pinning the MNIST-like properties of the synthetic dataset that the
// BT experiments depend on: sparsity (mostly exact zeros), bounded positive
// strokes, and class separability.

#include <gtest/gtest.h>

#include "dnn/synthetic_data.h"

namespace nocbt::dnn {
namespace {

TEST(SyntheticSparsity, ImagesAreMostlyExactZeros) {
  SyntheticDataset data(SyntheticDataset::Config{}, 11);
  const Batch batch = data.sample(16);
  std::size_t zeros = 0;
  for (float v : batch.images.data()) zeros += v == 0.0f;
  const double sparsity =
      static_cast<double>(zeros) / static_cast<double>(batch.images.numel());
  // MNIST is ~80% background; the stroke dataset should be in that regime.
  EXPECT_GT(sparsity, 0.6);
  EXPECT_LT(sparsity, 0.95);
}

TEST(SyntheticSparsity, StrokePixelsArePositiveAndBounded) {
  SyntheticDataset data(SyntheticDataset::Config{}, 12);
  const Batch batch = data.sample(8);
  for (float v : batch.images.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticSparsity, ExemplarHasTwoStrokes) {
  SyntheticDataset data(SyntheticDataset::Config{}, 13);
  const Tensor img = data.exemplar(0);
  // Class 0 strokes are horizontal (angle 0: normal = (0, 1), i.e. the
  // stroke varies with y). Two distinct bright rows must exist.
  int bright_rows = 0;
  for (std::int32_t h = 0; h < img.shape().h; ++h) {
    float row_max = 0.0f;
    for (std::int32_t w = 0; w < img.shape().w; ++w)
      row_max = std::max(row_max, img.at(0, 0, h, w));
    if (row_max > 0.9f) ++bright_rows;
  }
  EXPECT_GE(bright_rows, 2);
}

TEST(SyntheticSparsity, MultiChannelImagesDiffer) {
  SyntheticDataset::Config cfg;
  cfg.channels = 3;
  cfg.height = 64;
  cfg.width = 64;
  SyntheticDataset data(cfg, 14);
  const Tensor img = data.exemplar(3);
  double diff = 0.0;
  for (std::int32_t h = 0; h < 64; ++h)
    for (std::int32_t w = 0; w < 64; ++w)
      diff += std::fabs(img.at(0, 0, h, w) - img.at(0, 2, h, w));
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticSparsity, OffsetMovesTheStrokes) {
  SyntheticDataset data(SyntheticDataset::Config{}, 15);
  const Tensor a = data.exemplar(2, 0.0f);
  const Tensor b = data.exemplar(2, 4.0f);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    diff += std::fabs(a.data()[i] - b.data()[i]);
  EXPECT_GT(diff / a.data().size(), 0.01);
}

}  // namespace
}  // namespace nocbt::dnn
