// Unit tests for the Tensor substrate.

#include <gtest/gtest.h>

#include "dnn/tensor.h"

namespace nocbt::dnn {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ((Shape{2, 3, 4, 5}).numel(), 120);
  EXPECT_EQ((Shape{1, 1, 1, 1}).numel(), 1);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3, 4, 4});
  EXPECT_EQ(t.numel(), 96);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, AtIndexing) {
  Tensor t(Shape{2, 2, 3, 3});
  t.at(1, 1, 2, 2) = 5.0f;
  t.at(0, 0, 0, 0) = 1.0f;
  t.at(0, 1, 0, 2) = 2.0f;
  EXPECT_EQ(t.at(1, 1, 2, 2), 5.0f);
  EXPECT_EQ(t.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1, 0, 2), 2.0f);
  // NCHW layout: (0,1,0,2) = flat 1*9 + 0*3 + 2 = 11.
  EXPECT_EQ(t.data()[11], 2.0f);
  // Last element.
  EXPECT_EQ(t.data()[2 * 2 * 3 * 3 - 1], 5.0f);
}

TEST(Tensor, FromVectorValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{1, 1, 2, 2}, 3.5f);
  for (float v : t.data()) EXPECT_EQ(v, 3.5f);
  t.fill(-1.0f);
  for (float v : t.data()) EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::full(Shape{1, 1, 1, 3}, 1.0f);
  Tensor b = Tensor::from_vector(Shape{1, 1, 1, 3}, {1, 2, 3});
  a.add_scaled(b, 2.0f);
  EXPECT_EQ(a.data()[0], 3.0f);
  EXPECT_EQ(a.data()[1], 5.0f);
  EXPECT_EQ(a.data()[2], 7.0f);
  Tensor c(Shape{1, 1, 1, 2});
  EXPECT_THROW(a.add_scaled(c, 1.0f), std::invalid_argument);
}

TEST(Tensor, Scale) {
  Tensor t = Tensor::from_vector(Shape{1, 1, 1, 2}, {2, -4});
  t.scale(0.5f);
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[1], -2.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor r = t.reshaped(Shape{1, 8, 1, 1});
  EXPECT_EQ(r.shape().c, 8);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(r.data()[static_cast<std::size_t>(i)], static_cast<float>(i + 1));
  EXPECT_THROW(t.reshaped(Shape{1, 7, 1, 1}), std::invalid_argument);
}

TEST(Tensor, MaxAbs) {
  Tensor t = Tensor::from_vector(Shape{1, 1, 1, 4}, {0.5f, -3.0f, 2.0f, 0.0f});
  EXPECT_EQ(t.max_abs(), 3.0f);
  Tensor z(Shape{1, 1, 1, 1});
  EXPECT_EQ(z.max_abs(), 0.0f);
}

}  // namespace
}  // namespace nocbt::dnn
