// Integration tests for the assembled NoC: delivery, ordering, latency,
// congestion, credit conservation, and drain-to-idle behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "noc/network.h"

namespace nocbt::noc {
namespace {

NocConfig small_config() {
  NocConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.num_vcs = 4;
  cfg.vc_buffer_depth = 4;
  cfg.flit_payload_bits = 64;
  return cfg;
}

std::vector<BitVec> make_payloads(unsigned bits, int flits,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> out;
  for (int i = 0; i < flits; ++i) {
    BitVec v(bits);
    for (unsigned w = 0; w < bits; w += 64)
      v.set_field(w, bits - w >= 64 ? 64 : bits - w, rng.bits64());
    out.push_back(std::move(v));
  }
  return out;
}

TEST(Network, DeliversSingleFlitPacket) {
  Network net(small_config());
  bool delivered = false;
  Packet received;
  net.set_sink(15, [&](Packet&& p, std::uint64_t) {
    delivered = true;
    received = std::move(p);
  });
  const auto payloads = make_payloads(64, 1, 1);
  const auto id = net.inject(0, 15, payloads);
  ASSERT_TRUE(net.run_until_idle(10'000));
  ASSERT_TRUE(delivered);
  EXPECT_EQ(received.id, id);
  EXPECT_EQ(received.src, 0);
  EXPECT_EQ(received.dst, 15);
  EXPECT_EQ(received.hops, 6);  // Manhattan distance in a 4x4 mesh
  ASSERT_EQ(received.payloads.size(), 1u);
  EXPECT_EQ(received.payloads[0], payloads[0]);
}

TEST(Network, DeliversMultiFlitPacketIntact) {
  Network net(small_config());
  Packet received;
  net.set_sink(12, [&](Packet&& p, std::uint64_t) { received = std::move(p); });
  const auto payloads = make_payloads(64, 7, 2);
  net.inject(3, 12, payloads);
  ASSERT_TRUE(net.run_until_idle(10'000));
  ASSERT_EQ(received.payloads.size(), 7u);
  for (std::size_t i = 0; i < payloads.size(); ++i)
    EXPECT_EQ(received.payloads[i], payloads[i]) << "flit " << i;
}

TEST(Network, SelfDelivery) {
  // src == dst: the packet goes NI -> router local in -> local out -> NI.
  Network net(small_config());
  int count = 0;
  net.set_sink(5, [&](Packet&& p, std::uint64_t) {
    ++count;
    EXPECT_EQ(p.hops, 0);
  });
  net.inject(5, 5, make_payloads(64, 3, 3));
  ASSERT_TRUE(net.run_until_idle(1'000));
  EXPECT_EQ(count, 1);
}

TEST(Network, RejectsBadInput) {
  Network net(small_config());
  EXPECT_THROW(net.inject(-1, 0, make_payloads(64, 1, 4)),
               std::invalid_argument);
  EXPECT_THROW(net.inject(0, 16, make_payloads(64, 1, 4)),
               std::invalid_argument);
  EXPECT_THROW(net.inject(0, 1, {}), std::invalid_argument);
  EXPECT_THROW(net.inject(0, 1, make_payloads(32, 1, 4)),
               std::invalid_argument);
}

TEST(Network, InjectErrorsAreDescriptive) {
  Network net(small_config());
  const auto message_of = [&](std::int32_t src, std::int32_t dst,
                              std::vector<BitVec> payloads) {
    try {
      net.inject(src, dst, std::move(payloads));
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Offending node id and mesh size are named.
  EXPECT_NE(message_of(-1, 0, make_payloads(64, 1, 4)).find("src node -1"),
            std::string::npos);
  EXPECT_NE(message_of(0, 99, make_payloads(64, 1, 4)).find("dst node 99"),
            std::string::npos);
  EXPECT_NE(message_of(0, 99, make_payloads(64, 1, 4)).find("16 nodes"),
            std::string::npos);
  // Width mismatch names the flit index and both widths.
  auto mixed = make_payloads(64, 2, 4);
  mixed.push_back(BitVec(32));
  const std::string width_msg = message_of(0, 1, std::move(mixed));
  EXPECT_NE(width_msg.find("payload 2"), std::string::npos);
  EXPECT_NE(width_msg.find("32 bits"), std::string::npos);
  EXPECT_NE(width_msg.find("64"), std::string::npos);
}

TEST(Network, SelfTrafficRejectedPerConfig) {
  NocConfig cfg = small_config();
  cfg.allow_self_traffic = false;
  Network net(cfg);
  EXPECT_THROW(net.inject(5, 5, make_payloads(64, 1, 3)),
               std::invalid_argument);
  // Distinct endpoints still work under the same config.
  int count = 0;
  net.set_sink(6, [&](Packet&&, std::uint64_t) { ++count; });
  net.inject(5, 6, make_payloads(64, 1, 3));
  ASSERT_TRUE(net.run_until_idle(1'000));
  EXPECT_EQ(count, 1);
  // Out-of-range checks fire before the self-traffic check.
  EXPECT_THROW(net.inject(20, 20, make_payloads(64, 1, 3)),
               std::invalid_argument);
}

TEST(Network, AllPairsDeliveredExactlyOnce) {
  Network net(small_config());
  std::map<std::uint64_t, int> delivery_count;
  for (std::int32_t node = 0; node < 16; ++node) {
    net.set_sink(node, [&](Packet&& p, std::uint64_t) {
      ++delivery_count[p.id];
    });
  }
  std::vector<std::uint64_t> ids;
  for (std::int32_t src = 0; src < 16; ++src)
    for (std::int32_t dst = 0; dst < 16; ++dst)
      ids.push_back(net.inject(src, dst, make_payloads(
                                              64, 4, 100 + src * 16 + dst)));
  ASSERT_TRUE(net.run_until_idle(100'000));
  EXPECT_EQ(delivery_count.size(), ids.size());
  for (const auto id : ids) {
    EXPECT_EQ(delivery_count[id], 1) << "packet " << id;
  }
  EXPECT_EQ(net.stats().packets_delivered, 256u);
  EXPECT_EQ(net.stats().flits_delivered, 256u * 4u);
}

TEST(Network, ZeroLoadLatencyMatchesPipelineModel) {
  // Single packet, empty network. Routers forward within the cycle
  // (single-cycle router model); each channel adds `channel_latency`. A
  // single-flit packet crossing H inter-router links traverses H + 2
  // channels (injection + H + ejection), so zero-load latency is
  // channel_latency * (H + 2).
  NocConfig cfg = small_config();
  Network net(cfg);
  std::uint64_t latency = 0;
  net.set_sink(3, [&](Packet&& p, std::uint64_t cycle) {
    latency = cycle - p.inject_cycle;
  });
  net.inject(0, 3, make_payloads(64, 1, 5));
  ASSERT_TRUE(net.run_until_idle(1'000));
  EXPECT_EQ(latency, cfg.channel_latency * (3 + 2));
}

TEST(Network, ZeroLoadLatencyScalesWithChannelLatency) {
  NocConfig cfg = small_config();
  cfg.channel_latency = 3;
  Network net(cfg);
  std::uint64_t latency = 0;
  net.set_sink(3, [&](Packet&& p, std::uint64_t cycle) {
    latency = cycle - p.inject_cycle;
  });
  net.inject(0, 3, make_payloads(64, 1, 5));
  ASSERT_TRUE(net.run_until_idle(1'000));
  EXPECT_EQ(latency, cfg.channel_latency * (3 + 2));
}

TEST(Network, HopCountMatchesManhattanUnderXY) {
  Network net(small_config());
  std::map<std::int32_t, int> hops_by_dst;
  for (std::int32_t node = 0; node < 16; ++node)
    net.set_sink(node, [&, node](Packet&& p, std::uint64_t) {
      hops_by_dst[node] = p.hops;
    });
  net.inject(0, 15, make_payloads(64, 2, 6));
  net.inject(15, 0, make_payloads(64, 2, 7));
  net.inject(1, 2, make_payloads(64, 2, 8));
  ASSERT_TRUE(net.run_until_idle(10'000));
  ASSERT_EQ(hops_by_dst.size(), 3u);
  EXPECT_EQ(hops_by_dst[15], 6);
  EXPECT_EQ(hops_by_dst[0], 6);
  EXPECT_EQ(hops_by_dst[2], 1);
}

TEST(Network, HeavyRandomTrafficDrains) {
  // Fire a burst of random traffic well above sustainable load and verify
  // the network eventually drains with every packet delivered once.
  Network net(small_config());
  Rng rng(11);
  std::map<std::uint64_t, int> delivered;
  for (std::int32_t node = 0; node < 16; ++node)
    net.set_sink(node,
                 [&](Packet&& p, std::uint64_t) { ++delivered[p.id]; });

  std::size_t injected = 0;
  for (int round = 0; round < 50; ++round) {
    for (std::int32_t src = 0; src < 16; ++src) {
      const auto dst = static_cast<std::int32_t>(rng.uniform_int(0, 15));
      const int flits = static_cast<int>(rng.uniform_int(1, 6));
      net.inject(src, dst, make_payloads(64, flits, rng.bits64()));
      ++injected;
    }
    // Interleave some simulation so source queues stay bounded.
    for (int c = 0; c < 8; ++c) net.step();
  }
  ASSERT_TRUE(net.run_until_idle(1'000'000));
  EXPECT_EQ(delivered.size(), injected);
  for (const auto& [id, count] : delivered) EXPECT_EQ(count, 1) << id;
  EXPECT_EQ(net.buffered_flits(), 0u);
}

TEST(Network, YXRoutingAlsoDelivers) {
  NocConfig cfg = small_config();
  cfg.routing = RoutingAlgorithm::kYX;
  Network net(cfg);
  int count = 0;
  for (std::int32_t node = 0; node < 16; ++node)
    net.set_sink(node, [&](Packet&&, std::uint64_t) { ++count; });
  for (std::int32_t src = 0; src < 16; ++src)
    net.inject(src, 15 - src, make_payloads(64, 3, 50 + src));
  ASSERT_TRUE(net.run_until_idle(100'000));
  EXPECT_EQ(count, 16);
}

TEST(Network, SingleVcStillWorks) {
  NocConfig cfg = small_config();
  cfg.num_vcs = 1;
  Network net(cfg);
  int count = 0;
  for (std::int32_t node = 0; node < 16; ++node)
    net.set_sink(node, [&](Packet&&, std::uint64_t) { ++count; });
  for (std::int32_t src = 0; src < 16; ++src)
    for (std::int32_t dst = 0; dst < 16; ++dst)
      if (src != dst) net.inject(src, dst, make_payloads(64, 3, src * 31 + dst));
  ASSERT_TRUE(net.run_until_idle(1'000'000));
  EXPECT_EQ(count, 16 * 15);
}

TEST(Network, WideFlitPayloads512) {
  NocConfig cfg = small_config();
  cfg.flit_payload_bits = 512;
  Network net(cfg);
  Packet received;
  net.set_sink(10, [&](Packet&& p, std::uint64_t) { received = std::move(p); });
  const auto payloads = make_payloads(512, 4, 12);
  net.inject(2, 10, payloads);
  ASSERT_TRUE(net.run_until_idle(10'000));
  ASSERT_EQ(received.payloads.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(received.payloads[i], payloads[i]);
}

TEST(Network, StatsAccumulate) {
  Network net(small_config());
  for (std::int32_t node = 0; node < 16; ++node)
    net.set_sink(node, [](Packet&&, std::uint64_t) {});
  net.inject(0, 15, make_payloads(64, 5, 1));
  net.inject(15, 0, make_payloads(64, 5, 2));
  ASSERT_TRUE(net.run_until_idle(10'000));
  const NocStats& s = net.stats();
  EXPECT_EQ(s.packets_injected, 2u);
  EXPECT_EQ(s.packets_delivered, 2u);
  EXPECT_EQ(s.flits_injected, 10u);
  EXPECT_EQ(s.flits_delivered, 10u);
  EXPECT_GT(s.packet_latency.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.packet_hops.mean(), 6.0);
  EXPECT_GT(s.cycles, 0u);
}

TEST(Network, RectangularMesh8x8) {
  NocConfig cfg = small_config();
  cfg.rows = 8;
  cfg.cols = 8;
  Network net(cfg);
  int count = 0;
  for (std::int32_t node = 0; node < 64; ++node)
    net.set_sink(node, [&](Packet&&, std::uint64_t) { ++count; });
  for (std::int32_t src = 0; src < 64; src += 7)
    net.inject(src, 63 - src, make_payloads(64, 3, src));
  ASSERT_TRUE(net.run_until_idle(100'000));
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace nocbt::noc
