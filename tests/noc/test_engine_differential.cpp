// Differential suite for the two simulation engines: the active-set
// worklist engine must be byte-identical to the retained naive full-scan
// reference — same cycle counts, same idle() answers every cycle, same BT
// totals and per-link counters, same delivery order, same transport stats
// — across mesh shapes, traffic patterns, channel latencies and
// advance_idle interleavings. The engines share the component models, so
// any divergence here is a worklist/wakeup bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "noc/network.h"

namespace nocbt::noc {
namespace {

std::vector<BitVec> make_payloads(unsigned bits, int flits,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> out;
  for (int i = 0; i < flits; ++i) {
    BitVec v(bits);
    for (unsigned w = 0; w < bits; w += 64)
      v.set_field(w, bits - w >= 64 ? 64 : bits - w, rng.bits64());
    out.push_back(std::move(v));
  }
  return out;
}

/// (cycle, packet id) per delivery, in callback order — the strictest
/// observable ordering the network exposes.
using DeliveryLog = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// A scripted injection: at `cycle`, src -> dst with `flits` flits.
struct ScriptEntry {
  std::uint64_t cycle;
  std::int32_t src;
  std::int32_t dst;
  int flits;
};

/// Paired networks driven in lockstep: every mutation is applied to both,
/// and observable state is asserted equal after every step.
class EnginePair {
 public:
  explicit EnginePair(NocConfig cfg) : cfg_(cfg) {
    cfg_.engine = SimEngine::kActiveSet;
    active_ = std::make_unique<Network>(cfg_);
    cfg_.engine = SimEngine::kFullScan;
    full_ = std::make_unique<Network>(cfg_);
    for (std::int32_t node = 0; node < cfg_.node_count(); ++node) {
      active_->set_sink(node, [this](Packet&& p, std::uint64_t cycle) {
        active_log_.emplace_back(cycle, p.id);
      });
      full_->set_sink(node, [this](Packet&& p, std::uint64_t cycle) {
        full_log_.emplace_back(cycle, p.id);
      });
    }
  }

  void inject(std::int32_t src, std::int32_t dst, int flits,
              std::uint64_t seed) {
    const auto a = active_->inject(src, dst,
                                   make_payloads(cfg_.flit_payload_bits,
                                                 flits, seed));
    const auto f = full_->inject(src, dst,
                                 make_payloads(cfg_.flit_payload_bits, flits,
                                               seed));
    ASSERT_EQ(a, f) << "packet id diverged";
  }

  void step_and_check() {
    active_->step();
    full_->step();
    check();
  }

  void check() {
    ASSERT_EQ(active_->cycle(), full_->cycle());
    ASSERT_EQ(active_->idle(), full_->idle())
        << "idle() diverged at cycle " << active_->cycle();
    ASSERT_EQ(active_->buffered_flits(), full_->buffered_flits())
        << "buffered flits diverged at cycle " << active_->cycle();
    ASSERT_EQ(active_log_, full_log_)
        << "delivery order diverged by cycle " << active_->cycle();
  }

  /// Drive both to idle in lockstep, checking every cycle.
  void drain(std::uint64_t max_cycles) {
    for (std::uint64_t i = 0; i < max_cycles && !active_->idle(); ++i)
      step_and_check();
    ASSERT_TRUE(active_->idle()) << "active engine did not drain";
    ASSERT_TRUE(full_->idle()) << "full-scan engine did not drain";
  }

  void advance_idle(std::uint64_t cycles) {
    active_->advance_idle(cycles);
    full_->advance_idle(cycles);
  }

  void final_check() {
    check();
    // Per-link counters byte-identical.
    ASSERT_EQ(active_->bt().snapshot(), full_->bt().snapshot());
    EXPECT_EQ(active_->bt().total(), full_->bt().total());
    EXPECT_EQ(active_->bt().total_all_links(), full_->bt().total_all_links());
    // Transport statistics, including the float accumulators whose value
    // depends on per-cycle delivery order.
    const NocStats& a = active_->stats();
    const NocStats& f = full_->stats();
    EXPECT_EQ(a.packets_injected, f.packets_injected);
    EXPECT_EQ(a.packets_delivered, f.packets_delivered);
    EXPECT_EQ(a.flits_injected, f.flits_injected);
    EXPECT_EQ(a.flits_delivered, f.flits_delivered);
    EXPECT_EQ(a.cycles, f.cycles);
    EXPECT_EQ(a.packet_latency.mean(), f.packet_latency.mean());
    EXPECT_EQ(a.packet_latency.stddev(), f.packet_latency.stddev());
    EXPECT_EQ(a.packet_hops.mean(), f.packet_hops.mean());
    // Engine bookkeeping: same cycles stepped; the active engine skipped
    // work, the full scan by definition skipped none.
    EXPECT_EQ(a.sim.cycles_stepped, f.sim.cycles_stepped);
    EXPECT_EQ(a.sim.idle_cycles_skipped, f.sim.idle_cycles_skipped);
    EXPECT_EQ(f.sim.components_skipped, 0u);
    EXPECT_LE(a.sim.components_stepped, f.sim.components_stepped);
  }

  Network& active() { return *active_; }

 private:
  NocConfig cfg_;
  std::unique_ptr<Network> active_;
  std::unique_ptr<Network> full_;
  DeliveryLog active_log_;
  DeliveryLog full_log_;
};

NocConfig config_for(std::int32_t rows, std::int32_t cols) {
  NocConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.flit_payload_bits = 64;
  return cfg;
}

/// Seed-derived random burst script over `rounds` rounds of `per_round`
/// packets with idle gaps between rounds.
std::vector<ScriptEntry> random_script(std::int32_t nodes, int rounds,
                                       int per_round, std::uint64_t gap,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ScriptEntry> script;
  std::uint64_t cycle = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < per_round; ++p) {
      const auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      script.push_back({cycle, src, dst,
                        static_cast<int>(rng.uniform_int(1, 6))});
    }
    cycle += gap;
  }
  return script;
}

/// Run a script on paired engines: inject when due (advancing idle gaps via
/// advance_idle when both engines are idle, exercising the clock-jump
/// path), stepping and checking every cycle.
void run_script(EnginePair& pair, const std::vector<ScriptEntry>& script,
                bool use_advance_idle) {
  std::size_t next = 0;
  std::uint64_t guard = 0;
  while (next < script.size() || !pair.active().idle()) {
    ASSERT_LT(++guard, 2'000'000u) << "script did not drain";
    if (next < script.size() &&
        script[next].cycle > pair.active().cycle() && pair.active().idle()) {
      const std::uint64_t jump = script[next].cycle - pair.active().cycle();
      if (use_advance_idle) {
        pair.advance_idle(jump);
      } else {
        for (std::uint64_t i = 0; i < jump; ++i) pair.step_and_check();
      }
    }
    while (next < script.size() &&
           script[next].cycle <= pair.active().cycle()) {
      const ScriptEntry& e = script[next];
      pair.inject(e.src, e.dst, e.flits, 1000 + next);
      ++next;
    }
    pair.step_and_check();
  }
  pair.final_check();
}

class EngineDifferential
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(EngineDifferential, RandomBurstsMatchFullScan) {
  const auto [rows, cols] = GetParam();
  EnginePair pair(config_for(rows, cols));
  const auto script =
      random_script(rows * cols, 6, 2 * rows, 17, 7 * rows + cols);
  run_script(pair, script, /*use_advance_idle=*/false);
}

TEST_P(EngineDifferential, AdvanceIdleInterleavingsMatchFullScan) {
  // Long idle gaps between bursts, jumped via advance_idle: the clock
  // lands mid-wheel-period, which is exactly where a stale-wake bug in the
  // active-set engine would surface.
  const auto [rows, cols] = GetParam();
  EnginePair pair(config_for(rows, cols));
  const auto script =
      random_script(rows * cols, 5, rows, 997, 31 * rows + cols);
  run_script(pair, script, /*use_advance_idle=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    MeshShapes, EngineDifferential,
    ::testing::Values(std::make_tuple(1, 4), std::make_tuple(3, 5),
                      std::make_tuple(4, 4), std::make_tuple(8, 8)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

TEST(EngineDifferential, MultiCycleChannelLatency) {
  // channel_latency > 1 exercises the timing wheel's deeper slots: a wake
  // scheduled 3 cycles out must not be dropped or delivered early.
  NocConfig cfg = config_for(4, 4);
  cfg.channel_latency = 3;
  EnginePair pair(cfg);
  const auto script = random_script(16, 5, 6, 29, 99);
  run_script(pair, script, /*use_advance_idle=*/true);
}

TEST(EngineDifferential, SelfTrafficAndHotspot) {
  // Self-delivered packets (NI -> local port -> NI) plus a many-to-one
  // hotspot that saturates one ejection link and backpressures.
  EnginePair pair(config_for(4, 4));
  std::vector<ScriptEntry> script;
  for (int r = 0; r < 4; ++r) {
    for (std::int32_t src = 0; src < 16; ++src)
      script.push_back({static_cast<std::uint64_t>(r) * 3, src, 5, 3});
    script.push_back({static_cast<std::uint64_t>(r) * 3, 5, 5, 2});
  }
  run_script(pair, script, /*use_advance_idle=*/false);
}

TEST(EngineDifferential, SingleVcBackpressure) {
  NocConfig cfg = config_for(4, 4);
  cfg.num_vcs = 1;
  cfg.vc_buffer_depth = 2;
  EnginePair pair(cfg);
  const auto script = random_script(16, 8, 12, 5, 1234);
  run_script(pair, script, /*use_advance_idle=*/false);
}

TEST(ActiveSetEngine, WorklistDrainsToZeroAndProfilerCounts) {
  NocConfig cfg = config_for(8, 8);
  Network net(cfg);  // active-set by default
  net.set_sink(63, [](Packet&&, std::uint64_t) {});
  EXPECT_EQ(net.active_components(), 0u);
  EXPECT_TRUE(net.idle());

  net.inject(0, 63, make_payloads(64, 4, 5));
  EXPECT_GT(net.active_components(), 0u);
  EXPECT_FALSE(net.idle());
  ASSERT_TRUE(net.run_until_idle(10'000));
  EXPECT_EQ(net.active_components(), 0u);

  const SimProfile& sim = net.stats().sim;
  EXPECT_EQ(sim.cycles_stepped, net.cycle());
  EXPECT_GT(sim.components_stepped, 0u);
  // A lone packet crossing an 8x8 mesh leaves ~126 of 128 components
  // quiescent each cycle; the whole point of the engine.
  EXPECT_GT(sim.components_skipped, sim.components_stepped);
  EXPECT_GT(sim.skip_ratio(), 0.5);

  // advance_idle is accounted as skipped cycles, not stepped ones.
  const std::uint64_t stepped_before = sim.cycles_stepped;
  net.advance_idle(1000);
  EXPECT_EQ(net.stats().sim.cycles_stepped, stepped_before);
  EXPECT_EQ(net.stats().sim.idle_cycles_skipped, 1000u);
}

TEST(ActiveSetEngine, MidStepSinkInjectionMatchesFullScan) {
  // A sink that immediately injects a response (the accelerator platform's
  // PE -> MC result path) from inside the delivery callback: the injection
  // happens mid-step, exercising the worklist's in-cycle insertion rules
  // for targets before and after the currently-stepped NI.
  const auto run = [](SimEngine engine) {
    NocConfig cfg = config_for(4, 4);
    cfg.engine = engine;
    Network net(cfg);
    DeliveryLog log;
    for (std::int32_t node = 0; node < 16; ++node)
      net.set_sink(node, [&, node](Packet&& p, std::uint64_t cycle) {
        log.emplace_back(cycle, p.id);
        // Bounce once: reply to the source (both directions: to an NI id
        // lower and higher than the delivering one).
        if (p.payloads.size() > 1)
          net.inject(node, p.src, make_payloads(64, 1, 77));
      });
    net.inject(2, 13, make_payloads(64, 3, 1));   // reply 13 -> 2 (lower)
    net.inject(14, 3, make_payloads(64, 3, 2));   // reply 3 -> 14 (higher)
    EXPECT_TRUE(net.run_until_idle(10'000));
    return std::make_pair(log, net.cycle());
  };
  const auto [active_log, active_cycles] = run(SimEngine::kActiveSet);
  const auto [full_log, full_cycles] = run(SimEngine::kFullScan);
  EXPECT_EQ(active_log, full_log);
  EXPECT_EQ(active_cycles, full_cycles);
  ASSERT_EQ(active_log.size(), 4u);  // 2 requests + 2 bounced replies
}

}  // namespace
}  // namespace nocbt::noc
