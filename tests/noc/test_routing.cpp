// Unit tests for mesh geometry and dimension-ordered routing.

#include <gtest/gtest.h>

#include "noc/routing.h"

namespace nocbt::noc {
namespace {

TEST(MeshShape, CoordinateRoundTrip) {
  MeshShape shape(4, 4);
  for (std::int32_t node = 0; node < shape.node_count(); ++node) {
    EXPECT_EQ(shape.node_at(shape.coord_of(node)), node);
  }
}

TEST(MeshShape, RejectsDegenerate) {
  EXPECT_THROW(MeshShape(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshShape(4, 0), std::invalid_argument);
}

TEST(MeshShape, NeighborsOfCorner) {
  MeshShape shape(4, 4);
  // Node 0 is the north-west corner.
  EXPECT_EQ(shape.neighbor(0, kEast), 1);
  EXPECT_EQ(shape.neighbor(0, kSouth), 4);
  EXPECT_EQ(shape.neighbor(0, kWest), -1);
  EXPECT_EQ(shape.neighbor(0, kNorth), -1);
}

TEST(MeshShape, NeighborsOfCenter) {
  MeshShape shape(4, 4);
  // Node 5 = (x=1, y=1).
  EXPECT_EQ(shape.neighbor(5, kEast), 6);
  EXPECT_EQ(shape.neighbor(5, kWest), 4);
  EXPECT_EQ(shape.neighbor(5, kNorth), 1);
  EXPECT_EQ(shape.neighbor(5, kSouth), 9);
}

TEST(MeshShape, NonSquare) {
  MeshShape shape(2, 8);  // 2 rows, 8 cols
  EXPECT_EQ(shape.node_count(), 16);
  EXPECT_EQ(shape.coord_of(9).x, 1);
  EXPECT_EQ(shape.coord_of(9).y, 1);
  EXPECT_EQ(shape.neighbor(7, kEast), -1);
  EXPECT_EQ(shape.neighbor(7, kSouth), 15);
}

TEST(MeshShape, ManhattanDistance) {
  MeshShape shape(4, 4);
  EXPECT_EQ(shape.manhattan(0, 15), 6);
  EXPECT_EQ(shape.manhattan(0, 0), 0);
  EXPECT_EQ(shape.manhattan(3, 12), 6);
  EXPECT_EQ(shape.manhattan(5, 6), 1);
}

TEST(Routing, OppositePorts) {
  EXPECT_EQ(opposite(kEast), kWest);
  EXPECT_EQ(opposite(kWest), kEast);
  EXPECT_EQ(opposite(kNorth), kSouth);
  EXPECT_EQ(opposite(kSouth), kNorth);
  EXPECT_THROW(opposite(kLocal), std::invalid_argument);
}

TEST(Routing, XYGoesXFirst) {
  MeshShape shape(4, 4);
  // From 0 (0,0) to 15 (3,3): XY must head east until x matches.
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kXY, 0, 15), kEast);
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kXY, 2, 15), kEast);
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kXY, 3, 15), kSouth);
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kXY, 11, 15), kSouth);
}

TEST(Routing, YXGoesYFirst) {
  MeshShape shape(4, 4);
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kYX, 0, 15), kSouth);
  EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kYX, 12, 15), kEast);
}

TEST(Routing, AtDestinationEjectsLocal) {
  MeshShape shape(4, 4);
  for (std::int32_t node = 0; node < 16; ++node) {
    EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kXY, node, node),
              kLocal);
    EXPECT_EQ(route_dimension_ordered(shape, RoutingAlgorithm::kYX, node, node),
              kLocal);
  }
}

// Property: following the XY routing function step by step from any source
// reaches any destination in exactly the Manhattan distance.
TEST(Routing, XYPathLengthEqualsManhattanDistance) {
  MeshShape shape(5, 7);
  for (std::int32_t src = 0; src < shape.node_count(); ++src) {
    for (std::int32_t dst = 0; dst < shape.node_count(); ++dst) {
      std::int32_t current = src;
      int hops = 0;
      while (current != dst) {
        const Port port =
            route_dimension_ordered(shape, RoutingAlgorithm::kXY, current, dst);
        ASSERT_NE(port, kLocal);
        current = shape.neighbor(current, port);
        ASSERT_GE(current, 0);
        ASSERT_LE(++hops, shape.node_count());
      }
      EXPECT_EQ(hops, shape.manhattan(src, dst));
    }
  }
}

// Property: XY routing never turns from Y back to X (the invariant that
// makes it deadlock-free on a mesh).
TEST(Routing, XYNeverTurnsBackToXAfterY) {
  MeshShape shape(6, 6);
  for (std::int32_t src = 0; src < shape.node_count(); ++src) {
    for (std::int32_t dst = 0; dst < shape.node_count(); ++dst) {
      std::int32_t current = src;
      bool seen_y = false;
      while (current != dst) {
        const Port port =
            route_dimension_ordered(shape, RoutingAlgorithm::kXY, current, dst);
        if (port == kNorth || port == kSouth) seen_y = true;
        if (port == kEast || port == kWest) EXPECT_FALSE(seen_y);
        current = shape.neighbor(current, port);
      }
    }
  }
}

}  // namespace
}  // namespace nocbt::noc
