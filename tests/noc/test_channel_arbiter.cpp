// Unit tests for the pipelined channel and the round-robin arbiter.

#include <gtest/gtest.h>

#include "noc/arbiter.h"
#include "noc/channel.h"

namespace nocbt::noc {
namespace {

TEST(Channel, DeliversAfterLatency) {
  Channel<int> ch(3);
  ch.push(10, 42);
  EXPECT_FALSE(ch.pop_ready(10).has_value());
  EXPECT_FALSE(ch.pop_ready(12).has_value());
  auto v = ch.pop_ready(13);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, PreservesFifoOrder) {
  Channel<int> ch(1);
  ch.push(0, 1);
  ch.push(1, 2);
  ch.push(2, 3);
  EXPECT_EQ(*ch.pop_ready(1), 1);
  EXPECT_EQ(*ch.pop_ready(2), 2);
  EXPECT_EQ(*ch.pop_ready(3), 3);
}

TEST(Channel, PopOnlyReturnsItemsDue) {
  Channel<int> ch(2);
  ch.push(0, 1);
  ch.push(1, 2);
  ASSERT_TRUE(ch.pop_ready(2).has_value());
  // Item 2 arrives at cycle 3; popping at 2 again yields nothing.
  EXPECT_FALSE(ch.pop_ready(2).has_value());
  EXPECT_TRUE(ch.pop_ready(3).has_value());
}

TEST(Channel, ObserverSeesEveryPush) {
  Channel<int> ch(1);
  int observed = 0;
  int last = -1;
  ch.set_observer([&](const int& v) {
    ++observed;
    last = v;
  });
  ch.push(0, 7);
  ch.push(1, 9);
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(last, 9);
}

TEST(Arbiter, GrantsNothingWithoutRequests) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, false, false}), -1);
}

TEST(Arbiter, GrantsSingleRequester) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
  // Requesting again still wins (no other bidders).
  EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
}

TEST(Arbiter, RotatesAmongContenders) {
  RoundRobinArbiter arb(3);
  const std::vector<bool> all{true, true, true};
  const int first = arb.arbitrate(all);
  const int second = arb.arbitrate(all);
  const int third = arb.arbitrate(all);
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(third, first);
  // After a full rotation every index was granted exactly once.
}

TEST(Arbiter, IsStarvationFree) {
  RoundRobinArbiter arb(4);
  std::vector<int> grants(4, 0);
  const std::vector<bool> all{true, true, true, true};
  for (int i = 0; i < 400; ++i) ++grants[static_cast<std::size_t>(arb.arbitrate(all))];
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(Arbiter, SizeMismatchReturnsNoGrant) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, true}), -1);
}

}  // namespace
}  // namespace nocbt::noc
