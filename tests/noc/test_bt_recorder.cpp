// Unit and integration tests for the bit-transition recorder (paper Fig. 8).

#include <gtest/gtest.h>

#include "common/bitvec.h"
#include "noc/bt_recorder.h"
#include "noc/network.h"

namespace nocbt::noc {
namespace {

BitVec pattern64(std::uint64_t bits) {
  BitVec v(64);
  v.set_field(0, 64, bits);
  return v;
}

TEST(BtRecorder, CountsXorPopcountAgainstPreviousFlit) {
  BtRecorder rec(BtScopeConfig{}, 64);
  const auto link = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  rec.observe(link, pattern64(0x0));  // wires start at 0: no transitions
  EXPECT_EQ(rec.total(), 0u);
  rec.observe(link, pattern64(0xFF));  // 8 transitions
  EXPECT_EQ(rec.total(), 8u);
  rec.observe(link, pattern64(0xF0));  // 4 transitions
  EXPECT_EQ(rec.total(), 12u);
  rec.observe(link, pattern64(0xF0));  // identical: 0 transitions
  EXPECT_EQ(rec.total(), 12u);
}

TEST(BtRecorder, FirstFlitCountsFromZeroWireState) {
  BtRecorder rec(BtScopeConfig{}, 64);
  const auto link = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  rec.observe(link, pattern64(0xFFFF));
  EXPECT_EQ(rec.total(), 16u);
}

TEST(BtRecorder, LinksAreIndependent) {
  BtRecorder rec(BtScopeConfig{}, 64);
  const auto a = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  const auto b = rec.register_link({LinkKind::kInterRouter, 1, 2, kEast});
  rec.observe(a, pattern64(0xFF));
  rec.observe(b, pattern64(0x0F));
  EXPECT_EQ(rec.link_bt(a), 8u);
  EXPECT_EQ(rec.link_bt(b), 4u);
  EXPECT_EQ(rec.total(), 12u);
  EXPECT_EQ(rec.link_flits(a), 1u);
  EXPECT_EQ(rec.link_flits(b), 1u);
}

TEST(BtRecorder, ScopeFiltersKinds) {
  BtScopeConfig scope;
  scope.count_injection = false;
  scope.count_inter_router = true;
  scope.count_ejection = false;
  BtRecorder rec(scope, 64);
  const auto inj = rec.register_link({LinkKind::kInjection, 0, 0, -1});
  const auto mid = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  const auto ej = rec.register_link({LinkKind::kEjection, 1, 1, kLocal});
  rec.observe(inj, pattern64(0xF));
  rec.observe(mid, pattern64(0xFF));
  rec.observe(ej, pattern64(0xFFF));
  EXPECT_EQ(rec.total(), 8u);
  EXPECT_EQ(rec.total_all_links(), 4u + 8u + 12u);
  EXPECT_EQ(rec.by_kind(LinkKind::kInjection), 4u);
  EXPECT_EQ(rec.by_kind(LinkKind::kEjection), 12u);
}

TEST(BtRecorder, BtPerFlit) {
  BtRecorder rec(BtScopeConfig{}, 64);
  const auto link = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  rec.observe(link, pattern64(0xFF));   // 8
  rec.observe(link, pattern64(0x00));   // 8
  EXPECT_DOUBLE_EQ(rec.bt_per_flit(), 8.0);
}

TEST(BtRecorder, ResetClearsStateAndWireRegisters) {
  BtRecorder rec(BtScopeConfig{}, 64);
  const auto link = rec.register_link({LinkKind::kInterRouter, 0, 1, kEast});
  rec.observe(link, pattern64(0xFF));
  rec.reset();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.flits_in_scope(), 0u);
  // After reset the wire state is zero again, so the same flit re-counts.
  rec.observe(link, pattern64(0xFF));
  EXPECT_EQ(rec.total(), 8u);
}

TEST(BtRecorder, NetworkAccumulatesBtOnTraffic) {
  NocConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.flit_payload_bits = 64;
  Network net(cfg);
  net.set_sink(3, [](Packet&&, std::uint64_t) {});

  // Two identical-payload flits in one packet: transitions happen only on
  // the first flit of each link (wire state 0 -> pattern), then 0 between
  // the equal consecutive flits.
  std::vector<BitVec> payloads(2, pattern64(0xFFFF));
  net.inject(0, 3, payloads);
  ASSERT_TRUE(net.run_until_idle(10'000));
  // Route 0 -> 3 in a 2x2 mesh: 2 inter-router links + 1 ejection link in
  // scope (default scope excludes injection).
  EXPECT_EQ(net.bt().total(), 3u * 16u);
  EXPECT_EQ(net.bt().flits_by_kind(LinkKind::kInterRouter), 4u);
  EXPECT_EQ(net.bt().flits_by_kind(LinkKind::kEjection), 2u);
}

TEST(BtRecorder, AlternatingPayloadsMaximizeBt) {
  NocConfig cfg;
  cfg.rows = 1;
  cfg.cols = 2;
  cfg.flit_payload_bits = 64;
  cfg.bt_scope.count_ejection = false;  // isolate the single inter-router link
  Network net(cfg);
  net.set_sink(1, [](Packet&&, std::uint64_t) {});

  std::vector<BitVec> payloads;
  for (int i = 0; i < 8; ++i)
    payloads.push_back(pattern64(i % 2 ? ~0ull : 0ull));
  net.inject(0, 1, payloads);
  ASSERT_TRUE(net.run_until_idle(10'000));
  // First flit: 0 transitions (wire already 0); each subsequent flit flips
  // all 64 wires: 7 * 64.
  EXPECT_EQ(net.bt().total(), 7u * 64u);
}

TEST(BtRecorder, LinkCountFor2x2Mesh) {
  NocConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.flit_payload_bits = 64;
  Network net(cfg);
  // 2x2 mesh: 8 directed inter-router links + 4 injection + 4 ejection.
  EXPECT_EQ(net.bt().link_count(), 16u);
}

}  // namespace
}  // namespace nocbt::noc
